"""Compact binary container for simulation certificates.

Layout (all multi-byte integers big-endian):

====================  ==========================================================
offset / size         field
====================  ==========================================================
0 / 4                 magic ``b"GRC2"``
4 / 1                 container version (:data:`CONTAINER_VERSION`)
5 / 2                 certificate format (:data:`~.simulation.CERTIFICATE_FORMAT`)
7 / 32                integrity — SHA-256 of everything after this field
39 / 32               content digest — SHA-256 of the *uncompressed* canonical
                      core (== :meth:`SimulationCertificate.content_hash`)
71 / 4+n              u32 length + zlib-compressed canonical core
… / 4+m               u32 length + zlib-compressed witness section
====================  ==========================================================

The canonical core is exactly the byte string hashed by
:meth:`SimulationCertificate.content_hash` — a hash-consed node table plus
int tables for the state roots, relation rows and stimuli — so the binary
and JSON codecs agree on the content hash by construction.  Decoding
verifies the digest against the decompressed core (not merely trusting the
stored value), and the outer integrity hash rejects any bit flip or
truncation anywhere in the container, witness section included.

The witness section (see :class:`~.simulation.ReplayWitnesses`) extends the
core's node table with the path-only spec states and stores the τ-path and
per-row move tables as varint runs, followed by the iteration count.  It is
covered by the integrity hash but *not* by the content digest: witnesses
are advisory and two searches of the same obligation may record different
(equally valid) responses.

Size: state tables dominate JSON certificates because every deep state is
re-serialised per occurrence; hash-consing stores each distinct subtree
once and zlib squeezes the remaining varint tables, giving well over the
targeted 5x reduction on the library obligations.
"""

from __future__ import annotations

import hashlib
import struct
import zlib

from ..errors import CertificateError
from .encoding import (
    NodeTable,
    decode_nodes,
    read_uvarint,
    read_uvarint_list,
    write_uvarint,
)
from .simulation import (
    CERTIFICATE_FORMAT,
    ReplayWitnesses,
    SimulationCertificate,
    _decode_stimuli_values,
)

MAGIC = b"GRC2"
CONTAINER_VERSION = 1

_HEADER = struct.Struct(">4sBH")
_U32 = struct.Struct(">I")


def to_bytes(certificate: SimulationCertificate) -> bytes:
    """Serialise *certificate* into the binary container."""
    table = NodeTable()
    core = certificate.core_bytes(table)
    digest = hashlib.sha256(core).digest()
    n_core_nodes = len(table)

    wit = bytearray()
    witnesses = certificate.witnesses
    if witnesses is None:
        wit.append(0)
    else:
        wit.append(1)
        extra_roots = [table.index(t) for t in witnesses.extra_spec]
        extra_records = table.records[n_core_nodes:]
        write_uvarint(wit, len(extra_records))
        for record in extra_records:
            wit += record
        write_uvarint(wit, len(extra_roots))
        for root in extra_roots:
            write_uvarint(wit, root)
        write_uvarint(wit, len(witnesses.paths))
        for path in witnesses.paths:
            write_uvarint(wit, len(path))
            for k in path:
                write_uvarint(wit, k)
        write_uvarint(wit, len(witnesses.rows))
        for row in witnesses.rows:
            write_uvarint(wit, len(row))
            for kind, p_idx, resp in row:
                write_uvarint(wit, kind)
                write_uvarint(wit, p_idx)
                write_uvarint(wit, resp)
    write_uvarint(wit, int(certificate.iterations))

    core_z = zlib.compress(core, 6)
    wit_z = zlib.compress(bytes(wit), 6)
    payload = (
        digest
        + _U32.pack(len(core_z))
        + core_z
        + _U32.pack(len(wit_z))
        + wit_z
    )
    integrity = hashlib.sha256(payload).digest()
    return _HEADER.pack(MAGIC, CONTAINER_VERSION, CERTIFICATE_FORMAT) + integrity + payload


def content_hash_of(blob: bytes) -> str:
    """The content hash a binary container claims, without full decoding.

    Only the header and integrity hash are verified — use this to index a
    store cheaply; :func:`from_bytes` still re-verifies the digest against
    the actual core before the certificate is trusted.
    """
    _check_envelope(blob)
    return blob[39:71].hex()


def _check_envelope(blob: bytes) -> None:
    if len(blob) < 71 + 8:
        raise CertificateError("binary certificate truncated (shorter than header)")
    magic, version, fmt = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise CertificateError(f"bad magic {magic!r}: not a binary certificate")
    if version != CONTAINER_VERSION:
        raise CertificateError(f"unsupported container version {version}")
    if fmt != CERTIFICATE_FORMAT:
        raise CertificateError(
            f"certificate format {fmt} != {CERTIFICATE_FORMAT}"
        )
    integrity = blob[7:39]
    if hashlib.sha256(blob[39:]).digest() != integrity:
        raise CertificateError(
            "binary certificate integrity check failed (tampered or corrupted)"
        )


def from_bytes(blob: bytes) -> SimulationCertificate:
    """Decode and verify a binary container.

    Raises :class:`CertificateError` on any damage: bad magic, version or
    format, an integrity mismatch anywhere in the payload, a content
    digest that does not match the decompressed core, or malformed int
    tables.  The returned certificate's ``content_hash()`` equals the
    embedded digest by construction (it is recomputed, not trusted).
    """
    _check_envelope(blob)
    digest = blob[39:71]
    pos = 71
    try:
        (core_len,) = _U32.unpack_from(blob, pos)
        pos += 4
        core_z = blob[pos : pos + core_len]
        if len(core_z) != core_len:
            raise CertificateError("binary certificate truncated in core section")
        pos += core_len
        (wit_len,) = _U32.unpack_from(blob, pos)
        pos += 4
        wit_z = blob[pos : pos + wit_len]
        if len(wit_z) != wit_len:
            raise CertificateError("binary certificate truncated in witness section")
    except struct.error as exc:
        raise CertificateError("binary certificate truncated") from exc
    try:
        core = zlib.decompress(core_z)
        wit = zlib.decompress(wit_z)
    except zlib.error as exc:
        raise CertificateError(f"binary certificate decompression failed: {exc}") from exc
    if hashlib.sha256(core).digest() != digest:
        raise CertificateError(
            "certificate hash mismatch: stored content digest does not match "
            "the decoded core (tampered or corrupted)"
        )

    # -- canonical core ------------------------------------------------------
    pos = 0
    fmt, pos = read_uvarint(core, pos)
    if fmt != CERTIFICATE_FORMAT:
        raise CertificateError(f"certificate format {fmt} != {CERTIFICATE_FORMAT}")
    n_nodes, pos = read_uvarint(core, pos)
    nodes: list = []
    pos = decode_nodes(core, pos, n_nodes, nodes)

    def roots(pos: int) -> tuple[list, int]:
        count, pos = read_uvarint(core, pos)
        idxs, pos = read_uvarint_list(core, pos, count)
        if any(i >= len(nodes) for i in idxs):
            raise CertificateError("state root index outside the node table")
        return [nodes[i] for i in idxs], pos

    impl_states, pos = roots(pos)
    spec_states, pos = roots(pos)
    n_rows, pos = read_uvarint(core, pos)
    rows: list[tuple[int, int]] = []
    for _ in range(n_rows):
        i, pos = read_uvarint(core, pos)
        j, pos = read_uvarint(core, pos)
        if i >= len(impl_states) or j >= len(spec_states):
            raise CertificateError("relation row indexes outside the state tables")
        rows.append((i, j))
    n_stim, pos = read_uvarint(core, pos)
    stimuli_values: list[tuple[str, list]] = []
    for _ in range(n_stim):
        name_len, pos = read_uvarint(core, pos)
        if pos + name_len > len(core):
            raise CertificateError("truncated stimuli port name")
        name = core[pos : pos + name_len].decode("utf-8", errors="strict")
        pos += name_len
        n_values, pos = read_uvarint(core, pos)
        idxs, pos = read_uvarint_list(core, pos, n_values)
        if any(i >= len(nodes) for i in idxs):
            raise CertificateError("stimulus value index outside the node table")
        stimuli_values.append((name, [nodes[i] for i in idxs]))
    impl_count, pos = read_uvarint(core, pos)
    spec_count, pos = read_uvarint(core, pos)
    if pos != len(core):
        raise CertificateError("trailing bytes after certificate core")
    stimuli = _decode_stimuli_values(stimuli_values)
    relation = frozenset((impl_states[i], spec_states[j]) for i, j in rows)

    # -- witness section (advisory: parse errors raise, since the integrity
    # hash already vouched for these bytes — junk here means a codec bug,
    # not wire damage) -------------------------------------------------------
    pos = 0
    if pos >= len(wit):
        raise CertificateError("truncated witness section")
    has_witnesses = wit[pos]
    pos += 1
    witnesses = None
    if has_witnesses == 1:
        n_extra, pos = read_uvarint(wit, pos)
        extra_nodes = list(nodes)
        pos = decode_nodes(wit, pos, n_extra, extra_nodes)
        n_roots, pos = read_uvarint(wit, pos)
        root_idxs, pos = read_uvarint_list(wit, pos, n_roots)
        if any(i >= len(extra_nodes) for i in root_idxs):
            raise CertificateError("witness state root outside the node table")
        extra_spec = tuple(extra_nodes[i] for i in root_idxs)
        n_paths, pos = read_uvarint(wit, pos)
        paths = []
        for _ in range(n_paths):
            length, pos = read_uvarint(wit, pos)
            path, pos = read_uvarint_list(wit, pos, length)
            paths.append(tuple(path))
        n_wit_rows, pos = read_uvarint(wit, pos)
        wit_rows = []
        for _ in range(n_wit_rows):
            length, pos = read_uvarint(wit, pos)
            row = []
            for _ in range(length):
                kind, pos = read_uvarint(wit, pos)
                p_idx, pos = read_uvarint(wit, pos)
                resp, pos = read_uvarint(wit, pos)
                row.append((kind, p_idx, resp))
            wit_rows.append(tuple(row))
        if n_wit_rows == len(rows):
            witnesses = ReplayWitnesses(
                extra_spec=extra_spec, paths=tuple(paths), rows=tuple(wit_rows)
            )
    elif has_witnesses != 0:
        raise CertificateError("malformed witness section flag")
    iterations, pos = read_uvarint(wit, pos)
    if pos != len(wit):
        raise CertificateError("trailing bytes after witness section")

    return SimulationCertificate(
        relation=relation,
        impl_states=impl_count,
        spec_states=spec_count,
        iterations=iterations,
        stimuli=stimuli,
        witnesses=witnesses,
        _canon=(tuple(impl_states), tuple(spec_states), tuple(rows)),
        _hash=digest.hex(),
    )


def looks_binary(blob: bytes) -> bool:
    """True when *blob* starts with the binary container magic."""
    return blob[:4] == MAGIC
