"""The section 6.2 finding: the bicg miscompilation, reproduced.

Graphiti's purity phase refuses to reorder a loop whose body stores to
memory; DF-OoO transforms it anyway and the write order (and, because the
store is a read-modify-write, the final memory) diverges from the
sequential program.

Run with:  pytest benchmarks/bench_bicg_bug.py --benchmark-only -s
"""

import numpy as np
import pytest

from repro.benchmarks import bicg
from repro.eval.runner import run_benchmark
from repro.hls.ir import run_program


@pytest.fixture(scope="module")
def bicg_result(results):
    return results["bicg"]


def test_graphiti_refuses_the_transform(bicg_result, once):
    assert bicg_result["GRAPHITI"].refused_loops == 1


def test_graphiti_output_identical_to_df_io(bicg_result, once):
    assert bicg_result["GRAPHITI"].cycles == bicg_result["DF-IO"].cycles
    assert bicg_result["GRAPHITI"].area.luts == bicg_result["DF-IO"].area.luts
    assert bicg_result["GRAPHITI"].area.ffs == bicg_result["DF-IO"].area.ffs


def test_df_ooo_breaks_store_order(bicg_result, once):
    assert not bicg_result["DF-OoO"].stores_in_order


def test_df_ooo_corrupts_memory(bicg_result, once):
    assert not bicg_result["DF-OoO"].correct


def test_df_ooo_is_fast_but_wrong(bicg_result, once):
    """The original evaluation reported a large bicg speedup — which this
    reproduction shows was obtained from an unsound transformation."""
    assert bicg_result["DF-OoO"].cycles < bicg_result["DF-IO"].cycles / 2
    assert not bicg_result["DF-OoO"].correct


def test_print_divergence(results, once):
    program = bicg(6)
    reference = run_program(program, program.copy_arrays())
    result = run_benchmark("bicg", bicg(6))
    print()
    print("bicg, n=6: s[] after the sweep")
    print("  reference :", np.round(reference.arrays["s"], 3))
    print(
        "  DF-OoO    : correct =", result["DF-OoO"].correct,
        "| stores in order =", result["DF-OoO"].stores_in_order,
    )
    print(
        "  GRAPHITI  : correct =", result["GRAPHITI"].correct,
        "| refused loops =", result["GRAPHITI"].refused_loops,
    )
