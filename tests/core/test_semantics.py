"""Tests for the denotation ⟦·⟧ε (section 4.5)."""

import pytest

from repro.components import default_environment, fork, join, operator, pure
from repro.core import ExprHigh, denote
from repro.core.exprlow import Base
from repro.core.ports import InternalPort, IOPort, PortMap, sequential_map
from repro.core.semantics import denote as denote_low
from repro.errors import SemanticsError


@pytest.fixture
def env():
    return default_environment(capacity=2)


class TestDenoteBase:
    def test_component_ports_renamed(self, env):
        base = Base(
            "Fork{n=2}",
            sequential_map("f", ["in0"]),
            sequential_map("f", ["out0", "out1"]),
        )
        module = denote_low(base, env)
        assert module.input_ports() == {InternalPort("f", "in0")}
        assert module.output_ports() == {
            InternalPort("f", "out0"),
            InternalPort("f", "out1"),
        }

    def test_unknown_component_rejected(self, env):
        base = Base("Alien", sequential_map("a", ["in0"]), sequential_map("a", ["out0"]))
        with pytest.raises(SemanticsError):
            denote_low(base, env)

    def test_port_map_arity_mismatch_rejected(self, env):
        base = Base(
            "Fork{n=2}",
            sequential_map("f", ["in0"]),
            sequential_map("f", ["out0"]),  # Fork(2) has two outputs
        )
        with pytest.raises(SemanticsError):
            denote_low(base, env)

    def test_unknown_function_in_operator_rejected(self, env):
        base = Base(
            "Operator{op=bogus}",
            sequential_map("o", ["in0", "in1"]),
            sequential_map("o", ["out0"]),
        )
        with pytest.raises(SemanticsError):
            denote_low(base, env)


class TestDenoteGraph:
    def test_fig6_graph_computes_modulo(self, env):
        """The running example of figure 6: fork feeding a modulo."""
        g = ExprHigh()
        g.add_node("f", fork(2))
        g.add_node("m", operator("mod", 2))
        g.connect("f", "out0", "m", "in0")
        g.mark_input(0, "f", "in0")
        g.mark_input(1, "m", "in1")
        g.mark_output(0, "f", "out1")
        g.mark_output(1, "m", "out0")
        module = denote(g.lower(), env)

        (state,) = module.init
        (state,) = module.inputs[IOPort(0)].fire(state, 10)
        (state,) = module.inputs[IOPort(1)].fire(state, 4)
        # Drive the internal connection, then read both outputs.
        emitted = {}
        frontier = [state]
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            for port in (IOPort(0), IOPort(1)):
                for value, _ in module.outputs[port].fire(current):
                    emitted.setdefault(port.index, set()).add(value)
            for nxt in module.internal_steps(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert emitted[0] == {10}  # the forked copy
        assert emitted[1] == {2}  # 10 mod 4

    def test_state_shape_matches_node_count(self, env):
        g = ExprHigh()
        g.add_node("a", pure("incr"))
        g.add_node("b", pure("incr"))
        g.add_node("c", join())
        g.connect("a", "out0", "c", "in0")
        g.connect("b", "out0", "c", "in1")
        g.mark_input(0, "a", "in0")
        g.mark_input(1, "b", "in0")
        g.mark_output(0, "c", "out0")
        module = denote(g.lower(), env)
        (state,) = module.init
        # Right-nested product of three component states.
        assert len(state) == 2 and len(state[1]) == 2

    def test_connections_become_internal_transitions(self, env):
        g = ExprHigh()
        g.add_node("a", pure("incr"))
        g.add_node("b", pure("incr"))
        g.connect("a", "out0", "b", "in0")
        g.mark_input(0, "a", "in0")
        g.mark_output(0, "b", "out0")
        module = denote(g.lower(), env)
        assert len(module.internals) == 1
        assert "conn" in module.internals[0].name
