"""Single source of the tool version.

Lives in its own module (rather than ``repro/__init__``) so low-level
subsystems — notably :mod:`repro.exec.hashing`, whose cache keys embed the
tool version — can import it without pulling in the whole package.
"""

__version__ = "1.8.0"
