"""Phase-2 cleanup rewrites: eliminating redundant nodes (fig. 3b).

These rewrites remove structure left over by the phase-1 combinations:
Split feeding Join collapses to an identity Pure, Join feeding Split
likewise, a Fork with one sunk output disappears, and identity Pures
compose away.  Wire-throughs are expressed as ``Pure{fn=id}`` because a
rewrite replacement must be a (closed) graph; a later pass or the buffer
placer treats identity Pures as plain wires.
"""

from __future__ import annotations

from ...components import fork, join, pure, sink, split
from ..rewrite import Match, Rewrite
from .common import graph_of, io_values, obligation_env


def _split_join_lhs():
    return graph_of(
        nodes={"sp": split(), "jn": join()},
        connections=[("sp.out0", "jn.in0"), ("sp.out1", "jn.in1")],
        inputs={0: "sp.in0"},
        outputs={0: "jn.out0"},
    )


def _split_join_rhs(match: Match):
    return graph_of(
        nodes={"wire": pure("id")},
        connections=[],
        inputs={0: "wire.in0"},
        outputs={0: "wire.out0"},
    )


def _split_join_obligation():
    env = obligation_env(capacity=1)
    yield _split_join_lhs(), _split_join_rhs(None), env, io_values({0: (("x", "y"),)})


def split_join_elim() -> Rewrite:
    """``Split ; Join`` (straight wires) is the identity on pairs."""
    return Rewrite(
        name="split-join-elim",
        lhs=_split_join_lhs(),
        rhs=_split_join_rhs,
        verified=True,
        obligation=_split_join_obligation,
        description="Split immediately re-joined collapses to a wire (fig. 3b)",
    )


def _join_split_lhs():
    return graph_of(
        nodes={"jn": join(), "sp": split()},
        connections=[("jn.out0", "sp.in0")],
        inputs={0: "jn.in0", 1: "jn.in1"},
        outputs={0: "sp.out0", 1: "sp.out1"},
    )


def _join_split_rhs(match: Match):
    return graph_of(
        nodes={"wa": pure("id"), "wb": pure("id")},
        connections=[],
        inputs={0: "wa.in0", 1: "wb.in0"},
        outputs={0: "wa.out0", 1: "wb.out0"},
    )


def _join_split_obligation():
    env = obligation_env(capacity=1)
    yield _join_split_lhs(), _join_split_rhs(None), env, io_values({0: ("x",), 1: ("y",)})


def join_split_elim() -> Rewrite:
    """``Join ; Split`` is two independent wires.

    Unverified: the obligation genuinely fails compositionally — the lhs
    synchronises its two streams (a token only passes once its partner
    arrived), whereas the rhs lets either stream through alone.  The rhs has
    *more* behaviours, so ``rhs ⊑ lhs`` does not hold even though the lhs
    refines the rhs.  The paper's pipeline applies it where the surrounding
    loop re-synchronises the streams anyway.
    """
    return Rewrite(
        name="join-split-elim",
        lhs=_join_split_lhs(),
        rhs=_join_split_rhs,
        verified=False,
        obligation=_join_split_obligation,
        description="Join immediately re-split collapses to two wires (fig. 3b, unverified)",
    )


def _fork_sink_lhs():
    return graph_of(
        nodes={"fk": fork(2), "sk": sink()},
        connections=[("fk.out1", "sk.in0")],
        inputs={0: "fk.in0"},
        outputs={0: "fk.out0"},
    )


def _fork_sink_rhs(match: Match):
    return graph_of(
        nodes={"wire": pure("id")},
        connections=[],
        inputs={0: "wire.in0"},
        outputs={0: "wire.out0"},
    )


def _fork_sink_obligation():
    env = obligation_env(capacity=1)
    yield _fork_sink_lhs(), _fork_sink_rhs(None), env, io_values({0: ("x", "y")})


def fork_sink_elim() -> Rewrite:
    """A Fork whose second output is discarded is a wire."""
    return Rewrite(
        name="fork-sink-elim",
        lhs=_fork_sink_lhs(),
        rhs=_fork_sink_rhs,
        verified=True,
        obligation=_fork_sink_obligation,
        description="Fork with a sunk output collapses to a wire (fig. 3b)",
    )


def _pure_id_pure_lhs():
    from ..rewrite import Var

    from ...core.exprhigh import NodeSpec

    return graph_of(
        nodes={
            "w": pure("id"),
            "p": NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": Var("F")}),
        },
        connections=[("w.out0", "p.in0")],
        inputs={0: "w.in0"},
        outputs={0: "p.out0"},
    )


def _pure_id_pure_rhs(match: Match):
    from ...core.exprhigh import NodeSpec

    fn = match.params["F"]
    tagged = bool(match.host_specs[match.nodes["p"]].param("tagged", False))
    return graph_of(
        nodes={"p": NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": fn, "tagged": tagged})},
        connections=[],
        inputs={0: "p.in0"},
        outputs={0: "p.out0"},
    )


def _pure_id_pure_obligation():
    env = obligation_env(capacity=1)
    lhs = _pure_id_pure_lhs()
    match = Match(
        nodes={"p": "p"},
        params={"F": "incr"},
        inputs={},
        outputs={},
        host_specs={"p": pure("incr")},
    )
    yield lhs_concrete(lhs, "incr"), _pure_id_pure_rhs(match), env, io_values({0: (1, 2)})


def lhs_concrete(lhs, fn: str):
    """Instantiate a pattern's Var("F") parameters with a concrete function."""
    from ..rewrite import Var

    concrete = lhs.copy()
    for name, spec in list(concrete.nodes.items()):
        params = spec.param_dict()
        changed = False
        for key, value in params.items():
            if isinstance(value, Var):
                params[key] = fn
                changed = True
        if changed:
            from ...core.exprhigh import NodeSpec

            concrete.nodes[name] = NodeSpec.make(spec.typ, spec.in_ports, spec.out_ports, params)
    return concrete


def pure_id_elim() -> Rewrite:
    """An identity Pure in front of another Pure is absorbed."""
    return Rewrite(
        name="pure-id-elim",
        lhs=_pure_id_pure_lhs(),
        rhs=_pure_id_pure_rhs,
        verified=True,
        obligation=_pure_id_pure_obligation,
        description="Identity wire absorbed into the following Pure",
    )
