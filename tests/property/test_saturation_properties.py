"""Property: saturation dominates the fixpoint pipeline and stays replayable.

Three laws, fuzzed across every built-in benchmark kernel and a range of
exploration budgets:

* **Dominance** — the best extracted Pareto point never models worse than
  the destructive fixpoint circuit (the saturate strategy seeds
  exploration with the fixpoint output, so this holds by construction and
  any violation is an extraction or cost-model bug).
* **Frontier shape** — extracted points are mutually non-dominated and
  sorted by (cycles, area); determinism means a repeated run extracts
  identical costs and derivations.
* **Replayability** — every explored state's recorded derivation, replayed
  from its seed through ordinary rewrite application, reproduces a graph
  with the same name-independent fingerprint.  This is the property that
  lets certificate-checked rewrite sequences stand in for trusting the
  e-graph.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks import BENCHMARKS, load_benchmark
from repro.components import default_environment
from repro.hls.frontend import compile_program
from repro.rewriting.pipeline import GraphitiPipeline
from repro.rewriting.saturate import (
    SaturationBudget,
    circuit_key,
    replay_derivation,
    saturate_graph,
    saturation_rewrites,
)

_COMPILED: dict[str, object] = {}


def compiled_kernel(name):
    """Benchmarks are immutable inputs; compile each once per process."""
    if name not in _COMPILED:
        env = default_environment()
        _COMPILED[name] = (env, compile_program(load_benchmark(name), env).kernels[0])
    return _COMPILED[name]


@settings(max_examples=8, deadline=None)
@given(
    name=st.sampled_from(sorted(BENCHMARKS)),
    max_states=st.integers(min_value=4, max_value=48),
)
def test_best_point_dominates_fixpoint_and_frontier_is_sound(name, max_states):
    env, ck = compiled_kernel(name)
    budget = SaturationBudget(max_states=max_states, max_iterations=2 * max_states)
    result = GraphitiPipeline(env, strategy="saturate", budget=budget).transform_kernel(
        ck.graph, ck.mark
    )
    assert result.pareto, "saturation always explores at least the seed"
    assert result.best_cost.time <= result.fixpoint_cost.time
    costs = [p.cost for p in result.pareto]
    assert costs == sorted(costs, key=lambda c: (c.cycles, c.area))
    for a in costs:
        assert not any(b.dominates(a) for b in costs)
    rerun = GraphitiPipeline(env, strategy="saturate", budget=budget).transform_kernel(
        ck.graph, ck.mark
    )
    assert [p.cost for p in rerun.pareto] == costs
    assert [p.derivation for p in rerun.pareto] == [p.derivation for p in result.pareto]


@settings(max_examples=6, deadline=None)
@given(
    name=st.sampled_from(sorted(BENCHMARKS)),
    max_states=st.integers(min_value=6, max_value=32),
)
def test_every_derivation_replays_to_its_state(name, max_states):
    _, ck = compiled_kernel(name)
    states, _, _ = saturate_graph(
        ck.graph,
        saturation_rewrites(tags=ck.mark.tags),
        budget=SaturationBudget(max_states=max_states, max_iterations=2 * max_states),
    )
    assert states and not states[0].steps, "the seed itself is always state zero"
    for state in states:
        if state.steps:
            replayed = replay_derivation(states[0].graph, state.steps)
            assert circuit_key(replayed) == state.key
