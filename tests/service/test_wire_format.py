"""The versioned wire contract: every result round-trips through dicts.

Satellite of the v1.7 service PR: ``to_dict()`` embeds ``kind`` +
``schema_version`` on every result type, ``from_dict()`` rebuilds the
object, and malformed envelopes raise the typed ``ResultSchemaError``
instead of a bare ``KeyError``.
"""

import json

import pytest

from repro import Session
from repro.benchmarks import matvec
from repro.errors import ResultSchemaError
from repro.hls.frontend import compile_program
from repro.obs import MetricsSnapshot
from repro.results import SCHEMA_VERSION, check_schema, from_wire, to_wire
from repro.rewriting.pipeline import TransformResult


@pytest.fixture(scope="module")
def session():
    with Session(use_cache=False) as session:
        yield session


@pytest.fixture(scope="module")
def compiled(session):
    return compile_program(matvec(4), session.env).kernels[0]


def test_transform_result_round_trips(session, compiled):
    result = session.transform(graph=compiled.graph, mark=compiled.mark)
    wire = result.to_dict()
    assert wire["kind"] == "TransformResult"
    assert wire["schema_version"] == SCHEMA_VERSION
    json.dumps(wire)  # JSON-serialisable all the way down

    rebuilt = TransformResult.from_dict(wire)
    assert rebuilt.transformed == result.transformed
    assert rebuilt.rewrites_applied == result.rewrites_applied
    assert sorted(rebuilt.graph.nodes) == sorted(result.graph.nodes)
    assert rebuilt.graph.sorted_connections() == result.graph.sorted_connections()
    # the round-trip is a fixpoint: dict -> object -> identical dict
    assert rebuilt.to_dict() == wire


def test_saturate_result_round_trips_pareto(session, compiled):
    result = session.transform(
        graph=compiled.graph, mark=compiled.mark, strategy="saturate"
    )
    wire = result.to_dict()
    rebuilt = TransformResult.from_dict(wire)
    assert len(rebuilt.pareto) == len(result.pareto)
    for ours, theirs in zip(rebuilt.pareto, result.pareto):
        assert ours.cost.to_dict() == theirs.cost.to_dict()
        assert sorted(ours.graph.nodes) == sorted(theirs.graph.nodes)
    assert rebuilt.best_cost.to_dict() == result.best_cost.to_dict()


def test_simstats_round_trips(session, compiled):
    program = matvec(4)
    stats = session.simulate(graph_or_kernel=compiled, stimuli=program.arrays)
    wire = stats.to_dict()
    assert wire["kind"] == "SimStats" and wire["schema_version"] == SCHEMA_VERSION
    json.dumps(wire)
    rebuilt = type(stats).from_dict(wire)
    assert rebuilt.cycles == stats.cycles
    assert rebuilt.channel_peaks == stats.channel_peaks
    assert rebuilt.store_history == stats.store_history
    assert rebuilt.to_dict() == wire


def test_benchmark_result_round_trips(session):
    from repro.eval.runner import BenchmarkResult

    result = session.bench(name="matvec")
    wire = result.to_dict()
    assert wire["kind"] == "BenchmarkResult"
    rebuilt = BenchmarkResult.from_dict(wire)
    assert rebuilt.to_dict() == wire
    assert rebuilt["DF-OoO"].cycles == result["DF-OoO"].cycles


def test_refinement_report_round_trips_detached(session):
    from repro.refinement.checker import RefinementReport, check_rewrite_obligation
    from repro.rewriting.rules import build_rewrite

    rewrite = build_rewrite("repro.rewriting.rules.combine", "mux_combine", {})
    lhs, rhs, env, stimuli = next(iter(rewrite.obligation()))
    report = check_rewrite_obligation(lhs, rhs, env, stimuli)
    wire = report.to_dict()
    assert wire["kind"] == "RefinementReport"
    assert "certificate" not in wire  # detached: the certificate travels by hash
    assert wire["certificate_hash"] == report.certificate.content_hash()

    rebuilt = RefinementReport.from_dict(wire)
    assert rebuilt.detached and rebuilt.certificate is None
    assert rebuilt.certificate_hash == report.certificate_hash
    assert rebuilt.impl_states == report.impl_states
    assert rebuilt.relation_size == report.relation_size
    assert rebuilt.to_dict() == wire


def test_metrics_snapshot_round_trips(session):
    snapshot = session.metrics()
    wire = snapshot.to_dict()
    assert wire["schema_version"] == SCHEMA_VERSION
    rebuilt = MetricsSnapshot.from_dict(wire)
    assert rebuilt.to_dict() == wire


def test_to_wire_from_wire_dispatch(session, compiled):
    result = session.transform(graph=compiled.graph, mark=compiled.mark)
    rebuilt = from_wire(to_wire(result))
    assert isinstance(rebuilt, TransformResult)
    assert rebuilt.to_dict() == result.to_dict()


@pytest.mark.parametrize(
    "payload",
    [
        {"kind": "TransformResult"},                       # missing version
        {"kind": "TransformResult", "schema_version": 99},  # future version
        {"kind": "TransformResult", "schema_version": "1"},  # wrong type
        {"kind": "NoSuchResult", "schema_version": 1},      # unknown kind
        "not-a-dict",
        {"schema_version": 1},                              # missing kind
    ],
)
def test_malformed_envelopes_raise_typed_error(payload):
    with pytest.raises(ResultSchemaError):
        from_wire(payload)


def test_check_schema_kind_mismatch():
    with pytest.raises(ResultSchemaError, match="SimStats"):
        check_schema({"kind": "TransformResult", "schema_version": 1}, "SimStats")


def test_from_dict_wraps_field_errors():
    with pytest.raises(ResultSchemaError):
        TransformResult.from_dict(
            {"kind": "TransformResult", "schema_version": 1, "graph_dot": "not dot {"}
        )
