"""Verify the out-of-order loop rewrite, piece by piece (section 5).

Replays the paper's proof decomposition executable-style:

* lemma 5.1 — the sequential loop flushes each input to fⁿ(i);
* lemma 5.2 — ψ (no-duplication / in-order / iterate) is an invariant of
  the tagged loop;
* theorem 5.3 — the simulation game decides 𝓘 ⊑ 𝓢;
* and, for contrast, a deliberately broken loop body is refuted.

Run with:  python examples/verify_rewrite.py
"""

import time

from repro.components import default_environment
from repro.core.ports import IOPort
from repro.core.semantics import denote
from repro.errors import RefinementError
from repro.refinement.loop_proof import (
    check_flushing_lemma,
    check_loop_refinement,
    check_state_invariant,
)
from repro.refinement.simulation import find_weak_simulation
from repro.rewriting.rules.loop_rewrite import ooo_loop_rhs, sequential_loop_concrete


def main() -> None:
    env = default_environment(capacity=1)
    env.register_function("dec_step", lambda n: (n - 1, n - 1 > 0), 1)

    print("Lemma 5.1 (flushing): the sequential loop computes f^n(i)")
    t0 = time.perf_counter()
    checked = check_flushing_lemma("dec_step", env, inputs=[1, 2, 3, 4])
    print(f"  {checked} inputs flushed correctly ({time.perf_counter() - t0:.2f}s)")

    print("Lemma 5.2 (state invariant): ψ preserved by internal steps")
    t0 = time.perf_counter()
    states = check_state_invariant("dec_step", env, inputs=(1, 2), tags=2)
    print(f"  ψ holds across {states} reachable states ({time.perf_counter() - t0:.2f}s)")

    print("Theorem 5.3 (refinement): out-of-order ⊑ sequential")
    t0 = time.perf_counter()
    certificate = check_loop_refinement("dec_step", env, inputs=(1, 2), tags=2)
    print(
        f"  simulation relation with {len(certificate.relation)} pairs over "
        f"{certificate.impl_states} impl states ({time.perf_counter() - t0:.2f}s)"
    )

    print("Counterexample check: a broken body must be refuted")
    env.register_function("bad_step", lambda n: (n - 2, n - 2 > 0), 1)
    impl = denote(ooo_loop_rhs("bad_step", 2).lower(), env)
    spec = denote(sequential_loop_concrete("dec_step").lower(), env.with_capacity(4))
    result = find_weak_simulation(impl, spec, {IOPort(0): (3,)})
    assert not result.holds
    print(f"  refuted: {result.violation}")


if __name__ == "__main__":
    main()
