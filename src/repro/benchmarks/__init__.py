"""The paper's benchmark suite as mini-IR programs."""

from .kernels import (
    BENCHMARKS,
    bicg,
    gemm,
    gsum_many,
    gsum_single,
    load_benchmark,
    matvec,
    mvt,
)

__all__ = [
    "BENCHMARKS",
    "bicg",
    "gemm",
    "gsum_many",
    "gsum_single",
    "load_benchmark",
    "matvec",
    "mvt",
]
