"""Shuffle rewrites: moving Pures past Splits and Joins, and the
Split/Join algebra (figs. 3c and 5e).

After operator-to-Pure conversion the body is a network of Pures, Splits
and Joins.  These rewrites push Pures together (so :func:`pure_compose`
can fuse them) and reassociate the remaining Split/Join network; the order
in which to apply the algebra rules is chosen by the e-graph oracle
(:mod:`repro.rewriting.egraph`), mirroring the paper's use of egg.
"""

from __future__ import annotations

from ...components import join, split
from ...core.exprhigh import NodeSpec
from .. import algebra
from ..rewrite import Match, Rewrite, Var
from .common import graph_of, io_values, obligation_env


def _pure_spec(fn: str, tagged: bool) -> NodeSpec:
    return NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": fn, "tagged": tagged})


def _pure_pattern(var: str) -> NodeSpec:
    return NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": Var(var)})


def _tagged(match: Match, node: str) -> bool:
    return bool(match.host_specs[match.nodes[node]].param("tagged", False))


# -- Pures past Joins ---------------------------------------------------------


def _join_pure_left_lhs():
    return graph_of(
        {"p": _pure_pattern("F"), "jn": join()},
        [("p.out0", "jn.in0")],
        {0: "p.in0", 1: "jn.in1"},
        {0: "jn.out0"},
    )


def _join_pure_left_rhs(match: Match):
    fn = algebra.first(str(match.params["F"]))
    tagged = _tagged(match, "p")
    return graph_of(
        {"jn": join(tagged=tagged), "p": _pure_spec(fn, tagged)},
        [("jn.out0", "p.in0")],
        {0: "jn.in0", 1: "jn.in1"},
        {0: "p.out0"},
    )


def _join_pure_left_obligation():
    env = obligation_env(capacity=1)
    algebra.ensure(env, "first(incr)")
    lhs = graph_of(
        {"p": _pure_spec("incr", False), "jn": join()},
        [("p.out0", "jn.in0")],
        {0: "p.in0", 1: "jn.in1"},
        {0: "jn.out0"},
    )
    rhs = graph_of(
        {"jn": join(tagged=False), "p": _pure_spec("first(incr)", False)},
        [("jn.out0", "p.in0")],
        {0: "jn.in0", 1: "jn.in1"},
        {0: "p.out0"},
    )
    yield lhs, rhs, env, io_values({0: (1,), 1: ("y",)})


def join_pure_left() -> Rewrite:
    """``Join(F a, b)`` becomes ``Pure(first F)(Join(a, b))``."""
    return Rewrite(
        name="join-pure-left",
        lhs=_join_pure_left_lhs(),
        rhs=_join_pure_left_rhs,
        verified=True,
        obligation=_join_pure_left_obligation,
        description="Pure on a Join's left input moves after the Join (fig. 3c)",
    )


def _join_pure_right_lhs():
    return graph_of(
        {"p": _pure_pattern("F"), "jn": join()},
        [("p.out0", "jn.in1")],
        {0: "jn.in0", 1: "p.in0"},
        {0: "jn.out0"},
    )


def _join_pure_right_rhs(match: Match):
    fn = algebra.second(str(match.params["F"]))
    tagged = _tagged(match, "p")
    return graph_of(
        {"jn": join(tagged=tagged), "p": _pure_spec(fn, tagged)},
        [("jn.out0", "p.in0")],
        {0: "jn.in0", 1: "jn.in1"},
        {0: "p.out0"},
    )


def _join_pure_right_obligation():
    env = obligation_env(capacity=1)
    algebra.ensure(env, "second(incr)")
    lhs = graph_of(
        {"p": _pure_spec("incr", False), "jn": join()},
        [("p.out0", "jn.in1")],
        {0: "jn.in0", 1: "p.in0"},
        {0: "jn.out0"},
    )
    rhs = graph_of(
        {"jn": join(tagged=False), "p": _pure_spec("second(incr)", False)},
        [("jn.out0", "p.in0")],
        {0: "jn.in0", 1: "jn.in1"},
        {0: "p.out0"},
    )
    yield lhs, rhs, env, io_values({0: ("x",), 1: (1,)})


def join_pure_right() -> Rewrite:
    """``Join(a, F b)`` becomes ``Pure(second F)(Join(a, b))``."""
    return Rewrite(
        name="join-pure-right",
        lhs=_join_pure_right_lhs(),
        rhs=_join_pure_right_rhs,
        verified=True,
        obligation=_join_pure_right_obligation,
        description="Pure on a Join's right input moves after the Join (fig. 3c)",
    )


# -- Pures past Splits --------------------------------------------------------


def _split_pure_left_lhs():
    return graph_of(
        {"sp": split(), "p": _pure_pattern("F")},
        [("sp.out0", "p.in0")],
        {0: "sp.in0"},
        {0: "p.out0", 1: "sp.out1"},
    )


def _split_pure_left_rhs(match: Match):
    fn = algebra.first(str(match.params["F"]))
    tagged = _tagged(match, "p")
    return graph_of(
        {"p": _pure_spec(fn, tagged), "sp": split(tagged=tagged)},
        [("p.out0", "sp.in0")],
        {0: "p.in0"},
        {0: "sp.out0", 1: "sp.out1"},
    )


def _split_pure_left_obligation():
    env = obligation_env(capacity=1)
    algebra.ensure(env, "first(incr)")
    lhs = graph_of(
        {"sp": split(), "p": _pure_spec("incr", False)},
        [("sp.out0", "p.in0")],
        {0: "sp.in0"},
        {0: "p.out0", 1: "sp.out1"},
    )
    rhs = graph_of(
        {"p": _pure_spec("first(incr)", False), "sp": split(tagged=False)},
        [("p.out0", "sp.in0")],
        {0: "p.in0"},
        {0: "sp.out0", 1: "sp.out1"},
    )
    yield lhs, rhs, env, io_values({0: ((1, "y"), (2, "z"))})


def split_pure_left() -> Rewrite:
    """A Pure on a Split's left output moves before the Split."""
    return Rewrite(
        name="split-pure-left",
        lhs=_split_pure_left_lhs(),
        rhs=_split_pure_left_rhs,
        verified=True,
        obligation=_split_pure_left_obligation,
        description="Pure on a Split's left output moves before the Split (fig. 3c)",
    )


def _split_pure_right_lhs():
    return graph_of(
        {"sp": split(), "p": _pure_pattern("F")},
        [("sp.out1", "p.in0")],
        {0: "sp.in0"},
        {0: "sp.out0", 1: "p.out0"},
    )


def _split_pure_right_rhs(match: Match):
    fn = algebra.second(str(match.params["F"]))
    tagged = _tagged(match, "p")
    return graph_of(
        {"p": _pure_spec(fn, tagged), "sp": split(tagged=tagged)},
        [("p.out0", "sp.in0")],
        {0: "p.in0"},
        {0: "sp.out0", 1: "sp.out1"},
    )


def _split_pure_right_obligation():
    env = obligation_env(capacity=1)
    algebra.ensure(env, "second(incr)")
    lhs = graph_of(
        {"sp": split(), "p": _pure_spec("incr", False)},
        [("sp.out1", "p.in0")],
        {0: "sp.in0"},
        {0: "sp.out0", 1: "p.out0"},
    )
    rhs = graph_of(
        {"p": _pure_spec("second(incr)", False), "sp": split(tagged=False)},
        [("p.out0", "sp.in0")],
        {0: "p.in0"},
        {0: "sp.out0", 1: "sp.out1"},
    )
    yield lhs, rhs, env, io_values({0: (("y", 1), ("z", 2))})


def split_pure_right() -> Rewrite:
    """A Pure on a Split's right output moves before the Split."""
    return Rewrite(
        name="split-pure-right",
        lhs=_split_pure_right_lhs(),
        rhs=_split_pure_right_rhs,
        verified=True,
        obligation=_split_pure_right_obligation,
        description="Pure on a Split's right output moves before the Split (fig. 3c)",
    )


# -- Split/Join algebra -------------------------------------------------------


def _join_assoc_lhs():
    return graph_of(
        {"inner": join(), "outer": join()},
        [("inner.out0", "outer.in1")],
        {0: "outer.in0", 1: "inner.in0", 2: "inner.in1"},
        {0: "outer.out0"},
    )


def _join_assoc_rhs(match: Match):
    return graph_of(
        {"ja": join(), "jb": join(), "p": _pure_spec("assocr", False)},
        [("ja.out0", "jb.in0"), ("jb.out0", "p.in0")],
        {0: "ja.in0", 1: "ja.in1", 2: "jb.in1"},
        {0: "p.out0"},
    )


def _join_assoc_obligation():
    env = obligation_env(capacity=1)
    algebra.ensure(env, "assocr")
    yield _join_assoc_lhs(), _join_assoc_rhs(None), env, io_values(
        {0: ("a",), 1: ("b",), 2: ("c",)}
    )


def join_assoc() -> Rewrite:
    """``Join(a, Join(b, c))`` re-associates to ``assocr(Join(Join(a,b),c))``."""
    return Rewrite(
        name="join-assoc",
        lhs=_join_assoc_lhs(),
        rhs=_join_assoc_rhs,
        verified=True,
        obligation=_join_assoc_obligation,
        description="Join re-association (split/join algebra)",
    )


def _join_swap_lhs():
    return graph_of(
        {"jn": join()},
        [],
        {0: "jn.in0", 1: "jn.in1"},
        {0: "jn.out0"},
    )


def _join_swap_rhs(match: Match):
    return graph_of(
        {"jn": join(), "p": _pure_spec("swap", False)},
        [("jn.out0", "p.in0")],
        {0: "jn.in1", 1: "jn.in0"},
        {0: "p.out0"},
    )


def _join_swap_obligation():
    env = obligation_env(capacity=1)
    algebra.ensure(env, "swap")
    yield _join_swap_lhs(), _join_swap_rhs(None), env, io_values({0: ("a",), 1: ("b",)})


def join_swap() -> Rewrite:
    """``Join(a, b)`` equals ``swap(Join(b, a))`` (commutativity)."""
    return Rewrite(
        name="join-swap",
        lhs=_join_swap_lhs(),
        rhs=_join_swap_rhs,
        verified=True,
        obligation=_join_swap_obligation,
        description="Join commutativity via a swap Pure (split/join algebra)",
    )
