"""Result-cache behaviour: roundtrip, corruption recovery, null cache."""

import json

import pytest

from repro.exec.cache import CACHE_FORMAT, CacheError, NullCache, ResultCache

KEY = "ab" + "0" * 62


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(KEY) is None
        cache.put(KEY, {"cycles": 42})
        assert cache.get(KEY) == {"cycles": 42}
        assert cache.stats.hits == 1 and cache.stats.misses == 1 and cache.stats.writes == 1

    def test_entries_are_sharded_by_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        assert cache.path_for(KEY).parent.name == "ab"
        assert len(cache) == 1

    def test_corrupted_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        cache.path_for(KEY).write_text("{not json at all")
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 1
        assert not cache.path_for(KEY).exists()
        # After quarantine a fresh put works again.
        cache.put(KEY, {"x": 2})
        assert cache.get(KEY) == {"x": 2}

    def test_mismatched_key_is_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        other = "cd" + "1" * 62
        cache.path_for(other).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(other).write_text(
            json.dumps({"format": CACHE_FORMAT, "key": KEY, "payload": {"x": 1}})
        )
        assert cache.get(other) is None
        assert cache.stats.corrupt == 1

    def test_stale_format_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for(KEY).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(KEY).write_text(
            json.dumps({"format": CACHE_FORMAT + 1, "key": KEY, "payload": {"x": 1}})
        )
        assert cache.get(KEY) is None

    def test_none_payload_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(CacheError):
            cache.put(KEY, None)

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        cache.put("cd" + "1" * 62, {"x": 2})
        assert cache.clear() == 2
        assert len(cache) == 0


class TestNullCache:
    def test_never_stores(self):
        cache = NullCache()
        cache.put(KEY, {"x": 1})
        assert cache.get(KEY) is None
        assert len(cache) == 0
        assert cache.stats.misses == 1
