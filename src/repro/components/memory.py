"""Memory components.

Loads from arrays that are not written during the region of interest are
modelled as Operators over registered array-lookup functions (a pure view of
memory), which is how the refinement-checked circuits read their inputs.

**Store** is the genuinely effectful component: it records its writes, in
issue order, inside its own state.  That history is what makes the bicg bug
of section 6.2 observable — reordering loop iterations whose bodies contain a
Store permutes the history, so the transformed module is *not* a refinement
of the sequential one, and the purity phase of the rewrite engine refuses to
turn such a loop body into a Pure component.
"""

from __future__ import annotations

from typing import Iterator

from ..core.environment import Environment
from ..core.module import Module, State, Value, deq, enq, io_module
from ..core.ports import IOPort
from ..core.types import I32, UNIT, Type


def _data_type(params: dict) -> Type:
    typ = params.get("type")
    return typ if isinstance(typ, Type) else I32


def build_store(params: dict, env: Environment) -> Module:
    """Store: synchronises an address and a value, appends to write history.

    State: ``(addr_q, data_q, history)`` where *history* is the tuple of
    (address, value) writes performed so far, oldest first.  The write is an
    internal transition, and a unit completion token is offered on out0.
    """
    cap = env.capacity
    typ = _data_type(params)

    def in_addr(state: State, value: Value) -> Iterator[State]:
        addr_q, data_q, done_q, history = state  # type: ignore[misc]
        nxt = enq(addr_q, value, cap)
        if nxt is not None:
            yield (nxt, data_q, done_q, history)

    def in_data(state: State, value: Value) -> Iterator[State]:
        addr_q, data_q, done_q, history = state  # type: ignore[misc]
        nxt = enq(data_q, value, cap)
        if nxt is not None:
            yield (addr_q, nxt, done_q, history)

    def write(state: State) -> Iterator[State]:
        addr_q, data_q, done_q, history = state  # type: ignore[misc]
        addr = deq(addr_q)
        data = deq(data_q)
        if addr is None or data is None:
            return
        done = enq(done_q, (), cap)
        if done is None:
            return
        yield (addr[1], data[1], done, history + ((addr[0], data[0]),))

    def out_done(state: State) -> Iterator[tuple[Value, State]]:
        addr_q, data_q, done_q, history = state  # type: ignore[misc]
        popped = deq(done_q)
        if popped is not None:
            yield popped[0], (addr_q, data_q, popped[1], history)

    return io_module(
        inputs={IOPort(0): (I32, in_addr), IOPort(1): (typ, in_data)},
        outputs={IOPort(0): (UNIT, out_done)},
        internals=[("store.write", write)],
        init=[((), (), (), ())],
    )


def store_history(state: State) -> tuple:
    """Extract the write history from a Store component's state."""
    return state[3]  # type: ignore[index]
