"""Regenerate Figure 8: relative performance, normalised to DF-OoO.

Run with:  pytest benchmarks/bench_figure8.py --benchmark-only -s
"""

import pytest

from repro.eval import paper_data
from repro.eval.report import figure8_series, render_figure8


def test_print_figure8(results, once):
    print()
    print(render_figure8(results))


@pytest.mark.parametrize("name", paper_data.BENCHMARKS)
def test_series_shape(results, once, name):
    """Figure 8's qualitative content: the in-order flows sit above 1.0
    (slower than DF-OoO), Graphiti sits near 1.0, except on bicg where the
    refused rewrite pins it to DF-IO."""
    series = figure8_series(results)[name]
    assert series["DF-OoO"] == pytest.approx(1.0)
    if name == "bicg":
        assert series["GRAPHITI"] == pytest.approx(series["DF-IO"])
    elif name == "gsum-single":
        assert series["GRAPHITI"] < series["Vericert"]
    else:
        assert series["GRAPHITI"] < series["DF-IO"]
    assert series["Vericert"] > series["GRAPHITI"]
