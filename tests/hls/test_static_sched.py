"""Tests for the Vericert-substitute static scheduler."""

import numpy as np
import pytest

from repro.benchmarks import load_benchmark, matvec
from repro.hls.ir import BinOp, Const, DoWhile, Kernel, Load, OuterLoop, Program, StoreOp, Var
from repro.hls.static_sched import schedule_length, schedule_program


class TestScheduleLength:
    def test_empty_schedule(self):
        assert schedule_length([]) == 0

    def test_single_op(self):
        length = schedule_length([BinOp("add", Var("a"), Var("b"))])
        assert length >= 1

    def test_dependences_serialize(self):
        chain = BinOp("fadd", BinOp("fadd", Var("a"), Var("b")), Var("c"))
        single = schedule_length([BinOp("fadd", Var("a"), Var("b"))])
        assert schedule_length([chain]) >= 2 * single

    def test_shared_fp_adder_serializes_independent_adds(self):
        two = [BinOp("fadd", Var("a"), Var("b")), BinOp("fadd", Var("c"), Var("d"))]
        one = [BinOp("fadd", Var("a"), Var("b"))]
        assert schedule_length(two) >= 2 * schedule_length(one)

    def test_integer_alus_allow_some_parallelism(self):
        four = [BinOp("add", Var("a"), Var("b")) for _ in range(4)]
        one = [BinOp("add", Var("a"), Var("b"))]
        # two ALUs: four adds take about twice one add, not four times
        assert schedule_length(four) <= 3 * schedule_length(one)

    def test_memory_port_is_single(self):
        loads = [Load("A", Var("i")), Load("B", Var("i"))]
        one = [Load("A", Var("i"))]
        assert schedule_length(loads) >= 2 * schedule_length(one)

    def test_stores_occupy_memory_port(self):
        assert schedule_length([], stores=2) > schedule_length([], stores=1) > 0


class TestScheduleProgram:
    def test_cycles_scale_with_trip_count(self):
        small = schedule_program(matvec(6))
        large = schedule_program(matvec(12))
        assert large.cycles > 3 * small.cycles  # quadratic iteration growth

    def test_area_is_small_and_constant_dsp(self):
        report = schedule_program(matvec(8))
        assert report.area.dsps == 5  # one shared FP multiplier
        assert report.area.luts < 1500

    def test_clock_beats_dataflow_fabric(self):
        report = schedule_program(matvec(8))
        assert report.area.clock_period < 5.6

    def test_iterations_counted(self):
        report = schedule_program(matvec(6))
        assert report.iterations == 36

    def test_no_fp_program_uses_no_dsps(self):
        loop = DoWhile(
            "int",
            ("n",),
            {"n": BinOp("sub", Var("n"), Const(1))},
            BinOp("lt", Const(0), Var("n")),
            ("n",),
        )
        kernel = Kernel(
            "int", loop, (OuterLoop("i", 2),), {"n": Const(3)},
            (StoreOp("out", Var("i"), Var("n")),),
        )
        program = Program("int", {"out": np.zeros(2)}, [kernel])
        assert schedule_program(program).area.dsps == 0


class TestComparisonShape:
    def test_vericert_cycles_dominate_dataflow(self):
        """The architectural claim: static scheduling with shared units has
        a much higher cycle count on irregular-latency loops."""
        from repro.eval.runner import run_benchmark

        result = run_benchmark("matvec", matvec(8))
        assert result["Vericert"].cycles > 1.5 * result["DF-IO"].cycles
        assert result["Vericert"].area.clock_period < result["DF-IO"].area.clock_period
