"""Tests for port names and port maps."""

import pytest

from repro.core.ports import (
    InternalPort,
    IOPort,
    PortMap,
    identity_map,
    parse_port,
    sequential_map,
)
from repro.errors import PortError


class TestIOPort:
    def test_round_trip_through_str(self):
        port = IOPort(3)
        assert parse_port(str(port)) == port

    def test_negative_index_rejected(self):
        with pytest.raises(PortError):
            IOPort(-1)

    def test_ordering_is_by_index(self):
        assert IOPort(0) < IOPort(1) < IOPort(5)

    def test_hashable_and_equal(self):
        assert {IOPort(2): "x"}[IOPort(2)] == "x"


class TestInternalPort:
    def test_round_trip_through_str(self):
        port = InternalPort("mux1", "in0")
        assert parse_port(str(port)) == port

    def test_empty_names_rejected(self):
        with pytest.raises(PortError):
            InternalPort("", "in0")
        with pytest.raises(PortError):
            InternalPort("node", "")

    def test_distinct_from_io_port(self):
        assert InternalPort("a", "b") != IOPort(0)


class TestParsePort:
    def test_malformed_text_rejected(self):
        with pytest.raises(PortError):
            parse_port("garbage")

    def test_malformed_io_index_rejected(self):
        with pytest.raises(PortError):
            parse_port("io:notanumber")


class TestPortMap:
    def test_lookup_and_len(self):
        pm = PortMap({IOPort(0): InternalPort("n", "a"), IOPort(1): InternalPort("n", "b")})
        assert pm[IOPort(0)] == InternalPort("n", "a")
        assert len(pm) == 2

    def test_injectivity_enforced(self):
        with pytest.raises(PortError):
            PortMap({IOPort(0): InternalPort("n", "a"), IOPort(1): InternalPort("n", "a")})

    def test_duplicate_source_rejected(self):
        with pytest.raises(PortError):
            PortMap([(IOPort(0), IOPort(1)), (IOPort(0), IOPort(2))])

    def test_apply_defaults_to_identity(self):
        pm = PortMap({IOPort(0): IOPort(5)})
        assert pm.apply(IOPort(0)) == IOPort(5)
        assert pm.apply(IOPort(9)) == IOPort(9)

    def test_inverse_round_trips(self):
        pm = sequential_map("n", ["a", "b", "c"])
        inv = pm.inverse()
        for src in pm:
            assert inv[pm[src]] == src

    def test_compose(self):
        first = PortMap({IOPort(0): IOPort(1)})
        second = PortMap({IOPort(1): IOPort(2)})
        assert first.compose(second)[IOPort(0)] == IOPort(2)

    def test_equality_and_hash(self):
        a = sequential_map("n", ["x", "y"])
        b = sequential_map("n", ["x", "y"])
        assert a == b
        assert hash(a) == hash(b)

    def test_identity_map(self):
        pm = identity_map(3)
        assert all(pm[IOPort(i)] == IOPort(i) for i in range(3))

    def test_targets(self):
        pm = sequential_map("n", ["a"])
        assert pm.targets() == frozenset({InternalPort("n", "a")})
