"""Property tests for the indexed graph core and the worklist fixpoint.

Two families of properties back the incremental indexes:

* every indexed adjacency/type query agrees with a linear scan over the
  public ``nodes``/``connections`` mappings, both on freshly built random
  graphs and after arbitrary mutation sequences (including failed, atomic
  mutations);
* the dirty-region worklist fixpoint prints byte-identically to the
  whole-graph-scan fixpoint on every paper benchmark.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exprhigh import Endpoint, ExprHigh, NodeSpec
from repro.errors import GraphError

TYPES = ("Alpha", "Beta", "Gamma")


@st.composite
def graphs(draw):
    count = draw(st.integers(1, 8))
    g = ExprHigh()
    for i in range(count):
        typ = draw(st.sampled_from(TYPES))
        n_in = draw(st.integers(0, 3))
        n_out = draw(st.integers(0, 3))
        g.add_node(
            f"n{i}",
            NodeSpec.make(
                typ,
                [f"in{j}" for j in range(n_in)],
                [f"out{j}" for j in range(n_out)],
                {},
            ),
        )
    outs = [(n, p) for n, s in g.nodes.items() for p in s.out_ports]
    ins = [(n, p) for n, s in g.nodes.items() for p in s.in_ports]
    edges = draw(st.integers(0, min(len(outs), len(ins))))
    for (sn, sp), (dn, dp) in zip(
        draw(st.permutations(outs))[:edges], draw(st.permutations(ins))[:edges]
    ):
        g.connect(sn, sp, dn, dp)
    return g


# -- linear-scan reference implementations of every indexed query ----------


def ref_sinks_of(g, node, port):
    return [dst for dst, src in g.connections.items() if src == Endpoint(node, port)]


def ref_out_edges(g, node):
    return {(src, dst) for dst, src in g.connections.items() if src.node == node}


def ref_in_edges(g, node):
    return {(src, dst) for dst, src in g.connections.items() if dst.node == node}


def ref_adjacent(g, node):
    neighbours = set()
    for dst, src in g.connections.items():
        if src.node == node and dst.node != node:
            neighbours.add(dst.node)
        if dst.node == node and src.node != node:
            neighbours.add(src.node)
    return neighbours


def ref_nodes_of_type(g, typ):
    return {name for name, spec in g.nodes.items() if spec.typ == typ}


def ref_unconnected_outputs(g):
    used = {src for src in g.connections.values()} | set(g.outputs.values())
    return [
        Endpoint(name, port)
        for name, spec in g.nodes.items()
        for port in spec.out_ports
        if Endpoint(name, port) not in used
    ]


def assert_indexes_agree(g):
    for name, spec in g.nodes.items():
        for port in spec.out_ports:
            assert g.sinks_of(name, port) == ref_sinks_of(g, name, port)
            sink = g.sink_of(name, port)
            assert [sink] == ref_sinks_of(g, name, port) if sink else not ref_sinks_of(g, name, port)
        assert set(g.out_edges(name)) == ref_out_edges(g, name)
        assert set(g.in_edges(name)) == ref_in_edges(g, name)
        assert {s for s, _, _ in g.successors(name)} == {d.node for _, d in ref_out_edges(g, name)}
        assert {p for p, _, _ in g.predecessors(name)} == {s.node for s, _ in ref_in_edges(g, name)}
        assert set(g.adjacent_nodes(name)) == ref_adjacent(g, name)
    for typ in TYPES:
        assert set(g.nodes_of_type(typ)) == ref_nodes_of_type(g, typ)
    assert sorted(map(str, g.unconnected_outputs())) == sorted(
        map(str, ref_unconnected_outputs(g))
    )


class TestIndexedQueriesAgreeWithLinearScan:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_fresh_graphs(self, g):
        assert_indexes_agree(g)

    @given(graphs(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_after_mutation_sequences(self, g, data):
        ops = data.draw(
            st.lists(
                st.sampled_from(
                    ["remove", "rename", "disconnect", "connect", "retype", "bad"]
                ),
                max_size=8,
            )
        )
        counter = 0
        for op in ops:
            names = sorted(g.nodes)
            try:
                if op == "remove" and names:
                    g.remove_node(data.draw(st.sampled_from(names)))
                elif op == "rename" and names:
                    counter += 1
                    g.rename_node(data.draw(st.sampled_from(names)), f"r{counter}")
                elif op == "disconnect" and g.connections:
                    dst = data.draw(st.sampled_from(sorted(g.connections, key=str)))
                    g.disconnect(dst.node, dst.port)
                elif op == "connect":
                    free_out = sorted(map(str, g.unconnected_outputs()))
                    free_in = sorted(map(str, g.unconnected_inputs()))
                    if free_out and free_in:
                        src = data.draw(st.sampled_from(free_out))
                        dst = data.draw(st.sampled_from(free_in))
                        sn, sp = src.split(".")
                        dn, dp = dst.split(".")
                        g.connect(sn, sp, dn, dp)
                elif op == "retype" and names:
                    name = data.draw(st.sampled_from(names))
                    g.replace_spec(
                        name,
                        g.nodes[name].with_type(data.draw(st.sampled_from(TYPES))),
                    )
                elif op == "bad" and names:
                    # A failing mutation must be atomic: indexes still agree.
                    g.rename_node(data.draw(st.sampled_from(names)), names[0])
            except GraphError:
                pass
            assert_indexes_agree(g)

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_rebuilt_graph_answers_identically(self, g):
        from repro.exec.hashing import graph_fingerprint

        rebuilt = ExprHigh(
            nodes=dict(g.nodes),
            connections=dict(g.connections),
            inputs=dict(g.inputs),
            outputs=dict(g.outputs),
        )
        assert graph_fingerprint(rebuilt) == graph_fingerprint(g)
        for name in g.nodes:
            assert set(g.out_edges(name)) == set(rebuilt.out_edges(name))
            assert set(g.in_edges(name)) == set(rebuilt.in_edges(name))


class TestWorklistEquivalence:
    """The dirty-region fixpoint is observationally identical to full scans."""

    @pytest.mark.parametrize("name", ["bicg", "gemm", "gsum-many", "gsum-single", "matvec", "mvt"])
    def test_pipeline_output_prints_byte_identically(self, name):
        from repro.benchmarks import load_benchmark
        from repro.components import default_environment
        from repro.dot import print_dot
        from repro.hls.frontend import compile_program
        from repro.rewriting.pipeline import GraphitiPipeline

        program = load_benchmark(name)
        env = default_environment()
        compiled = compile_program(program, env)
        for ck in compiled.kernels:
            fast = GraphitiPipeline(env, use_worklist=True).transform_kernel(ck.graph, ck.mark)
            slow = GraphitiPipeline(env, use_worklist=False).transform_kernel(ck.graph, ck.mark)
            assert fast.transformed == slow.transformed
            assert fast.refusal == slow.refusal
            if fast.transformed:
                assert print_dot(fast.graph) == print_dot(slow.graph)
