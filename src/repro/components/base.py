"""Structural dataflow components: Fork, Join, Split, Buffer, Sink, Source.

Each builder follows the paper's queue-based style (section 4.3): component
state is a tuple of queues, input transitions enqueue, output transitions
dequeue.  Queues are bounded by the environment's capacity so refinement
checking explores a finite state space; an enqueue into a full queue simply
refuses (yields no successor), which models elastic back-pressure.
"""

from __future__ import annotations

from typing import Iterator

from ..core.environment import Environment
from ..core.module import Module, State, Value, deq, enq, io_module
from ..core.ports import IOPort
from ..core.types import I32, UNIT, Type
from ..errors import SemanticsError


def _data_type(params: dict) -> Type:
    typ = params.get("type")
    return typ if isinstance(typ, Type) else I32


def build_fork(params: dict, env: Environment) -> Module:
    """Fork: duplicates each input token to all *n* outputs."""
    n = int(params.get("n", 2))
    typ = _data_type(params)
    cap = env.capacity

    def in0(state: State, value: Value) -> Iterator[State]:
        queues = list(state)  # type: ignore[arg-type]
        updated = []
        for queue in queues:
            nxt = enq(queue, value, cap)
            if nxt is None:
                return
            updated.append(nxt)
        yield tuple(updated)

    def make_out(index: int):
        def out(state: State) -> Iterator[tuple[Value, State]]:
            queues = list(state)  # type: ignore[arg-type]
            popped = deq(queues[index])
            if popped is None:
                return
            value, queue = popped
            queues[index] = queue
            yield value, tuple(queues)

        return out

    return io_module(
        inputs={IOPort(0): (typ, in0)},
        outputs={IOPort(i): (typ, make_out(i)) for i in range(n)},
        init=[tuple(() for _ in range(n))],
    )


def build_join(params: dict, env: Environment) -> Module:
    """Join: synchronises two inputs into a tuple output.

    With ``tagged=true`` the inputs are (tag, a) and (tag, b) pairs and the
    output is (tag, (a, b)); positionally paired tokens must carry the same
    tag (the in-order pipeline inside a tagger region guarantees it, and the
    semantics surfaces a violation as an error rather than silent mispairing).
    """
    cap = env.capacity
    tagged = bool(params.get("tagged", False))

    def in_side(index: int):
        def fire(state: State, value: Value) -> Iterator[State]:
            queues = list(state)  # type: ignore[arg-type]
            nxt = enq(queues[index], value, cap)
            if nxt is None:
                return
            queues[index] = nxt
            yield tuple(queues)

        return fire

    def out0(state: State) -> Iterator[tuple[Value, State]]:
        left_q, right_q = state  # type: ignore[misc]
        left = deq(left_q)
        right = deq(right_q)
        if left is None or right is None:
            return
        if tagged:
            (tag_l, a), (tag_r, b) = left[0], right[0]  # type: ignore[misc]
            if tag_l != tag_r:
                raise SemanticsError(f"tagged join saw misaligned tags {tag_l} vs {tag_r}")
            yield (tag_l, (a, b)), (left[1], right[1])
        else:
            yield (left[0], right[0]), (left[1], right[1])

    typ = _data_type(params)
    return io_module(
        inputs={IOPort(0): (typ, in_side(0)), IOPort(1): (typ, in_side(1))},
        outputs={IOPort(0): (typ, out0)},
        init=[((), ())],
    )


def build_split(params: dict, env: Environment) -> Module:
    """Split: destructures a tuple input into its left and right parts.

    With ``tagged=true`` the input is a (tag, (a, b)) pair and the tag is
    propagated to both halves, as required inside a Tagger/Untagger region.
    """
    cap = env.capacity
    tagged = bool(params.get("tagged", False))

    def in0(state: State, value: Value) -> Iterator[State]:
        left_q, right_q = state  # type: ignore[misc]
        if tagged:
            tag, (a, b) = value  # type: ignore[misc]
            left_v, right_v = (tag, a), (tag, b)
        else:
            left_v, right_v = value  # type: ignore[misc]
        new_left = enq(left_q, left_v, cap)
        new_right = enq(right_q, right_v, cap)
        if new_left is None or new_right is None:
            return
        yield (new_left, new_right)

    def make_out(index: int):
        def out(state: State) -> Iterator[tuple[Value, State]]:
            queues = list(state)  # type: ignore[arg-type]
            popped = deq(queues[index])
            if popped is None:
                return
            value, queue = popped
            queues[index] = queue
            yield value, tuple(queues)

        return out

    typ = _data_type(params)
    return io_module(
        inputs={IOPort(0): (typ, in0)},
        outputs={IOPort(0): (typ, make_out(0)), IOPort(1): (typ, make_out(1))},
        init=[((), ())],
    )


def build_buffer(params: dict, env: Environment) -> Module:
    """Buffer: a FIFO queue of the given number of slots (default 1)."""
    slots = int(params.get("slots", 1))
    typ = _data_type(params)

    def in0(state: State, value: Value) -> Iterator[State]:
        (queue,) = state  # type: ignore[misc]
        nxt = enq(queue, value, slots)
        if nxt is not None:
            yield (nxt,)

    def out0(state: State) -> Iterator[tuple[Value, State]]:
        (queue,) = state  # type: ignore[misc]
        popped = deq(queue)
        if popped is not None:
            yield popped[0], (popped[1],)

    return io_module(
        inputs={IOPort(0): (typ, in0)},
        outputs={IOPort(0): (typ, out0)},
        init=[((),)],
    )


def build_sink(params: dict, env: Environment) -> Module:
    """Sink: consumes and discards every token."""
    typ = _data_type(params)

    def in0(state: State, value: Value) -> Iterator[State]:
        yield state

    return io_module(inputs={IOPort(0): (typ, in0)}, outputs={}, init=[()])


def build_source(params: dict, env: Environment) -> Module:
    """Source: emits an endless stream of unit control tokens."""

    def out0(state: State) -> Iterator[tuple[Value, State]]:
        yield (), state

    return io_module(inputs={}, outputs={IOPort(0): (UNIT, out0)}, init=[()])
