"""Table 2: cycle count, clock period, and execution time."""

from __future__ import annotations

from typing import Iterable, Mapping

from . import paper_data
from .report import clock_table, cycle_table, exec_time_table
from .runner import BenchmarkResult


def collect(benchmarks: Iterable[str] = paper_data.BENCHMARKS) -> dict[str, BenchmarkResult]:
    """Run the listed benchmarks through all four flows."""
    from ..api import Session

    return Session(use_cache=False).bench_many(list(benchmarks))


def render(results: Mapping[str, BenchmarkResult]) -> str:
    """Render the three Table 2 sub-tables."""
    return "\n\n".join(
        table.render()
        for table in (cycle_table(results), clock_table(results), exec_time_table(results))
    )


def main() -> None:
    print(render(collect()))


if __name__ == "__main__":
    main()
