"""Graphiti, reproduced in Python.

A reproduction of *"Graphiti: Formally Verified Out-of-Order Execution in
Dataflow Circuits"* (ASPLOS 2026): the ExprHigh/ExprLow graph languages,
executable module semantics with the paper's combinators, a bounded
weak-simulation refinement checker standing in for the Lean proofs, the
rewriting engine with the five-phase out-of-order pipeline, an e-graph
oracle, a cycle-level elastic-circuit simulator, and the full evaluation
harness (Tables 2-3, Figure 8, the section 6.3 statistics, and the bicg
bug).

Quick tour::

    from repro import Session

    session = Session(jobs=4)          # parallel + cached execution
    session.transform(graph, mark)     # the OoO pipeline
    session.verify()                   # discharge every rewrite obligation
    session.bench("matvec")            # the evaluation harness
    print(session.report())            # Tables 2-3 + Figure 8

:class:`Session` (see :mod:`repro.api`) is the facade over the lower-level
pieces, which remain importable::

    from repro import (
        default_environment, ExprHigh, denote,        # build + denote graphs
        refines, check_rewrite_obligation,            # refinement checking
        GraphitiPipeline,                             # the OoO pipeline
    )

(The deprecated ``repro.run_benchmark`` shim was removed in v1.5 — use
``Session(...).bench(name)``; see the migration table in ``docs/api.md``.)

See README.md for the architecture overview and examples/ for runnable
walkthroughs.
"""

from ._version import __version__
from .api import Session
from .components import default_environment
from .core import (
    Environment,
    ExprHigh,
    ExprLow,
    Module,
    NodeSpec,
    denote,
)
from .dot import parse_dot, print_dot
from .errors import GraphitiError, ResultSchemaError, ServiceError
from .refinement import (
    check_graph_refinement,
    check_refinement,
    check_rewrite_obligation,
    find_weak_simulation,
    refines,
    trace_inclusion,
)
from .rewriting import GraphitiPipeline, Rewrite, RewriteEngine, Var

__all__ = [
    "Session",
    "default_environment",
    "Environment",
    "ExprHigh",
    "ExprLow",
    "Module",
    "NodeSpec",
    "denote",
    "parse_dot",
    "print_dot",
    "GraphitiError",
    "ResultSchemaError",
    "ServiceError",
    "check_graph_refinement",
    "check_refinement",
    "check_rewrite_obligation",
    "find_weak_simulation",
    "refines",
    "trace_inclusion",
    "GraphitiPipeline",
    "Rewrite",
    "RewriteEngine",
    "Var",
    "__version__",
]
