"""Additional normalization rewrites used while massaging loop shapes.

These are the remaining "minor rewrites used to normalize the structure of
the loop" (section 3.1): fork-tree rotations, output swaps, Merge
commutativity, and buffer elimination.  All carry discharged refinement
obligations.
"""

from __future__ import annotations

from ...components import buffer, fork, merge, pure, split
from ..rewrite import Match, Rewrite
from .common import graph_of, io_values, obligation_env


def _split_swap_lhs():
    return graph_of(
        {"sp": split()},
        [],
        {0: "sp.in0"},
        {0: "sp.out0", 1: "sp.out1"},
    )


def _split_swap_rhs(match: Match):
    return graph_of(
        {"p": pure("swap"), "sp": split()},
        [("p.out0", "sp.in0")],
        {0: "p.in0"},
        {0: "sp.out1", 1: "sp.out0"},
    )


def _split_swap_obligation():
    from .. import algebra

    env = obligation_env(capacity=1)
    algebra.ensure(env, "swap")
    yield _split_swap_lhs(), _split_swap_rhs(None), env, io_values({0: (("a", "b"),)})


def split_swap() -> Rewrite:
    """A Split equals a swap Pure followed by a Split with crossed outputs."""
    return Rewrite(
        name="split-swap",
        lhs=_split_swap_lhs(),
        rhs=_split_swap_rhs,
        verified=True,
        obligation=_split_swap_obligation,
        description="Split commutativity via a swap Pure (split/join algebra)",
    )


def _fork_assoc_lhs():
    return graph_of(
        {"fa": fork(2), "fb": fork(2)},
        [("fa.out0", "fb.in0")],
        {0: "fa.in0"},
        {0: "fb.out0", 1: "fb.out1", 2: "fa.out1"},
    )


def _fork_assoc_rhs(match: Match):
    return graph_of(
        {"fa": fork(2), "fb": fork(2)},
        [("fa.out1", "fb.in0")],
        {0: "fa.in0"},
        {0: "fa.out0", 1: "fb.out0", 2: "fb.out1"},
    )


def _fork_assoc_obligation():
    env = obligation_env(capacity=1)
    yield _fork_assoc_lhs(), _fork_assoc_rhs(None), env, io_values({0: ("x", "y")})


def fork_assoc() -> Rewrite:
    """Rotate a fork comb: which fork output carries the subtree is free."""
    return Rewrite(
        name="fork-assoc",
        lhs=_fork_assoc_lhs(),
        rhs=_fork_assoc_rhs,
        verified=True,
        obligation=_fork_assoc_obligation,
        description="Fork-tree rotation (loop normalization)",
    )


def _merge_swap_lhs():
    return graph_of({"m": merge()}, [], {0: "m.in0", 1: "m.in1"}, {0: "m.out0"})


def _merge_swap_rhs(match: Match):
    return graph_of({"m": merge()}, [], {0: "m.in1", 1: "m.in0"}, {0: "m.out0"})


def _merge_swap_obligation():
    env = obligation_env(capacity=1)
    yield _merge_swap_lhs(), _merge_swap_rhs(None), env, io_values({0: ("a",), 1: ("b",)})


def merge_swap() -> Rewrite:
    """Merge is commutative: its inputs can be exchanged."""
    return Rewrite(
        name="merge-swap",
        lhs=_merge_swap_lhs(),
        rhs=_merge_swap_rhs,
        verified=True,
        obligation=_merge_swap_obligation,
        description="Merge commutativity (loop normalization)",
    )


def _buffer_elim_lhs():
    from ...core.exprhigh import NodeSpec

    from ..rewrite import Var

    spec = NodeSpec.make("Buffer", ["in0"], ["out0"], {"slots": Var("S")})
    return graph_of({"b": spec}, [], {0: "b.in0"}, {0: "b.out0"})


def _buffer_elim_rhs(match: Match):
    return graph_of({"w": pure("id")}, [], {0: "w.in0"}, {0: "w.out0"})


def _buffer_elim_obligation():
    env = obligation_env(capacity=1)
    lhs = graph_of({"b": buffer(slots=3)}, [], {0: "b.in0"}, {0: "b.out0"})
    yield lhs, _buffer_elim_rhs(None), env, io_values({0: ("x", "y")})


def buffer_elim() -> Rewrite:
    """A buffer shrinks to a wire: fewer slots, fewer behaviours."""
    return Rewrite(
        name="buffer-elim",
        lhs=_buffer_elim_lhs(),
        rhs=_buffer_elim_rhs,
        verified=True,
        obligation=_buffer_elim_obligation,
        description="Buffer removal refines (slack only adds behaviours)",
    )
