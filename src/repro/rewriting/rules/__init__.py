"""The rewrite library (figures 3 and 5 of the paper).

:func:`all_rewrites` enumerates every named rewrite with a fresh instance —
the paper's "20 rewrites" (19 minor plus the verified out-of-order core),
here 21 named rules of which 19 carry discharged obligations and 2 are
documented-unverified, plus the two computed rewrites (purify-body /
expand-body) the pipeline builds per loop.
"""

from __future__ import annotations

from ..rewrite import Rewrite
from . import combine, extra, loop_rewrite, pure_gen, reduction, shuffle


def all_rewrites(tags: int = 4) -> list[Rewrite]:
    """One fresh instance of every named rewrite in the library."""
    return [
        combine.mux_combine(),
        combine.branch_combine(),
        combine.merge_combine(),
        reduction.split_join_elim(),
        reduction.join_split_elim(),
        reduction.fork_sink_elim(),
        reduction.pure_id_elim(),
        pure_gen.op1_to_pure(),
        pure_gen.op2_to_pure(),
        pure_gen.fork_lift_pure(),
        pure_gen.fork_to_pure(),
        pure_gen.pure_compose(),
        shuffle.join_pure_left(),
        shuffle.join_pure_right(),
        shuffle.split_pure_left(),
        shuffle.split_pure_right(),
        shuffle.join_assoc(),
        shuffle.join_swap(),
        extra.split_swap(),
        extra.fork_assoc(),
        extra.merge_swap(),
        extra.buffer_elim(),
        loop_rewrite.ooo_loop(tags=tags),
    ]


#: The obligation-discharge worklist of ``repro.cli verify`` and
#: :meth:`repro.api.Session.verify`: (module, factory, kwargs) triples.
#: Factory references (rather than Rewrite objects, which close over
#: builder functions) keep each discharge picklable as an executor unit.
VERIFY_FACTORY_SPECS: tuple[tuple[str, str, dict], ...] = (
    ("repro.rewriting.rules.combine", "mux_combine", {}),
    ("repro.rewriting.rules.combine", "merge_combine", {}),
    ("repro.rewriting.rules.combine", "branch_combine", {}),
    ("repro.rewriting.rules.reduction", "split_join_elim", {}),
    ("repro.rewriting.rules.reduction", "join_split_elim", {}),
    ("repro.rewriting.rules.reduction", "fork_sink_elim", {}),
    ("repro.rewriting.rules.reduction", "pure_id_elim", {}),
    ("repro.rewriting.rules.pure_gen", "op1_to_pure", {}),
    ("repro.rewriting.rules.pure_gen", "op2_to_pure", {}),
    ("repro.rewriting.rules.pure_gen", "fork_lift_pure", {}),
    ("repro.rewriting.rules.pure_gen", "fork_to_pure", {}),
    ("repro.rewriting.rules.pure_gen", "pure_compose", {}),
    ("repro.rewriting.rules.shuffle", "join_pure_left", {}),
    ("repro.rewriting.rules.shuffle", "join_pure_right", {}),
    ("repro.rewriting.rules.shuffle", "split_pure_left", {}),
    ("repro.rewriting.rules.shuffle", "split_pure_right", {}),
    ("repro.rewriting.rules.shuffle", "join_assoc", {}),
    ("repro.rewriting.rules.shuffle", "join_swap", {}),
    ("repro.rewriting.rules.loop_rewrite", "ooo_loop", {"tags": 2}),
)


def build_rewrite(module: str, factory: str, kwargs: dict | None = None) -> Rewrite:
    """Instantiate a rewrite from a ``VERIFY_FACTORY_SPECS``-style triple."""
    import importlib

    return getattr(importlib.import_module(module), factory)(**(kwargs or {}))


__all__ = [
    "VERIFY_FACTORY_SPECS",
    "build_rewrite",
    "all_rewrites",
    "combine",
    "extra",
    "loop_rewrite",
    "pure_gen",
    "reduction",
    "shuffle",
]
