"""The verified rewriting framework: patterns, matching, application,
the e-graph backends (term-level oracle and whole-circuit saturation),
and the five-phase out-of-order pipeline."""

from .apply import Application, apply_rewrite
from .engine import EngineStats, RewriteEngine
from .matcher import find_matches, first_match
from .pipeline import GraphitiPipeline, TransformResult, remove_identity_wires
from .purify import PurityError, Region, compose_region, discover_region, purify_rewrite
from .rewrite import Match, Rewrite, Var, pattern
from .saturate import (
    STRATEGIES,
    CircuitEGraph,
    CircuitState,
    DerivationStep,
    ParetoPoint,
    SaturationBudget,
    SaturationStats,
    circuit_key,
    extract_pareto,
    replay_derivation,
    saturate_graph,
    saturation_rewrites,
)

__all__ = [
    "Application",
    "apply_rewrite",
    "EngineStats",
    "RewriteEngine",
    "find_matches",
    "first_match",
    "GraphitiPipeline",
    "TransformResult",
    "remove_identity_wires",
    "PurityError",
    "Region",
    "compose_region",
    "discover_region",
    "purify_rewrite",
    "Match",
    "Rewrite",
    "Var",
    "pattern",
    "STRATEGIES",
    "CircuitEGraph",
    "CircuitState",
    "DerivationStep",
    "ParetoPoint",
    "SaturationBudget",
    "SaturationStats",
    "circuit_key",
    "extract_pareto",
    "replay_derivation",
    "saturate_graph",
    "saturation_rewrites",
]
