"""Integration: every benchmark through all four flows, scaled down.

These tests exercise the complete paper pipeline — front end, verified
rewriting, DF-OoO baseline, buffer placement, cycle simulation, static
scheduling — on small instances of all six benchmarks, and assert the
evaluation section's qualitative claims.
"""

import numpy as np
import pytest

from repro.benchmarks import bicg, gemm, gsum_many, gsum_single, matvec, mvt
from repro.eval.runner import run_benchmark

SMALL = {
    "matvec": lambda: matvec(8),
    "mvt": lambda: mvt(6),
    "bicg": lambda: bicg(6),
    "gemm": lambda: gemm(5),
    "gsum-single": lambda: gsum_single(48),
    "gsum-many": lambda: gsum_many(3, 24),
}


@pytest.fixture(scope="module")
def results():
    return {name: run_benchmark(name, factory()) for name, factory in SMALL.items()}


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_df_io_is_correct(self, results, name):
        assert results[name]["DF-IO"].correct
        assert results[name]["DF-IO"].stores_in_order

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_graphiti_is_correct(self, results, name):
        assert results[name]["GRAPHITI"].correct
        assert results[name]["GRAPHITI"].stores_in_order

    @pytest.mark.parametrize("name", sorted(set(SMALL) - {"bicg"}))
    def test_df_ooo_correct_on_pure_loops(self, results, name):
        assert results[name]["DF-OoO"].correct


class TestBicgBug:
    """Section 6.2: the bug Graphiti's purity check catches."""

    def test_graphiti_refuses_bicg(self, results):
        assert results["bicg"]["GRAPHITI"].refused_loops == 1

    def test_graphiti_matches_df_io_on_bicg(self, results):
        assert results["bicg"]["GRAPHITI"].cycles == results["bicg"]["DF-IO"].cycles
        assert results["bicg"]["GRAPHITI"].area.luts == results["bicg"]["DF-IO"].area.luts

    def test_df_ooo_reorders_bicg_stores(self, results):
        assert not results["bicg"]["DF-OoO"].stores_in_order

    def test_df_ooo_corrupts_bicg_memory(self, results):
        # The in-body store is a read-modify-write on s[j]; reordering
        # across outer iterations loses updates.
        assert not results["bicg"]["DF-OoO"].correct


class TestPerformanceShape:
    @pytest.mark.parametrize("name", ["matvec", "mvt", "gemm", "gsum-many"])
    def test_out_of_order_beats_in_order(self, results, name):
        assert results[name]["GRAPHITI"].cycles < results[name]["DF-IO"].cycles
        assert results[name]["DF-OoO"].cycles < results[name]["DF-IO"].cycles

    def test_gsum_single_gains_nothing(self, results):
        assert results["gsum-single"]["GRAPHITI"].cycles >= results["gsum-single"]["DF-IO"].cycles

    @pytest.mark.parametrize("name", ["matvec", "mvt", "gemm"])
    def test_vericert_has_highest_cycle_count(self, results, name):
        vericert = results[name]["Vericert"].cycles
        assert vericert > results[name]["DF-IO"].cycles

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_vericert_has_best_clock(self, results, name):
        flows = results[name]
        assert flows["Vericert"].area.clock_period <= min(
            flows[f].area.clock_period for f in ("DF-IO", "DF-OoO", "GRAPHITI")
        )

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_vericert_has_least_area(self, results, name):
        flows = results[name]
        assert flows["Vericert"].area.luts < flows["DF-IO"].area.luts
        assert flows["Vericert"].area.luts < flows["GRAPHITI"].area.luts


class TestAreaShape:
    @pytest.mark.parametrize("name", ["matvec", "mvt", "gemm", "gsum-many"])
    def test_tagging_costs_area(self, results, name):
        flows = results[name]
        assert flows["GRAPHITI"].area.ffs > flows["DF-IO"].area.ffs
        assert flows["GRAPHITI"].area.luts > flows["DF-IO"].area.luts

    @pytest.mark.parametrize("name", ["matvec", "mvt", "gemm", "gsum-many"])
    def test_tagging_worsens_clock(self, results, name):
        flows = results[name]
        assert flows["GRAPHITI"].area.clock_period > flows["DF-IO"].area.clock_period

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_dsp_counts_equal_across_dataflow_flows(self, results, name):
        flows = results[name]
        assert flows["DF-IO"].area.dsps == flows["DF-OoO"].area.dsps == flows["GRAPHITI"].area.dsps

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_vericert_dsps_from_shared_multiplier(self, results, name):
        assert results[name]["Vericert"].area.dsps == 5


class TestGraphitiVsDFOoO:
    @pytest.mark.parametrize("name", ["matvec", "gemm"])
    def test_parity_with_unverified_flow(self, results, name):
        """Within 2x of the unverified circuits (the paper's parity claim)."""
        graphiti = results[name]["GRAPHITI"].cycles
        ooo = results[name]["DF-OoO"].cycles
        assert graphiti <= 2 * ooo

    def test_graphiti_rewrites_were_applied(self, results):
        for name in ("matvec", "gemm", "mvt"):
            assert results[name]["GRAPHITI"].rewrite_steps > 10
