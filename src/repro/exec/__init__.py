"""Parallel, cached execution of independent work units.

The executor subsystem behind :class:`repro.api.Session`: canonical
fingerprints (:mod:`~repro.exec.hashing`), a content-addressed on-disk
result cache (:mod:`~repro.exec.cache`), per-unit metrics
(:mod:`~repro.exec.metrics`), and the process-pool orchestrator itself
(:mod:`~repro.exec.executor`), plus the picklable worker functions it fans
out (:mod:`~repro.exec.workers`).
"""

from .cache import CacheError, CacheStats, NullCache, ResultCache, default_cache_dir
from .executor import Executor, ExecutorError, WorkUnit, resolve_worker
from .hashing import (
    TOOL_VERSION,
    eval_unit_key,
    fingerprint,
    graph_fingerprint,
    obligation_fingerprint,
    program_fingerprint,
    stimuli_fingerprint,
    weak_sim_key,
)
from .metrics import ExecutorMetrics, UnitMetric

__all__ = [
    "CacheError",
    "CacheStats",
    "NullCache",
    "ResultCache",
    "default_cache_dir",
    "Executor",
    "ExecutorError",
    "WorkUnit",
    "resolve_worker",
    "TOOL_VERSION",
    "eval_unit_key",
    "fingerprint",
    "graph_fingerprint",
    "obligation_fingerprint",
    "program_fingerprint",
    "stimuli_fingerprint",
    "weak_sim_key",
    "ExecutorMetrics",
    "UnitMetric",
]
