"""Module-level worker functions the executor fans out.

Each worker takes only picklable keyword arguments and returns a plain
JSON-serialisable dict (the executor and the cache both require this), so
the same function runs identically in-process and in a pool worker.  The
three unit kinds mirror the serial entry points they wrap:

* :func:`eval_flow` — one (benchmark × flow) evaluation run
  (:func:`repro.eval.runner.run_flow`);
* :func:`discharge_rewrite` — one rewrite's refinement-obligation
  discharge (:meth:`repro.rewriting.engine.RewriteEngine.verify_rewrite`);
* :func:`check_obligation_certified` — the same discharge through the
  persistent-certificate fast path: stored certificates are re-validated
  (O(relation)) instead of re-searching, with per-instance provenance;
* :func:`check_graph_pair` — one weak-simulation check between two
  ExprHigh graphs (:func:`repro.refinement.checker.check_rewrite_obligation`);
* :func:`run_fuzz_case` — one differential fuzz case
  (:func:`repro.interop.corpus.run_fuzz_case`);
* :func:`cross_check_rewrite` — one rewrite's obligations decided by both
  the SAT oracle and the simulation game
  (:func:`repro.refinement.sat.cross_check_obligation`).

Environments are rebuilt inside the worker (they hold closures and are not
picklable); graphs and IR programs pickle directly.

Workers are instrumented like the serial entry points: each opens a span
(``flow:…``, ``verify:…``, ``weak-sim``) on whatever tracer is active in
its process.  In-process (serial) execution nests those spans under the
executor's unit span directly; in a pool worker the executor installs a
private recording tracer around the call and grafts the resulting subtree
back into the parent trace (see :func:`repro.exec.executor._call_unit`).
"""

from __future__ import annotations

import importlib
from time import perf_counter

from .. import obs


def eval_flow(*, name: str, flow: str, program=None, backend: str = "compiled") -> dict:
    """Run one benchmark under one flow; returns ``FlowResult.to_dict()``."""
    from ..eval.runner import run_flow

    with obs.span(f"flow:{flow}", benchmark=name, backend=backend) as sp:
        result = run_flow(name, flow, program=program, backend=backend)
        sp.set(cycles=result.cycles, correct=result.correct)
    return result.to_dict()


def discharge_rewrite(*, module: str, factory: str, kwargs: dict | None = None) -> dict:
    """Build a rewrite from its factory and discharge its obligation.

    The factory indirection (module + attribute + keyword arguments) keeps
    the unit picklable — rewrites themselves close over builder functions.
    """
    from ..errors import RefinementError
    from ..rewriting.engine import RewriteEngine

    rewrite = getattr(importlib.import_module(module), factory)(**(kwargs or {}))
    engine = RewriteEngine()
    start = perf_counter()
    with obs.span(f"verify:{rewrite.name}") as sp:
        try:
            engine.verify_rewrite(rewrite)
            holds, detail = True, ""
        except RefinementError as exc:
            holds, detail = False, str(exc)
        sp.set(holds=holds)
    return {
        "rewrite": rewrite.name,
        "verified_flag": bool(rewrite.verified),
        "holds": holds,
        "detail": detail,
        "seconds": perf_counter() - start,
    }


def check_obligation_certified(
    *,
    module: str,
    factory: str,
    kwargs: dict | None = None,
    cache_dir: str | None = None,
    executor=None,
) -> dict:
    """Discharge one rewrite's obligation through the certificate fast path.

    Unlike :func:`discharge_rewrite` (which caches only the verdict), every
    instance goes through
    :func:`repro.refinement.checker.check_rewrite_obligation` with a
    :class:`~repro.exec.cache.ResultCache` opened at *cache_dir*: a stored
    certificate is re-validated in one pass over its relation, and only on
    a miss (or a failed re-validation) is the simulation game solved from
    scratch.  The outcome dict records the per-instance provenance, so the
    caller can see whether the batch was searched, rechecked, or mixed.

    *executor* (parent-process use only — never set in a pool worker)
    shards each cold search's frontier expansion across the pool; see
    :meth:`repro.api.Session.check_obligations`.
    """
    from ..errors import RefinementError
    from ..refinement.checker import check_rewrite_obligation

    rewrite = getattr(importlib.import_module(module), factory)(**(kwargs or {}))
    if cache_dir:
        from pathlib import Path

        from .cache import ResultCache

        cache = ResultCache(Path(cache_dir))
    else:
        cache = None
    start = perf_counter()
    modes: list[str] = []
    hashes: list[str] = []
    holds, detail = True, ""
    with obs.span(f"obligation:{rewrite.name}", certified=True) as sp:
        if rewrite.obligation is None:
            holds, detail = False, f"rewrite {rewrite.name!r} has no obligation instances"
        else:
            for index, (lhs, rhs, env, stimuli) in enumerate(rewrite.obligation()):
                ref = None
                if executor is not None:
                    from ..refinement.sharded import obligation_ref

                    ref = obligation_ref(module, factory, kwargs, index)
                try:
                    report = check_rewrite_obligation(
                        lhs, rhs, env, stimuli, cache=cache,
                        executor=executor, sharded_ref=ref,
                    )
                except RefinementError as exc:
                    holds, detail = False, str(exc)
                    break
                modes.append(report.mode)
                hashes.append(report.certificate.content_hash())
        sp.set(holds=holds, modes=",".join(modes))
    mode = "none"
    if modes:
        mode = modes[0] if len(set(modes)) == 1 else "mixed"
    return {
        "rewrite": rewrite.name,
        "verified_flag": bool(rewrite.verified),
        "holds": holds,
        "mode": mode,
        "instances": len(modes),
        "certificate_hashes": hashes,
        "detail": detail,
        "seconds": perf_counter() - start,
    }


#: Per-process memo for sharded-search contexts: obligation recipe →
#: (impl, spec, stimuli, _GameCache).  Pool workers are long-lived, so the
#: modules are denoted once and the game cache's response sets amortise
#: across every frontier level the worker sees.
_FRONTIER_CONTEXTS: dict[str, tuple] = {}


def _frontier_context(ref: dict) -> tuple:
    import json

    from ..core.semantics import denote
    from ..refinement.checker import uniform_stimuli
    from ..refinement.simulation import _GameCache, _normalise_stimuli

    key = json.dumps(ref, sort_keys=True, default=repr)
    context = _FRONTIER_CONTEXTS.get(key)
    if context is None:
        rewrite = getattr(importlib.import_module(ref["module"]), ref["factory"])(
            **(ref.get("kwargs") or {})
        )
        instances = list(rewrite.obligation())
        lhs, rhs, env, stimuli = instances[int(ref["instance"])]
        impl = denote(rhs.lower(), env)
        spec = denote(lhs.lower(), env.with_capacity(ref.get("spec_capacity")))
        if stimuli is None:
            stimuli = uniform_stimuli(impl, tuple(ref.get("values", (0, 1))))
        stimuli = _normalise_stimuli(impl, stimuli)
        context = (impl, spec, stimuli, _GameCache(impl, spec, stimuli))
        _FRONTIER_CONTEXTS[key] = context
    return context


def expand_simulation_frontier(*, ref: dict, pairs: list) -> list:
    """Expand one shard of a sharded weak-simulation search's frontier.

    For each ``(impl_state, spec_state)`` pair, fires every implementation
    move and computes the spec's permitted responses for the matching
    diagram, returning plain state-level rows
    ``(kind, port, value, impl_successor, [spec_responses])`` with
    ``kind`` 0=input / 1=output / 2=internal.  The parent re-interns the
    states into its global position table (see
    :func:`repro.refinement.sharded.find_weak_simulation_sharded`).
    """
    impl, spec, stimuli, cache = _frontier_context(ref)
    out = []
    for impl_state, spec_state in pairs:
        sid = cache.impl_id(impl_state)
        tid = cache.spec_id(spec_state)
        inputs, outputs, internals = cache.impl_moves(sid)
        rows = []
        states = cache.spec_states
        for port, value, s_next in inputs:
            responses = [
                states[t] for t in cache.spec_input_responses(tid, port, value)
            ]
            rows.append((0, port, value, cache.impl_states[s_next], responses))
        for port, value, s_next in outputs:
            responses = [
                states[t] for t in cache.spec_output_responses(tid, port, value)
            ]
            rows.append((1, port, value, cache.impl_states[s_next], responses))
        closure = None
        for s_next in internals:
            if closure is None:
                closure = [states[t] for t in cache.closure(tid)]
            rows.append((2, None, None, cache.impl_states[s_next], closure))
        out.append(rows)
    return out


def run_fuzz_case(*, seed: int, backend: str = "compiled") -> dict:
    """Run one differential fuzz case; returns the corpus-manifest entry.

    A thin instrumented wrapper over
    :func:`repro.interop.corpus.run_fuzz_case` — the case itself is a pure
    function of ``(seed, backend)``, which is what makes its entry safe to
    serve from the content-addressed cache.
    """
    from ..interop.corpus import run_fuzz_case as run_case

    with obs.span("fuzz:case", seed=seed, backend=backend) as sp:
        entry = run_case(int(seed), backend=backend)
        sp.set(ok=entry["ok"], effectful=entry["effectful"])
    obs.count("interop.fuzz_cases")
    if not entry["ok"]:
        obs.count("interop.fuzz_failures")
    return entry


def cross_check_rewrite(
    *,
    module: str,
    factory: str,
    kwargs: dict | None = None,
    bound: int | None = None,
) -> dict:
    """Cross-check one rewrite's obligation: SAT oracle vs simulation game.

    Every obligation instance runs through
    :func:`repro.refinement.sat.cross_check_obligation`; a definitive
    disagreement between the two decision procedures is reported (not
    raised — the dict crosses the pool boundary) with both verdicts.
    """
    from ..errors import OracleDisagreement
    from ..refinement.sat import DEFAULT_BOUND, cross_check_obligation

    rewrite = getattr(importlib.import_module(module), factory)(**(kwargs or {}))
    bound = DEFAULT_BOUND if bound is None else int(bound)
    start = perf_counter()
    instances = []
    agreed, detail = True, ""
    with obs.span(f"sat-check:{rewrite.name}") as sp:
        if rewrite.obligation is None:
            agreed, detail = False, f"rewrite {rewrite.name!r} has no obligation instances"
        else:
            for index, (lhs, rhs, env, stimuli) in enumerate(rewrite.obligation()):
                try:
                    report = cross_check_obligation(
                        lhs, rhs, env, stimuli=stimuli, bound=bound
                    )
                except OracleDisagreement as exc:
                    agreed, detail = False, str(exc)
                    break
                instances.append(
                    {
                        "holds": bool(report.game_holds),
                        "sat_holds": bool(report.sat.holds),
                        "complete": bool(report.sat.complete),
                        "pairs": int(report.sat.pairs_explored),
                        "variables": int(report.sat.variables),
                        "clauses": int(report.sat.clauses),
                    }
                )
        sp.set(agreed=agreed, instances=len(instances))
    return {
        "rewrite": rewrite.name,
        "agreed": agreed,
        "holds": all(entry["holds"] for entry in instances) if instances else False,
        "instances": instances,
        "detail": detail,
        "seconds": perf_counter() - start,
    }


def check_graph_pair(
    *,
    lhs,
    rhs,
    capacity: int | None = 1,
    values: tuple = (0, 1),
    spec_capacity: int | None = 4,
) -> dict:
    """Check the weak-simulation obligation ``rhs ⊑ lhs`` for two graphs."""
    from ..components import default_environment
    from ..errors import RefinementError
    from ..refinement.checker import check_rewrite_obligation

    env = default_environment(capacity=capacity)
    try:
        report = check_rewrite_obligation(
            lhs, rhs, env, values=values, spec_capacity=spec_capacity
        )
    except RefinementError as exc:
        return {"holds": False, "detail": str(exc)}
    return {"holds": True, **report.to_dict()}
