"""Tests for the CMerge and Reorg components (Table 1 completeness)."""

import pytest

from repro.components import cmerge, default_environment, reorg
from repro.core.ports import IOPort
from repro.errors import SemanticsError


@pytest.fixture
def env():
    return default_environment(capacity=2)


class TestCMerge:
    def test_emits_value_then_index(self, env):
        module = env.lookup("CMerge")
        (state,) = module.init
        (state,) = module.inputs[IOPort(0)].fire(state, "left-token")
        outs = list(module.outputs[IOPort(0)].fire(state))
        assert len(outs) == 1
        value, state = outs[0]
        assert value == "left-token"
        index_outs = list(module.outputs[IOPort(1)].fire(state))
        assert index_outs[0][0] is True  # left side won

    def test_right_side_reports_false(self, env):
        module = env.lookup("CMerge")
        (state,) = module.init
        (state,) = module.inputs[IOPort(1)].fire(state, "right-token")
        value, state = next(iter(module.outputs[IOPort(0)].fire(state)))
        index, _ = next(iter(module.outputs[IOPort(1)].fire(state)))
        assert value == "right-token"
        assert index is False

    def test_index_gates_next_emission(self, env):
        """A second token cannot pass before the index token is consumed."""
        module = env.lookup("CMerge")
        (state,) = module.init
        (state,) = module.inputs[IOPort(0)].fire(state, "a")
        (state,) = module.inputs[IOPort(1)].fire(state, "b")
        _, state = next(iter(module.outputs[IOPort(0)].fire(state)))
        assert not list(module.outputs[IOPort(0)].fire(state))
        _, state = next(iter(module.outputs[IOPort(1)].fire(state)))
        assert list(module.outputs[IOPort(0)].fire(state))

    def test_nondeterministic_when_both_present(self, env):
        module = env.lookup("CMerge")
        (state,) = module.init
        (state,) = module.inputs[IOPort(0)].fire(state, "L")
        (state,) = module.inputs[IOPort(1)].fire(state, "R")
        values = {value for value, _ in module.outputs[IOPort(0)].fire(state)}
        assert values == {"L", "R"}


class TestReorg:
    def test_applies_shuffle(self, env):
        module = env.lookup("Reorg{fn=swap}")
        (state,) = module.init
        (state,) = module.inputs[IOPort(0)].fire(state, (1, 2))
        value, _ = next(iter(module.outputs[IOPort(0)].fire(state)))
        assert value == (2, 1)

    def test_assoc_shuffles(self, env):
        module = env.lookup("Reorg{fn=assocl}")
        (state,) = module.init
        (state,) = module.inputs[IOPort(0)].fire(state, (1, (2, 3)))
        value, _ = next(iter(module.outputs[IOPort(0)].fire(state)))
        assert value == ((1, 2), 3)

    def test_composed_shuffle(self, env):
        from repro.rewriting import algebra

        name = "comp(swap,assocr)"
        algebra.ensure(env, name)
        module = env.lookup(f"Reorg{{fn={name}}}")
        (state,) = module.init
        (state,) = module.inputs[IOPort(0)].fire(state, (1, (2, 3)))
        value, _ = next(iter(module.outputs[IOPort(0)].fire(state)))
        assert value == (2, (3, 1))

    def test_computation_rejected(self, env):
        with pytest.raises(SemanticsError):
            env.lookup("Reorg{fn=incr}")

    def test_is_shuffle_classifier(self):
        from repro.rewriting.algebra import is_shuffle

        assert is_shuffle("swap")
        assert is_shuffle("comp(assocl,first(swap))")
        assert is_shuffle("par(fst,snd)")
        assert not is_shuffle("incr")
        assert not is_shuffle("comp(swap,incr)")
        assert not is_shuffle("tup(mod)")
