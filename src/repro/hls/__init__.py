"""HLS substrates: mini-IR, front ends, baselines, technology model."""

from .area import AreaReport, analyze, latency_of
from .buffers import BufferPlacement, place_buffers
from .frontend import CompiledKernel, CompiledProgram, LoopMark, compile_kernel, compile_program
from .ir import (
    BinOp,
    Const,
    DoWhile,
    ExecutionTrace,
    Kernel,
    Load,
    OuterLoop,
    Program,
    Select,
    StoreOp,
    UnOp,
    Var,
    eval_expr,
    run_program,
)
from .ooo import transform_out_of_order
from .static_sched import StaticScheduleReport, schedule_length, schedule_program

__all__ = [
    "AreaReport",
    "analyze",
    "latency_of",
    "BufferPlacement",
    "place_buffers",
    "CompiledKernel",
    "CompiledProgram",
    "LoopMark",
    "compile_kernel",
    "compile_program",
    "BinOp",
    "Const",
    "DoWhile",
    "ExecutionTrace",
    "Kernel",
    "Load",
    "OuterLoop",
    "Program",
    "Select",
    "StoreOp",
    "UnOp",
    "Var",
    "eval_expr",
    "run_program",
    "transform_out_of_order",
    "StaticScheduleReport",
    "schedule_length",
    "schedule_program",
]
