"""Heuristic buffer placement (the Gurobi/MILP substitute).

Dynamatic sizes and places buffers by solving an MILP; the paper uses the
modified strategy of Josipović et al. to avoid deadlocks in tagged circuits.
This pass reproduces what the evaluation needs:

* every channel has one slot by default (registered hop);
* loop-back channels (edges that close a cycle) get a second slot so a loop
  iteration can commit while the next is issued;
* channels inside a tagged region are widened so up to ``tags`` loop
  instances can be in flight — the extra-parallelism buffering the paper
  charges to the tagged circuits' area (Table 3).

Returns the per-edge capacity map for the cycle simulator plus the number
of *extra* slots added (for the area model).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exprhigh import Endpoint, ExprHigh

Edge = tuple[Endpoint, Endpoint]


@dataclass
class BufferPlacement:
    capacities: dict[Edge, int]
    extra_slots: int


def place_buffers(graph: ExprHigh, tags: int | None = None) -> BufferPlacement:
    """Compute channel capacities for *graph*.

    *tags* widens tagged-region channels; pass the loop's tag count for
    transformed circuits and ``None`` for in-order ones.
    """
    capacities: dict[Edge, int] = {}
    extra = 0

    back_edges = _back_edges(graph)
    tagged_nodes = set(graph.nodes_of_type("Merge"))
    tagged_nodes.update(
        name for name, spec in graph.nodes.items() if spec.param("tagged")
    )

    for dst, src in graph.connections.items():
        edge = (src, dst)
        # Two slots per channel by default: the opaque+transparent buffer
        # pair Dynamatic inserts so handshake back-pressure does not insert
        # a bubble on every hop.  The pair's registers are part of each
        # component's base FF cost; only slots beyond it count as extra.
        slots = 2
        if (src.node, dst.node) in back_edges:
            slots = 3  # loop-back channels get an extra slot of slack
        if tags and (src.node in tagged_nodes or dst.node in tagged_nodes):
            # Tagged-region channels double as aligner windows: with up to
            # ``tags`` loop instances in flight, independently merging
            # variable paths can drift by the full tag budget, so the
            # window must cover it to stay deadlock-free (the modified
            # buffer-placement strategy the paper adopts from Elakhras et
            # al.).  The storage is charged to the Tagger's per-tag area,
            # not per channel slot, so only a bounded share counts here.
            slots = max(slots, tags)
            extra += min(slots, 4) - 2
        else:
            extra += slots - 2
        capacities[edge] = slots
    return BufferPlacement(capacities=capacities, extra_slots=extra)


def _back_edges(graph: ExprHigh) -> set[tuple[str, str]]:
    """Edges that close a cycle, found via DFS over a deterministic order.

    Walks the graph's per-node successor index directly; distinct successor
    names in sorted order give the same traversal the old materialised
    digraph produced.
    """
    back: set[tuple[str, str]] = set()
    seen: set[str] = set()
    stack: set[str] = set()

    def visit(node: str) -> None:
        seen.add(node)
        stack.add(node)
        for succ in sorted({succ for succ, _, _ in graph.successors(node)}):
            if succ in stack:
                back.add((node, succ))
            elif succ not in seen:
                visit(succ)
        stack.discard(node)

    for node in sorted(graph.nodes):
        if node not in seen:
            visit(node)
    return back
