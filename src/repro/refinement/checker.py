"""High-level refinement checking over graphs and rewrites.

This module turns the low-level simulation machinery into the API the rest
of the library uses:

* :func:`check_refinement` — ``impl ⊑ spec`` for two modules;
* :func:`check_graph_refinement` — the same for two ExprHigh graphs,
  denoted in a given environment (definition 4.5 instantiated on graphs);
* :func:`check_rewrite_obligation` — discharge a rewrite's ``rhs ⊑ lhs``
  obligation on a bounded instance, the executable stand-in for the Lean
  proof that theorem 4.6 then propagates to whole graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .. import obs
from ..core.environment import Environment
from ..core.exprhigh import ExprHigh
from ..core.module import Module, Value
from ..core.ports import IOPort, Port
from ..core.semantics import denote
from ..errors import RefinementError
from .simulation import SimulationCertificate, SimulationResult, find_weak_simulation

Stimuli = Mapping[Port, Iterable[Value]]


@dataclass
class RefinementReport:
    """A successful refinement check with its witness and statistics."""

    certificate: SimulationCertificate

    @property
    def impl_states(self) -> int:
        return self.certificate.impl_states

    @property
    def spec_states(self) -> int:
        return self.certificate.spec_states

    # -- result protocol (repro.results) ------------------------------------

    def to_dict(self) -> dict:
        return {
            "kind": "RefinementReport",
            "holds": True,  # a report only exists for a successful check
            "impl_states": int(self.impl_states),
            "spec_states": int(self.spec_states),
        }

    def summary(self) -> str:
        return (
            f"refinement holds ({self.impl_states} impl states, "
            f"{self.spec_states} spec states)"
        )


def check_refinement(impl: Module, spec: Module, stimuli: Stimuli) -> RefinementReport:
    """Check ``impl ⊑ spec``; raises :class:`RefinementError` on failure."""
    with obs.span("refine:weak-sim") as sp:
        result: SimulationResult = find_weak_simulation(impl, spec, stimuli)
        sp.set(holds=result.holds)
        if result.certificate is not None:
            sp.set(
                impl_states=result.certificate.impl_states,
                spec_states=result.certificate.spec_states,
            )
    obs.count("refinement.weak_sim_checks")
    return RefinementReport(result.raise_on_failure())


def refines(impl: Module, spec: Module, stimuli: Stimuli) -> bool:
    """Boolean form of :func:`check_refinement`."""
    return find_weak_simulation(impl, spec, stimuli).holds


def check_graph_refinement(
    impl: ExprHigh,
    spec: ExprHigh,
    env: Environment,
    stimuli: Stimuli,
) -> RefinementReport:
    """Check ⟦impl⟧ε ⊑ ⟦spec⟧ε for two ExprHigh graphs."""
    impl_module = denote(impl.lower(), env)
    spec_module = denote(spec.lower(), env)
    return check_refinement(impl_module, spec_module, stimuli)


def uniform_stimuli(module: Module, values: Iterable[Value]) -> dict[Port, tuple[Value, ...]]:
    """Offer the same finite value set on every input port of *module*."""
    values = tuple(values)
    return {port: values for port in module.input_ports()}


def io_stimuli(values_per_port: Mapping[int, Iterable[Value]]) -> dict[Port, tuple[Value, ...]]:
    """Build stimuli keyed by I/O port index."""
    return {IOPort(index): tuple(values) for index, values in values_per_port.items()}


def check_rewrite_obligation(
    lhs: ExprHigh,
    rhs: ExprHigh,
    env: Environment,
    stimuli: Stimuli | None = None,
    values: Iterable[Value] = (0, 1),
    spec_capacity: int | None = 4,
) -> RefinementReport:
    """Discharge the ``rhs ⊑ lhs`` obligation of a rewrite on a bounded instance.

    The rewriting function is correctness-preserving whenever the right-hand
    side refines the left-hand side (theorem 4.6); this function checks that
    premise.  When *stimuli* is omitted, the value set *values* is offered
    uniformly on every input.

    The rhs (implementation) is denoted in *env*, whose queue capacities
    bound the explored state space; the lhs (specification) is denoted with
    the larger *spec_capacity*, approximating the paper's unbounded-queue
    semantics.  The spec must be roomier than the impl so that extra
    buffering introduced by a rewrite does not register as a spurious
    input-refusal counterexample; it must stay bounded because components
    that discard tokens (Sinks) would otherwise give the simulation game
    unboundedly many partially-drained spec states.
    """
    rhs_module = denote(rhs.lower(), env)
    lhs_module = denote(lhs.lower(), env.with_capacity(spec_capacity))
    if stimuli is None:
        stimuli = uniform_stimuli(rhs_module, values)
    with obs.span("refine:weak-sim", obligation=True) as sp:
        result = find_weak_simulation(rhs_module, lhs_module, stimuli)
        sp.set(holds=result.holds)
        if result.certificate is not None:
            sp.set(
                impl_states=result.certificate.impl_states,
                spec_states=result.certificate.spec_states,
            )
    obs.count("refinement.weak_sim_checks")
    if not result.holds:
        raise RefinementError(
            f"rewrite obligation rhs ⊑ lhs failed: {result.violation}",
            counterexample=result.violation,
        )
    return RefinementReport(result.certificate)  # type: ignore[arg-type]


def check_rewrite_obligation_traces(
    lhs: ExprHigh,
    rhs: ExprHigh,
    env: Environment,
    stimuli: Stimuli,
    depth: int = 4,
    spec_capacity: int | None = 4,
) -> None:
    """Cross-validate an obligation through the trace semantics.

    Refinement implies trace inclusion (section 4.4), so every rhs trace of
    bounded length must be an lhs trace.  This is an independent check of
    the simulation game — slower (trace enumeration is exponential in
    *depth*) but conceptually simpler, which is exactly what makes it a
    good oracle for the checker itself.
    """
    from .traces import trace_inclusion

    rhs_module = denote(rhs.lower(), env)
    lhs_module = denote(lhs.lower(), env.with_capacity(spec_capacity))
    witness = trace_inclusion(rhs_module, lhs_module, stimuli, depth)
    if witness is not None:
        raise RefinementError(
            f"rhs trace not reproducible by lhs: {witness}", counterexample=witness
        )
