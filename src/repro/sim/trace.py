"""Firing traces: the figure 2d/2e execution-trace view.

The paper illustrates the in-order vs out-of-order difference with traces
showing when the (pipelined) modulo unit is busy: sparse one-at-a-time
pulses in the sequential circuit (fig. 2d) versus back-to-back occupancy in
the tagged circuit (fig. 2e).  :class:`FiringTrace` records every component
firing during a cycle simulation, and :func:`render_timeline` draws the
ASCII version of those figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass(frozen=True)
class FiringEvent:
    node: str
    cycle: int
    latency: int


@dataclass
class FiringTrace:
    """All component firings of one simulation run."""

    events: list[FiringEvent] = field(default_factory=list)

    def record(self, node: str, cycle: int, latency: int) -> None:
        self.events.append(FiringEvent(node, cycle, max(1, latency)))

    def nodes(self) -> list[str]:
        return sorted({event.node for event in self.events})

    def firings(self, node: str) -> list[FiringEvent]:
        return [event for event in self.events if event.node == node]

    def busy_cycles(self, node: str) -> set[int]:
        """Every cycle during which *node* holds at least one token."""
        busy: set[int] = set()
        for event in self.firings(node):
            busy.update(range(event.cycle, event.cycle + event.latency))
        return busy

    def utilization(self, node: str, total_cycles: int) -> float:
        """Fraction of the run during which *node* was busy."""
        if total_cycles <= 0:
            return 0.0
        return len(self.busy_cycles(node)) / total_cycles

    def initiation_intervals(self, node: str) -> list[int]:
        """Gaps between consecutive firings — the measured II."""
        cycles = sorted(event.cycle for event in self.firings(node))
        return [b - a for a, b in zip(cycles, cycles[1:])]


def render_timeline(
    trace: FiringTrace,
    nodes: Iterable[str],
    start: int = 0,
    end: int | None = None,
    width: int = 72,
    labels: Mapping[str, str] | None = None,
    initiations_only: bool = False,
) -> str:
    """Draw busy/idle timelines, one row per node (the fig. 2d/2e view).

    Each column covers ``max(1, span // width)`` cycles; a column is drawn
    as ``█`` when the node is busy in any covered cycle, ``·`` otherwise.
    With *initiations_only* only the firing cycles are marked — the view the
    paper's figures use, which makes the initiation interval visible even
    for deeply pipelined units.
    """
    nodes = list(nodes)
    labels = dict(labels or {})
    if end is None:
        end = max((e.cycle + e.latency for e in trace.events), default=1)
    span = max(1, end - start)
    per_column = max(1, span // width)
    columns = (span + per_column - 1) // per_column

    lines = [f"cycles {start}..{end} ({per_column} per column)"]
    for node in nodes:
        if initiations_only:
            busy = {event.cycle for event in trace.firings(node)}
        else:
            busy = trace.busy_cycles(node)
        cells = []
        for column in range(columns):
            lo = start + column * per_column
            hi = lo + per_column
            cells.append("█" if any(c in busy for c in range(lo, hi)) else "·")
        label = labels.get(node, node)
        lines.append(f"{label:>14s} |{''.join(cells)}|")
    return "\n".join(lines)


def compare_utilization(
    traces: Mapping[str, tuple[FiringTrace, int]],
    node_of: Mapping[str, str],
) -> dict[str, float]:
    """Per-flow utilization of a chosen node (e.g. the modulo unit)."""
    return {
        flow: trace.utilization(node_of[flow], cycles)
        for flow, (trace, cycles) in traces.items()
    }
