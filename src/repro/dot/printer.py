"""Printer emitting the dot dialect accepted by :mod:`repro.dot.parser`."""

from __future__ import annotations

from ..core.exprhigh import ExprHigh
from ..core.types import Type


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return '"true"' if value else '"false"'
    if isinstance(value, (int, float)):
        return f'"{value}"'
    if isinstance(value, Type):
        return f'"{value}"'
    return f'"{value}"'


def print_dot(graph: ExprHigh, name: str = "G") -> str:
    """Render *graph* as dot text that parses back to an equal graph."""
    lines = [f"Digraph {name} {{"]
    for node_name in sorted(graph.nodes):
        spec = graph.nodes[node_name]
        attrs = [f'type = "{spec.typ}"']
        attrs.append(f'in = "{" ".join(spec.in_ports)}"')
        attrs.append(f'out = "{" ".join(spec.out_ports)}"')
        for key, value in spec.params:
            # The data-type parameter is spelled 'dtype' in dot because
            # 'type' already names the component type attribute.
            attr_key = "dtype" if key == "type" else key
            attrs.append(f"{attr_key} = {_format_value(value)}")
        lines.append(f'  "{node_name}" [{", ".join(attrs)}];')

    for index in sorted(graph.inputs):
        lines.append(f'  "_in{index}" [type = "Input", index = "{index}"];')
    for index in sorted(graph.outputs):
        lines.append(f'  "_out{index}" [type = "Output", index = "{index}"];')

    for dst, src in graph.sorted_connections():
        lines.append(
            f'  "{src.node}" -> "{dst.node}" [from = "{src.port}", to = "{dst.port}"];'
        )
    for index in sorted(graph.inputs):
        endpoint = graph.inputs[index]
        lines.append(f'  "_in{index}" -> "{endpoint.node}" [to = "{endpoint.port}"];')
    for index in sorted(graph.outputs):
        endpoint = graph.outputs[index]
        lines.append(f'  "{endpoint.node}" -> "_out{index}" [from = "{endpoint.port}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
