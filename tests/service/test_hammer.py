"""The concurrency hammer: >=100 mixed jobs against one server.

Asserts the three service guarantees under saturation:

* **determinism** — every result returned over HTTP is byte-identical to
  the same call made on an in-process Session (deduped, coalesced and
  freshly computed submissions alike);
* **metric isolation** — each job's request-scoped counters reflect only
  its own work: concurrent verify jobs all report the same
  ``refinement.weak_sim_checks`` count, and simulate jobs report none;
* **clean cancellation** — jobs cancelled while the pool is saturated end
  ``cancelled`` without poisoning the queue for later jobs.
"""

import json
import random
from concurrent.futures import ThreadPoolExecutor

from repro import Session
from repro.benchmarks import load_benchmark
from repro.hls.frontend import compile_program
from repro.service.ops import run_op

SIM_KERNELS = ("matvec", "mvt", "gsum-single", "bicg")
TRANSFORM_KERNELS = ("matvec", "mvt")


def _expected_results():
    """Ground truth: the same ops on one in-process, uncached Session."""
    expected = {}
    with Session(use_cache=False) as session:
        for name in SIM_KERNELS:
            expected[("simulate", name)] = run_op(
                session, "simulate",
                {"backend": "compiled", "flow": "DF-IO", "kernel": name},
            )
        for name in TRANSFORM_KERNELS:
            expected[("transform", name)] = run_op(
                session, "transform", {"kernel": name, "strategy": "fixpoint"}
            )
        expected[("bench", "matvec")] = run_op(session, "bench", {"name": "matvec"})
    return expected


def test_hammer_mixed_concurrent_jobs(make_server):
    server, client = make_server(workers=4)
    expected = _expected_results()

    submissions = []
    for repeat in range(10):
        for name in SIM_KERNELS:
            submissions.append(("simulate", {"kernel": name, "flow": "DF-IO"}, True))
    for repeat in range(20):
        for name in TRANSFORM_KERNELS:
            submissions.append(("transform", {"kernel": name}, True))
    for name in SIM_KERNELS:
        for repeat in range(3):
            submissions.append(("simulate", {"kernel": name, "flow": "DF-IO"}, False))
    submissions.extend([("bench", {"name": "matvec"}, True)] * 8)
    assert len(submissions) >= 100
    random.Random(7).shuffle(submissions)

    def drive(entry):
        kind, params, dedup = entry
        result = client.run(kind, params, dedup=dedup)
        key = (kind, params.get("kernel") or params.get("name"))
        return key, json.dumps(result, sort_keys=True)

    with ThreadPoolExecutor(max_workers=64) as pool:
        outcomes = list(pool.map(drive, submissions))

    assert len(outcomes) == len(submissions)
    for key, payload in outcomes:
        assert payload == json.dumps(expected[key], sort_keys=True), (
            f"service result for {key} diverged from in-process Session"
        )

    # dedup did real work: coalescing collapsed duplicate submissions onto
    # shared job records, and repeats were answered from the store
    metrics = client.metrics()
    assert metrics["jobs"]["done"] < len(submissions)
    assert metrics["jobs"]["done"] >= len(expected)  # every unique key ran
    assert metrics["store"]["hits"] > 0
    assert metrics["jobs"]["failed"] == 0


def test_no_cross_job_metric_bleed(make_server):
    # uncached server: every job recomputes, so per-job counters are exact
    _, client = make_server(workers=4, use_cache=False)

    def verify_job(_):
        job = client.submit("verify", {"rules": ["mux_combine"]}, dedup=False)
        return client.wait(job["id"])

    def simulate_job(_):
        job = client.submit(
            "simulate", {"kernel": "matvec", "flow": "DF-IO"}, dedup=False
        )
        return client.wait(job["id"])

    with ThreadPoolExecutor(max_workers=16) as pool:
        verifies = pool.map(verify_job, range(6))
        simulates = pool.map(simulate_job, range(6))
        verify_finals = list(verifies)
        simulate_finals = list(simulates)

    weak_sim_counts = {
        final["metrics"]["counters"].get("refinement.weak_sim_checks", 0)
        for final in verify_finals
    }
    assert len(weak_sim_counts) == 1, (
        f"concurrent verify jobs saw different counters: {weak_sim_counts}"
    )
    assert weak_sim_counts.pop() >= 1

    for final in simulate_finals:
        counters = final["metrics"]["counters"]
        assert counters.get("refinement.weak_sim_checks", 0) == 0, (
            "a simulate job absorbed a concurrent verify job's counters"
        )


def test_cancellation_under_saturation(make_server):
    server, client = make_server(workers=2)
    # saturate both workers plus the queue with slow, non-deduped work
    held = [client.submit("bench", {"name": "gemm"}, dedup=False) for _ in range(4)]
    victims = [
        client.submit("simulate", {"kernel": "mvt", "flow": "DF-IO"},
                      dedup=False, priority=9)
        for _ in range(6)
    ]
    for victim in victims:
        client.cancel(victim["id"])
    finals = [client.wait(victim["id"]) for victim in victims]
    assert all(final["state"] == "cancelled" for final in finals)
    assert all("result" not in final for final in finals)

    # the queue survives: fresh work still completes normally
    after = client.run("simulate", {"kernel": "matvec", "flow": "DF-IO"})
    assert after["kind"] == "SimStats" and after["cycles"] > 0
    for job in held:
        client.wait(job["id"])
