"""Behavioural tests for every library component's module semantics."""

import pytest

from repro.components import default_environment
from repro.core.encoding import encode_component
from repro.core.module import Module
from repro.core.ports import IOPort


@pytest.fixture
def env():
    return default_environment(capacity=3)


def feed(module: Module, state, port: int, value):
    results = list(module.inputs[IOPort(port)].fire(state, value))
    assert results, f"input {port} refused value {value!r}"
    assert len(results) == 1
    return results[0]


def outputs_of(module: Module, state, port: int):
    return list(module.outputs[IOPort(port)].fire(state))


def drain_one(module: Module, state, port: int):
    out = outputs_of(module, state, port)
    assert out, f"output {port} had nothing to emit"
    assert len(out) == 1
    return out[0]


class TestFork:
    def test_duplicates_to_all_outputs(self, env):
        fork = env.lookup("Fork{n=3}")
        (state,) = fork.init
        state = feed(fork, state, 0, 42)
        for port in range(3):
            value, _ = drain_one(fork, state, port)
            assert value == 42

    def test_outputs_drain_independently(self, env):
        fork = env.lookup("Fork{n=2}")
        (state,) = fork.init
        state = feed(fork, state, 0, 1)
        _, state = drain_one(fork, state, 0)
        assert not outputs_of(fork, state, 0)
        value, _ = drain_one(fork, state, 1)
        assert value == 1

    def test_backpressure_refuses_when_full(self, env):
        fork = env.lookup("Fork{n=2}")
        (state,) = fork.init
        for v in range(3):
            state = feed(fork, state, 0, v)
        assert not list(fork.inputs[IOPort(0)].fire(state, 99))


class TestJoin:
    def test_synchronises_into_tuple(self, env):
        join = env.lookup("Join")
        (state,) = join.init
        state = feed(join, state, 0, "left")
        assert not outputs_of(join, state, 0), "join must wait for both inputs"
        state = feed(join, state, 1, "right")
        value, _ = drain_one(join, state, 0)
        assert value == ("left", "right")

    def test_fifo_pairing(self, env):
        join = env.lookup("Join")
        (state,) = join.init
        for v in (1, 2):
            state = feed(join, state, 0, v)
        for v in ("a", "b"):
            state = feed(join, state, 1, v)
        value, state = drain_one(join, state, 0)
        assert value == (1, "a")
        value, _ = drain_one(join, state, 0)
        assert value == (2, "b")


class TestSplit:
    def test_destructures_tuple(self, env):
        split = env.lookup("Split")
        (state,) = split.init
        state = feed(split, state, 0, (7, True))
        left, _ = drain_one(split, state, 0)
        right, _ = drain_one(split, state, 1)
        assert (left, right) == (7, True)

    def test_tagged_split_propagates_tag(self, env):
        split = env.lookup("Split{tagged=true}")
        (state,) = split.init
        state = feed(split, state, 0, (3, (7, True)))
        left, _ = drain_one(split, state, 0)
        right, _ = drain_one(split, state, 1)
        assert left == (3, 7)
        assert right == (3, True)


class TestMux:
    def test_true_selects_first_input(self, env):
        mux = env.lookup("Mux")
        (state,) = mux.init
        state = feed(mux, state, 0, True)
        state = feed(mux, state, 1, "T")
        state = feed(mux, state, 2, "F")
        value, _ = drain_one(mux, state, 0)
        assert value == "T"

    def test_false_selects_second_input(self, env):
        mux = env.lookup("Mux")
        (state,) = mux.init
        state = feed(mux, state, 0, False)
        state = feed(mux, state, 2, "F")
        value, _ = drain_one(mux, state, 0)
        assert value == "F"

    def test_waits_for_selected_side(self, env):
        mux = env.lookup("Mux")
        (state,) = mux.init
        state = feed(mux, state, 0, True)
        state = feed(mux, state, 2, "F")
        assert not outputs_of(mux, state, 0)


class TestBranch:
    def test_true_goes_to_out0(self, env):
        branch = env.lookup("Branch")
        (state,) = branch.init
        state = feed(branch, state, 0, True)
        state = feed(branch, state, 1, 5)
        assert drain_one(branch, state, 0)[0] == 5
        assert not outputs_of(branch, state, 1)

    def test_false_goes_to_out1(self, env):
        branch = env.lookup("Branch")
        (state,) = branch.init
        state = feed(branch, state, 0, False)
        state = feed(branch, state, 1, 5)
        assert drain_one(branch, state, 1)[0] == 5
        assert not outputs_of(branch, state, 0)

    def test_tagged_branch_reads_bool_from_pair(self, env):
        branch = env.lookup("Branch{tagged=true}")
        (state,) = branch.init
        state = feed(branch, state, 0, (2, False))
        state = feed(branch, state, 1, (2, 99))
        assert drain_one(branch, state, 1)[0] == (2, 99)


class TestMerge:
    def test_single_side_deterministic(self, env):
        merge = env.lookup("Merge")
        (state,) = merge.init
        state = feed(merge, state, 0, "x")
        assert drain_one(merge, state, 0)[0] == "x"

    def test_both_sides_nondeterministic(self, env):
        merge = env.lookup("Merge")
        (state,) = merge.init
        state = feed(merge, state, 0, "left")
        state = feed(merge, state, 1, "right")
        emitted = {value for value, _ in outputs_of(merge, state, 0)}
        assert emitted == {"left", "right"}


class TestInit:
    def test_starts_with_initial_token(self, env):
        init = env.lookup("Init{value=false}")
        (state,) = init.init
        value, state = drain_one(init, state, 0)
        assert value is False
        assert not outputs_of(init, state, 0)

    def test_behaves_like_queue_after(self, env):
        init = env.lookup("Init{value=false}")
        (state,) = init.init
        _, state = drain_one(init, state, 0)
        state = feed(init, state, 0, True)
        assert drain_one(init, state, 0)[0] is True


class TestOperator:
    def test_applies_function(self, env):
        mod = env.lookup(encode_component("Operator", {"op": "mod"}))
        (state,) = mod.init
        state = feed(mod, state, 0, 10)
        state = feed(mod, state, 1, 4)
        assert drain_one(mod, state, 0)[0] == 2

    def test_waits_for_all_arguments(self, env):
        mod = env.lookup("Operator{op=mod}")
        (state,) = mod.init
        state = feed(mod, state, 0, 10)
        assert not outputs_of(mod, state, 0)

    def test_tagged_operator_keeps_tag(self, env):
        add = env.lookup("Operator{op=add;tagged=true}")
        (state,) = add.init
        state = feed(add, state, 0, (5, 1))
        state = feed(add, state, 1, (5, 2))
        assert drain_one(add, state, 0)[0] == (5, 3)


class TestPure:
    def test_applies_unary_function(self, env):
        pure = env.lookup("Pure{fn=incr}")
        (state,) = pure.init
        state = feed(pure, state, 0, 41)
        assert drain_one(pure, state, 0)[0] == 42

    def test_tagged_pure_maps_over_value(self, env):
        pure = env.lookup("Pure{fn=incr;tagged=true}")
        (state,) = pure.init
        state = feed(pure, state, 0, (9, 41))
        assert drain_one(pure, state, 0)[0] == (9, 42)

    def test_gcd_step_function(self, env):
        pure = env.lookup("Pure{fn=gcd_step}")
        (state,) = pure.init
        state = feed(pure, state, 0, (12, 8))
        value, _ = drain_one(pure, state, 0)
        assert value == ((8, 4), True)


class TestConstantAndSink:
    def test_constant_emits_per_trigger(self, env):
        const = env.lookup("Constant{value=7}")
        (state,) = const.init
        assert not outputs_of(const, state, 0)
        state = feed(const, state, 0, ())
        assert drain_one(const, state, 0)[0] == 7

    def test_sink_always_accepts(self, env):
        sink = env.lookup("Sink")
        (state,) = sink.init
        for v in range(10):
            state = feed(sink, state, 0, v)


class TestTagger:
    def test_tags_in_allocation_order(self, env):
        tagger = env.lookup("Tagger{tags=2}")
        (state,) = tagger.init
        state = feed(tagger, state, 0, "a")
        state = feed(tagger, state, 0, "b")
        first_tagged, state = drain_one(tagger, state, 0)
        second_tagged, state = drain_one(tagger, state, 0)
        assert first_tagged == (0, "a")
        assert second_tagged == (1, "b")

    def test_refuses_when_out_of_tags(self, env):
        tagger = env.lookup("Tagger{tags=1}")
        (state,) = tagger.init
        state = feed(tagger, state, 0, "a")
        assert not list(tagger.inputs[IOPort(0)].fire(state, "b"))

    def test_reorders_out_of_order_completions(self, env):
        tagger = env.lookup("Tagger{tags=2}")
        (state,) = tagger.init
        state = feed(tagger, state, 0, "a")
        state = feed(tagger, state, 0, "b")
        _, state = drain_one(tagger, state, 0)
        _, state = drain_one(tagger, state, 0)
        # Tag 1 ("b") finishes before tag 0 ("a").
        state = feed(tagger, state, 1, (1, "B"))
        assert not outputs_of(tagger, state, 1), "must hold younger result"
        state = feed(tagger, state, 1, (0, "A"))
        value, state = drain_one(tagger, state, 1)
        assert value == "A"
        value, state = drain_one(tagger, state, 1)
        assert value == "B"

    def test_tag_reuse_after_release(self, env):
        tagger = env.lookup("Tagger{tags=1}")
        (state,) = tagger.init
        state = feed(tagger, state, 0, "a")
        _, state = drain_one(tagger, state, 0)
        state = feed(tagger, state, 1, (0, "A"))
        _, state = drain_one(tagger, state, 1)
        state = feed(tagger, state, 0, "b")
        assert drain_one(tagger, state, 0)[0] == (0, "b")

    def test_unknown_tag_refused(self, env):
        tagger = env.lookup("Tagger{tags=2}")
        (state,) = tagger.init
        assert not list(tagger.inputs[IOPort(1)].fire(state, (1, "x")))


class TestStore:
    def test_records_write_history_in_order(self, env):
        store = env.lookup("Store")
        (state,) = store.init
        state = feed(store, state, 0, 100)
        state = feed(store, state, 1, "v0")
        (state,) = store.internal_steps(state)
        state = feed(store, state, 0, 104)
        state = feed(store, state, 1, "v1")
        (state,) = store.internal_steps(state)
        from repro.components import store_history

        assert store_history(state) == ((100, "v0"), (104, "v1"))

    def test_emits_completion_token(self, env):
        store = env.lookup("Store")
        (state,) = store.init
        state = feed(store, state, 0, 0)
        state = feed(store, state, 1, 1)
        (state,) = store.internal_steps(state)
        assert drain_one(store, state, 0)[0] == ()
