#!/usr/bin/env python3
"""Fail on broken intra-doc markdown links.

The docs cross-reference each other heavily (``[api.md](api.md#methods)``,
``[docs/interop.md](docs/interop.md)`` …), and a renamed heading or moved
file silently strands readers.  CI runs this tool over every tracked
markdown file and fails when a relative link points at a missing file or
a heading anchor that no longer exists.

Checked: inline links ``[text](target)`` whose target is a relative path
(optionally ``#anchor``) or a bare ``#anchor`` into the same file.
Ignored: absolute URLs (``http://``, ``https://``, ``mailto:`` — this
tool runs offline), targets inside fenced code blocks, and reference
definitions.

Anchors follow the GitHub slugger: lowercase, punctuation stripped,
spaces to hyphens, duplicate slugs suffixed ``-1``, ``-2`` ….

Usage::

    python tools/check_doc_links.py                 # README.md, *.md, docs/*.md
    python tools/check_doc_links.py docs/api.md     # specific files
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_LINK = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(?P<title>.+?)\s*#*\s*$")
_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def slugify(title: str) -> str:
    """The GitHub heading slug: lowercase, drop punctuation, spaces→hyphens."""
    # strip inline code/emphasis markers and links before slugging
    title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)
    title = title.replace("`", "").replace("*", "").replace("_", " ").strip()
    slug = []
    for ch in title.lower():
        if ch.isalnum():
            slug.append(ch)
        elif ch in (" ", "-"):
            slug.append("-")
        # other punctuation is dropped
    return "".join(slug).replace(" ", "-")


def strip_fences(text: str) -> str:
    """Blank out fenced code blocks so their contents are never parsed."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            out.append("")
        else:
            out.append("" if in_fence else line)
    return "\n".join(out)


def anchors_of(path: Path) -> set[str]:
    """Every heading anchor a markdown file defines (with -N dedup)."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    for line in strip_fences(path.read_text(encoding="utf-8")).splitlines():
        match = _HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group("title"))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def iter_links(text: str):
    """Yield ``(line_number, target)`` for every checkable inline link."""
    for lineno, line in enumerate(strip_fences(text).splitlines(), start=1):
        line = re.sub(r"`[^`]*`", "", line)  # inline code spans are not links
        for match in _LINK.finditer(line):
            target = match.group("target")
            if target.startswith(_SCHEMES):
                continue
            yield lineno, target


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    """All broken links in one markdown file, as ``file:line: message``."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for lineno, target in iter_links(text):
        file_part, _, anchor = target.partition("#")
        if file_part:
            dest = (path.parent / file_part).resolve()
            if not dest.exists():
                problems.append(f"{path}:{lineno}: broken link: {target!r} "
                                f"(no such file {file_part!r})")
                continue
        else:
            dest = path.resolve()  # bare #anchor into the same file
        if anchor:
            if dest.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into non-markdown files are not ours to judge
            if dest not in anchor_cache:
                anchor_cache[dest] = anchors_of(dest)
            if anchor.lower() not in anchor_cache[dest]:
                problems.append(f"{path}:{lineno}: broken anchor: {target!r} "
                                f"(no heading slugs to {anchor!r} in {dest.name})")
    return problems


def default_paths() -> list[Path]:
    paths = sorted(REPO_ROOT.glob("*.md")) + sorted((REPO_ROOT / "docs").glob("*.md"))
    return [p for p in paths if p.is_file()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="markdown files to check (default: *.md and docs/*.md)",
    )
    args = parser.parse_args(argv)

    paths = args.paths or default_paths()
    anchor_cache: dict[Path, set[str]] = {}
    problems: list[str] = []
    checked = 0
    for path in paths:
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
        problems.extend(check_file(path, anchor_cache))
        checked += 1

    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{checked} files checked; {len(problems)} broken link(s)")
        return 1
    print(f"{checked} files checked; all intra-doc links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
