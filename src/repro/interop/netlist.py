"""The JSON netlist schema (``graphiti-netlist`` version 1).

A netlist document is a plain JSON object:

.. code-block:: json

    {
      "format": "graphiti-netlist",
      "version": 1,
      "name": "matvec",
      "nodes": {
        "acc": {"component": "Operator{op=add}",
                "in": ["in0", "in1"], "out": ["out"]}
      },
      "connections": [["src.port", "dst.port"]],
      "inputs": {"0": "node.port"},
      "outputs": {"0": "node.port"}
    }

Component type and parameters are carried as the canonical encoded
component string (:func:`repro.core.encoding.encode_component`), so the
schema inherits the graph core's parameter conventions (wire types,
booleans, numerals) without inventing a second encoding.  Connections are
emitted in the canonical edge order (:meth:`ExprHigh.sorted_connections`)
and the document is serialised with sorted keys, so serialisation is a
pure function of the graph: equal graphs produce byte-identical text and
``loads_netlist(dumps_netlist(g)) == g``.
"""

from __future__ import annotations

import json

from ..core.encoding import decode_component, encode_component
from ..core.exprhigh import Endpoint, ExprHigh, NodeSpec
from ..errors import GraphitiError, NetlistError

FORMAT_NAME = "graphiti-netlist"
SCHEMA_VERSION = 1


def _endpoint_str(endpoint: Endpoint) -> str:
    return f"{endpoint.node}.{endpoint.port}"


def _parse_endpoint(text: str) -> Endpoint:
    node, sep, port = text.rpartition(".")
    if not sep or not node or not port:
        raise NetlistError(f"malformed endpoint {text!r}; expected 'node.port'")
    return Endpoint(node, port)


def graph_to_netlist(graph: ExprHigh, name: str = "graph") -> dict:
    """Encode *graph* as a ``graphiti-netlist`` version-1 document."""
    nodes = {}
    for node_name in sorted(graph.nodes):
        spec = graph.nodes[node_name]
        nodes[node_name] = {
            "component": encode_component(spec.typ, spec.param_dict()),
            "in": list(spec.in_ports),
            "out": list(spec.out_ports),
        }
    connections = [
        [_endpoint_str(src), _endpoint_str(dst)] for dst, src in graph.sorted_connections()
    ]
    return {
        "format": FORMAT_NAME,
        "version": SCHEMA_VERSION,
        "name": name,
        "nodes": nodes,
        "connections": connections,
        "inputs": {str(i): _endpoint_str(e) for i, e in sorted(graph.inputs.items())},
        "outputs": {str(i): _endpoint_str(e) for i, e in sorted(graph.outputs.items())},
    }


def netlist_to_graph(doc: dict) -> ExprHigh:
    """Decode a netlist document back into an ExprHigh graph."""
    if not isinstance(doc, dict):
        raise NetlistError(f"netlist document must be a JSON object, got {type(doc).__name__}")
    if doc.get("format") != FORMAT_NAME:
        raise NetlistError(f"not a {FORMAT_NAME} document (format={doc.get('format')!r})")
    if doc.get("version") != SCHEMA_VERSION:
        raise NetlistError(
            f"unsupported netlist version {doc.get('version')!r}; expected {SCHEMA_VERSION}"
        )
    graph = ExprHigh()
    nodes = doc.get("nodes")
    if not isinstance(nodes, dict):
        raise NetlistError("netlist 'nodes' must be an object")
    try:
        for node_name, entry in nodes.items():
            typ, params = decode_component(str(entry["component"]))
            spec = NodeSpec.make(typ, entry.get("in", ()), entry.get("out", ()), params)
            graph.add_node(node_name, spec)
        for pair in doc.get("connections", ()):
            src, dst = (_parse_endpoint(str(end)) for end in pair)
            graph.connect(src.node, src.port, dst.node, dst.port)
        for index, text in doc.get("inputs", {}).items():
            endpoint = _parse_endpoint(str(text))
            graph.mark_input(int(index), endpoint.node, endpoint.port)
        for index, text in doc.get("outputs", {}).items():
            endpoint = _parse_endpoint(str(text))
            graph.mark_output(int(index), endpoint.node, endpoint.port)
    except NetlistError:
        raise
    except (KeyError, ValueError, TypeError) as exc:
        raise NetlistError(f"malformed netlist document: {exc}") from exc
    except GraphitiError as exc:
        raise NetlistError(f"netlist does not describe a valid graph: {exc}") from exc
    return graph


def dumps_netlist(graph: ExprHigh, name: str = "graph") -> str:
    """Serialise *graph* to canonical (byte-deterministic) netlist JSON."""
    return json.dumps(graph_to_netlist(graph, name=name), indent=2, sort_keys=True) + "\n"


def loads_netlist(text: str) -> ExprHigh:
    """Parse netlist JSON text into an ExprHigh graph."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise NetlistError(f"invalid JSON: {exc}", line=exc.lineno) from exc
    return netlist_to_graph(doc)


def netlist_name(text_or_doc: str | dict) -> str:
    """The module name recorded in a netlist document."""
    doc = json.loads(text_or_doc) if isinstance(text_or_doc, str) else text_or_doc
    return str(doc.get("name", "graph"))
