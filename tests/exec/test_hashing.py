"""Fingerprint semantics: stability, sensitivity, and key coverage."""

import numpy as np

from repro.benchmarks import matvec
from repro.components import default_environment, fork, mux
from repro.core import ExprHigh
from repro.exec.hashing import (
    eval_unit_key,
    fingerprint,
    graph_fingerprint,
    obligation_fingerprint,
    program_fingerprint,
    stimuli_fingerprint,
)
from repro.hls.frontend import compile_program
from repro.rewriting.rules.combine import mux_combine


def small_graph() -> ExprHigh:
    graph = ExprHigh()
    graph.add_node("cfork", fork(2))
    graph.add_node("m_a", mux())
    graph.add_node("m_b", mux())
    graph.connect("cfork", "out0", "m_a", "cond")
    graph.connect("cfork", "out1", "m_b", "cond")
    graph.mark_input(0, "cfork", "in0")
    graph.mark_input(1, "m_a", "in0")
    graph.mark_input(2, "m_a", "in1")
    graph.mark_input(3, "m_b", "in0")
    graph.mark_input(4, "m_b", "in1")
    graph.mark_output(0, "m_a", "out0")
    graph.mark_output(1, "m_b", "out0")
    return graph


class TestFingerprint:
    def test_part_boundaries_matter(self):
        assert fingerprint("ab", "c") != fingerprint("a", "bc")

    def test_deterministic(self):
        assert fingerprint("x", "y") == fingerprint("x", "y")


class TestGraphFingerprint:
    def test_copy_is_identical(self):
        graph = small_graph()
        assert graph_fingerprint(graph) == graph_fingerprint(graph.copy())

    def test_insertion_order_does_not_matter(self):
        graph = small_graph()
        other = ExprHigh()
        # Same graph, nodes added in a different order.
        other.add_node("m_b", mux())
        other.add_node("m_a", mux())
        other.add_node("cfork", fork(2))
        other.connect("cfork", "out0", "m_a", "cond")
        other.connect("cfork", "out1", "m_b", "cond")
        for index, (node, port) in enumerate(
            [("cfork", "in0"), ("m_a", "in0"), ("m_a", "in1"), ("m_b", "in0"), ("m_b", "in1")]
        ):
            other.mark_input(index, node, port)
        other.mark_output(0, "m_a", "out0")
        other.mark_output(1, "m_b", "out0")
        assert graph_fingerprint(graph) == graph_fingerprint(other)

    def test_param_edit_changes_hash(self):
        graph = small_graph()
        edited = graph.copy()
        edited.nodes["m_a"] = edited.nodes["m_a"].with_params(tagged=True)
        assert graph_fingerprint(graph) != graph_fingerprint(edited)

    def test_connection_edit_changes_hash(self):
        graph = small_graph()
        edited = small_graph()
        edited.disconnect("m_b", "cond")
        edited.connect("cfork", "out1", "m_b", "cond")  # same edge: identical again
        assert graph_fingerprint(graph) == graph_fingerprint(edited)
        edited.disconnect("m_b", "cond")
        assert graph_fingerprint(graph) != graph_fingerprint(edited)


class TestEnvironmentSignature:
    def test_capacity_changes_signature(self):
        assert (
            default_environment(capacity=1).signature()
            != default_environment(capacity=2).signature()
        )

    def test_function_registration_changes_signature(self):
        env = default_environment()
        before = env.signature()
        env.register_function("extra_fn", lambda value: value, 1)
        assert env.signature() != before


class TestProgramAndStimuli:
    def test_program_fingerprint_sensitive_to_arrays(self):
        program = matvec(4)
        before = program_fingerprint(program)
        program.arrays["x"][0] += 1.0
        assert program_fingerprint(program) != before

    def test_stimuli_fingerprint_order_insensitive(self):
        assert stimuli_fingerprint({"a": (1, 2), "b": (3,)}) == stimuli_fingerprint(
            {"b": (3,), "a": (1, 2)}
        )
        assert stimuli_fingerprint({"a": (1, 2)}) != stimuli_fingerprint({"a": (2, 1)})


class TestUnitKeys:
    def test_eval_unit_key_distinguishes_flows_and_programs(self):
        env = default_environment()
        program = matvec(4)
        compiled = compile_program(program, env)
        keys = {flow: eval_unit_key(flow, program, compiled, env) for flow in ("DF-IO", "GRAPHITI")}
        assert keys["DF-IO"] != keys["GRAPHITI"]

        other = matvec(4)
        other.arrays["x"][...] = np.arange(len(other.arrays["x"]))
        other_compiled = compile_program(other, default_environment())
        assert eval_unit_key("DF-IO", other, other_compiled, env) != keys["DF-IO"]

    def test_obligation_fingerprint_stable_per_rewrite(self):
        first = obligation_fingerprint("mux-combine", list(mux_combine().obligation()))
        second = obligation_fingerprint("mux-combine", list(mux_combine().obligation()))
        assert first == second
