"""Tests for the mini-IR and its reference interpreter."""

import numpy as np
import pytest

from repro.errors import FrontendError
from repro.hls.ir import (
    BinOp,
    Const,
    DoWhile,
    Kernel,
    Load,
    OuterLoop,
    Program,
    Select,
    StoreOp,
    UnOp,
    Var,
    eval_expr,
    run_program,
    var_occurrences,
)


class TestEvalExpr:
    def test_arithmetic(self):
        expr = BinOp("add", BinOp("mul", Var("x"), Const(3)), Const(1))
        assert eval_expr(expr, {"x": 4}, {}) == 13

    def test_comparisons(self):
        assert eval_expr(BinOp("lt", Var("a"), Const(5)), {"a": 3}, {}) is True
        assert eval_expr(UnOp("ne0", Const(0)), {}, {}) is False

    def test_load_flat_indexing(self):
        arrays = {"A": np.arange(6).reshape(2, 3)}
        assert eval_expr(Load("A", Const(4)), {}, arrays) == 4

    def test_select(self):
        expr = Select(BinOp("lt", Var("x"), Const(0)), Const(-1), Const(1))
        assert eval_expr(expr, {"x": -5}, {}) == -1
        assert eval_expr(expr, {"x": 5}, {}) == 1

    def test_unbound_variable_rejected(self):
        with pytest.raises(FrontendError):
            eval_expr(Var("nope"), {}, {})

    def test_unknown_op_rejected(self):
        with pytest.raises(FrontendError):
            eval_expr(BinOp("frob", Const(1), Const(2)), {}, {})


class TestVarOccurrences:
    def test_counts_multiplicity(self):
        expr = BinOp("add", Var("x"), BinOp("mul", Var("x"), Var("y")))
        assert var_occurrences(expr) == {"x": 2, "y": 1}

    def test_counts_through_select_and_load(self):
        expr = Select(Var("c"), Load("A", Var("i")), Var("i"))
        assert var_occurrences(expr) == {"c": 1, "i": 2}


class TestDoWhileValidation:
    def test_missing_body_update_rejected(self):
        with pytest.raises(FrontendError):
            DoWhile("bad", ("a", "b"), {"a": Var("a")}, Var("a"), ("a",))

    def test_non_state_read_rejected(self):
        with pytest.raises(FrontendError):
            DoWhile("bad", ("a",), {"a": Var("outer")}, Var("a"), ("a",))

    def test_bad_result_var_rejected(self):
        with pytest.raises(FrontendError):
            DoWhile("bad", ("a",), {"a": Var("a")}, Var("a"), ("zzz",))

    def test_effectful_flag(self):
        loop = DoWhile(
            "st",
            ("a",),
            {"a": Var("a")},
            Var("a"),
            ("a",),
            stores=(StoreOp("out", Var("a"), Var("a")),),
        )
        assert loop.is_effectful()


class TestKernelExecution:
    def _countdown(self, n_points=3):
        loop = DoWhile(
            "count",
            ("n", "i"),
            {"n": BinOp("sub", Var("n"), Const(1)), "i": Var("i")},
            BinOp("lt", Const(0), Var("n")),
            ("n", "i"),
        )
        kernel = Kernel(
            "count",
            loop,
            (OuterLoop("i", n_points),),
            {"n": BinOp("add", Var("i"), Const(1)), "i": Var("i")},
            (StoreOp("out", Var("i"), Var("n")),),
        )
        return Program("count", {"out": np.full(n_points, -1.0)}, [kernel])

    def test_outer_points_row_major(self):
        loop = DoWhile("l", ("a",), {"a": Var("a")}, UnOp("eq0", Var("a")), ("a",))
        kernel = Kernel(
            "k",
            loop,
            (OuterLoop("i", 2), OuterLoop("j", 3)),
            {"a": Const(1)},
        )
        points = list(kernel.outer_points())
        assert points[0] == {"i": 0, "j": 0}
        assert points[1] == {"i": 0, "j": 1}
        assert points[-1] == {"i": 1, "j": 2}

    def test_trip_counts(self):
        program = self._countdown()
        counts = program.kernels[0].trip_counts(program.copy_arrays())
        assert counts == [1, 2, 3]  # do-while runs at least once

    def test_run_program_stores_results(self):
        program = self._countdown()
        trace = run_program(program)
        assert list(trace.arrays["out"]) == [0, 0, 0]
        assert trace.inner_iterations == 6

    def test_store_history_recorded_in_order(self):
        program = self._countdown()
        trace = run_program(program)
        assert [entry[1] for entry in trace.store_history] == [0, 1, 2]

    def test_in_body_stores_recorded(self):
        loop = DoWhile(
            "w",
            ("n", "i"),
            {"n": BinOp("sub", Var("n"), Const(1)), "i": Var("i")},
            BinOp("lt", Const(0), Var("n")),
            ("n",),
            stores=(StoreOp("log", Var("n"), Var("i")),),
        )
        kernel = Kernel(
            "w",
            loop,
            (OuterLoop("i", 2),),
            {"n": Const(2), "i": Var("i")},
        )
        program = Program("w", {"log": np.zeros(4)}, [kernel])
        trace = run_program(program)
        assert [(a, i) for a, i, _ in trace.store_history] == [
            ("log", 1),
            ("log", 0),
            ("log", 1),
            ("log", 0),
        ]

    def test_missing_init_rejected(self):
        loop = DoWhile("l", ("a",), {"a": Var("a")}, UnOp("eq0", Var("a")), ("a",))
        with pytest.raises(FrontendError):
            Kernel("k", loop, (OuterLoop("i", 1),), init={})
