"""Tests for the component-string encoding."""

import pytest

from repro.core.encoding import decode_component, encode_component
from repro.core.types import BOOL, I32, TaggedType, TupleType
from repro.errors import GraphError


class TestRoundTrip:
    @pytest.mark.parametrize(
        "typ,params",
        [
            ("Fork", {}),
            ("Fork", {"n": 2}),
            ("Mux", {"type": I32}),
            ("Pure", {"fn": "gcd_step", "tagged": True}),
            ("Tagger", {"tags": 8, "type": TupleType(I32, BOOL)}),
            ("Split", {"tagged": False, "type": TaggedType(I32)}),
            ("Init", {"value": False}),
            ("Buffer", {"slots": 3}),
        ],
    )
    def test_round_trip(self, typ, params):
        encoded = encode_component(typ, params)
        name, decoded = decode_component(encoded)
        assert name == typ
        assert decoded == params

    def test_no_params_is_bare_name(self):
        assert encode_component("Fork", {}) == "Fork"
        assert decode_component("Fork") == ("Fork", {})

    def test_keys_sorted_for_canonicity(self):
        a = encode_component("X", {"b": 1, "a": 2})
        b = encode_component("X", {"a": 2, "b": 1})
        assert a == b


class TestErrors:
    def test_reserved_chars_in_name_rejected(self):
        with pytest.raises(GraphError):
            encode_component("Bad{name", {})

    def test_reserved_chars_in_value_rejected(self):
        with pytest.raises(GraphError):
            encode_component("X", {"k": "a;b"})

    def test_unencodable_value_rejected(self):
        with pytest.raises(GraphError):
            encode_component("X", {"k": object()})

    def test_malformed_decode_rejected(self):
        with pytest.raises(GraphError):
            decode_component("X{broken")
        with pytest.raises(GraphError):
            decode_component("X{novalue}")


class TestValueConventions:
    def test_bools(self):
        _, params = decode_component("X{a=true;b=false}")
        assert params == {"a": True, "b": False}

    def test_numbers(self):
        _, params = decode_component("X{n=3;x=1.5}")
        assert params == {"n": 3, "x": 1.5}

    def test_plain_strings(self):
        _, params = decode_component("X{op=fadd}")
        assert params == {"op": "fadd"}

    def test_type_keys_parse_types(self):
        _, params = decode_component("X{type=tagged<(i32 * bool), 8>}")
        assert params == {"type": TaggedType(TupleType(I32, BOOL), 8)}
