"""Graph-compiled cycle simulation: lower once, run many stimuli.

:func:`compile_circuit` lowers an :class:`~repro.core.exprhigh.ExprHigh`
graph into a :class:`CompiledCircuit`: a flat array of per-node step
closures laid out in the shared :func:`~repro.sim.cycle.evaluation_order`,
with every channel, latency, function and parameter lookup resolved at
compile time.  Channels become preallocated ring buffers, and an
event-driven active set skips nodes that provably cannot fire — during the
long latency windows of pipelined floating-point loops most of the circuit
is quiescent, which is where the interpreted
:class:`~repro.sim.cycle.CycleSimulator` burns its time re-asking every
node every cycle.

The compiled engine is *cycle- and value-identical* to the interpreter: it
replicates the two-phase channel model (staged pushes commit at cycle end;
combinational ``push_now`` visibility), the pipeline aging and head-of-line
delivery rules, the tag aligner, and the Driver/Collector bridge, down to
deadlock windows and error messages.  The interpreter stays as the
differential-testing oracle behind the same interface (see
``tests/property/test_sim_backend_equivalence.py``).

:meth:`CompiledCircuit.run` executes one stimulus; :meth:`CompiledCircuit.run_batch`
executes many stimuli/buffer-placement variants without re-lowering —
changing only channel capacities between runs is an O(changed-channels)
retarget, which is exactly the shape of the Table 2 buffer sweep.

Tokens carry Python values (tagged tuples), so the hot arrays are Python
lists indexed by precomputed ring offsets; numpy enters only through the
kernels' own array stores.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .. import obs
from ..core.environment import Environment
from ..core.exprhigh import Endpoint, ExprHigh
from ..errors import DeadlockError, SimulationError
from ..hls.ir import Kernel, eval_expr
from .cycle import Edge, SimStats, evaluation_order, full_channel_message

__all__ = ["BatchRun", "CompiledCircuit", "compile_circuit"]

#: sentinel "pipeline" for nodes that are never deactivated (Tagger, Driver,
#: Collector): the run loop keeps any node with a truthy pipeline active.
_ALWAYS_ACTIVE = (True,)


class _Ring:
    """A channel as a preallocated ring buffer plus a staged overflow list.

    ``buf[head:head+count]`` (mod ``cap``) holds the committed, consumer-
    visible tokens; ``staged`` holds this cycle's two-phase pushes until the
    end-of-cycle commit.  Each ring knows the indices of its producer and
    consumer nodes in the compiled step array so pushes and pops can wake
    exactly the nodes whose firing conditions may have changed.
    """

    __slots__ = (
        "cap",
        "buf",
        "head",
        "count",
        "staged",
        "peak",
        "src",
        "dst",
        "producer",
        "consumer",
        "rt",
    )

    def __init__(self, cap: int, src: Endpoint, dst: Endpoint, producer: int, consumer: int, rt):
        self.cap = cap
        self.buf: list = [None] * cap
        self.head = 0
        self.count = 0
        self.staged: list = []
        self.peak = 0
        self.src = src
        self.dst = dst
        self.producer = producer
        self.consumer = consumer
        self.rt = rt  # owning CompiledCircuit: shared active set / counters

    def push(self, value) -> None:
        """Two-phase push: staged now, committed (and consumer woken) at cycle end."""
        occupancy = self.count + len(self.staged)
        if occupancy >= self.cap:
            raise SimulationError(
                full_channel_message(self.src, self.dst, occupancy, self.cap)
            )
        if not self.staged:
            self.rt._dirty.append(self)
        self.staged.append(value)
        occupancy += 1
        if occupancy > self.peak:
            self.peak = occupancy
        self.rt._tokens += 1

    def push_now(self, value) -> None:
        """Combinational push: committed and consumer-visible within this cycle."""
        occupancy = self.count + len(self.staged)
        if occupancy >= self.cap:
            raise SimulationError(
                full_channel_message(self.src, self.dst, occupancy, self.cap)
            )
        index = self.head + self.count
        if index >= self.cap:
            index -= self.cap
        self.buf[index] = value
        self.count += 1
        occupancy += 1
        if occupancy > self.peak:
            self.peak = occupancy
        rt = self.rt
        rt._tokens += 1
        rt._active[self.consumer] = 1

    def pop(self):
        head = self.head
        value = self.buf[head]
        self.buf[head] = None
        head += 1
        self.head = 0 if head == self.cap else head
        self.count -= 1
        rt = self.rt
        rt._tokens -= 1
        rt._active[self.producer] = 1
        return value

    def delete_at(self, position: int):
        """Remove the committed token at logical *position* (aligner pops)."""
        if position == 0:
            return self.pop()
        cap, buf, head = self.cap, self.buf, self.head
        index = head + position
        if index >= cap:
            index -= cap
        value = buf[index]
        last = self.count - 1
        for offset in range(position, last):
            i = head + offset
            if i >= cap:
                i -= cap
            j = i + 1
            if j >= cap:
                j -= cap
            buf[i] = buf[j]
        i = head + last
        if i >= cap:
            i -= cap
        buf[i] = None
        self.count = last
        rt = self.rt
        rt._tokens -= 1
        rt._active[self.producer] = 1
        return value


def _pop_aligned(channels: list[_Ring]) -> list | None:
    """Ring-buffer port of the interpreter's tag aligner (same tag choice)."""
    first = channels[0]
    if not first.count:
        return None
    # Fast path: every head already carries the first channel's head tag.
    # The full scan would choose exactly that tag at position 0 everywhere,
    # so this is the identical pop sequence without building tag indices.
    head_tag = first.buf[first.head][0]
    aligned = True
    for channel in channels:
        if not channel.count:
            return None
        if channel.buf[channel.head][0] != head_tag:
            aligned = False
    if aligned:
        return [channel.pop() for channel in channels]
    tag_sets = []
    for channel in channels:
        tags: dict = {}
        head, cap, buf = channel.head, channel.cap, channel.buf
        for position in range(channel.count):
            index = head + position
            if index >= cap:
                index -= cap
            tag = buf[index][0]
            if tag not in tags:
                tags[tag] = position
        tag_sets.append(tags)
    common = set(tag_sets[0])
    for tags in tag_sets[1:]:
        common &= set(tags)
    if not common:
        return None
    first = channels[0]
    head_tag = first.buf[first.head][0]
    chosen = head_tag if head_tag in common else min(common, key=lambda t: tag_sets[0][t])
    values = []
    for channel, tags in zip(channels, tag_sets):
        values.append(channel.delete_at(tags[chosen]))
    return values


class _Ctx:
    """Per-run mutable context shared by every compiled step closure."""

    __slots__ = ("arrays", "stats", "trace", "cycle")

    def __init__(self):
        self.arrays: dict = {}
        self.stats = SimStats()
        self.trace = None
        self.cycle = 0


@dataclass
class BatchRun:
    """One configuration for :meth:`CompiledCircuit.run_batch`."""

    arrays: dict
    capacities: Mapping[Edge, int] | None = None
    max_cycles: int = 5_000_000
    deadlock_window: int = 10_000
    trace: object | None = None


class CompiledCircuit:
    """An ExprHigh graph lowered to flat step arrays, reusable across runs.

    Build with :func:`compile_circuit`.  A circuit holds mutable run state
    (channel rings, node pipelines), so a single instance must not be run
    concurrently; reuse across sequential runs is the intended pattern.
    """

    def __init__(
        self,
        graph: ExprHigh,
        env: Environment,
        kernel: Kernel,
        capacities: Mapping[Edge, int] | None = None,
        latency_of: Callable[[str, dict], int] | None = None,
    ):
        self.graph = graph
        self.env = env
        self.kernel = kernel
        self._base_capacities = dict(capacities or {})
        latency_of = latency_of or (lambda typ, params: 1)

        latencies = {
            name: max(0, latency_of(spec.typ, spec.param_dict()))
            for name, spec in graph.nodes.items()
        }
        self.order = evaluation_order(graph, latencies.__getitem__)
        index_of = {name: i for i, name in enumerate(self.order)}

        # Shared run state, captured by rings and step closures.
        self._active = bytearray(len(self.order))
        self._dirty: list[_Ring] = []
        self._tokens = 0
        self._ctx = _Ctx()

        self._channels: list[_Ring] = []
        self._in_ch: dict[Endpoint, _Ring] = {}
        self._out_ch: dict[Endpoint, _Ring] = {}
        for dst, src in graph.connections.items():
            ring = _Ring(
                self._base_capacities.get((src, dst), 1),
                src,
                dst,
                index_of[src.node],
                index_of[dst.node],
                self,
            )
            self._channels.append(ring)
            self._in_ch[dst] = ring
            self._out_ch[src] = ring

        self.outer_points = list(kernel.outer_points())
        self._expected_results = len(self.outer_points)

        # Collector state is shared with the Driver (sequential_outer gating
        # reads the first collector's received count, like the interpreter).
        self._collector_states: dict[str, dict] = {
            name: {"received": 0} for name in graph.nodes_of_type("Collector")
        }

        self._steps: list = []
        self._pipelines: list = []
        self._resets: list = []
        for name in self.order:
            spec = graph.nodes[name]
            maker = getattr(self, f"_make_{spec.typ.lower()}", None)
            if maker is None:
                raise SimulationError(
                    f"no cycle model for component type {spec.typ!r}"
                )
            step, pipeline, reset = maker(name, spec, latencies[name])
            self._steps.append(step)
            self._pipelines.append(pipeline)
            if reset is not None:
                self._resets.append(reset)

    # -- channel / closure helpers -------------------------------------------

    def _in(self, node: str, port: str) -> _Ring | None:
        return self._in_ch.get(Endpoint(node, port))

    def _out(self, node: str, port: str) -> _Ring | None:
        return self._out_ch.get(Endpoint(node, port))

    def _drain_fn(self, pipeline: deque):
        """Pipeline drain closure: age every entry, deliver the head when all
        destinations have room — identical to the interpreter's rules."""

        def drain() -> int:
            if not pipeline:
                return 0
            for entry in pipeline:
                if entry[0] > 0:
                    entry[0] -= 1
            first = pipeline[0]
            if first[0] > 0:
                return 0
            outs = first[1]
            for channel, _ in outs:
                if channel is not None and channel.count + len(channel.staged) >= channel.cap:
                    return 0
            for channel, value in outs:
                if channel is not None:
                    channel.push(value)
            pipeline.popleft()
            return 1

        return drain

    def _start_fn(self, name: str, latency: int, pipeline: deque):
        """Firing-start closure: outputs are ``(ring_or_None, value)`` pairs
        with the port already resolved at compile time."""
        ctx = self._ctx
        if latency == 0:

            def start(outs: list) -> None:
                if ctx.trace is not None:
                    ctx.trace.record(name, ctx.cycle, 0)
                for channel, _ in outs:
                    if channel is not None and channel.count + len(channel.staged) >= channel.cap:
                        pipeline.append([0, outs])
                        return
                for channel, value in outs:
                    if channel is not None:
                        channel.push_now(value)

            return start

        remaining = latency - 1

        def start(outs: list) -> None:
            if ctx.trace is not None:
                ctx.trace.record(name, ctx.cycle, latency)
            pipeline.append([remaining, outs])

        return start

    # -- per-component compilers ---------------------------------------------
    #
    # Each ``_make_<type>`` returns ``(step, pipeline, reset)``: the firing
    # closure, the object whose truthiness keeps the node active, and an
    # optional per-run state reset.  Every closure mirrors the matching
    # ``CycleSimulator._fire_<type>`` exactly (checks in the same order, pops
    # and pushes at the same points) so firing counts match cycle for cycle.

    def _make_fork(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        channel = self._in(name, "in0")
        out_chs = [self._out(name, port) for port in spec.out_ports]

        def step() -> int:
            fired = drain()
            if channel is None or not channel.count or len(pipeline) >= pipe_cap:
                return fired
            value = channel.pop()
            start([(out, value) for out in out_chs])
            return fired + 1

        return step, pipeline, pipeline.clear

    def _make_join(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        a, b = self._in(name, "in0"), self._in(name, "in1")
        out0 = self._out(name, "out0")
        tagged = bool(spec.param("tagged"))
        pair = [a, b]

        def step() -> int:
            fired = drain()
            if a is None or b is None or len(pipeline) >= pipe_cap:
                return fired
            if tagged:
                popped = _pop_aligned(pair)
                if popped is None:
                    return fired
                (tag, val_l), (_, val_r) = popped
                value = (tag, (val_l, val_r))
            else:
                if not a.count or not b.count:
                    return fired
                value = (a.pop(), b.pop())
            start([(out0, value)])
            return fired + 1

        return step, pipeline, pipeline.clear

    def _make_split(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        channel = self._in(name, "in0")
        out0, out1 = self._out(name, "out0"), self._out(name, "out1")
        tagged = bool(spec.param("tagged"))

        def step() -> int:
            fired = drain()
            if channel is None or not channel.count or len(pipeline) >= pipe_cap:
                return fired
            value = channel.pop()
            if tagged:
                tag, (left, right) = value
                start([(out0, (tag, left)), (out1, (tag, right))])
            else:
                left, right = value
                start([(out0, left), (out1, right)])
            return fired + 1

        return step, pipeline, pipeline.clear

    def _make_buffer(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        channel = self._in(name, "in0")
        out0 = self._out(name, "out0")

        def step() -> int:
            fired = drain()
            if channel is None or not channel.count or len(pipeline) >= pipe_cap:
                return fired
            start([(out0, channel.pop())])
            return fired + 1

        return step, pipeline, pipeline.clear

    def _make_sink(self, name, spec, latency):
        channel = self._in(name, "in0")

        def step() -> int:
            if channel is not None and channel.count:
                channel.pop()
                return 1
            return 0

        return step, None, None

    def _make_mux(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        cond = self._in(name, "cond")
        in0, in1 = self._in(name, "in0"), self._in(name, "in1")
        out0 = self._out(name, "out0")

        def step() -> int:
            fired = drain()
            if cond is None or not cond.count or len(pipeline) >= pipe_cap:
                return fired
            data = in0 if cond.buf[cond.head] else in1
            if data is None or not data.count:
                return fired
            cond.pop()
            start([(out0, data.pop())])
            return fired + 1

        return step, pipeline, pipeline.clear

    def _make_branch(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        cond = self._in(name, "cond")
        data = self._in(name, "in0")
        out0, out1 = self._out(name, "out0"), self._out(name, "out1")
        tagged = bool(spec.param("tagged"))
        pair = [cond, data]

        def step() -> int:
            fired = drain()
            if cond is None or data is None or len(pipeline) >= pipe_cap:
                return fired
            if tagged:
                popped = _pop_aligned(pair)
                if popped is None:
                    return fired
                cond_value, value = popped
                truth = bool(cond_value[1])
            else:
                if not cond.count or not data.count:
                    return fired
                truth = bool(cond.pop())
                value = data.pop()
            start([(out0 if truth else out1, value)])
            return fired + 1

        return step, pipeline, pipeline.clear

    def _make_merge(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        inputs = [self._in(name, "in0"), self._in(name, "in1")]
        out0 = self._out(name, "out0")
        state = {"rr": 0}

        def step() -> int:
            fired = drain()
            if len(pipeline) >= pipe_cap:
                return fired
            rr = state["rr"] % 2
            for offset in range(2):
                channel = inputs[(rr + offset) % 2]
                if channel is not None and channel.count:
                    state["rr"] += 1
                    start([(out0, channel.pop())])
                    return fired + 1
            return fired

        def reset() -> None:
            pipeline.clear()
            state["rr"] = 0

        return step, pipeline, reset

    def _make_cmerge(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        inputs = [self._in(name, "in0"), self._in(name, "in1")]
        ports = ["in0", "in1"]
        out0 = self._out(name, "out0")
        index_channel = self._out(name, "index")
        state = {"rr": 0}

        def step() -> int:
            fired = drain()
            if len(pipeline) >= pipe_cap:
                return fired
            rr = state["rr"] % 2
            for offset in range(2):
                position = (rr + offset) % 2
                channel = inputs[position]
                if channel is not None and channel.count:
                    if (
                        index_channel is not None
                        and index_channel.count + len(index_channel.staged)
                        >= index_channel.cap
                    ):
                        return fired
                    state["rr"] += 1
                    value = channel.pop()
                    start([(out0, value), (index_channel, ports[position] == "in0")])
                    return fired + 1
            return fired

        def reset() -> None:
            pipeline.clear()
            state["rr"] = 0

        return step, pipeline, reset

    def _make_init(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        channel = self._in(name, "in0")
        out0 = self._out(name, "out0")
        initial = bool(spec.param("value", False))
        state = {"initial_pending": True}

        def step() -> int:
            fired = drain()
            if state["initial_pending"]:
                if len(pipeline) < pipe_cap:
                    state["initial_pending"] = False
                    start([(out0, initial)])
                    return fired + 1
                return fired
            if channel is None or not channel.count or len(pipeline) >= pipe_cap:
                return fired
            start([(out0, bool(channel.pop()))])
            return fired + 1

        def reset() -> None:
            pipeline.clear()
            state["initial_pending"] = True

        return step, pipeline, reset

    def _make_operator(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        channels = [self._in(name, port) for port in spec.in_ports]
        out0 = self._out(name, "out0")
        tagged = bool(spec.param("tagged"))
        blocked = any(c is None for c in channels)
        op = str(spec.param("op"))
        env = self.env
        try:
            fn = env.function(op)
        except Exception:
            fn = None  # unresolvable: fail at the firing point, like the interpreter

        def step() -> int:
            fired = drain()
            if blocked or len(pipeline) >= pipe_cap:
                return fired
            f = fn if fn is not None else env.function(op)
            if tagged:
                popped = _pop_aligned(channels)
                if popped is None:
                    return fired
                tag = popped[0][0]
                result = (tag, f(*[v[1] for v in popped]))
            else:
                for channel in channels:
                    if not channel.count:
                        return fired
                result = f(*[c.pop() for c in channels])
            start([(out0, result)])
            return fired + 1

        return step, pipeline, pipeline.clear

    def _make_pure(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        channel = self._in(name, "in0")
        out0 = self._out(name, "out0")
        tagged = bool(spec.param("tagged"))
        fn_name = str(spec.param("fn"))
        env = self.env
        try:
            fn = env.function(fn_name)
        except Exception:
            fn = None

        def step() -> int:
            fired = drain()
            if channel is None or not channel.count or len(pipeline) >= pipe_cap:
                return fired
            value = channel.pop()
            f = fn if fn is not None else env.function(fn_name)
            if tagged:
                tag, inner = value
                result = (tag, f(inner))
            else:
                result = f(value)
            start([(out0, result)])
            return fired + 1

        return step, pipeline, pipeline.clear

    def _make_reorg(self, name, spec, latency):
        return self._make_pure(name, spec, latency)

    def _make_constant(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        channel = self._in(name, "ctrl")
        out0 = self._out(name, "out0")
        value = spec.param("value", 0)

        def step() -> int:
            fired = drain()
            if channel is None or not channel.count or len(pipeline) >= pipe_cap:
                return fired
            channel.pop()
            start([(out0, value)])
            return fired + 1

        return step, pipeline, pipeline.clear

    def _make_store(self, name, spec, latency):
        pipeline: deque = deque()
        drain = self._drain_fn(pipeline)
        start = self._start_fn(name, latency, pipeline)
        pipe_cap = max(1, latency)
        addr = self._in(name, "addr")
        data = self._in(name, "data")
        done = self._out(name, "done")
        tagged = bool(spec.param("tagged"))
        pair = [addr, data]
        array = str(spec.param("array", ""))
        if not array:
            stores = self.kernel.loop.stores
            array = stores[0].array if len(stores) == 1 else ""
        ctx = self._ctx

        def step() -> int:
            fired = drain()
            if addr is None or data is None or len(pipeline) >= pipe_cap:
                return fired
            if tagged:
                popped = _pop_aligned(pair)
                if popped is None:
                    return fired
                (_, addr_v), (_, data_v) = popped
            else:
                if not addr.count or not data.count:
                    return fired
                addr_v, data_v = addr.pop(), data.pop()
            if not array:
                raise SimulationError("store component without an 'array' parameter")
            ctx.arrays[array].flat[int(addr_v)] = data_v
            ctx.stats.store_history.append((array, int(addr_v), data_v))
            start([(done, ())])
            return fired + 1

        return step, pipeline, pipeline.clear

    def _make_tagger(self, name, spec, latency):
        enter_ports = [p for p in spec.in_ports if p.startswith("enter")] or ["in0"]
        return_ports = [p for p in spec.in_ports if p.startswith("ret")] or ["in1"]
        tag_outs = [p for p in spec.out_ports if p.startswith("tag")] or ["out0"]
        exit_outs = [p for p in spec.out_ports if p.startswith("exit")] or ["out1"]
        enters = [self._in(name, p) for p in enter_ports]
        outs = [self._out(name, p) for p in tag_outs]
        return_chs = [self._in(name, p) for p in return_ports]
        exits = [self._out(name, p) for p in exit_outs]
        n_returns = len(return_ports)
        tags = int(spec.param("tags", 4))
        free = list(range(tags))
        order: deque = deque()
        returns: dict = {}

        def step() -> int:
            fired = 0
            if (
                free
                and all(c is not None and c.count for c in enters)
                and all(
                    c is not None and c.count + len(c.staged) < c.cap for c in outs
                )
            ):
                tag = free.pop(0)
                order.append(tag)
                for channel, out in zip(enters, outs):
                    out.push((tag, channel.pop()))
                fired += 1
            for index, channel in enumerate(return_chs):
                if channel is not None and channel.count:
                    tag, value = channel.pop()
                    returns.setdefault(tag, {})[index] = value
                    fired += 1
            if order:
                oldest = order[0]
                slots = returns.get(oldest, {})
                if len(slots) == n_returns and all(
                    c is not None and c.count + len(c.staged) < c.cap for c in exits
                ):
                    for index, out in enumerate(exits):
                        out.push(slots[index])
                    order.popleft()
                    free.append(oldest)
                    del returns[oldest]
                    fired += 1
            return fired

        def reset() -> None:
            free[:] = range(tags)
            order.clear()
            returns.clear()

        return step, _ALWAYS_ACTIVE, reset

    def _make_driver(self, name, spec, latency):
        outs = [self._out(name, port) for port in spec.out_ports]
        kernel = self.kernel
        outer_points = self.outer_points
        total = len(outer_points)
        pairs = list(zip(kernel.loop.state, outs))
        init = kernel.init
        sequential = kernel.sequential_outer
        collector_state = next(iter(self._collector_states.values()), None)
        ctx = self._ctx
        state = {"next_point": 0}

        def step() -> int:
            index = state["next_point"]
            if index >= total:
                return 0
            if sequential and collector_state is not None and collector_state["received"] < index:
                return 0
            for channel in outs:
                if channel is None or channel.count + len(channel.staged) >= channel.cap:
                    return 0
            outer_env = outer_points[index]
            arrays = ctx.arrays
            for var, channel in pairs:
                channel.push(eval_expr(init[var], outer_env, arrays))
            state["next_point"] = index + 1
            return 1

        def reset() -> None:
            state["next_point"] = 0

        return step, _ALWAYS_ACTIVE, reset

    def _make_collector(self, name, spec, latency):
        channels = [self._in(name, port) for port in spec.in_ports]
        blocked = any(c is None for c in channels)
        kernel = self.kernel
        outer_points = self.outer_points
        result_vars = kernel.loop.result_vars
        epilogue = kernel.epilogue
        state = self._collector_states[name]
        ctx = self._ctx

        def step() -> int:
            if blocked:
                return 0
            for channel in channels:
                if not channel.count:
                    return 0
            values = [c.pop() for c in channels]
            index = state["received"]
            outer_env = dict(outer_points[index])
            for var, value in zip(result_vars, values):
                outer_env[var] = value
            arrays = ctx.arrays
            stats = ctx.stats
            for store in epilogue:
                addr = int(eval_expr(store.index, outer_env, arrays))
                value = eval_expr(store.value, outer_env, arrays)
                arrays[store.array].flat[addr] = value
                stats.store_history.append((store.array, addr, value))
            state["received"] = index + 1
            stats.results_collected = state["received"]
            return 1

        def reset() -> None:
            state["received"] = 0

        return step, _ALWAYS_ACTIVE, reset

    # -- running --------------------------------------------------------------

    def retarget(self, capacities: Mapping[Edge, int] | None) -> int:
        """Incremental recompilation for a capacity-only change.

        Reallocates just the rings whose capacity differs; everything else —
        step closures, evaluation order, resolved functions — is reused.
        Returns the number of channels touched.
        """
        caps = self._base_capacities if capacities is None else capacities
        changed = 0
        for channel in self._channels:
            cap = caps.get((channel.src, channel.dst), 1)
            if cap != channel.cap:
                channel.cap = cap
                channel.buf = [None] * cap
                changed += 1
        return changed

    def _reset(self, capacities: Mapping[Edge, int] | None) -> int:
        retargeted = self.retarget(capacities)
        for channel in self._channels:
            if channel.count or channel.staged:
                channel.buf = [None] * channel.cap
            channel.head = 0
            channel.count = 0
            channel.staged.clear()
            channel.peak = 0
        for reset in self._resets:
            reset()
        self._active[:] = bytes([1]) * len(self._active)
        self._dirty.clear()
        self._tokens = 0
        return retargeted

    def run(
        self,
        arrays: dict,
        *,
        capacities: Mapping[Edge, int] | None = None,
        max_cycles: int = 5_000_000,
        deadlock_window: int = 10_000,
        trace=None,
    ) -> SimStats:
        """Execute one stimulus (an arrays dict) against the compiled circuit.

        *capacities* overrides the compile-time buffer placement for this run
        (an incremental retarget); ``None`` restores the compile-time one.
        """
        with obs.span(
            "sim:run",
            kernel=self.kernel.name,
            nodes=len(self.graph.nodes),
            backend="compiled",
        ) as sp:
            stats = self._run_once(arrays, capacities, max_cycles, deadlock_window, trace)
            sp.set(cycles=stats.cycles, tokens_fired=stats.tokens_fired)
        obs.count("sim.runs")
        obs.count("sim.cycles", stats.cycles)
        return stats

    def run_batch(self, configs: Sequence[BatchRun | Mapping]) -> list[SimStats]:
        """Execute many stimuli/placement variants without re-lowering."""
        runs = [
            config if isinstance(config, BatchRun) else BatchRun(**config)
            for config in configs
        ]
        with obs.span(
            "sim:run_batch", kernel=self.kernel.name, runs=len(runs)
        ) as sp:
            results = []
            cycles = 0
            for config in runs:
                stats = self._run_once(
                    config.arrays,
                    config.capacities,
                    config.max_cycles,
                    config.deadlock_window,
                    config.trace,
                )
                cycles += stats.cycles
                results.append(stats)
            sp.set(cycles=cycles)
        obs.count("sim.runs", len(runs))
        obs.count("sim.cycles", cycles)
        return results

    def _run_once(self, arrays, capacities, max_cycles, deadlock_window, trace) -> SimStats:
        retargeted = self._reset(capacities)
        if retargeted:
            obs.count("sim.compiled.retargets", retargeted)
        ctx = self._ctx
        ctx.arrays = arrays
        ctx.trace = trace
        ctx.stats = stats = SimStats()

        active = self._active
        steps = self._steps
        pipelines = self._pipelines
        dirty = self._dirty
        expected = self._expected_results
        node_range = range(len(steps))
        # Real latency pipelines only: Driver/Collector/Store steps return
        # the _ALWAYS_ACTIVE sentinel, which must not block quiescence.
        latency_pipelines = [p for p in pipelines if p is not _ALWAYS_ACTIVE]
        idle = 0
        cycle = 0
        completed = None
        while cycle < max_cycles:
            ctx.cycle = cycle
            fired = 0
            for i in node_range:
                if active[i]:
                    f = steps[i]()
                    if f:
                        fired += f
                    elif not pipelines[i]:
                        active[i] = 0
            if dirty:
                for channel in dirty:
                    staged = channel.staged
                    buf = channel.buf
                    cap = channel.cap
                    index = channel.head + channel.count
                    for value in staged:
                        if index >= cap:
                            index -= cap
                        buf[index] = value
                        index += 1
                    channel.count += len(staged)
                    staged.clear()
                    active[channel.consumer] = 1
                dirty.clear()
            cycle += 1
            if completed is not None:
                # Drain phase (matches the interpreter): all results are in,
                # but in-body stores may still sit in operator pipelines.
                # Step for side effects until quiescent (nothing fired, no
                # pipeline still aging a token); reported measurements stay
                # frozen at the completion cycle.
                if fired == 0 and not any(latency_pipelines):
                    return stats
                continue
            if self._tokens > stats.peak_in_flight:
                stats.peak_in_flight = self._tokens
            if stats.results_collected >= expected:
                completed = cycle
                stats.cycles = cycle
                stats.channel_peaks = {
                    (channel.src, channel.dst): channel.peak
                    for channel in self._channels
                }
                continue
            if fired == 0:
                idle += 1
                if idle > deadlock_window:
                    raise DeadlockError(
                        f"no activity for {deadlock_window} cycles "
                        f"({stats.results_collected}/{expected} results)",
                        cycle=cycle,
                    )
            else:
                idle = 0
                stats.tokens_fired += fired
        raise SimulationError(f"simulation exceeded {max_cycles} cycles")


def compile_circuit(
    graph: ExprHigh,
    env: Environment,
    kernel: Kernel,
    *,
    capacities: Mapping[Edge, int] | None = None,
    latency_of: Callable[[str, dict], int] | None = None,
) -> CompiledCircuit:
    """Lower *graph* into a reusable :class:`CompiledCircuit`.

    Arguments mirror :class:`~repro.sim.cycle.CycleSimulator` minus the
    per-run ones (arrays, trace, cycle limits), which move to
    :meth:`CompiledCircuit.run`.
    """
    with obs.span(
        "sim:compile", kernel=kernel.name, nodes=len(graph.nodes)
    ):
        circuit = CompiledCircuit(
            graph, env, kernel, capacities=capacities, latency_of=latency_of
        )
    obs.count("sim.compiles")
    return circuit
