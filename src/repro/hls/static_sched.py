"""The Vericert substitute: statically scheduled HLS into an FSM.

Vericert (the only other verified HLS tool, used as the paper's second
comparison point) produces a state machine: one operation chain per FSM
state sequence, with aggressive resource sharing and no loop pipelining.
This module reproduces that architecture's cost profile:

* list scheduling of the loop body DAG under shared functional units (one
  FP adder, one FP multiplier, one divider/modulo unit, one memory port);
* no overlap between loop iterations or outer-loop points: per-iteration
  cost is the schedule length plus FSM transition overhead;
* deeper-pipelined (higher latency) units than the dataflow flows, which is
  what buys Vericert its better clock period;
* area: one shared unit of each needed kind, registers per variable, and a
  small FSM — far below the dataflow circuits' handshake fabric (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError
from .area import AreaReport, OP_PROFILES, base_op
from .ir import BinOp, Const, Expr, Load, Program, Select, UnOp, Var

#: Latency scale: Vericert's units are pipelined deeper to close at a lower
#: clock; combined with no loop pipelining this is the paper's cycle-count /
#: clock-period trade-off.
LATENCY_SCALE = 1.6

#: FSM overhead cycles per loop iteration (state entry/exit).
FSM_OVERHEAD = 2

#: Resource classes: op kind -> number of shared units.
RESOURCES = {
    "fadd": 1,  # shared FP add/sub
    "fmul": 1,  # shared FP multiplier
    "mod": 1,
    "mem": 1,  # single memory port
    "int": 2,  # two integer ALUs
}


def _resource_class(op: str) -> str:
    base = base_op(op)
    if base in ("fadd", "fsub"):
        return "fadd"
    if base == "fmul":
        return "fmul"
    if base == "mod":
        return "mod"
    if base in ("load", "store"):
        return "mem"
    return "int"


def _op_latency(op: str) -> int:
    profile = OP_PROFILES.get(base_op(op))
    latency = profile.latency if profile else 1
    return max(1, round(latency * LATENCY_SCALE))


@dataclass
class _SchedOp:
    name: str
    op: str
    deps: list[str]


def _flatten(expr: Expr, ops: list[_SchedOp], counter: list[int]) -> str | None:
    """Flatten an expression into scheduling ops; returns producing op name."""
    if isinstance(expr, (Var, Const)):
        return None  # available in a register, no scheduled op
    counter[0] += 1
    name = f"op{counter[0]}"
    if isinstance(expr, BinOp):
        deps = [d for d in (_flatten(expr.left, ops, counter), _flatten(expr.right, ops, counter)) if d]
        ops.append(_SchedOp(name, expr.op, deps))
        return name
    if isinstance(expr, UnOp):
        deps = [d for d in (_flatten(expr.operand, ops, counter),) if d]
        ops.append(_SchedOp(name, expr.op, deps))
        return name
    if isinstance(expr, Load):
        deps = [d for d in (_flatten(expr.index, ops, counter),) if d]
        ops.append(_SchedOp(name, "load", deps))
        return name
    if isinstance(expr, Select):
        deps = [
            d
            for d in (
                _flatten(expr.cond, ops, counter),
                _flatten(expr.if_true, ops, counter),
                _flatten(expr.if_false, ops, counter),
            )
            if d
        ]
        ops.append(_SchedOp(name, "select", deps))
        return name
    raise SchedulingError(f"cannot schedule expression {expr!r}")


def schedule_length(exprs: list[Expr], stores: int = 0) -> int:
    """List-schedule the expression set under shared resources.

    Returns the makespan in cycles.  *stores* adds memory-port writes at the
    end of the schedule.
    """
    ops: list[_SchedOp] = []
    counter = [0]
    for expr in exprs:
        _flatten(expr, ops, counter)
    for index in range(stores):
        ops.append(_SchedOp(f"store{index}", "store", []))

    finish: dict[str, int] = {}
    busy_until: dict[str, list[int]] = {
        kind: [0] * units for kind, units in RESOURCES.items()
    }
    # Ops are in dependency order (children flattened before parents).
    for op in ops:
        ready = max((finish[d] for d in op.deps), default=0)
        kind = _resource_class(op.op)
        units = busy_until[kind]
        unit = min(range(len(units)), key=lambda i: units[i])
        start = max(ready, units[unit])
        end = start + _op_latency(op.op)
        units[unit] = end
        finish[op.name] = end
    return max(finish.values(), default=0)


@dataclass
class StaticScheduleReport:
    """Cycle count and area for the statically scheduled implementation."""

    cycles: int
    area: AreaReport
    per_iteration: int
    iterations: int


def schedule_program(program: Program, arrays: dict | None = None) -> StaticScheduleReport:
    """Schedule and 'run' the program on the FSM architecture."""
    memory = arrays if arrays is not None else program.copy_arrays()
    total_cycles = 0
    total_iterations = 0
    worst_iteration = 0
    ops_used: set[str] = set()

    for kernel in program.kernels:
        body_exprs = list(kernel.loop.body.values()) + [kernel.loop.condition]
        for op in kernel.loop.stores:
            body_exprs.extend([op.index, op.value])
        iteration_cycles = schedule_length(body_exprs, stores=len(kernel.loop.stores)) + FSM_OVERHEAD
        worst_iteration = max(worst_iteration, iteration_cycles)

        init_cycles = schedule_length(list(kernel.init.values())) + FSM_OVERHEAD
        epilogue_cycles = (
            schedule_length([s.index for s in kernel.epilogue] + [s.value for s in kernel.epilogue],
                            stores=len(kernel.epilogue))
            + FSM_OVERHEAD
            if kernel.epilogue
            else 0
        )

        trip_counts = kernel.trip_counts({n: a.copy() for n, a in memory.items()})
        for trips in trip_counts:
            total_cycles += init_cycles + trips * iteration_cycles + epilogue_cycles
            total_iterations += trips

        _collect_ops(body_exprs + list(kernel.init.values()), ops_used)
        if kernel.loop.stores or kernel.epilogue:
            ops_used.add("store")

    area = _static_area(ops_used, program)
    return StaticScheduleReport(
        cycles=total_cycles,
        area=area,
        per_iteration=worst_iteration,
        iterations=total_iterations,
    )


def _collect_ops(exprs: list[Expr], into: set[str]) -> None:
    for expr in exprs:
        if isinstance(expr, BinOp):
            into.add(expr.op)
            _collect_ops([expr.left, expr.right], into)
        elif isinstance(expr, UnOp):
            into.add(expr.op)
            _collect_ops([expr.operand], into)
        elif isinstance(expr, Load):
            into.add("load")
            _collect_ops([expr.index], into)
        elif isinstance(expr, Select):
            into.add("select")
            _collect_ops([expr.cond, expr.if_true, expr.if_false], into)


def _static_area(ops_used: set[str], program: Program) -> AreaReport:
    """One shared unit per op class, registers, and a small FSM."""
    report = AreaReport()
    classes: dict[str, float] = {}
    for op in ops_used:
        kind = _resource_class(op)
        profile = OP_PROFILES.get(base_op(op))
        if profile is None:
            continue
        if kind not in classes or profile.delay > classes[kind]:
            classes[kind] = profile.delay
            # one shared unit of the worst op in this class
        report.luts += profile.luts // 2 if kind == "int" else 0
    # Shared units (counted once per class present).
    shared = {
        "fadd": (300, 420, 0),
        "fmul": (120, 200, 5),
        "mod": (200, 240, 0),
        "mem": (80, 90, 0),
        "int": (90, 100, 0),
    }
    for kind in classes:
        luts, ffs, dsps = shared[kind]
        report.luts += luts
        report.ffs += ffs
        report.dsps += dsps
    # Registers per kernel state variable plus FSM encoding.
    state_regs = sum(len(k.loop.state) for k in program.kernels)
    report.luts += 60 + 18 * state_regs
    report.ffs += 120 + 40 * state_regs
    # Clock: deeper pipelines close below the dataflow fabric's period.
    worst_delay = max(classes.values(), default=3.0)
    report.clock_period = round(0.75 * worst_delay + 0.25 + 0.0002 * report.luts, 3)
    return report
