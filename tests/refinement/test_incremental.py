"""Incremental recheck: diff-scoped re-validation of stored certificates.

After a rewrite touches part of a graph, the incremental path re-validates
only the relation entries whose states involve touched nodes, transporting
the untouched leaves of every stored state.  The contract (ISSUE 9):
corruption or ineligibility may cost time — a fall back to full recheck,
then full search — but never soundness.  These tests pin the strict-subset
claim (the incremental pass validates fewer entries than the full
relation), agreement with a full search on every library obligation, and
the fallback ladder for semantics-breaking edits.
"""

import pytest

from repro.components import buffer, default_environment, pure
from repro.core import ExprHigh
from repro.core.semantics import denote
from repro.errors import RefinementError
from repro.exec.cache import ResultCache
from repro.refinement import (
    diff_graphs,
    find_weak_simulation,
    incremental_recheck,
    uniform_stimuli,
)
from repro.refinement.checker import (
    check_rewrite_obligation,
    recheck_obligation_incremental,
)
from repro.rewriting.rules import VERIFY_FACTORY_SPECS, build_rewrite


def _chain(fn):
    graph = ExprHigh()
    graph.add_node("b0", buffer(slots=1))
    graph.add_node("p", pure(fn))
    graph.add_node("b1", buffer(slots=1))
    graph.connect("b0", "out0", "p", "in0")
    graph.connect("p", "out0", "b1", "in0")
    graph.mark_input(0, "b0", "in0")
    graph.mark_output(0, "b1", "out0")
    return graph


@pytest.fixture(scope="module")
def baseline():
    env = default_environment(capacity=2)
    lhs = _chain("id")
    rhs_old = _chain("id")
    spec = denote(lhs.lower(), env)
    impl = denote(rhs_old.lower(), env)
    stimuli = uniform_stimuli(impl, (0, 1))
    result = find_weak_simulation(impl, spec, stimuli)
    assert result.holds
    return env, lhs, rhs_old, spec, stimuli, result.certificate


def test_diff_localises_the_touched_node(baseline):
    _, _, rhs_old, _, _, _ = baseline
    diff = diff_graphs(rhs_old, _chain("comp(id,id)"))
    assert diff.touched == frozenset({"p"})
    assert not diff.added and not diff.removed and not diff.io_changed


def test_incremental_validates_a_strict_subset(baseline):
    env, _, rhs_old, spec, stimuli, certificate = baseline
    rhs_new = _chain("comp(id,id)")  # semantics-preserving edit to one node
    impl_new = denote(rhs_new.lower(), env)
    outcome = incremental_recheck(
        rhs_old, rhs_new, env, impl_new, spec, certificate, stimuli
    )
    assert outcome.eligible and outcome.result.holds
    assert outcome.result.method == "incremental"
    # the whole point: strictly fewer entries re-validated than stored
    assert 0 < outcome.entries_validated < len(certificate.relation)
    assert outcome.result.certificate.relation == certificate.relation


def test_breaking_edit_is_caught_despite_the_shortcut(baseline):
    env, _, rhs_old, spec, stimuli, certificate = baseline
    rhs_bad = _chain("incr")  # changes the I/O function: chain no longer ⊑ id-chain
    impl_bad = denote(rhs_bad.lower(), env)
    outcome = incremental_recheck(
        rhs_old, rhs_bad, env, impl_bad, spec, certificate, stimuli
    )
    # eligible or not, the incremental pass must never report holds
    assert not (outcome.eligible and outcome.result is not None and outcome.result.holds)
    full = find_weak_simulation(impl_bad, spec, stimuli)
    assert not full.holds


def test_checker_entry_point_reports_incremental_mode(baseline, tmp_path):
    env, lhs, rhs_old, _, _, _ = baseline
    cache = ResultCache(tmp_path)
    good = check_rewrite_obligation(lhs, rhs_old, env, cache=cache, spec_capacity=None)
    report = recheck_obligation_incremental(
        lhs, rhs_old, _chain("comp(id,id)"), env, good.certificate,
        cache=cache, spec_capacity=None,
    )
    assert report.mode == "recheck-incremental"
    assert "[recheck-incremental]" in report.summary()


def test_checker_entry_point_falls_back_to_search_on_breaking_edit(baseline, tmp_path):
    env, lhs, rhs_old, _, _, _ = baseline
    cache = ResultCache(tmp_path)
    good = check_rewrite_obligation(lhs, rhs_old, env, cache=cache, spec_capacity=None)
    with pytest.raises(RefinementError):
        recheck_obligation_incremental(
            lhs, rhs_old, _chain("incr"), env, good.certificate,
            cache=cache, spec_capacity=None,
        )


def test_incremental_agrees_with_full_search_on_library_obligations():
    """ISSUE 9 acceptance: agreement on every bundled (holding) obligation.

    An identity edit (old == new graph) makes every obligation eligible;
    the incremental verdict must match what the certificate already
    established, with zero entries re-validated (nothing was touched).
    """
    checked = 0
    for module, factory, kwargs in VERIFY_FACTORY_SPECS:
        rewrite = build_rewrite(module, factory, kwargs)
        if rewrite.obligation is None:
            continue
        for lhs, rhs, env, stimuli in rewrite.obligation():
            impl = denote(rhs.lower(), env)
            spec = denote(lhs.lower(), env.with_capacity(4))
            wanted = stimuli or uniform_stimuli(impl, (0, 1))
            full = find_weak_simulation(impl, spec, wanted)
            if not full.holds:
                continue  # documented refuted rewrites have no certificate
            outcome = incremental_recheck(
                rhs, rhs, env, impl, spec, full.certificate, wanted
            )
            assert outcome.eligible, f"{factory}: identity edit must be eligible"
            assert outcome.result.holds == full.holds, factory
            assert outcome.entries_validated == 0, factory
            checked += 1
    assert checked >= 10  # the library carries plenty of holding obligations
