"""The CLI exit-code contract: invalid arguments uniformly exit 2.

v1.7 fixed two drifts documented in the exit-code table of
``docs/api.md``: ``refine --rule`` with an unknown factory exited 1 via a
string ``SystemExit``, and a malformed ``--stimuli`` archive escaped as
an uncaught traceback.  Both, and the new ``serve`` flags, now follow the
table.
"""

import numpy as np
import pytest

from repro.cli import main


def test_unknown_rule_exits_2(capsys):
    assert main(["refine", "--rule", "no_such_rule"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err and "no_such_rule" in err


def test_unknown_rule_with_dump_certs_exits_2(tmp_path, capsys):
    code = main(
        ["refine", "--rule", "no_such_rule", "--dump-certs", str(tmp_path / "certs")]
    )
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_stimuli_file_exits_2(capsys):
    assert main(["sim", "matvec", "--stimuli", "/no/such/file.npz"]) == 2
    assert "--stimuli" in capsys.readouterr().err


def test_corrupt_stimuli_archive_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.npz"
    bad.write_bytes(b"this is not a zip archive")
    assert main(["sim", "matvec", "--stimuli", str(bad)]) == 2
    assert "--stimuli" in capsys.readouterr().err


def test_npy_instead_of_npz_exits_2(tmp_path, capsys):
    plain = tmp_path / "plain.npy"
    np.save(plain, np.zeros(3))
    assert main(["sim", "matvec", "--stimuli", str(plain)]) == 2
    assert "not an .npz archive" in capsys.readouterr().err


def test_stimuli_with_unknown_array_exits_2(tmp_path, capsys):
    archive = tmp_path / "wrong.npz"
    np.savez(archive, not_an_array=np.zeros(3))
    assert main(["sim", "matvec", "--stimuli", str(archive)]) == 2


@pytest.mark.parametrize(
    "argv",
    [
        ["serve", "--workers", "0"],
        ["serve", "--workers", "-2"],
        ["serve", "--port", "70000"],
        ["serve", "--port", "-1"],
        ["serve", "--max-pending", "0"],
        ["serve", "--job-timeout", "0"],
        ["serve", "--job-timeout", "-5"],
        ["serve", "--jobs", "0"],
    ],
)
def test_serve_flag_validation_exits_2(argv, capsys):
    assert main(argv) == 2
    assert "error:" in capsys.readouterr().err


def test_unknown_benchmark_exits_2(capsys):
    assert main(["bench", "definitely-not-a-benchmark"]) == 2
    assert main(["sim", "definitely-not-a-benchmark"]) == 2


def test_unknown_strategy_exits_2(tmp_path, capsys):
    dot = tmp_path / "x.dot"
    dot.write_text("digraph {}")
    code = main(
        ["transform", str(dot), "--mux", "m", "--branch", "b",
         "--init", "i", "--cond-fork", "cf", "--strategy", "alchemy"]
    )
    assert code == 2
