"""Bring your own kernel: define a new benchmark and evaluate it.

The downstream-user story: express a loop nest in the mini-IR, get the
four-flow evaluation (in-order dataflow, verified out-of-order, unverified
out-of-order, static schedule) for free — including functional checking
against the sequential interpreter.

The kernel here is a Horner-rule polynomial evaluation per data point:
an inner loop with a floating-point multiply-add recurrence (high II in
order), independent across points (pipelines out of order).

Run with:  python examples/custom_kernel.py
"""

import numpy as np

from repro.eval.runner import run_benchmark
from repro.hls.ir import (
    BinOp,
    Const,
    DoWhile,
    Kernel,
    Load,
    OuterLoop,
    Program,
    StoreOp,
    Var,
)


def horner_program(points: int = 24, degree: int = 12) -> Program:
    """y[i] = polynomial(x[i]) by Horner's rule, coefficients in c[]."""
    rng = np.random.default_rng(29)
    loop = DoWhile(
        name="horner",
        state=("acc", "k", "x", "i"),
        body={
            # acc = acc * x + c[k]  — the loop-carried fused recurrence
            "acc": BinOp(
                "fadd",
                BinOp("fmul", Var("acc"), Var("x")),
                Load("c", Var("k")),
            ),
            "k": BinOp("add", Var("k"), Const(1)),
            "x": Var("x"),
            "i": Var("i"),
        },
        condition=BinOp("lt", Var("k"), Const(degree)),
        result_vars=("acc", "i"),
    )
    kernel = Kernel(
        name="horner",
        loop=loop,
        outer=(OuterLoop("i", points),),
        init={
            "acc": Const(0.0),
            "k": Const(0),
            "x": Load("x", Var("i")),
            "i": Var("i"),
        },
        epilogue=(StoreOp("y", Var("i"), Var("acc")),),
        tags=16,
    )
    arrays = {
        "c": rng.standard_normal(degree).astype(np.float64),
        "x": rng.standard_normal(points).astype(np.float64),
        "y": np.zeros(points, dtype=np.float64),
    }
    return Program("horner", arrays, [kernel])


def main() -> None:
    program = horner_program()
    result = run_benchmark("horner", program)

    # Sanity: the circuits computed the actual polynomial.
    coefficients = program.arrays["c"]
    expected = np.array(
        [np.polyval(coefficients, x) for x in program.arrays["x"]]
    )
    np.testing.assert_allclose(program.arrays["y"], expected, atol=1e-9)
    print("polynomial results verified against numpy.polyval")
    print()
    print(f"{'flow':10s} {'cycles':>8s} {'CP(ns)':>8s} {'exec(ns)':>10s} {'LUT':>6s} {'FF':>6s}")
    for flow in ("DF-IO", "DF-OoO", "GRAPHITI", "Vericert"):
        fr = result[flow]
        print(
            f"{flow:10s} {fr.cycles:>8d} {fr.area.clock_period:>8.2f} "
            f"{fr.execution_time:>10.0f} {fr.area.luts:>6d} {fr.area.ffs:>6d}"
        )
    print()
    print(
        "the multiply-add recurrence serializes the in-order loop; "
        "16 tags let independent points share the FP pipeline"
    )


if __name__ == "__main__":
    main()
