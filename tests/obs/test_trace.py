"""End-to-end traces: golden transform trace, pool re-parenting, profile/metrics agreement."""

import json

import numpy as np
import pytest

from repro import obs
from repro.api import Session
from repro.components import default_environment
from repro.hls.frontend import compile_program
from repro.hls.ir import BinOp, DoWhile, Kernel, Load, OuterLoop, Program, StoreOp, UnOp, Var
from repro.obs import InMemorySink, JsonlSink, Tracer, render_tree


def gcd_program() -> Program:
    loop = DoWhile(
        "gcd",
        ("a", "b"),
        {"a": Var("b"), "b": BinOp("mod", Var("a"), Var("b"))},
        UnOp("ne0", Var("b")),
        ("a",),
    )
    kernel = Kernel(
        "gcd",
        loop,
        (OuterLoop("i", 2),),
        {"a": Load("x", Var("i")), "b": Load("y", Var("i"))},
        (StoreOp("out", Var("i"), Var("a")),),
        tags=2,
    )
    return Program(
        "gcd",
        {"x": np.array([12, 9]), "y": np.array([8, 6]), "out": np.zeros(2)},
        [kernel],
    )


@pytest.fixture
def tracer():
    with obs.use_tracer(Tracer()) as fresh:
        yield fresh


def transform_under_trace(tracer):
    program = gcd_program()
    ck = compile_program(program, default_environment()).kernels[0]
    session = Session(use_cache=False)
    result = session.transform(ck.graph, ck.mark)
    assert result.transformed
    return session, result


class TestGoldenTransformTrace:
    """The JSONL trace of a small gcd transform has a stable shape."""

    def test_jsonl_trace_structure(self, tracer, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer.attach(sink)
            transform_under_trace(tracer)

        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records, "trace is empty"
        by_id = {r["id"]: r for r in records}
        seen = set()
        for record in records:
            assert set(record) == {"id", "parent", "name", "seconds", "self_seconds", "attrs"}
            assert record["id"] not in seen
            if record["parent"] is not None:
                assert record["parent"] in seen
            seen.add(record["id"])

        # Golden structure: one transform root wrapping the pipeline, whose
        # phases appear exactly once each, in pipeline order.
        roots = [r for r in records if r["parent"] is None]
        assert [r["name"] for r in roots] == ["transform"]
        [pipeline] = [r for r in records if r["name"] == "pipeline:transform"]
        assert pipeline["parent"] == roots[0]["id"]
        phases = [
            r["name"]
            for r in records
            if r["parent"] == pipeline["id"] and r["name"].startswith("phase:")
        ]
        assert phases == [
            "phase:normalize",
            "phase:eliminate",
            "phase:purify",
            "phase:reorder",
            "phase:expand",
        ]
        # The purify phase consulted the e-graph oracle.
        assert any(r["name"] == "purify:oracle" for r in records)
        # Every applied rewrite span has its match/apply children.
        for record in records:
            if record["name"].startswith("rewrite:") and record["attrs"].get("applied"):
                children = {r["name"] for r in records if r["parent"] == record["id"]}
                if record["attrs"].get("scope") in ("full", "worklist"):
                    assert {"match", "apply"} <= children

    def test_profile_totals_agree_with_session_metrics(self, tracer):
        sink = tracer.attach(InMemorySink())
        session, result = transform_under_trace(tracer)
        snapshot = session.metrics()

        applied_spans = {}
        for root in sink.spans:
            for span in root.walk():
                if span.name.startswith("rewrite:") and span.attrs.get("applied"):
                    name = span.name.removeprefix("rewrite:")
                    applied_spans[name] = applied_spans.get(name, 0) + 1
        per_rewrite = {
            name: stats["applied"]
            for name, stats in snapshot.per_rewrite.items()
            if stats["applied"]
        }
        assert applied_spans == per_rewrite
        assert sum(applied_spans.values()) == snapshot.rewrites_applied
        assert snapshot.rewrites_applied == result.rewrites_applied

        # And the rendered profile mentions the pipeline phases.
        text = render_tree(sink.spans)
        assert "phase:purify" in text and "transform" in text


class TestPoolReparenting:
    def test_worker_spans_come_back_reparented(self, tracer, tmp_path):
        sink = tracer.attach(InMemorySink())
        specs = [
            ("repro.rewriting.rules.combine", "mux_combine", {}),
            ("repro.rewriting.rules.reduction", "split_join_elim", {}),
        ]
        session = Session(jobs=2, use_cache=False)
        outcomes = session.verify(specs)
        assert all(outcome["holds"] for outcome in outcomes)

        [root] = [r for r in sink.spans if r.name == "verify"]
        grafted = [
            span
            for span in root.walk()
            if span.attrs.get("reparented") and span.name.startswith("unit:verify:")
        ]
        # Both units ran in pool workers and shipped their subtrees back.
        assert {span.name for span in grafted} == {
            "unit:verify:mux-combine",
            "unit:verify:split-join-elim",
        }
        for span in grafted:
            assert span.attrs.get("mode") == "pool"
            inner = [s.name for s in span.walk()]
            assert any(name.startswith("verify:") for name in inner)

    def test_trace_file_includes_reparented_worker_spans(self, tracer, tmp_path):
        path = tmp_path / "verify.jsonl"
        with JsonlSink(path) as sink:
            tracer.attach(sink)
            session = Session(jobs=2, use_cache=False)
            session.verify(
                [
                    ("repro.rewriting.rules.combine", "mux_combine", {}),
                    ("repro.rewriting.rules.reduction", "split_join_elim", {}),
                ]
            )
        records = [json.loads(line) for line in path.read_text().splitlines()]
        reparented = [r for r in records if r["attrs"].get("reparented")]
        assert reparented, "no re-parented worker spans in the trace"
        assert all(r["parent"] is not None for r in reparented)
