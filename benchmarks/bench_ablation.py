"""Ablation benches: tag-count sweep and steering synchronisation cost.

Run with:  pytest benchmarks/bench_ablation.py --benchmark-only -s
"""

import pytest

from repro.eval.ablation import buffer_ablation, steering_comparison, tag_sweep


@pytest.fixture(scope="module")
def sweep():
    return tag_sweep()


def test_print_tag_sweep(sweep, once):
    print()
    print("matvec 16x16 tag-count ablation")
    print(f"{'tags':>5s}{'DF-IO':>9s}{'GRAPHITI':>10s}{'speedup':>9s}{'FFs':>8s}")
    for point in sweep:
        print(
            f"{point.tags:>5d}{point.df_io_cycles:>9d}{point.graphiti_cycles:>10d}"
            f"{point.speedup:>9.2f}{point.graphiti_ffs:>8d}"
        )


def test_more_tags_never_slower(sweep, once):
    cycles = [point.graphiti_cycles for point in sweep]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))


def test_more_tags_cost_ffs(sweep, once):
    ffs = [point.graphiti_ffs for point in sweep]
    assert ffs[-1] > ffs[0]


def test_speedup_saturates(sweep, once):
    """Beyond the loop depth, extra tags stop helping (diminishing returns)."""
    assert sweep[-1].graphiti_cycles == pytest.approx(sweep[-2].graphiti_cycles, rel=0.2)


def test_buffer_pairing_removes_bubbles(once):
    """Ablating the opaque+transparent channel pair: single-slot channels
    insert a handshake bubble on hops, costing cycles in both flows."""
    points = buffer_ablation()
    print()
    print("channel-sizing ablation (matvec 12x12)")
    for point in points:
        print(
            f"  {point.flow:8s} paired={point.paired_cycles:6d} "
            f"single={point.single_cycles:6d} penalty={point.bubble_penalty:.2f}x"
        )
    assert all(point.single_cycles >= point.paired_cycles for point in points)


def test_combined_steering_costs_cycles_not_area(results, once):
    """Section 6.2: Graphiti's synchronised data paths cost some cycles vs
    DF-OoO, but not clock period or area."""
    costs = []
    for name in ("matvec", "gemm", "mvt", "gsum-many"):
        comparison = steering_comparison(results[name])
        costs.append(comparison.synchronization_cost)
        assert comparison.graphiti_luts <= comparison.df_ooo_luts * 1.1
        assert (
            results[name]["GRAPHITI"].area.clock_period
            <= results[name]["DF-OoO"].area.clock_period * 1.1
        )
    assert all(cost <= 2.5 for cost in costs)
