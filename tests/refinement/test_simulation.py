"""Tests for the weak-simulation refinement checker (definitions 4.1-4.5)."""

import pytest

from repro.components import buffer, default_environment, fork, merge, pure
from repro.core import ExprHigh, denote
from repro.core.ports import IOPort
from repro.errors import RefinementError
from repro.refinement import (
    check_refinement,
    enumerate_traces,
    find_weak_simulation,
    refines,
    trace_inclusion,
    uniform_stimuli,
)


@pytest.fixture
def env():
    return default_environment(capacity=2)


def single_node_module(env, spec):
    g = ExprHigh()
    g.add_node("n", spec)
    for i, port in enumerate(spec.in_ports):
        g.mark_input(i, "n", port)
    for i, port in enumerate(spec.out_ports):
        g.mark_output(i, "n", port)
    return denote(g.lower(), env)


def buffer_chain_module(env, length):
    g = ExprHigh()
    for i in range(length):
        g.add_node(f"b{i}", buffer(slots=1))
    for i in range(length - 1):
        g.connect(f"b{i}", "out0", f"b{i+1}", "in0")
    g.mark_input(0, "b0", "in0")
    g.mark_output(0, f"b{length-1}", "out0")
    return denote(g.lower(), env)


class TestReflexivityAndBasics:
    def test_module_refines_itself(self, env):
        mod = single_node_module(env, fork(2))
        assert refines(mod, mod, uniform_stimuli(mod, (0, 1)))

    def test_interface_mismatch_fails(self, env):
        impl = single_node_module(env, fork(2))
        spec = single_node_module(env, buffer())
        result = find_weak_simulation(impl, spec, uniform_stimuli(impl, (0,)))
        assert not result.holds
        assert result.violation.kind == "interface"

    def test_missing_stimuli_rejected(self, env):
        mod = single_node_module(env, fork(2))
        with pytest.raises(RefinementError):
            find_weak_simulation(mod, mod, {})

    def test_certificate_relation_covers_init(self, env):
        mod = single_node_module(env, buffer())
        report = check_refinement(mod, mod, uniform_stimuli(mod, (0, 1)))
        for s0 in mod.init:
            assert report.certificate.related(s0, s0)


class TestBufferRefinements:
    def test_small_buffer_refines_big_buffer(self, env):
        small = single_node_module(env, buffer(slots=1))
        big = single_node_module(env, buffer(slots=2))
        assert refines(small, big, uniform_stimuli(small, (0, 1)))

    def test_big_buffer_does_not_refine_small(self, env):
        small = single_node_module(env, buffer(slots=1))
        big = single_node_module(env, buffer(slots=2))
        result = find_weak_simulation(big, small, uniform_stimuli(big, (0, 1)))
        assert not result.holds
        assert result.violation.kind == "input"

    def test_buffer_chain_refines_wide_buffer(self, env):
        chain = buffer_chain_module(env, 2)
        wide = single_node_module(env, buffer(slots=2))
        assert refines(chain, wide, uniform_stimuli(chain, (0, 1)))

    def test_wide_buffer_does_not_refine_chain(self, env):
        # Definition 4.1 forbids internal steps *before* an input: after the
        # chain's tail buffer emits, the pending token sitting in the head
        # buffer blocks immediate acceptance, so the chain cannot match a
        # 2-slot buffer that accepts two tokens back to back.  This is the
        # asymmetry the paper introduces to make the connect combinator
        # sound, observed on a concrete instance.
        chain = buffer_chain_module(env, 2)
        wide = single_node_module(env, buffer(slots=2))
        assert not refines(wide, chain, uniform_stimuli(wide, (0, 1)))


class TestFunctionalMismatch:
    def test_different_functions_do_not_refine(self, env):
        incr = single_node_module(env, pure("incr"))
        ident = single_node_module(env, pure("id"))
        result = find_weak_simulation(incr, ident, uniform_stimuli(incr, (0, 1)))
        assert not result.holds
        # The root cause is the output mismatch; depending on removal order
        # the violation surfaced at the initial pair may be the input step
        # that leads into the mismatching state.
        assert result.violation.kind in ("input", "output")

    def test_same_function_refines(self, env):
        a = single_node_module(env, pure("incr"))
        b = single_node_module(env, pure("incr"))
        assert refines(a, b, uniform_stimuli(a, (0, 1)))


class TestNondeterminism:
    def test_fifo_refines_merge_on_one_side(self, env):
        """A Merge that only ever receives tokens on one side acts like a
        queue; restricting the environment makes the refinement hold."""
        m = single_node_module(env, merge())
        stimuli = {IOPort(0): (1,), IOPort(1): ()}
        assert refines(m, m, stimuli)

    def test_merge_is_not_a_deterministic_left_merge(self, env):
        """The nondeterministic Merge does NOT refine a left-priority
        merge built from the same interface."""
        from repro.core.module import Module, io_module, enq, deq

        def in_side(index):
            def fire(state, value):
                queues = list(state)
                nxt = enq(queues[index], value, 2)
                if nxt is not None:
                    queues[index] = nxt
                    yield tuple(queues)

            return fire

        def out0(state):
            left_q, right_q = state
            popped = deq(left_q)
            if popped is not None:
                yield popped[0], (popped[1], right_q)
                return  # left priority: right only drains when left empty
            popped = deq(right_q)
            if popped is not None:
                yield popped[0], (left_q, popped[1])

        from repro.core.types import I32

        left_priority = io_module(
            inputs={IOPort(0): (I32, in_side(0)), IOPort(1): (I32, in_side(1))},
            outputs={IOPort(0): (I32, out0)},
            init=[((), ())],
        )
        nondet = single_node_module(env, merge())
        stimuli = {IOPort(0): ("L",), IOPort(1): ("R",)}
        assert refines(left_priority, nondet, stimuli)
        assert not refines(nondet, left_priority, stimuli)


class TestRefinementImpliesTraceInclusion:
    """The paper proves refinement implies trace inclusion; we check it on
    concrete instances by running both checkers and comparing verdicts."""

    @pytest.mark.parametrize("depth", [3, 4])
    def test_buffer_chain_traces_included(self, env, depth):
        chain = buffer_chain_module(env, 2)
        wide = single_node_module(env, buffer(slots=2))
        stimuli = uniform_stimuli(chain, (0, 1))
        assert refines(chain, wide, stimuli)
        assert trace_inclusion(chain, wide, stimuli, depth) is None

    def test_failed_refinement_has_trace_witness(self, env):
        incr = single_node_module(env, pure("incr"))
        ident = single_node_module(env, pure("id"))
        stimuli = uniform_stimuli(incr, (0,))
        assert not refines(incr, ident, stimuli)
        witness = trace_inclusion(incr, ident, stimuli, 3)
        assert witness is not None
        kinds = [event[0] for event in witness]
        assert kinds == ["in", "out"]


class TestTraceEnumeration:
    def test_empty_trace_always_present(self, env):
        mod = single_node_module(env, buffer())
        assert () in enumerate_traces(mod, uniform_stimuli(mod, (0,)), 2)

    def test_depth_zero_only_empty(self, env):
        mod = single_node_module(env, buffer())
        assert enumerate_traces(mod, uniform_stimuli(mod, (0,)), 0) == frozenset({()})

    def test_buffer_traces_are_fifo(self, env):
        mod = single_node_module(env, buffer(slots=2))
        traces = enumerate_traces(mod, uniform_stimuli(mod, (7, 8)), 4)
        bad = (
            ("in", IOPort(0), 7),
            ("in", IOPort(0), 8),
            ("out", IOPort(0), 8),
        )
        good = (
            ("in", IOPort(0), 7),
            ("in", IOPort(0), 8),
            ("out", IOPort(0), 7),
        )
        assert good in traces
        assert bad not in traces
