"""The algebra of derived pure functions used by Pure-generation rewrites.

Section 3.2 of the paper turns a loop body into a single Pure component by
composing the body's operators into one function.  The composition steps all
live in a small combinator language over registered base functions::

    f ::= <base name>                    (a function already registered)
        | id | dup | swap | assocl | assocr
        | tup(f)                         (uncurry an n-ary base function)
        | comp(f, g)                     (apply f, then g)
        | first(f) | second(f)           (map one half of a pair)
        | par(f, g)                      (map both halves)

Derived functions are registered in the environment under their canonical
textual form, so component strings mentioning them (``Pure{fn=comp(a,b)}``)
remain serialisable through dot files: :func:`ensure` re-creates the Python
callable from the name alone, given the base functions.
"""

from __future__ import annotations

from ..core.environment import Environment, FunctionDef
from ..errors import SemanticsError

_BUILTINS = {
    "id": (lambda x: x, 1),
    "dup": (lambda x: (x, x), 1),
    "swap": (lambda p: (p[1], p[0]), 1),
    "fst": (lambda p: p[0], 1),
    "snd": (lambda p: p[1], 1),
    "assocl": (lambda p: ((p[0], p[1][0]), p[1][1]), 1),  # (a,(b,c)) -> ((a,b),c)
    "assocr": (lambda p: (p[0][0], (p[0][1], p[1])), 1),  # ((a,b),c) -> (a,(b,c))
}


def ensure(env: Environment, name: str) -> FunctionDef:
    """Resolve *name* in the combinator language, registering it if needed.

    Consults the raw registry only (``Environment.function`` falls back to
    this resolver for combinator-shaped names, so going through it here
    would recurse).
    """
    existing = env.lookup_function(name)
    if existing is not None:
        return existing
    definition = _build(env, name)
    env.register_function(name, definition.fn, definition.arity)
    return env.lookup_function(name)  # type: ignore[return-value]


def _build(env: Environment, name: str) -> FunctionDef:
    name = name.strip()
    if name in _BUILTINS:
        fn, arity = _BUILTINS[name]
        return FunctionDef(name, fn, arity)
    head, args = _parse_call(name)
    if head is None:
        raise SemanticsError(f"unknown function {name!r} and it is not a combinator form")
    if head == "tup":
        (inner,) = args
        base = ensure(env, inner)
        return FunctionDef(name, lambda t, _b=base: _b.fn(*t), 1)
    if head == "comp":
        f_name, g_name = args
        f, g = ensure(env, f_name), ensure(env, g_name)
        return FunctionDef(name, lambda x, _f=f, _g=g: _g.fn(_f.fn(x)), 1)
    if head == "first":
        (inner,) = args
        f = ensure(env, inner)
        return FunctionDef(name, lambda p, _f=f: (_f.fn(p[0]), p[1]), 1)
    if head == "second":
        (inner,) = args
        f = ensure(env, inner)
        return FunctionDef(name, lambda p, _f=f: (p[0], _f.fn(p[1])), 1)
    if head == "par":
        f_name, g_name = args
        f, g = ensure(env, f_name), ensure(env, g_name)
        return FunctionDef(name, lambda p, _f=f, _g=g: (_f.fn(p[0]), _g.fn(p[1])), 1)
    if head.startswith("untree") and head[6:].isdigit():
        # untreeN(f): apply the N-ary base function f to a left-nested
        # tuple ((..(a, b).., y), z) — used for operators of arity > 2.
        arity = int(head[6:])
        (inner,) = args
        base = ensure(env, inner)

        def untree(value, _b=base, _n=arity):
            flat = []
            for _ in range(_n - 1):
                value, last = value
                flat.append(last)
            flat.append(value)
            flat.reverse()
            return _b.fn(*flat)

        return FunctionDef(name, untree, 1)
    raise SemanticsError(f"unknown combinator {head!r} in {name!r}")


def _parse_call(name: str) -> tuple[str | None, list[str]]:
    """Parse ``head(arg, arg)`` with nesting; (None, []) if not a call."""
    if "(" not in name or not name.endswith(")"):
        return None, []
    head, _, rest = name.partition("(")
    body = rest[:-1]
    args: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current or not args:
        args.append("".join(current).strip())
    return head.strip(), args


_SHUFFLE_ATOMS = frozenset({"id", "swap", "assocl", "assocr", "fst", "snd", "dup"})


def is_shuffle(name: str) -> bool:
    """Whether *name* only rearranges tuple structure (no computation).

    Shuffles are compositions of the structural builtins through comp /
    first / second / par — the function class the Reorg component of
    Table 1 is allowed to carry.
    """
    name = name.strip()
    if name in _SHUFFLE_ATOMS:
        return True
    head, args = _parse_call(name)
    if head in ("comp", "first", "second", "par"):
        return all(is_shuffle(arg) for arg in args)
    return False


def tup(base: str) -> str:
    return f"tup({base})"


def comp(f: str, g: str) -> str:
    """The function applying *f* first, then *g*."""
    if f == "id":
        return g
    if g == "id":
        return f
    return f"comp({f},{g})"


def first(f: str) -> str:
    return "id" if f == "id" else f"first({f})"


def second(f: str) -> str:
    return "id" if f == "id" else f"second({f})"


def par(f: str, g: str) -> str:
    if f == "id" and g == "id":
        return "id"
    return f"par({f},{g})"
