"""Tests for the DF-OoO (unverified) transformation."""

from collections import Counter

import numpy as np
import pytest

from repro.components import default_environment
from repro.hls.frontend import compile_program
from repro.hls.ir import (
    BinOp,
    Const,
    DoWhile,
    Kernel,
    Load,
    OuterLoop,
    Program,
    StoreOp,
    UnOp,
    Var,
)
from repro.hls.ooo import transform_out_of_order


def compiled_countdown(stores=()):
    loop = DoWhile(
        "count",
        ("n", "i"),
        {"n": BinOp("sub", Var("n"), Const(1)), "i": Var("i")},
        BinOp("lt", Const(0), Var("n")),
        ("n", "i"),
        stores=stores,
    )
    kernel = Kernel(
        "count",
        loop,
        (OuterLoop("i", 3),),
        {"n": BinOp("add", Var("i"), Const(1)), "i": Var("i")},
        (StoreOp("out", Var("i"), Var("n")),),
        tags=2,
    )
    program = Program("count", {"out": np.zeros(3)}, [kernel])
    env = default_environment()
    compiled = compile_program(program, env)
    return compiled.kernels[0]


class TestStructure:
    def test_muxes_become_merges(self):
        ck = compiled_countdown()
        result = transform_out_of_order(ck.graph, ck.mark)
        types = Counter(spec.typ for spec in result.nodes.values())
        assert types["Mux"] == 0
        assert types["Merge"] == len(ck.mark.mux_nodes)
        assert types["Init"] == 0
        assert types["Tagger"] == 1
        result.validate()

    def test_tagger_shape_covers_all_streams(self):
        ck = compiled_countdown()
        result = transform_out_of_order(ck.graph, ck.mark)
        tagger = next(s for s in result.nodes.values() if s.typ == "Tagger")
        enters = [p for p in tagger.in_ports if p.startswith("enter")]
        rets = [p for p in tagger.in_ports if p.startswith("ret")]
        assert len(enters) == 2  # one per state variable
        assert len(rets) == 2  # one per exit stream (both vars exported)
        assert tagger.param("tags") == ck.mark.tags

    def test_in_loop_components_tagged(self):
        ck = compiled_countdown()
        result = transform_out_of_order(ck.graph, ck.mark)
        branches = [s for s in result.nodes.values() if s.typ == "Branch"]
        assert branches and all(s.param("tagged") for s in branches)
        operators = [s for s in result.nodes.values() if s.typ == "Operator"]
        assert operators and all(s.param("tagged") for s in operators)

    def test_no_purity_check_performed(self):
        """DF-OoO transforms even an effectful loop — the unsoundness the
        paper discovered on bicg."""
        ck = compiled_countdown(stores=(StoreOp("out", Var("n"), Var("i")),))
        assert ck.mark.effectful
        result = transform_out_of_order(ck.graph, ck.mark)
        stores = [s for s in result.nodes.values() if s.typ == "Store"]
        assert stores and all(s.param("tagged") for s in stores)

    def test_original_graph_untouched(self):
        ck = compiled_countdown()
        before = dict(ck.graph.nodes)
        transform_out_of_order(ck.graph, ck.mark)
        assert ck.graph.nodes == before
