"""The executable-docs runner: fence extraction and execution semantics."""

import importlib.util
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "run_doc_examples.py"


@pytest.fixture(scope="module")
def tool():
    spec = importlib.util.spec_from_file_location("run_doc_examples", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["run_doc_examples"] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop("run_doc_examples", None)


class TestExtraction:
    def test_python_fence_is_extracted_with_line_number(self, tool):
        text = "intro\n\n```python\nx = 1\n```\n"
        blocks = tool.extract_blocks(text)
        assert len(blocks) == 1
        assert blocks[0].line == 3
        assert blocks[0].source == "x = 1\n"
        assert blocks[0].is_python and blocks[0].runnable

    def test_non_python_fences_are_not_python(self, tool):
        text = "```console\n$ ls\n```\n\n```\nplain\n```\n"
        blocks = tool.extract_blocks(text)
        assert len(blocks) == 2
        assert not any(block.is_python for block in blocks)

    def test_no_run_tag_marks_block_unrunnable(self, tool):
        text = "```python no-run\nimport nonexistent_module\n```\n"
        (block,) = tool.extract_blocks(text)
        assert block.is_python
        assert not block.runnable

    def test_indented_fence_is_dedented(self, tool):
        text = "- item:\n\n  ```python\n  x = 1\n  if x:\n      x += 1\n  ```\n"
        (block,) = tool.extract_blocks(text)
        assert block.source == "x = 1\nif x:\n    x += 1\n"

    def test_multiple_blocks_keep_document_order(self, tool):
        text = "```python\na = 1\n```\nmiddle\n```python\nb = a + 1\n```\n"
        blocks = tool.extract_blocks(text)
        assert [block.line for block in blocks] == [1, 5]


class TestExecution:
    def test_blocks_share_a_namespace_per_file(self, tool, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```python\nvalue = 21\n```\n\n```python\nassert value * 2 == 42\n```\n")
        ran, skipped, failures = tool.run_file(doc, verbose=False)
        assert (ran, skipped, failures) == (2, 0, [])

    def test_failure_reports_file_and_fence_line(self, tool, tmp_path, capsys):
        doc = tmp_path / "bad.md"
        doc.write_text("fine\n\n```python\nraise ValueError('boom')\n```\n")
        ran, skipped, failures = tool.run_file(doc, verbose=False)
        assert ran == 0
        assert failures == [f"{doc}:3"]
        err = capsys.readouterr().err
        assert "boom" in err
        assert "line 4" in err  # traceback points into the markdown file

    def test_no_run_blocks_are_skipped(self, tool, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```python no-run\nraise RuntimeError('never')\n```\n")
        ran, skipped, failures = tool.run_file(doc, verbose=False)
        assert (ran, skipped, failures) == (0, 1, [])

    def test_main_exit_codes(self, tool, tmp_path):
        good = tmp_path / "good.md"
        good.write_text("```python\nassert True\n```\n")
        bad = tmp_path / "bad.md"
        bad.write_text("```python\nassert False\n```\n")
        assert tool.main([str(good), "-q"]) == 0
        assert tool.main([str(good), str(bad), "-q"]) == 1
        assert tool.main([str(tmp_path / "missing.md")]) == 2
