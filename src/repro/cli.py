"""Command-line interface, the analogue of the paper's extracted tool.

Section 6.3: "As the rewriting algorithm is written in Lean 4, it can be
extracted to C, producing a command-line program that interfaces with the
Dynamatic dot graph format."  This module is that program for the Python
reproduction::

    python -m repro.cli transform circuit.dot --mux mux_a --mux mux_b \
        --branch br_a --branch br_b --init init0 --cond-fork cf0 --tags 8
    python -m repro.cli verify            # discharge every rewrite obligation
    python -m repro.cli bench matvec      # one benchmark, all four flows
    python -m repro.cli report            # the full Tables 2-3 + Figure 8 run

``transform`` reads a dot graph, runs the five-phase out-of-order pipeline
on the marked loop, and writes the rewritten dot graph (or reports the
refusal, e.g. for effectful loop bodies).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_transform(args: argparse.Namespace) -> int:
    from .components import default_environment
    from .dot import parse_dot, print_dot
    from .hls.frontend import LoopMark
    from .rewriting.pipeline import GraphitiPipeline

    graph = parse_dot(Path(args.input).read_text())
    mark = LoopMark(
        kernel=args.kernel,
        mux_nodes=args.mux,
        branch_nodes=args.branch,
        init_node=args.init,
        cond_fork=args.cond_fork,
        driver=args.driver or "",
        collector=args.collector or "",
        tags=args.tags,
        effectful=any(spec.typ == "Store" for spec in graph.nodes.values()),
        sequential_outer=False,
    )
    env = default_environment()
    pipeline = GraphitiPipeline(env, check_obligations=args.check)
    result = pipeline.transform_kernel(graph, mark)
    if not result.transformed:
        print(f"refused: {result.refusal}", file=sys.stderr)
        return 2
    output = print_dot(result.graph)
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output)
    print(
        f"applied {result.rewrites_applied} rewrites "
        f"(+{result.composition_steps} composition steps)",
        file=sys.stderr,
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from time import perf_counter

    from .errors import RefinementError
    from .rewriting.engine import RewriteEngine
    from .rewriting.rules import combine, loop_rewrite, pure_gen, reduction, shuffle

    factories = [
        combine.mux_combine,
        combine.merge_combine,
        combine.branch_combine,
        reduction.split_join_elim,
        reduction.join_split_elim,
        reduction.fork_sink_elim,
        reduction.pure_id_elim,
        pure_gen.op1_to_pure,
        pure_gen.op2_to_pure,
        pure_gen.fork_lift_pure,
        pure_gen.fork_to_pure,
        pure_gen.pure_compose,
        shuffle.join_pure_left,
        shuffle.join_pure_right,
        shuffle.split_pure_left,
        shuffle.split_pure_right,
        shuffle.join_assoc,
        shuffle.join_swap,
        lambda: loop_rewrite.ooo_loop(tags=2),
    ]
    engine = RewriteEngine()
    failures = 0
    for factory in factories:
        rewrite = factory()
        start = perf_counter()
        try:
            engine.verify_rewrite(rewrite)
            status = "verified"
        except RefinementError as exc:
            status = f"REFUTED ({exc})" if not rewrite.verified else f"FAILED ({exc})"
            if rewrite.verified:
                failures += 1
        print(f"{rewrite.name:20s} {status}  [{perf_counter() - start:.2f}s]")
    if failures:
        print(f"{failures} verified-marked rewrites failed", file=sys.stderr)
        return 1
    print("all verified rewrites discharged; unverified ones refuted as documented")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .eval.runner import run_benchmark

    result = run_benchmark(args.name)
    print(f"{'flow':10s} {'cycles':>9s} {'CP(ns)':>8s} {'exec(ns)':>11s} {'LUT':>6s} {'FF':>6s} {'DSP':>4s} ok")
    for flow in ("DF-IO", "DF-OoO", "GRAPHITI", "Vericert"):
        fr = result[flow]
        print(
            f"{flow:10s} {fr.cycles:>9d} {fr.area.clock_period:>8.2f} "
            f"{fr.execution_time:>11.0f} {fr.area.luts:>6d} {fr.area.ffs:>6d} "
            f"{fr.area.dsps:>4d} {fr.correct}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .eval.paper_data import BENCHMARKS
    from .eval.report import full_report
    from .eval.runner import run_benchmark

    names = args.benchmarks or list(BENCHMARKS)
    results = {}
    for name in names:
        print(f"running {name}...", file=sys.stderr)
        results[name] = run_benchmark(name)
    print(full_report(results))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    transform = sub.add_parser("transform", help="make a dot graph's loop out-of-order")
    transform.add_argument("input", help="input dot file")
    transform.add_argument("-o", "--output", help="output dot file (default: stdout)")
    transform.add_argument("--kernel", default="loop", help="loop name for diagnostics")
    transform.add_argument("--mux", action="append", required=True, help="loop Mux node (repeat)")
    transform.add_argument("--branch", action="append", required=True, help="loop Branch node (repeat)")
    transform.add_argument("--init", required=True, help="the loop's Init node")
    transform.add_argument("--cond-fork", required=True, help="the condition fork node")
    transform.add_argument("--driver", help="driver pseudo-node, if present")
    transform.add_argument("--collector", help="collector pseudo-node, if present")
    transform.add_argument("--tags", type=int, default=4, help="tag budget")
    transform.add_argument("--check", action="store_true", help="discharge obligations before applying")
    transform.set_defaults(fn=_cmd_transform)

    verify = sub.add_parser("verify", help="discharge every rewrite obligation")
    verify.set_defaults(fn=_cmd_verify)

    bench = sub.add_parser("bench", help="run one benchmark through all four flows")
    bench.add_argument("name", help="bicg | gemm | gsum-many | gsum-single | matvec | mvt")
    bench.set_defaults(fn=_cmd_bench)

    report = sub.add_parser("report", help="regenerate Tables 2-3 and Figure 8")
    report.add_argument("benchmarks", nargs="*", help="subset of benchmarks (default: all)")
    report.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
