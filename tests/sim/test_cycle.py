"""Tests for the cycle-level simulator."""

import numpy as np
import pytest

from repro.components import default_environment
from repro.errors import DeadlockError
from repro.hls.area import latency_of
from repro.hls.buffers import place_buffers
from repro.hls.frontend import compile_program
from repro.hls.ir import (
    BinOp,
    Const,
    DoWhile,
    Kernel,
    Load,
    OuterLoop,
    Program,
    StoreOp,
    UnOp,
    Var,
    run_program,
)
from repro.hls.ooo import transform_out_of_order
from repro.rewriting.pipeline import GraphitiPipeline
from repro.sim.cycle import Channel, CycleSimulator


def countdown_program(n_points=4):
    loop = DoWhile(
        "count",
        ("n", "i"),
        {"n": BinOp("sub", Var("n"), Const(1)), "i": Var("i")},
        BinOp("lt", Const(0), Var("n")),
        ("n", "i"),
    )
    kernel = Kernel(
        "count",
        loop,
        (OuterLoop("i", n_points),),
        {"n": BinOp("add", Var("i"), Const(1)), "i": Var("i")},
        (StoreOp("out", Var("i"), BinOp("add", Var("i"), Const(100))),),
        tags=2,
    )
    return Program("count", {"out": np.zeros(n_points)}, [kernel])


def simulate(program, transform=None):
    env = default_environment()
    compiled = compile_program(program, env)
    ck = compiled.kernels[0]
    if transform == "ooo":
        graph = transform_out_of_order(ck.graph, ck.mark)
        tags = ck.mark.tags
    elif transform == "graphiti":
        result = GraphitiPipeline(env).transform_kernel(ck.graph, ck.mark)
        assert result.transformed
        graph, tags = result.graph, ck.mark.tags
    else:
        graph, tags = ck.graph, None
    placement = place_buffers(graph, tags)
    sim = CycleSimulator(graph, env, ck.kernel, program.arrays, placement.capacities, latency_of)
    return sim.run()


class TestChannel:
    def test_capacity_respected(self):
        channel = Channel(capacity=2)
        channel.push(1)
        channel.push(2)
        assert not channel.can_push()

    def test_staged_values_invisible_until_commit(self):
        channel = Channel(capacity=2)
        channel.push("x")
        assert not channel.can_pop()
        channel.commit()
        assert channel.pop() == "x"

    def test_push_now_is_immediately_visible(self):
        channel = Channel(capacity=1)
        channel.push_now("x")
        assert channel.pop() == "x"


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("transform", [None, "ooo", "graphiti"])
    def test_matches_reference_interpreter(self, transform):
        program = countdown_program()
        reference = run_program(program, program.copy_arrays())
        stats = simulate(program, transform)
        np.testing.assert_allclose(program.arrays["out"], reference.arrays["out"])
        assert stats.results_collected == 4

    def test_store_history_in_order_for_in_order_flow(self):
        program = countdown_program()
        reference = run_program(program, program.copy_arrays())
        stats = simulate(program, None)
        assert [(a, i) for a, i, _ in stats.store_history] == [
            (a, i) for a, i, _ in reference.store_history
        ]


class TestPerformanceShape:
    def test_ooo_is_faster_than_in_order(self):
        """With a pipelined multi-cycle body, overlapping instances must cut
        the cycle count — the figure 2d vs 2e story."""
        loop = DoWhile(
            "fp",
            ("acc", "j", "i"),
            {
                "acc": BinOp("fadd", Var("acc"), Load("x", Var("j"))),
                "j": BinOp("add", Var("j"), Const(1)),
                "i": Var("i"),
            },
            BinOp("lt", Var("j"), Const(6)),
            ("acc", "i"),
        )
        kernel = Kernel(
            "fp",
            loop,
            (OuterLoop("i", 8),),
            {"acc": Const(0.0), "j": Const(0), "i": Var("i")},
            (StoreOp("y", Var("i"), Var("acc")),),
            tags=8,
        )
        program = Program(
            "fp", {"x": np.ones(6), "y": np.zeros(8)}, [kernel]
        )
        in_order = simulate(countdown_and_return(program), None).cycles
        out_of_order = simulate(countdown_and_return(program), "ooo").cycles
        graphiti = simulate(countdown_and_return(program), "graphiti").cycles
        assert out_of_order < in_order / 2
        assert graphiti < in_order

    def test_sequential_outer_prevents_overlap(self):
        loop = DoWhile(
            "fp",
            ("acc", "i"),
            {"acc": BinOp("fadd", Var("acc"), Const(1.0)), "i": Var("i")},
            BinOp("lt", Var("acc"), Const(3.0)),
            ("acc", "i"),
        )
        base = Kernel(
            "fp",
            loop,
            (OuterLoop("i", 6),),
            {"acc": Const(0.0), "i": Var("i")},
            (StoreOp("y", Var("i"), Var("acc")),),
            tags=4,
        )
        overlapped = Program("a", {"y": np.zeros(6)}, [base])
        serial = Program(
            "b",
            {"y": np.zeros(6)},
            [
                Kernel(
                    "fp",
                    loop,
                    base.outer,
                    base.init,
                    base.epilogue,
                    tags=4,
                    sequential_outer=True,
                )
            ],
        )
        fast = simulate(overlapped, "ooo").cycles
        slow = simulate(serial, "ooo").cycles
        assert slow > fast


def countdown_and_return(program):
    """Fresh copy of the arrays so repeated simulations start clean."""
    fresh = Program(program.name, program.copy_arrays(), program.kernels)
    return fresh


class TestDeadlockDetection:
    def test_starved_circuit_reports_deadlock(self):
        from repro.components import join
        from repro.core.exprhigh import ExprHigh

        # A Join with one input never supplied cannot make progress.  Two
        # outer points: the second needs a loop-back (n starts at 2), and
        # the severed loop-back starves it.
        program = countdown_program(2)
        env = default_environment()
        compiled = compile_program(program, env)
        ck = compiled.kernels[0]
        graph = ck.graph.copy()
        # Cut the loop-back of n: the mux will starve.
        src = graph.disconnect("mux_n", "in0")
        graph.add_node("stray", join())
        graph.connect(src.node, src.port, "stray", "in0")
        graph.connect("stray", "out0", "mux_n", "in0")
        # stray.in1 dangles: validate would fail, so simulate directly.
        sim = CycleSimulator(
            graph,
            env,
            ck.kernel,
            program.arrays,
            {},
            latency_of,
            deadlock_window=200,
        )
        with pytest.raises(DeadlockError):
            sim.run()
