"""Binary encoding primitives shared by certificate hashing and the codec.

Module states are nested tuples/frozensets over a handful of scalar leaf
types (see :func:`repro.refinement.simulation.encode_state`).  Two binary
views of a state are defined here:

* :func:`state_bytes` — a *standalone* canonical byte string per value.
  Used as the canonical sort key (state tables, frozenset element order)
  so every consumer agrees on one total order that does not depend on
  ``PYTHONHASHSEED``, process or construction history.

* :class:`NodeTable` — a *hash-consed* flat array of nodes, where every
  distinct subtree is encoded exactly once and composite nodes reference
  their children by index.  Certificate state tables share almost all of
  their substructure (product states differ in a few leaves), so the node
  table is both dramatically smaller than per-state encodings and much
  faster to decode: each distinct subtree is rebuilt once, and whole
  states become single index lookups.

Integers use unsigned LEB128 varints (zigzag for signed); the wire-level
container built on top of these lives in :mod:`repro.refinement.codec`.
"""

from __future__ import annotations

import struct

from ..errors import CertificateError

NODE_NONE = 0x00
NODE_FALSE = 0x01
NODE_TRUE = 0x02
NODE_INT = 0x03
NODE_FLOAT = 0x04
NODE_STR = 0x05
NODE_TUPLE = 0x06
NODE_FROZENSET = 0x07

_FLOAT = struct.Struct(">d")


def write_uvarint(out: bytearray, value: int) -> None:
    """Append *value* as an unsigned LEB128 varint."""
    if value < 0:
        raise CertificateError(f"cannot encode negative varint {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def uvarint(value: int) -> bytes:
    out = bytearray()
    write_uvarint(out, value)
    return bytes(out)


def read_uvarint(buf: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned varint at *pos*; returns ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise CertificateError("truncated varint in certificate data")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise CertificateError("oversized varint in certificate data")


def zigzag(value: int) -> int:
    return value << 1 if value >= 0 else ((-value) << 1) - 1


_zigzag_big = zigzag


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def state_bytes(value, memo: dict | None = None) -> bytes:
    """The standalone canonical binary encoding of one state value.

    Deterministic across processes: frozenset elements are ordered by
    their own encodings, never by hash.  *memo* (keyed by value) makes
    repeated encodings of shared substructure cheap; pass one dict per
    batch of related states.
    """
    if memo is not None:
        cached = memo.get(value) if _memoizable(value) else None
        if cached is not None:
            return cached
    out = bytearray()
    _write_state(out, value, memo)
    encoded = bytes(out)
    if memo is not None and _memoizable(value):
        memo[value] = encoded
    return encoded


def _memoizable(value) -> bool:
    return isinstance(value, (tuple, frozenset))


def _write_state(out: bytearray, value, memo: dict | None) -> None:
    if value is None:
        out.append(NODE_NONE)
    elif value is True:
        out.append(NODE_TRUE)
    elif value is False:
        out.append(NODE_FALSE)
    elif isinstance(value, bool):  # bool subclasses, defensively
        out.append(NODE_TRUE if value else NODE_FALSE)
    elif isinstance(value, int):
        out.append(NODE_INT)
        write_uvarint(out, _zigzag_big(value))
    elif isinstance(value, float):
        out.append(NODE_FLOAT)
        out += _FLOAT.pack(value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(NODE_STR)
        write_uvarint(out, len(data))
        out += data
    elif isinstance(value, tuple):
        out.append(NODE_TUPLE)
        write_uvarint(out, len(value))
        for item in value:
            out += state_bytes(item, memo)
    elif isinstance(value, frozenset):
        encoded = sorted(state_bytes(item, memo) for item in value)
        out.append(NODE_FROZENSET)
        write_uvarint(out, len(encoded))
        for item in encoded:
            out += item
    else:
        raise CertificateError(
            f"cannot serialise state component of type {type(value).__name__!r}"
        )


class NodeTable:
    """A hash-consed flat encoding of a set of state values.

    ``index(value)`` interns *value* (children first) and returns its node
    index; ``blob()`` is the concatenated node records.  Construction order
    is deterministic given the order of ``index`` calls, so two encoders
    fed the same canonical state sequence produce identical blobs.
    """

    __slots__ = ("records", "_memo", "_sort_memo")

    def __init__(self) -> None:
        self.records: list[bytes] = []
        self._memo: dict = {}
        self._sort_memo: dict = {}

    def __len__(self) -> int:
        return len(self.records)

    def index(self, value) -> int:
        idx = self._memo.get(value)
        if idx is not None:
            return idx
        out = bytearray()
        if value is None:
            out.append(NODE_NONE)
        elif value is True:
            out.append(NODE_TRUE)
        elif value is False:
            out.append(NODE_FALSE)
        elif isinstance(value, bool):
            out.append(NODE_TRUE if value else NODE_FALSE)
        elif isinstance(value, int):
            out.append(NODE_INT)
            write_uvarint(out, _zigzag_big(value))
        elif isinstance(value, float):
            out.append(NODE_FLOAT)
            out += _FLOAT.pack(value)
        elif isinstance(value, str):
            data = value.encode("utf-8")
            out.append(NODE_STR)
            write_uvarint(out, len(data))
            out += data
        elif isinstance(value, tuple):
            children = [self.index(item) for item in value]
            out.append(NODE_TUPLE)
            write_uvarint(out, len(children))
            for child in children:
                write_uvarint(out, child)
        elif isinstance(value, frozenset):
            items = sorted(value, key=lambda item: state_bytes(item, self._sort_memo))
            children = [self.index(item) for item in items]
            out.append(NODE_FROZENSET)
            write_uvarint(out, len(children))
            for child in children:
                write_uvarint(out, child)
        else:
            raise CertificateError(
                f"cannot serialise state component of type {type(value).__name__!r}"
            )
        idx = len(self.records)
        self.records.append(bytes(out))
        self._memo[value] = idx
        return idx

    def blob(self) -> bytes:
        return b"".join(self.records)


def decode_nodes(buf: bytes, pos: int, count: int, values: list) -> int:
    """Decode *count* node records at *pos*, appending each value to *values*.

    Composite nodes may only reference earlier indices (including any
    pre-existing entries of *values*, which lets a witness section extend a
    core table).  Returns the new position; raises
    :class:`CertificateError` on malformed data.
    """
    for _ in range(count):
        if pos >= len(buf):
            raise CertificateError("truncated node table in certificate data")
        tag = buf[pos]
        pos += 1
        if tag == NODE_NONE:
            values.append(None)
        elif tag == NODE_FALSE:
            values.append(False)
        elif tag == NODE_TRUE:
            values.append(True)
        elif tag == NODE_INT:
            raw, pos = read_uvarint(buf, pos)
            values.append(unzigzag(raw))
        elif tag == NODE_FLOAT:
            if pos + 8 > len(buf):
                raise CertificateError("truncated float node in certificate data")
            values.append(_FLOAT.unpack_from(buf, pos)[0])
            pos += 8
        elif tag == NODE_STR:
            length, pos = read_uvarint(buf, pos)
            if pos + length > len(buf):
                raise CertificateError("truncated string node in certificate data")
            try:
                values.append(buf[pos : pos + length].decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise CertificateError("invalid utf-8 in string node") from exc
            pos += length
        elif tag in (NODE_TUPLE, NODE_FROZENSET):
            length, pos = read_uvarint(buf, pos)
            limit = len(values)
            children = []
            for _ in range(length):
                child, pos = read_uvarint(buf, pos)
                if child >= limit:
                    raise CertificateError(
                        f"node references forward index {child} (have {limit})"
                    )
                children.append(values[child])
            values.append(tuple(children) if tag == NODE_TUPLE else frozenset(children))
        else:
            raise CertificateError(f"unknown node tag 0x{tag:02x} in certificate data")
    return pos


def read_uvarint_list(buf: bytes, pos: int, count: int) -> tuple[list[int], int]:
    values = []
    for _ in range(count):
        value, pos = read_uvarint(buf, pos)
        values.append(value)
    return values, pos
