"""Hierarchical spans and typed counters: the tracing core.

The observability substrate is deliberately zero-dependency and
allocation-free when idle: :func:`span` returns a shared no-op context
manager unless a sink is attached to the active tracer, so instrumented
hot paths (the rewrite engine, the matcher, the cycle simulator) pay one
attribute load and one truth test per call — measured ≤2% on
``benchmarks/bench_rewriting.py`` (see the ``--overhead-guard`` mode).

Concepts:

* a :class:`Span` is a named, timed region with attributes and children —
  ``span("transform") > span("phase:purify") > span("rewrite:mux-combine")``;
* a :class:`Tracer` owns the open-span stack, the attached sinks, and the
  always-on counters/gauges; closed *root* spans are emitted to every sink;
* worker processes record into their own tracer and serialise the subtree
  back with their results; the parent re-attaches it with :meth:`Tracer.graft`
  (the re-parented spans carry ``reparented: True`` and keep their in-worker
  durations — wall clocks of different processes are not comparable).

Timing uses the monotonic :func:`time.perf_counter`; only durations are
ever exported, never absolute timestamps.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator


class Span:
    """One named, timed region of work with attributes and child spans."""

    __slots__ = ("name", "attrs", "children", "start", "end", "_tracer")

    def __init__(self, name: str, attrs: dict | None = None, tracer: "Tracer | None" = None):
        self.name = name
        self.attrs: dict[str, Any] = attrs or {}
        self.children: list[Span] = []
        self.start: float | None = None
        self.end: float | None = None
        self._tracer = tracer

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            if tracer._stack:
                tracer._stack[-1].children.append(self)
            tracer._stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer = self._tracer
        if tracer is not None:
            tracer._stack.pop()
            if not tracer._stack:
                tracer._emit(self)
        return False

    # -- measurements -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def seconds(self) -> float:
        """Cumulative wall time (0.0 while the span is still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_seconds(self) -> float:
        """Cumulative time minus the children's cumulative times."""
        return max(0.0, self.seconds - sum(child.seconds for child in self.children))

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; chainable."""
        self.attrs.update(attrs)
        return self

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        """Nested dict form — what pool workers ship back to the parent."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @staticmethod
    def from_dict(data: dict) -> "Span":
        """Rebuild a closed span tree from :meth:`to_dict` output.

        Durations are preserved by pinning ``start`` to 0 and ``end`` to
        the recorded seconds — only relative times survive a process hop.
        """
        span = Span(str(data.get("name", "?")), dict(data.get("attrs", {})))
        span.start = 0.0
        span.end = float(data.get("seconds", 0.0))
        span.children = [Span.from_dict(child) for child in data.get("children", [])]
        return span

    def walk(self) -> Iterator["Span"]:
        """Yield the span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds:.6f}s, {len(self.children)} children)"


class _NoopSpan:
    """The shared do-nothing span handed out while no sink is attached."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    @property
    def seconds(self) -> float:
        return 0.0


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Owns the open-span stack, the sinks, and the counters/gauges.

    A tracer with no sinks is *inactive*: :meth:`span` returns the shared
    no-op span and records nothing.  Counters and gauges are always on —
    they are plain dict updates, cheap enough for every call site that
    bothers to count.
    """

    def __init__(self) -> None:
        self._stack: list[Span] = []
        self._sinks: list[Any] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}

    # -- activation ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when at least one sink is attached (spans are recorded)."""
        return bool(self._sinks)

    def attach(self, sink: Any) -> Any:
        """Attach a sink (an object with ``emit(span)``); returns it."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Any) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def _emit(self, root: Span) -> None:
        for sink in self._sinks:
            sink.emit(root)

    # -- spans ----------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span under the current one; no-op while inactive."""
        if not self._sinks:
            return _NOOP_SPAN
        return Span(name, attrs, tracer=self)

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def graft(self, data: dict, **attrs: Any) -> Span | None:
        """Re-parent a serialised span tree under the current open span.

        This is how spans recorded in a pool worker rejoin the parent's
        trace: the worker ships ``root.to_dict()`` back with its result,
        and the parent grafts it where the dispatching span is open.  The
        grafted root is marked ``reparented: True`` (its durations are
        in-worker wall times, not parent-clock intervals).  Returns the
        grafted span, or None while inactive.
        """
        if not self._sinks:
            return None
        span = Span.from_dict(data)
        span.attrs.update(attrs)
        span.attrs["reparented"] = True
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._emit(span)
        return span

    # -- counters / gauges ----------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment the named counter (always on, even with no sinks)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest observed value."""
        self.gauges[name] = value

    def reset(self) -> None:
        """Clear counters and gauges (the open-span stack is untouched)."""
        self.counters.clear()
        self.gauges.clear()


# -- the process-global and request-scoped tracers -----------------------------

_TRACER = Tracer()

#: Context-local override of the global tracer.  ``contextvars`` scoping is
#: per-thread and per-asyncio-task, which is exactly the isolation the
#: verification service needs: each job installs a fresh tracer in its
#: worker thread via :func:`scoped_tracer`, so counters recorded while the
#: job runs never bleed into concurrently executing jobs or the server's
#: own accounting.
_SCOPED_TRACER: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro_scoped_tracer", default=None
)


def get_tracer() -> Tracer:
    """The active tracer: the context-scoped one if set, else the global."""
    scoped = _SCOPED_TRACER.get()
    return _TRACER if scoped is None else scoped


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one.

    Does not touch any :func:`scoped_tracer` override active in other
    threads or tasks.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install *tracer* as the global one (tests, workers)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def scoped_tracer(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a *context-local* tracer for the current thread or task.

    Unlike :func:`use_tracer` (which swaps the process-global tracer and
    is therefore visible to every thread), the scoped tracer shadows the
    global one only within the installing context — other threads and
    asyncio tasks keep whatever they were using.  The verification
    service wraps every job execution in one of these, giving each
    request its own counters and span tree.
    """
    tracer = tracer if tracer is not None else Tracer()
    token = _SCOPED_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _SCOPED_TRACER.reset(token)


def span(name: str, **attrs: Any):
    """Open a span on the active tracer (no-op unless a sink is attached)."""
    scoped = _SCOPED_TRACER.get()
    tracer = _TRACER if scoped is None else scoped
    if not tracer._sinks:
        return _NOOP_SPAN
    return Span(name, attrs, tracer=tracer)


def count(name: str, n: int = 1) -> None:
    """Increment a counter on the active tracer."""
    scoped = _SCOPED_TRACER.get()
    (_TRACER if scoped is None else scoped).count(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active tracer."""
    scoped = _SCOPED_TRACER.get()
    (_TRACER if scoped is None else scoped).gauge(name, value)
