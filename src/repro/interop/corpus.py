"""Seeded random loop-nest programs fuzzing the whole flow.

The generator draws from the program class the paper's benchmarks live in
(see :mod:`repro.hls.ir`): an inner do-while reduction over affine array
walks, optionally guarded by an if-converted :class:`Select`, optionally
*effectful* (an in-body store, the bicg situation the pipeline must
refuse), optionally with dependent outer iterations.  Every draw is a
pure function of the case seed, so a corpus is reproducible from
``(seed, count)`` alone.

:func:`run_fuzz_case` is the differential tester: one generated program is

* round-tripped through both netlist formats (JSON + structural Verilog),
  requiring byte-identical re-serialisation;
* run through DF-IO, DF-OoO, and GRAPHITI
  (:func:`repro.eval.runner.run_flow`), each simulation checked against
  the sequential reference interpreter — values *and* per-array store
  order;
* checked against the pipeline's refusal contract: the Graphiti transform
  must refuse exactly the effectful loops.

A DF-OoO ordering violation is *recorded* (``ooo_divergence``) rather
than failing the case — exhibiting that bug on generated programs is the
point of the corpus.  :func:`corpus_manifest` folds case entries into a
canonical manifest with a content hash, so equal seeds produce
byte-identical manifests (the determinism test and the cache key both
rely on this).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

import numpy as np

from ..hls.ir import (
    BinOp,
    Const,
    DoWhile,
    Expr,
    Kernel,
    Load,
    OuterLoop,
    Program,
    Select,
    StoreOp,
    UnOp,
    Var,
)

#: The dataflow flows every fuzz case runs (Vericert is the reference
#: interpreter's twin and adds nothing to the differential check).
FUZZ_FLOWS = ("DF-IO", "DF-OoO", "GRAPHITI")

CORPUS_FORMAT = "graphiti-corpus"
CORPUS_VERSION = 1


@dataclass(frozen=True)
class CorpusCase:
    """One generated fuzz case: the program plus its expected properties."""

    seed: int
    program: Program
    effectful: bool
    sequential_outer: bool
    instances: int
    trip_count: int
    tags: int


def _float_expr(rng: random.Random, depth: int) -> Expr:
    """A random float expression over the loop's in-bounds array walks."""
    if depth <= 0:
        return rng.choice(
            (
                Load("A", Var("ai")),
                Load("x", Var("j")),
                Const(round(rng.uniform(-2.0, 2.0), 3)),
            )
        )
    op = rng.choice(("fadd", "fsub", "fmul"))
    return BinOp(op, _float_expr(rng, depth - 1), _float_expr(rng, rng.randint(0, depth - 1)))


def generate_program(seed: int) -> Program:
    """Generate one seeded loop-nest program (a pure function of *seed*)."""
    rng = random.Random(seed)
    instances = rng.randint(2, 4)
    trip = rng.randint(2, 6)
    effectful = rng.random() < 0.25
    sequential = not effectful and rng.random() < 0.15
    tags = rng.randint(2, 8)

    update = _float_expr(rng, rng.randint(1, 2))
    if rng.random() < 0.3:
        guard = UnOp("not", BinOp("lt", Load("x", Var("j")), Const(0.0)))
        update = Select(guard, update, Const(0.0))
    body = {
        "acc": BinOp(rng.choice(("fadd", "fsub")), Var("acc"), update),
        "j": BinOp("add", Var("j"), Const(1)),
        "ai": BinOp("add", Var("ai"), Const(1)),
        "i": Var("i"),
    }
    stores: tuple[StoreOp, ...] = ()
    if effectful:
        # s[i*trip + (j-1)] += acc on the *new* state (j ∈ 1..trip), the
        # bicg shape.  The slot is instance-private: consecutive in-order
        # instances legitimately pipeline, and the circuit model has no
        # load-store queue to order cross-instance accesses to shared
        # cells — but DF-OoO still reorders the *per-array* write sequence,
        # which is exactly the divergence the corpus exists to exhibit.
        slot = BinOp(
            "add", BinOp("mul", Var("i"), Const(trip)), BinOp("sub", Var("j"), Const(1))
        )
        stores = (StoreOp("s", slot, BinOp("fadd", Load("s", slot), Var("acc"))),)
    loop = DoWhile(
        name=f"fuzz{seed}_loop",
        state=("acc", "j", "ai", "i"),
        body=body,
        condition=BinOp("lt", Var("j"), Const(trip)),
        result_vars=("acc", "i"),
        stores=stores,
    )
    kernel = Kernel(
        name=f"fuzz{seed}",
        loop=loop,
        outer=(OuterLoop("i", instances),),
        init={
            "acc": Const(0.0),
            "j": Const(0),
            "ai": BinOp("mul", Var("i"), Const(trip)),
            "i": Var("i"),
        },
        epilogue=(StoreOp("y", Var("i"), Var("acc")),),
        tags=tags,
        sequential_outer=sequential,
    )
    data = np.random.default_rng(seed)
    arrays = {
        "A": data.standard_normal(instances * trip).astype(np.float64),
        "x": data.standard_normal(trip).astype(np.float64),
        "s": np.zeros(instances * trip, dtype=np.float64),
        "y": np.zeros(instances, dtype=np.float64),
    }
    return Program(f"fuzz-{seed}", arrays, [kernel])


def generate_case(seed: int) -> CorpusCase:
    """Generate a program together with its recorded draw properties."""
    program = generate_program(seed)
    kernel = program.kernels[0]
    return CorpusCase(
        seed=seed,
        program=program,
        effectful=kernel.loop.is_effectful(),
        sequential_outer=kernel.sequential_outer,
        instances=kernel.outer[0].count,
        trip_count=_const_bound(kernel.loop.condition),
        tags=kernel.tags,
    )


def _const_bound(condition: Expr) -> int:
    if isinstance(condition, BinOp) and isinstance(condition.right, Const):
        return int(condition.right.value)
    return -1


def case_seeds(seed: int, count: int) -> list[int]:
    """The per-case seeds of corpus ``(seed, count)`` — a deterministic
    stream, so extending a corpus keeps its prefix of cases."""
    stream = random.Random(seed)
    return [stream.randrange(2**32) for _ in range(count)]


def run_fuzz_case(seed: int, backend: str = "compiled") -> dict:
    """Run one differential fuzz case; returns a manifest entry dict."""
    from ..components import default_environment
    from ..eval.runner import run_flow
    from ..hls.frontend import compile_program
    from .netlist import dumps_netlist, loads_netlist
    from .verilog import dump_verilog, parse_verilog

    case = generate_case(seed)
    program = case.program
    failures: list[str] = []

    env = default_environment()
    compiled = compile_program(program, env)
    round_trip = {"json": True, "verilog": True}
    for ck in compiled.kernels:
        text = dumps_netlist(ck.graph, name=ck.kernel.name)
        recovered = loads_netlist(text)
        if recovered != ck.graph or dumps_netlist(recovered, name=ck.kernel.name) != text:
            round_trip["json"] = False
            failures.append(f"JSON netlist round-trip broke on {ck.kernel.name}")
        vtext = dump_verilog(ck.graph, name=ck.kernel.name)
        vname, vgraph = parse_verilog(vtext)
        if vgraph != ck.graph or dump_verilog(vgraph, name=vname) != vtext:
            round_trip["verilog"] = False
            failures.append(f"Verilog round-trip broke on {ck.kernel.name}")

    flows: dict[str, dict] = {}
    for flow in FUZZ_FLOWS:
        result = run_flow(program.name, flow, program=program, backend=backend)
        flows[flow] = {
            "cycles": int(result.cycles),
            "correct": bool(result.correct),
            "stores_in_order": bool(result.stores_in_order),
            "refused_loops": int(result.refused_loops),
        }

    if not flows["DF-IO"]["correct"] or not flows["DF-IO"]["stores_in_order"]:
        failures.append("DF-IO diverged from the sequential reference")
    graphiti = flows["GRAPHITI"]
    if not graphiti["correct"] or not graphiti["stores_in_order"]:
        failures.append("GRAPHITI diverged from the sequential reference")
    expected_refusals = 1 if case.effectful else 0
    if graphiti["refused_loops"] != expected_refusals:
        failures.append(
            f"pipeline refused {graphiti['refused_loops']} loops, "
            f"expected {expected_refusals} (effectful={case.effectful})"
        )
    ooo = flows["DF-OoO"]
    ooo_divergence = not (ooo["correct"] and ooo["stores_in_order"])
    if ooo_divergence and not case.effectful:
        failures.append("DF-OoO diverged on a store-free loop")

    return {
        "seed": int(seed),
        "name": program.name,
        "nodes": compiled.total_nodes(),
        "effectful": case.effectful,
        "sequential_outer": case.sequential_outer,
        "instances": case.instances,
        "trip_count": case.trip_count,
        "tags": case.tags,
        "round_trip": round_trip,
        "flows": flows,
        "ooo_divergence": ooo_divergence,
        "ok": not failures,
        "failures": failures,
    }


def corpus_manifest(entries: list[dict], *, seed: int, backend: str = "compiled") -> dict:
    """Fold case entries into the canonical corpus manifest.

    The manifest is a pure function of ``(seed, count, backend)`` plus the
    tool version: equal inputs serialise byte-identically
    (``json.dumps(manifest, indent=2, sort_keys=True)``).
    """
    from ..exec.hashing import fingerprint

    entries = list(entries)
    content_hash = fingerprint(
        "corpus", *[json.dumps(entry, sort_keys=True) for entry in entries]
    )
    return {
        "format": CORPUS_FORMAT,
        "version": CORPUS_VERSION,
        "seed": int(seed),
        "count": len(entries),
        "backend": backend,
        "ok": all(entry["ok"] for entry in entries),
        "ooo_divergences": sum(1 for entry in entries if entry["ooo_divergence"]),
        "effectful_cases": sum(1 for entry in entries if entry["effectful"]),
        "content_hash": content_hash,
        "cases": entries,
    }
