"""The rewriting engine: obligation checking, application, fixpoints.

The engine drives rewrites the way figure 1 of the paper describes: pick a
rewrite, run its matcher on the ExprHigh graph, apply it through ExprLow,
lift the result back, repeat.  Every application is logged; rewrites whose
refinement obligation has been discharged are tagged ``verified`` in the
log, so a pipeline's output carries the same guarantee structure as the
paper's (a verified core rewrite within a partially-unverified pipeline).

``apply_exhaustively`` runs a *dirty-region worklist*: once a rewrite has
been scanned against the whole graph without matching, it is only
re-matched against anchors in or near the nodes a subsequent application
touched.  Because any new match must involve a changed node (and the
matcher enumerates anchors in the same sorted order either way), the
worklist applies exactly the same rewrite sequence as the historical
whole-graph scan — it just skips the provably matchless work.  A final
full scan confirms the fixpoint before returning; ``use_worklist=False``
selects the original scan-everything loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Sequence

from .. import obs
from ..core.exprhigh import ExprHigh
from ..errors import RefinementError, RewriteError
from ..refinement.checker import check_rewrite_obligation
from .apply import Application, apply_rewrite
from .matcher import MatchStats, find_matches, first_match, match_plan
from .rewrite import Match, Rewrite


@dataclass
class RewriteStats:
    """Per-rewrite counters within one engine's lifetime."""

    applied: int = 0
    matches_tried: int = 0  # candidate bindings attempted by the matcher
    match_seconds: float = 0.0

    def merge(self, other: "RewriteStats") -> None:
        self.applied += other.applied
        self.matches_tried += other.matches_tried
        self.match_seconds += other.match_seconds

    def to_dict(self) -> dict:
        return {
            "applied": self.applied,
            "matches_tried": self.matches_tried,
            "match_seconds": self.match_seconds,
        }


@dataclass
class EngineStats:
    """Counters describing a rewriting run (cf. section 6.3)."""

    rewrites_applied: int = 0
    matches_tried: int = 0  # total candidate bindings attempted
    seconds: float = 0.0
    per_rewrite: dict[str, RewriteStats] = field(default_factory=dict)
    full_scans: int = 0  # whole-graph match scans during fixpoints
    worklist_scans: int = 0  # dirty-region-restricted match scans

    def for_rewrite(self, name: str) -> RewriteStats:
        entry = self.per_rewrite.get(name)
        if entry is None:
            entry = self.per_rewrite[name] = RewriteStats()
        return entry

    def merge(self, other: "EngineStats") -> None:
        """Fold *other* into this accumulator (session-level aggregation)."""
        self.rewrites_applied += other.rewrites_applied
        self.matches_tried += other.matches_tried
        self.seconds += other.seconds
        self.full_scans += other.full_scans
        self.worklist_scans += other.worklist_scans
        for name, entry in other.per_rewrite.items():
            self.for_rewrite(name).merge(entry)

    def to_dict(self) -> dict:
        return {
            "rewrites_applied": self.rewrites_applied,
            "matches_tried": self.matches_tried,
            "seconds": self.seconds,
            "full_scans": self.full_scans,
            "worklist_scans": self.worklist_scans,
            "per_rewrite": {
                name: entry.to_dict() for name, entry in sorted(self.per_rewrite.items())
            },
        }


class RewriteEngine:
    """Applies rewrites and tracks provenance and statistics."""

    def __init__(self, check_obligations: bool = False, cache=None):
        self.check_obligations = check_obligations
        self.cache = cache  # a repro.exec cache (ResultCache/NullCache), or None
        self.log: list[Application] = []
        self.stats = EngineStats()
        self._discharged: set[str] = set()

    # -- obligation discharge -------------------------------------------------

    def verify_rewrite(self, rewrite: Rewrite) -> bool:
        """Discharge the rewrite's refinement obligation on its instances.

        Returns True when every bounded instance of ``rhs ⊑ lhs`` holds;
        raises :class:`RefinementError` on a counterexample.  Results are
        cached per rewrite name within this engine, and — when the engine
        was given a result cache — across processes keyed by the content of
        the obligation instances, so an already-discharged obligation is
        never re-simulated.
        """
        if rewrite.name in self._discharged:
            return True
        if rewrite.obligation is None:
            raise RefinementError(
                f"rewrite {rewrite.name!r} has no obligation instances to check"
            )
        with obs.span(f"obligation:{rewrite.name}") as sp:
            instances = list(rewrite.obligation())
            sp.set(instances=len(instances))
            key = None
            if self.cache is not None:
                from ..exec.hashing import obligation_fingerprint

                key = obligation_fingerprint(rewrite.name, instances)
                entry = self.cache.get(key)
                if isinstance(entry, dict) and entry.get("holds"):
                    obs.count("engine.obligation_cache_hits")
                    sp.set(cached=True)
                    self._discharged.add(rewrite.name)
                    return True
            for lhs, rhs, env, stimuli in instances:
                check_rewrite_obligation(lhs, rhs, env, stimuli)
            if key is not None:
                self.cache.put(key, {"holds": True, "rewrite": rewrite.name})
        self._discharged.add(rewrite.name)
        return True

    # -- application ----------------------------------------------------------

    def apply_once(
        self,
        graph: ExprHigh,
        rewrite: Rewrite,
        anchors: Iterable[str] | None = None,
    ) -> ExprHigh | None:
        """Apply *rewrite* at its first match; None when it does not match.

        *anchors*, when given, restricts the match search to occurrences
        anchored at those host nodes (the worklist's dirty region).
        """
        start = perf_counter()
        entry = self.stats.for_rewrite(rewrite.name)
        with obs.span(
            f"rewrite:{rewrite.name}",
            scope="full" if anchors is None else "worklist",
        ) as sp:
            try:
                if self.check_obligations and rewrite.verified and rewrite.obligation is not None:
                    self.verify_rewrite(rewrite)
                mstats = MatchStats()
                match_start = perf_counter()
                with obs.span("match"):
                    match = first_match(graph, rewrite, anchors=anchors, stats=mstats)
                entry.match_seconds += perf_counter() - match_start
                entry.matches_tried += mstats.candidates
                self.stats.matches_tried += mstats.candidates
                sp.set(matches_tried=mstats.candidates, applied=match is not None)
                if anchors is None:
                    self.stats.full_scans += 1
                else:
                    self.stats.worklist_scans += 1
                if match is None:
                    return None
                with obs.span("apply"):
                    new_graph, application = apply_rewrite(graph, rewrite, match)
                self.log.append(application)
                self.stats.rewrites_applied += 1
                entry.applied += 1
                return new_graph
            finally:
                self.stats.seconds += perf_counter() - start

    def apply_at(self, graph: ExprHigh, rewrite: Rewrite, match: Match) -> ExprHigh:
        """Apply *rewrite* at a specific, externally chosen match."""
        start = perf_counter()
        with obs.span(f"rewrite:{rewrite.name}", scope="at", applied=True):
            try:
                if self.check_obligations and rewrite.verified and rewrite.obligation is not None:
                    self.verify_rewrite(rewrite)
                new_graph, application = apply_rewrite(graph, rewrite, match)
                self.log.append(application)
                self.stats.rewrites_applied += 1
                self.stats.for_rewrite(rewrite.name).applied += 1
                return new_graph
            finally:
                self.stats.seconds += perf_counter() - start

    def apply_exhaustively(
        self,
        graph: ExprHigh,
        rewrites: Sequence[Rewrite],
        max_steps: int = 10_000,
        use_worklist: bool = True,
    ) -> ExprHigh:
        """Apply the given rewrites to fixpoint, first-match-first order.

        This is the "exhaustively apply the applicable rewrites in that
        phase" strategy of section 3.1.  Raises :class:`RewriteError` when
        *max_steps* applications do not reach a fixpoint (a diverging rule
        set).  With *use_worklist* (the default) matching after the first
        full scan is restricted to dirty regions; the applied sequence and
        the result are identical to the whole-graph scan.
        """
        if not use_worklist:
            return self._apply_exhaustively_scan(graph, rewrites, max_steps)

        # One BFS radius covers every rewrite: a match involves nodes within
        # pattern-diameter hops of its anchor, plus one hop of boundary
        # context, so pattern-size + 1 hops of the changed nodes is enough
        # to reach every anchor whose matchability could have changed.
        radius = max((len(r.lhs.nodes) for r in rewrites), default=1) + 1
        # None: no cleanliness knowledge, scan everything.  A set: every
        # possible match is anchored inside it (empty = provably matchless).
        # Disconnected patterns always rescan — a far-away change can
        # complete a match anchored at an untouched node.
        track = [match_plan(r).connected for r in rewrites]
        dirty: list[set[str] | None] = [None] * len(rewrites)
        steps = 0
        confirming = False  # True while running the final full-scan sweep
        while True:
            for index, rewrite in enumerate(rewrites):
                anchors = dirty[index]
                if anchors is not None and not anchors:
                    continue  # provably matchless since the last scan
                new_graph = self.apply_once(graph, rewrite, anchors=anchors)
                if new_graph is None:
                    if track[index]:
                        dirty[index] = set()
                    continue
                graph = new_graph
                steps += 1
                if steps >= max_steps:
                    raise RewriteError(
                        f"no fixpoint after {max_steps} rewrite applications; "
                        f"rule set {[r.name for r in rewrites]} may diverge"
                    )
                application = self.log[-1]
                region = self._dirty_region(graph, application.new_nodes, radius)
                for j in range(len(rewrites)):
                    if dirty[j] is not None:
                        alive = {a for a in dirty[j] if a in graph.nodes}
                        dirty[j] = alive | region
                confirming = False
                break  # restart from the highest-priority rewrite
            else:
                # A full sweep without an application: every rewrite is
                # matchless.  Confirm once with unrestricted scans (defence
                # in depth for the dirty-region bookkeeping), then return.
                if confirming or all(d is None for d in dirty):
                    return graph
                dirty = [None] * len(rewrites)
                confirming = True

    def _apply_exhaustively_scan(
        self,
        graph: ExprHigh,
        rewrites: Sequence[Rewrite],
        max_steps: int,
    ) -> ExprHigh:
        """The pre-worklist strategy: re-scan the whole graph every step."""
        for _ in range(max_steps):
            for rewrite in rewrites:
                new_graph = self.apply_once(graph, rewrite)
                if new_graph is not None:
                    graph = new_graph
                    break
            else:
                return graph
        raise RewriteError(
            f"no fixpoint after {max_steps} rewrite applications; "
            f"rule set {[r.name for r in rewrites]} may diverge"
        )

    @staticmethod
    def _dirty_region(graph: ExprHigh, seeds: Iterable[str], radius: int) -> set[str]:
        """Nodes within *radius* hops of *seeds* (which are all dirty).

        Every crossing edge of an application re-attaches to a replacement
        node, so the replacement's ``new_nodes`` seed the BFS: any node
        whose neighbourhood changed is adjacent to one of them.
        """
        region = {name for name in seeds if name in graph.nodes}
        frontier = set(region)
        for _ in range(radius):
            if not frontier:
                break
            grown = set()
            for node in frontier:
                for neighbour in graph.adjacent_nodes(node):
                    if neighbour not in region:
                        region.add(neighbour)
                        grown.add(neighbour)
            frontier = grown
        return region

    def matches(self, graph: ExprHigh, rewrite: Rewrite) -> Iterable[Match]:
        return find_matches(graph, rewrite)

    def verified_fraction(self) -> float:
        """Fraction of logged applications that used verified rewrites."""
        if not self.log:
            return 1.0
        return sum(1 for a in self.log if a.verified) / len(self.log)
