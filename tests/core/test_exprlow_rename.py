"""Tests for direction-aware port renaming on ExprLow."""

from repro.core.exprlow import Base, Connect, Product, rename_ports
from repro.core.ports import InternalPort, IOPort, sequential_map


def base(name, n_in=1, n_out=1):
    return Base(
        "Buffer",
        sequential_map(name, [f"in{i}" for i in range(n_in)]),
        sequential_map(name, [f"out{i}" for i in range(n_out)]),
    )


class TestRenamePorts:
    def test_renames_base_targets(self):
        expr = base("a")
        renamed = rename_ports(
            expr,
            {InternalPort("a", "in0"): IOPort(7)},
            {InternalPort("a", "out0"): IOPort(8)},
        )
        assert renamed.dangling_inputs() == frozenset({IOPort(7)})
        assert renamed.dangling_outputs() == frozenset({IOPort(8)})

    def test_directions_are_independent(self):
        """The same name may be an input on one side and an output on the
        other; renaming must not conflate them."""
        expr = Base(
            "Buffer",
            sequential_map("a", ["x"]),
            sequential_map("b", ["x"]),  # output named b.x
        )
        renamed = rename_ports(
            expr,
            {InternalPort("a", "x"): IOPort(0)},
            {InternalPort("a", "x"): IOPort(9)},  # no output has this name
        )
        assert renamed.dangling_inputs() == frozenset({IOPort(0)})
        assert renamed.dangling_outputs() == frozenset({InternalPort("b", "x")})

    def test_connect_endpoints_renamed(self):
        expr = Connect(
            InternalPort("a", "out0"),
            InternalPort("b", "in0"),
            Product(base("a"), base("b")),
        )
        renamed = rename_ports(
            expr,
            {InternalPort("b", "in0"): InternalPort("b", "renamed_in")},
            {InternalPort("a", "out0"): InternalPort("a", "renamed_out")},
        )
        assert list(renamed.connections()) == [
            (InternalPort("a", "renamed_out"), InternalPort("b", "renamed_in"))
        ]

    def test_unmapped_ports_untouched(self):
        expr = Product(base("a"), base("b"))
        renamed = rename_ports(expr, {}, {})
        assert renamed == expr
