"""The matvec benchmark end to end, with a tag-count sweep.

Shows the evaluation-section story on one kernel: DF-IO vs the verified
out-of-order circuit, plus how the tag budget trades throughput against
flip-flop cost (the Table 3 matvec discussion).

Run with:  python examples/matvec_pipeline.py
"""

from repro.benchmarks import matvec
from repro.eval.runner import run_benchmark
from repro.hls.ir import Kernel, Program


def with_tags(program: Program, tags: int) -> Program:
    kernel = program.kernels[0]
    replaced = Kernel(
        name=kernel.name,
        loop=kernel.loop,
        outer=kernel.outer,
        init=kernel.init,
        epilogue=kernel.epilogue,
        tags=tags,
        sequential_outer=kernel.sequential_outer,
    )
    return Program(program.name, program.copy_arrays(), [replaced])


def main() -> None:
    n = 16
    base = matvec(n)
    print(f"matvec {n}x{n}: cycle count and area vs tag budget")
    print(f"{'tags':>5s} {'DF-IO':>8s} {'GRAPHITI':>9s} {'speedup':>8s} {'FFs':>7s}")
    for tags in (2, 4, 8, 16, 32):
        result = run_benchmark("matvec", with_tags(base, tags))
        io = result["DF-IO"]
        graphiti = result["GRAPHITI"]
        print(
            f"{tags:>5d} {io.cycles:>8d} {graphiti.cycles:>9d} "
            f"{io.cycles / graphiti.cycles:>8.2f} {graphiti.area.ffs:>7d}"
        )
    print()
    print("more tags -> more overlapped rows -> fewer cycles, more flip-flops")


if __name__ == "__main__":
    main()
