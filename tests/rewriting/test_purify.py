"""Edge-case tests for the region purifier."""

import pytest

from repro.components import (
    default_environment,
    fork,
    join,
    merge,
    mux,
    operator,
    pure,
    sink,
    split,
    store,
)
from repro.core.exprhigh import Endpoint, ExprHigh
from repro.rewriting.purify import (
    PurityError,
    Region,
    check_region_pure,
    compose_region,
    discover_region,
)


def tiny_loop(body_builder):
    """A minimal loop skeleton: mux -> [body] -> branch/cond-fork."""
    from repro.components import branch, init

    g = ExprHigh()
    g.add_node("mx", mux())
    g.add_node("br", branch())
    g.add_node("cf", fork(2))
    g.add_node("ini", init(value=False))
    entry, data_exit, cond_exit = body_builder(g)
    g.connect("mx", "out0", entry.node, entry.port)
    g.connect(data_exit.node, data_exit.port, "br", "in0")
    g.connect(cond_exit.node, cond_exit.port, "cf", "in0")
    g.connect("cf", "out0", "br", "cond")
    g.connect("cf", "out1", "ini", "in0")
    g.connect("ini", "out0", "mx", "cond")
    g.connect("br", "out0", "mx", "in0")
    g.mark_input(0, "mx", "in1")
    g.mark_output(0, "br", "out1")
    return g


def pure_body(g):
    g.add_node("body", pure("gcd_step"))
    g.add_node("sp", split())
    g.connect("body", "out0", "sp", "in0")
    return Endpoint("body", "in0"), Endpoint("sp", "out0"), Endpoint("sp", "out1")


class TestDiscoverRegion:
    def test_finds_the_body(self):
        g = tiny_loop(pure_body)
        region = discover_region(g, "mx", "br", "cf")
        assert set(region.nodes) == {"body", "sp"}
        assert region.entry == Endpoint("body", "in0")
        assert region.data_exit == Endpoint("sp", "out0")
        assert region.cond_exit == Endpoint("sp", "out1")

    def test_composes_the_body_function(self):
        env = default_environment()
        g = tiny_loop(pure_body)
        region = discover_region(g, "mx", "br", "cf")
        term, steps = compose_region(g, region, env)
        fn = env.function(term)
        assert fn((12, 8)) == ((8, 4), True)
        # Two node compositions plus however many oracle rule applications.
        assert steps >= 2


class TestPurityRefusals:
    def test_store_refused(self):
        g = ExprHigh()
        g.add_node("st", store())
        with pytest.raises(PurityError):
            check_region_pure(g, Region(["st"], None, None, None))

    def test_steering_refused(self):
        g = ExprHigh()
        g.add_node("m", merge())
        with pytest.raises(PurityError, match="non-functional"):
            check_region_pure(g, Region(["m"], None, None, None))

    def test_cycle_in_body_refused(self):
        env = default_environment()

        def cyclic_body(g):
            # Two joins feeding each other through a split: a body cycle.
            g.add_node("j1", join())
            g.add_node("s1", split())
            g.connect("j1", "out0", "s1", "in0")
            g.connect("s1", "out1", "j1", "in1")
            g.add_node("sp2", split())
            g.connect("s1", "out0", "sp2", "in0")
            return Endpoint("j1", "in0"), Endpoint("sp2", "out0"), Endpoint("sp2", "out1")

        g = tiny_loop(cyclic_body)
        region = discover_region(g, "mx", "br", "cf")
        with pytest.raises(PurityError, match="cycle"):
            compose_region(g, region, env)


class TestPurifyObligation:
    def test_gcd_purify_rewrite_is_verifiable(self):
        """The purifier's computed rewrite carries a dischargeable
        obligation: Pure{composed}; Split refines the GCD body region on a
        bounded instance — so even the 'unverified' purify application can
        be checked per instance when the user asks for it."""
        from repro.core.ports import IOPort
        from repro.refinement.checker import check_rewrite_obligation
        from repro.rewriting.purify import purify_rewrite as build

        env = default_environment(capacity=1)
        g = tiny_loop(pure_body)
        region = discover_region(g, "mx", "br", "cf")
        rewrite, match, _ = build(g, region, env)
        report = check_rewrite_obligation(
            rewrite.lhs,
            rewrite.rhs(match),
            env,
            {IOPort(0): ((4, 2), (3, 2))},
        )
        assert report.certificate.relation


class TestCompositionShapes:
    def test_sink_consumes_one_stream(self):
        env = default_environment()

        def body_with_sink(g):
            g.add_node("fk", fork(2))
            g.add_node("snk", sink())
            g.add_node("body", pure("gcd_step"))
            g.add_node("sp", split())
            g.connect("fk", "out1", "snk", "in0")
            g.connect("fk", "out0", "body", "in0")
            g.connect("body", "out0", "sp", "in0")
            return Endpoint("fk", "in0"), Endpoint("sp", "out0"), Endpoint("sp", "out1")

        g = tiny_loop(body_with_sink)
        region = discover_region(g, "mx", "br", "cf")
        term, _ = compose_region(g, region, env)
        fn = env.function(term)
        assert fn((9, 6)) == ((6, 3), True)

    def test_three_input_operator_untreed(self):
        env = default_environment()
        env.register_function("clamp", lambda lo, x, hi: max(lo, min(x, hi)), 3)

        def body_select(g):
            g.add_node("fk1", fork(2))
            g.add_node("fk2", fork(2))
            g.add_node("fk3", fork(2))
            g.add_node("op", operator("clamp", 3))
            g.add_node("done", operator("eq0", 1))
            g.add_node("jn", join())
            g.connect("fk1", "out0", "op", "in0")
            g.connect("fk1", "out1", "fk2", "in0")
            g.connect("fk2", "out0", "op", "in1")
            g.connect("fk2", "out1", "fk3", "in0")
            g.connect("fk3", "out0", "op", "in2")
            g.connect("fk3", "out1", "done", "in0")
            g.connect("op", "out0", "jn", "in0")
            g.connect("done", "out0", "jn", "in1")
            g.add_node("sp", split())
            g.connect("jn", "out0", "sp", "in0")
            return Endpoint("fk1", "in0"), Endpoint("sp", "out0"), Endpoint("sp", "out1")

        g = tiny_loop(body_select)
        region = discover_region(g, "mx", "br", "cf")
        term, _ = compose_region(g, region, env)
        fn = env.function(term)
        value, cond = fn(5)
        assert value == 5  # clamp(5, 5, ...) with duplicated wires
        assert cond is False  # eq0(5)
