"""Compiled simulation engine vs the per-component interpreter.

Run standalone (``python benchmarks/bench_sim.py``) to measure, for a
table-2-style buffer-placement sweep over several benchmark circuits,

* the **interpreted** path — one :class:`repro.sim.cycle.CycleSimulator`
  per placement, rebuilt from the graph every time (the pre-v1.5 API), and
* the **compiled** path — :func:`repro.sim.compiled.compile_circuit` lowers
  the graph once, then ``run_batch`` replays every placement through the
  same :class:`CompiledCircuit`, retargeting channel capacities in place
  (the incremental-recompile path),

and append an entry to ``benchmarks/BENCH_sim.json``.  Both paths must
report byte-identical cycle counts on every (circuit, placement) pair —
the sweep aborts if they diverge.

``--guard --min-speedup 5`` is the CI mode: it exits 1 unless the
aggregate sweep (total interpreted seconds over total compiled seconds)
clears the given factor, or if any cycle count differs between backends.
"""

#: (benchmark, constructor kwargs, flows swept).  In-order circuits
#: dominate interpreter wall-time, which is exactly where lowering pays
#: off most; the tagged flows keep the aligner/tagger fast paths honest.
_SWEEP = [
    ("matvec", {"n": 24}, ("DF-IO", "DF-OoO", "GRAPHITI")),
    ("gemm", {"n": 10}, ("DF-IO", "GRAPHITI")),
    ("gsum-many", {"instances": 4, "per_instance": 240}, ("DF-IO", "GRAPHITI")),
]

#: Widen every placed buffer by these amounts — one simulated run per
#: widening, mimicking the table-2 capacity-sensitivity sweep.
_WIDENINGS = (0, 1, 2, 4)


def _best_of(repeats, fn):
    from time import perf_counter

    best = float("inf")
    value = None
    for _ in range(repeats):
        start = perf_counter()
        value = fn()
        best = min(best, perf_counter() - start)
    return best, value


def _build_unit(name, kwargs, flow):
    """(program, env, kernel, graph, placements) for one sweep unit."""
    from repro.benchmarks import gemm, gsum_many, matvec
    from repro.components import default_environment
    from repro.hls.buffers import place_buffers
    from repro.hls.frontend import compile_program
    from repro.hls.ooo import transform_out_of_order
    from repro.rewriting.pipeline import GraphitiPipeline

    factories = {"matvec": matvec, "gemm": gemm, "gsum-many": gsum_many}
    program = factories[name](**kwargs)
    env = default_environment()
    ck = compile_program(program, env).kernels[0]
    if flow == "DF-OoO":
        graph, tags = transform_out_of_order(ck.graph, ck.mark), ck.mark.tags
    elif flow == "GRAPHITI":
        outcome = GraphitiPipeline(env).transform_kernel(ck.graph, ck.mark)
        assert outcome.transformed, f"pipeline refused {name}"
        graph, tags = outcome.graph, ck.mark.tags
    else:
        graph, tags = ck.graph, None
    base = place_buffers(graph, tags).capacities
    placements = [
        {edge: cap + widen for edge, cap in base.items()} for widen in _WIDENINGS
    ]
    return program, env, ck.kernel, graph, placements


def collect_measurements(repeats: int = 1) -> dict:
    """Time the placement sweep on both backends, unit by unit.

    Cycle counts are carried into the result so the guard (and the JSON
    history) can show the two engines agree bit-for-bit, not just fast.
    """
    from repro.hls.area import latency_of
    from repro.sim.compiled import BatchRun, compile_circuit
    from repro.sim.dispatch import simulate_graph

    results = {}
    for name, kwargs, flows in _SWEEP:
        for flow in flows:
            program, env, kernel, graph, placements = _build_unit(name, kwargs, flow)

            def interp_sweep():
                return [
                    simulate_graph(
                        graph, env, kernel, program.arrays,
                        capacities=caps, latency_of=latency_of, backend="interp",
                    ).cycles
                    for caps in placements
                ]

            def compiled_sweep():
                circuit = compile_circuit(
                    graph, env, kernel,
                    capacities=placements[0], latency_of=latency_of,
                )
                runs = [
                    BatchRun(arrays=program.arrays, capacities=caps)
                    for caps in placements
                ]
                return [stats.cycles for stats in circuit.run_batch(runs)]

            interp_seconds, interp_cycles = _best_of(repeats, interp_sweep)
            compiled_seconds, compiled_cycles = _best_of(repeats, compiled_sweep)
            results[f"{name}/{flow}"] = {
                "placements": len(placements),
                "cycles": compiled_cycles,
                "cycles_match": compiled_cycles == interp_cycles,
                "interp_seconds": round(interp_seconds, 6),
                "compiled_seconds": round(compiled_seconds, 6),
                "speedup": round(interp_seconds / compiled_seconds, 2),
            }
    return results


def _aggregate(measurements: dict) -> dict:
    interp = sum(row["interp_seconds"] for row in measurements.values())
    compiled = sum(row["compiled_seconds"] for row in measurements.values())
    return {
        "interp_seconds": round(interp, 6),
        "compiled_seconds": round(compiled, 6),
        "speedup": round(interp / compiled, 2),
        "cycles_match": all(row["cycles_match"] for row in measurements.values()),
    }


def _append_history(entry: dict) -> None:
    import json
    from pathlib import Path

    out = Path(__file__).with_name("BENCH_sim.json")
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(entry, indent=2))


def main(argv=None) -> int:
    import argparse

    from repro._version import __version__

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--guard",
        action="store_true",
        help="exit 1 unless the aggregate sweep speedup clears --min-speedup "
        "and every cycle count matches between backends",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required interp/compiled ratio in guard mode (default: 5.0)",
    )
    parser.add_argument("--repeats", type=int, default=1, help="best-of repeats")
    args = parser.parse_args(argv)

    measurements = collect_measurements(repeats=args.repeats)
    aggregate = _aggregate(measurements)
    _append_history(
        {"tool_version": __version__, "sweeps": measurements, "aggregate": aggregate}
    )

    if args.guard:
        if not aggregate["cycles_match"]:
            mismatched = [
                name for name, row in measurements.items() if not row["cycles_match"]
            ]
            print(f"FAIL: backends disagree on cycle counts: {mismatched}")
            return 1
        if aggregate["speedup"] < args.min_speedup:
            print(
                f"FAIL: aggregate sweep speedup {aggregate['speedup']:g}x "
                f"below {args.min_speedup:g}x"
            )
            return 1
        print(
            f"OK: aggregate sweep speedup {aggregate['speedup']:g}x, "
            "cycle counts identical on every placement"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
