"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.components import default_environment
from repro.dot import parse_dot, print_dot
from repro.hls.frontend import compile_program
from repro.hls.ir import BinOp, Const, DoWhile, Kernel, Load, OuterLoop, Program, StoreOp, UnOp, Var


@pytest.fixture
def loop_dot(tmp_path):
    """A compiled GCD kernel written out as dot, plus its loop mark."""
    loop = DoWhile(
        "gcd",
        ("a", "b"),
        {"a": Var("b"), "b": BinOp("mod", Var("a"), Var("b"))},
        UnOp("ne0", Var("b")),
        ("a",),
    )
    kernel = Kernel(
        "gcd",
        loop,
        (OuterLoop("i", 2),),
        {"a": Load("x", Var("i")), "b": Load("y", Var("i"))},
        (StoreOp("out", Var("i"), Var("a")),),
        tags=2,
    )
    program = Program(
        "gcd",
        {"x": np.array([12, 9]), "y": np.array([8, 6]), "out": np.zeros(2)},
        [kernel],
    )
    env = default_environment()
    compiled = compile_program(program, env)
    ck = compiled.kernels[0]
    path = tmp_path / "gcd.dot"
    path.write_text(print_dot(ck.graph))
    return path, ck.mark


class TestTransform:
    def test_transform_writes_tagged_graph(self, loop_dot, tmp_path, capsys):
        path, mark = loop_dot
        out = tmp_path / "out.dot"
        code = main(
            [
                "transform",
                str(path),
                "-o",
                str(out),
                "--mux",
                mark.mux_nodes[0],
                "--mux",
                mark.mux_nodes[1],
                "--branch",
                mark.branch_nodes[0],
                "--branch",
                mark.branch_nodes[1],
                "--init",
                mark.init_node,
                "--cond-fork",
                mark.cond_fork,
                "--tags",
                "2",
            ]
        )
        assert code == 0
        result = parse_dot(out.read_text())
        types = {spec.typ for spec in result.nodes.values()}
        assert "Tagger" in types
        assert "Mux" not in types

    def test_transform_refuses_effectful_loop(self, tmp_path, capsys):
        # A graph containing a Store is flagged effectful and refused.
        loop = DoWhile(
            "st",
            ("n", "i"),
            {"n": BinOp("sub", Var("n"), Const(1)), "i": Var("i")},
            BinOp("lt", Const(0), Var("n")),
            ("n",),
            stores=(StoreOp("log", Var("n"), Var("i")),),
        )
        kernel = Kernel("st", loop, (OuterLoop("i", 1),), {"n": Const(2), "i": Var("i")})
        program = Program("st", {"log": np.zeros(4)}, [kernel])
        env = default_environment()
        ck = compile_program(program, env).kernels[0]
        path = tmp_path / "st.dot"
        path.write_text(print_dot(ck.graph))
        code = main(
            [
                "transform",
                str(path),
                "--mux",
                ck.mark.mux_nodes[0],
                "--mux",
                ck.mark.mux_nodes[1],
                "--branch",
                ck.mark.branch_nodes[0],
                "--branch",
                ck.mark.branch_nodes[1],
                "--init",
                ck.mark.init_node,
                "--cond-fork",
                ck.mark.cond_fork,
            ]
        )
        assert code == 2
        assert "refused" in capsys.readouterr().err


class TestBench:
    def test_bench_prints_all_flows(self, capsys, monkeypatch):
        # Shrink the benchmark so the CLI smoke test stays fast.  bench now
        # goes through the Session/executor path, whose unit of work is
        # run_flow (one benchmark under one flow).
        import repro.eval.runner as runner
        from repro.benchmarks import matvec

        original = runner.run_flow
        monkeypatch.setattr(
            runner,
            "run_flow",
            lambda name, flow, program=None, **kw: original(name, flow, matvec(6), **kw),
        )
        code = main(["bench", "matvec", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        for flow in ("DF-IO", "DF-OoO", "GRAPHITI", "Vericert"):
            assert flow in out


class TestObservabilityFlags:
    def _transform_args(self, loop_dot, tmp_path, extra):
        path, mark = loop_dot
        return [
            "transform",
            str(path),
            "-o",
            str(tmp_path / "out.dot"),
            "--mux",
            mark.mux_nodes[0],
            "--mux",
            mark.mux_nodes[1],
            "--branch",
            mark.branch_nodes[0],
            "--branch",
            mark.branch_nodes[1],
            "--init",
            mark.init_node,
            "--cond-fork",
            mark.cond_fork,
            "--tags",
            "2",
            "--no-cache",
            *extra,
        ]

    def test_profile_prints_span_tree(self, loop_dot, tmp_path, capsys):
        code = main(self._transform_args(loop_dot, tmp_path, ["--profile"]))
        assert code == 0
        err = capsys.readouterr().err
        assert "transform" in err and "phase:purify" in err
        assert "total" in err and "self" in err  # the tree header
        assert "units" in err  # the metrics summary line

    def test_trace_writes_parseable_jsonl(self, loop_dot, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        code = main(self._transform_args(loop_dot, tmp_path, ["--trace", str(trace)]))
        assert code == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(r["name"] == "pipeline:transform" for r in records)
        ids = {r["id"] for r in records}
        assert all(r["parent"] in ids for r in records if r["parent"] is not None)

    def test_trace_with_missing_parent_rejected(self, capsys):
        assert main(["verify", "--trace", "/no/such/dir/trace.jsonl"]) == 2
        assert "--trace parent directory" in capsys.readouterr().err


class TestExecFlagValidation:
    """Bad executor flags exit with code 2 before any work is dispatched."""

    def test_jobs_zero_rejected(self, capsys):
        assert main(["bench", "matvec", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_jobs_negative_rejected(self, capsys):
        assert main(["report", "--jobs", "-3"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_cache_dir_with_missing_parent_rejected(self, tmp_path, capsys):
        missing = tmp_path / "no" / "such" / "cache"
        assert main(["verify", "--cache-dir", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "--cache-dir parent directory" in err
        assert str(missing.parent) in err

    def test_cache_dir_with_existing_parent_accepted(self, tmp_path, capsys, monkeypatch):
        # The cache dir itself need not exist — only its parent must.
        import repro.eval.runner as runner
        from repro.benchmarks import matvec

        original = runner.run_flow
        monkeypatch.setattr(
            runner,
            "run_flow",
            lambda name, flow, program=None, **kw: original(name, flow, matvec(6), **kw),
        )
        code = main(["bench", "matvec", "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
