"""The paper's running example: out-of-order GCD (figures 2 and 4).

Compiles the inlined array-GCD program of figure 2a to a dataflow circuit,
runs the five-phase Graphiti pipeline to obtain the tagged out-of-order
circuit of figure 2c, and compares the execution traces (figures 2d/2e):
the in-order circuit cannot pipeline the modulo unit, the out-of-order one
can.

Run with:  python examples/gcd_ooo.py
"""

import numpy as np

from repro.benchmarks import load_benchmark  # noqa: F401  (same API family)
from repro.components import default_environment
from repro.eval.runner import run_benchmark
from repro.hls.ir import (
    BinOp,
    DoWhile,
    Kernel,
    Load,
    OuterLoop,
    Program,
    StoreOp,
    UnOp,
    Var,
)


def gcd_program(n: int = 12) -> Program:
    rng = np.random.default_rng(3)
    loop = DoWhile(
        name="gcd",
        state=("a", "b", "i"),
        body={
            "a": Var("b"),
            "b": BinOp("mod", Var("a"), Var("b")),
            "i": Var("i"),
        },
        condition=UnOp("ne0", Var("b")),
        result_vars=("a", "i"),
    )
    kernel = Kernel(
        name="gcd",
        loop=loop,
        outer=(OuterLoop("i", n),),
        init={
            "a": Load("arr1", Var("i")),
            "b": Load("arr2", Var("i")),
            "i": Var("i"),
        },
        epilogue=(StoreOp("result", Var("i"), Var("a")),),
        tags=6,
    )
    arrays = {
        "arr1": rng.integers(10, 4000, n),
        "arr2": rng.integers(10, 4000, n),
        "result": np.zeros(n, dtype=np.int64),
    }
    return Program("gcd", arrays, [kernel])


def main() -> None:
    program = gcd_program()
    result = run_benchmark("gcd", program)

    expected = [
        int(np.gcd(a, b)) for a, b in zip(program.arrays["arr1"], program.arrays["arr2"])
    ]
    print("GCDs:", expected)
    print()
    print(f"{'flow':10s} {'cycles':>8s} {'CP(ns)':>8s} {'exec(ns)':>10s} correct")
    for flow in ("DF-IO", "DF-OoO", "GRAPHITI", "Vericert"):
        fr = result[flow]
        print(
            f"{flow:10s} {fr.cycles:>8d} {fr.area.clock_period:>8.2f} "
            f"{fr.execution_time:>10.0f} {fr.correct}"
        )
    speedup = result["DF-IO"].cycles / result["GRAPHITI"].cycles
    print()
    print(
        f"figure 2d vs 2e: the tagged circuit pipelines the modulo unit, "
        f"{speedup:.1f}x fewer cycles than the sequential loop"
    )

    # The actual execution traces of figures 2d and 2e: when is the modulo
    # unit busy?  Sparse pulses in order, back-to-back out of order.
    from repro.eval.runner import simulate_flow
    from repro.sim.trace import render_timeline

    print()
    for flow, figure in (("DF-IO", "figure 2d (in-order)"), ("GRAPHITI", "figure 2e (out-of-order)")):
        stats, trace, graph = simulate_flow(gcd_program(), flow)
        mod_nodes = [
            name
            for name, spec in graph.nodes.items()
            if spec.typ == "Operator" and str(spec.param("op")).startswith("mod")
        ]
        print(figure)
        print(
            render_timeline(
                trace, mod_nodes, end=min(stats.cycles, 128), width=64,
                labels={mod_nodes[0]: "mod unit"}, initiations_only=True,
            )
        )
        print(
            f"  utilization: {trace.utilization(mod_nodes[0], stats.cycles):.0%}, "
            f"measured II: {sorted(set(trace.initiation_intervals(mod_nodes[0])))[:4]}"
        )
        print()


if __name__ == "__main__":
    main()
