"""The Tagger/Untagger component (Table 1 and section 3.3 of the paper).

A single component owns both ends of a tagged region:

* input ``in0`` accepts an untagged token, allocates the smallest free tag
  out of ``tags`` available ones, and offers the (tag, value) pair on
  output ``out0`` into the region;
* input ``in1`` accepts a (tag, value) pair coming back from the region —
  possibly out of program order;
* output ``out1`` re-establishes program order: it only emits the value
  whose tag is the *oldest still-allocated* tag, then frees that tag.

The component therefore enforces exactly the contract used in the section 5
proof: tags are unique while allocated (*no-duplication*), allocation order
is remembered (*in-order*), and results are released oldest-first.
"""

from __future__ import annotations

from typing import Iterator

from ..core.environment import Environment
from ..core.module import Module, State, Value, deq, enq, io_module
from ..core.ports import IOPort
from ..core.types import I32, TaggedType, Type
from ..errors import SemanticsError


def build_tagger(params: dict, env: Environment) -> Module:
    """Build the Tagger/Untagger module.

    State: ``(order, out_q, done)`` where *order* is the queue of allocated
    tags (oldest at the end), *out_q* queues freshly tagged tokens awaiting
    emission into the region, and *done* is a frozenset of completed
    (tag, value) pairs awaiting in-order release.
    """
    tags = int(params.get("tags", 4))
    if tags <= 0:
        raise SemanticsError(f"Tagger requires a positive tag count, got {tags}")
    cap = env.capacity
    inner = params.get("type")
    inner_type: Type = inner if isinstance(inner, Type) else I32
    tagged_type = TaggedType(inner_type)

    def in0(state: State, value: Value) -> Iterator[State]:
        order, out_q, done = state  # type: ignore[misc]
        used = set(order)
        free = [t for t in range(tags) if t not in used]
        if not free:
            return
        tag = free[0]
        new_order = enq(order, tag)
        new_out = enq(out_q, (tag, value), cap)
        if new_out is None:
            return
        yield (new_order, new_out, done)

    def out0(state: State) -> Iterator[tuple[Value, State]]:
        order, out_q, done = state  # type: ignore[misc]
        popped = deq(out_q)
        if popped is None:
            return
        value, rest = popped
        yield value, (order, rest, done)

    def in1(state: State, value: Value) -> Iterator[State]:
        order, out_q, done = state  # type: ignore[misc]
        tag, _ = value  # type: ignore[misc]
        if tag not in order:
            return
        if any(t == tag for t, _ in done):  # type: ignore[misc]
            return
        yield (order, out_q, done | {value})  # type: ignore[operator]

    def out1(state: State) -> Iterator[tuple[Value, State]]:
        order, out_q, done = state  # type: ignore[misc]
        if not order:
            return
        oldest = order[-1]
        for tag, value in done:  # type: ignore[misc]
            if tag == oldest:
                yield value, (order[:-1], out_q, done - {(tag, value)})  # type: ignore[operator]
                return

    return io_module(
        inputs={IOPort(0): (inner_type, in0), IOPort(1): (tagged_type, in1)},
        outputs={IOPort(0): (tagged_type, out0), IOPort(1): (inner_type, out1)},
        init=[((), (), frozenset())],
    )
