"""Session lifecycle (close / context manager) and the keyword-only shim."""

import pytest

from repro import Session
from repro.benchmarks import matvec
from repro.errors import GraphitiError
from repro.exec.executor import Executor, ExecutorError, WorkUnit
from repro.hls.frontend import compile_program

SPEC = [("repro.rewriting.rules.combine", "mux_combine", {})]


def _compiled(session):
    return compile_program(matvec(4), session.env).kernels[0]


# -- close() / context manager ------------------------------------------------


def test_context_manager_closes():
    with Session(use_cache=False) as session:
        assert not session.closed
    assert session.closed
    assert session.executor.closed


def test_close_is_idempotent():
    session = Session(use_cache=False)
    session.close()
    session.close()
    assert session.closed


@pytest.mark.parametrize(
    "call",
    [
        lambda s, ck: s.transform(graph=ck.graph, mark=ck.mark),
        lambda s, ck: s.simulate(graph_or_kernel=ck, stimuli=matvec(4).arrays),
        lambda s, ck: s.bench(name="matvec"),
        lambda s, ck: s.verify(SPEC),
        lambda s, ck: s.check_obligations(SPEC),
    ],
)
def test_closed_session_refuses_work(call):
    session = Session(use_cache=False)
    ck = _compiled(session)
    session.close()
    with pytest.raises(GraphitiError, match="closed"):
        call(session, ck)


def test_metrics_still_readable_after_close():
    session = Session(use_cache=False)
    session.verify(SPEC)
    session.close()
    assert session.metrics().units >= 1  # inspection is not work dispatch


# -- the positional deprecation shim -----------------------------------------


def test_positional_transform_warns_and_works():
    with Session(use_cache=False) as session:
        ck = _compiled(session)
        with pytest.warns(DeprecationWarning, match="graph=.*mark="):
            legacy = session.transform(ck.graph, ck.mark)
        modern = session.transform(graph=ck.graph, mark=ck.mark)
    assert legacy.to_dict() == modern.to_dict()


def test_positional_simulate_warns_and_works():
    program = matvec(4)
    with Session(use_cache=False) as session:
        ck = _compiled(session)
        with pytest.warns(DeprecationWarning, match="graph_or_kernel="):
            legacy = session.simulate(ck, stimuli=program.arrays)
        modern = session.simulate(graph_or_kernel=ck, stimuli=program.arrays)
    assert legacy.to_dict() == modern.to_dict()


def test_positional_bench_warns_and_works():
    with Session(use_cache=False) as session:
        with pytest.warns(DeprecationWarning, match="name="):
            legacy = session.bench("matvec")
        modern = session.bench(name="matvec")
    assert legacy.to_dict() == modern.to_dict()


def test_keyword_calls_do_not_warn(recwarn):
    import warnings

    with Session(use_cache=False) as session:
        ck = _compiled(session)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.transform(graph=ck.graph, mark=ck.mark)


def test_mixing_positional_and_keyword_is_an_error():
    with Session(use_cache=False) as session:
        ck = _compiled(session)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                session.transform(ck.graph, graph=ck.graph, mark=ck.mark)


def test_too_many_positionals_is_an_error():
    with Session(use_cache=False) as session:
        ck = _compiled(session)
        with pytest.raises(TypeError, match="positional"):
            session.transform(ck.graph, ck.mark, "fixpoint")


def test_missing_required_keywords_raise_typeerror():
    with Session(use_cache=False) as session:
        with pytest.raises(TypeError, match="graph="):
            session.transform()
        with pytest.raises(TypeError, match="graph_or_kernel="):
            session.simulate(stimuli={})
        with pytest.raises(TypeError, match="name="):
            session.bench()


# -- the persistent executor pool --------------------------------------------


def test_executor_pool_persists_across_runs():
    units = [
        WorkUnit(uid=f"u{i}", fn="repro.exec.workers:eval_flow", payload={})
        for i in range(0)
    ]
    executor = Executor(jobs=2)
    try:
        assert executor._pool is None
        executor.run(units)  # empty batch: still no pool
        assert executor._pool is None
        pool = executor._ensure_pool()
        assert executor._ensure_pool() is pool  # reused, not rebuilt
    finally:
        executor.close()
    assert executor.closed and executor._pool is None


def test_closed_executor_refuses_batches():
    executor = Executor(jobs=1)
    executor.close()
    with pytest.raises(ExecutorError, match="closed"):
        executor.run([])


def test_executor_context_manager():
    with Executor(jobs=1) as executor:
        assert not executor.closed
    assert executor.closed
