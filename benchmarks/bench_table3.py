"""Regenerate Table 3: LUT, FF and DSP counts.

Run with:  pytest benchmarks/bench_table3.py --benchmark-only -s
"""

import pytest

from repro.eval import paper_data
from repro.eval.report import dsp_table, ff_table, lut_table


def test_print_table3(results, once):
    print()
    print(lut_table(results).render())
    print()
    print(ff_table(results).render())
    print()
    print(dsp_table(results).render())


@pytest.mark.parametrize("name", paper_data.BENCHMARKS)
def test_dsp_counts_match_paper_exactly(results, once, name):
    """The DSP model is exact: fmul=5, int mul=1, Vericert shares one fmul."""
    assert results[name]["Vericert"].area.dsps == paper_data.PAPER_DSPS[name]["Vericert"]
    measured = results[name]["DF-IO"].area.dsps
    assert measured == results[name]["GRAPHITI"].area.dsps == results[name]["DF-OoO"].area.dsps


@pytest.mark.parametrize("name", paper_data.BENCHMARKS)
def test_area_ordering(results, once, name):
    flows = results[name]
    assert flows["Vericert"].area.luts < flows["DF-IO"].area.luts
    if name != "bicg":  # bicg: Graphiti == DF-IO (refused rewrite)
        assert flows["GRAPHITI"].area.ffs > flows["DF-IO"].area.ffs


def test_matvec_ff_blowup(results, once):
    """Table 3's standout: 50 tags inflate matvec's FF count ~5-6x."""
    ratio = results["matvec"]["GRAPHITI"].area.ffs / results["matvec"]["DF-IO"].area.ffs
    assert ratio > 3.0
