"""Integration: every generated circuit is well-typed (section 6.3).

The paper's bridge between the parametric proof environment and concrete
graphs is well-typedness; here we deduce types for every benchmark circuit
in every flow — untagged, Graphiti-transformed, and DF-OoO-transformed —
including the tag-wrapping consistency inside tagged regions.
"""

import pytest

from repro.benchmarks import bicg, gemm, gsum_many, gsum_single, matvec, mvt
from repro.components import default_environment
from repro.core.typecheck import typecheck
from repro.hls.frontend import compile_program
from repro.hls.ooo import transform_out_of_order
from repro.rewriting.pipeline import GraphitiPipeline

SMALL = {
    "matvec": lambda: matvec(6),
    "mvt": lambda: mvt(5),
    "bicg": lambda: bicg(5),
    "gemm": lambda: gemm(4),
    "gsum-single": lambda: gsum_single(16),
    "gsum-many": lambda: gsum_many(2, 8),
}


@pytest.mark.parametrize("name", sorted(SMALL))
def test_all_flows_well_typed(name):
    program = SMALL[name]()
    env = default_environment()
    compiled = compile_program(program, env)
    for ck in compiled.kernels:
        assert typecheck(ck.graph)
        assert typecheck(transform_out_of_order(ck.graph, ck.mark))
        outcome = GraphitiPipeline(env).transform_kernel(ck.graph, ck.mark)
        assert typecheck(outcome.graph)
