"""Netlist interop: byte-identical round-trips through both formats.

The acceptance bar from the interop design (docs/interop.md): every
built-in kernel graph round-trips through the JSON netlist schema *and*
the structural-Verilog subset with ``import(export(g)) == g`` and
byte-identical re-serialisation, and the same property holds on random
graphs (hypothesis), not just the six benchmarks.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks import BENCHMARKS, load_benchmark
from repro.components import default_environment
from repro.core.exprhigh import ExprHigh, NodeSpec
from repro.core.types import parse_type
from repro.errors import NetlistError
from repro.hls.frontend import compile_program
from repro.interop import (
    FORMATS,
    dump_verilog,
    dumps_netlist,
    graph_to_text,
    infer_format,
    load_graph,
    loads_netlist,
    parse_verilog,
    save_graph,
    text_to_graph,
)


def kernel_graphs():
    env = default_environment()
    for name in BENCHMARKS:
        program = load_benchmark(name)
        for ck in compile_program(program, env).kernels:
            yield ck.kernel.name, ck.graph


@pytest.fixture(scope="module")
def kernels():
    return list(kernel_graphs())


def test_all_kernels_round_trip_json_byte_identically(kernels):
    assert len(kernels) >= 6
    for name, graph in kernels:
        text = dumps_netlist(graph, name=name)
        recovered = loads_netlist(text)
        assert recovered == graph, name
        assert dumps_netlist(recovered, name=name) == text, name


def test_all_kernels_round_trip_verilog_byte_identically(kernels):
    for name, graph in kernels:
        text = dump_verilog(graph, name=name)
        parsed_name, recovered = parse_verilog(text)
        assert parsed_name == name
        assert recovered == graph, name
        assert dump_verilog(recovered, name=parsed_name) == text, name


def test_netlist_records_module_name(kernels):
    from repro.interop import netlist_to_graph
    from repro.interop.netlist import graph_to_netlist, netlist_name

    name, graph = kernels[0]
    doc = graph_to_netlist(graph, name=name)
    assert netlist_name(doc) == name
    assert netlist_to_graph(doc) == graph


# -- random graphs (hypothesis) ----------------------------------------------

TYPES = ("Alpha", "Beta", "Gamma")
PARAM_VALUES = (1, 0, True, False, "add", "i32", 2.5)


@st.composite
def graphs(draw, closed=False):
    count = draw(st.integers(1, 6))
    g = ExprHigh()
    for i in range(count):
        params = {}
        if draw(st.booleans()):
            params["op"] = draw(st.sampled_from(PARAM_VALUES))
        if draw(st.booleans()):
            # 'type' is a TYPE_KEYS key: decoding parses it, so the strategy
            # must store parsed Type values for round-trip equality.
            params["type"] = parse_type(draw(st.sampled_from(("i32", "f64"))))
        g.add_node(
            f"n{i}",
            NodeSpec.make(
                draw(st.sampled_from(TYPES)),
                [f"in{j}" for j in range(draw(st.integers(0, 3)))],
                [f"out{j}" for j in range(draw(st.integers(0, 3)))],
                params,
            ),
        )
    outs = [(n, p) for n, s in g.nodes.items() for p in s.out_ports]
    ins = [(n, p) for n, s in g.nodes.items() for p in s.in_ports]
    edges = draw(st.integers(0, min(len(outs), len(ins))))
    for (sn, sp), (dn, dp) in zip(
        draw(st.permutations(outs))[:edges], draw(st.permutations(ins))[:edges]
    ):
        g.connect(sn, sp, dn, dp)
    if closed:
        # Mark every dangling port external so the graph validates — the
        # Verilog writer refuses open graphs by design.
        for index, endpoint in enumerate(sorted(g.unconnected_inputs(), key=str)):
            g.mark_input(index, endpoint.node, endpoint.port)
        for index, endpoint in enumerate(sorted(g.unconnected_outputs(), key=str)):
            g.mark_output(index, endpoint.node, endpoint.port)
    return g


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_random_graphs_round_trip_json(g):
    text = dumps_netlist(g)
    recovered = loads_netlist(text)
    assert recovered == g
    assert dumps_netlist(recovered) == text


@settings(max_examples=60, deadline=None)
@given(graphs(closed=True))
def test_random_closed_graphs_round_trip_verilog(g):
    text = dump_verilog(g, name="random")
    _, recovered = parse_verilog(text)
    assert recovered == g
    assert dump_verilog(recovered, name="random") == text


@settings(max_examples=30, deadline=None)
@given(graphs(closed=True))
def test_structural_formats_agree_on_graph_identity(g):
    for fmt in ("json", "verilog"):
        assert fmt in FORMATS
        assert text_to_graph(graph_to_text(g, fmt), fmt) == g


# -- file dispatch ------------------------------------------------------------


def test_save_load_dispatch_on_extension(tmp_path, kernels):
    name, graph = kernels[0]
    for ext, fmt in ((".json", "json"), (".v", "verilog"), (".dot", "dot")):
        path = tmp_path / f"g{ext}"
        assert save_graph(graph, path, name=name) == fmt
        assert infer_format(path) == fmt
        assert load_graph(path) == graph


def test_unknown_extension_rejected(tmp_path):
    with pytest.raises(NetlistError, match="cannot infer"):
        infer_format(tmp_path / "g.xyz")


# -- malformed inputs ---------------------------------------------------------


def test_invalid_json_reports_line():
    with pytest.raises(NetlistError, match="line 1"):
        loads_netlist("{not json")


def test_wrong_format_marker_rejected():
    with pytest.raises(NetlistError, match="not a graphiti-netlist"):
        loads_netlist(json.dumps({"format": "other", "version": 1}))


def test_wrong_version_rejected():
    with pytest.raises(NetlistError, match="unsupported netlist version"):
        loads_netlist(json.dumps({"format": "graphiti-netlist", "version": 99}))


def test_dangling_connection_rejected():
    doc = {
        "format": "graphiti-netlist",
        "version": 1,
        "name": "bad",
        "nodes": {"a": {"component": "Alpha{}", "in": [], "out": ["out"]}},
        "connections": [["a.out", "missing.in"]],
        "inputs": {},
        "outputs": {},
    }
    with pytest.raises(NetlistError):
        loads_netlist(json.dumps(doc))


def test_verilog_junk_reports_line():
    with pytest.raises(NetlistError, match="line"):
        parse_verilog("module m (;\nendmodule\n")


def test_verilog_missing_endmodule_rejected():
    with pytest.raises(NetlistError):
        parse_verilog('module m ();\nwire w0;\n')


def test_verilog_double_driver_rejected():
    text = (
        "module m ();\n"
        "  wire w0;\n"
        '  (* in = "", out = "o" *)\n'
        "  A a (.o(w0));\n"
        '  (* in = "", out = "o" *)\n'
        "  A b (.o(w0));\n"
        "endmodule\n"
    )
    with pytest.raises(NetlistError, match="two drivers"):
        parse_verilog(text)


def test_verilog_undriven_wire_rejected():
    text = (
        "module m ();\n"
        "  wire w0;\n"
        '  (* in = "i", out = "" *)\n'
        "  A a (.i(w0));\n"
        "endmodule\n"
    )
    with pytest.raises(NetlistError, match="no driver"):
        parse_verilog(text)


def test_verilog_missing_attribute_rejected():
    text = "module m ();\n  A a ();\nendmodule\n"
    with pytest.raises(NetlistError, match="attribute"):
        parse_verilog(text)
