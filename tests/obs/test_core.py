"""The tracing core: spans, the tracer, counters, grafting, sinks."""

import json

import pytest

from repro import obs
from repro.obs import InMemorySink, JsonlSink, MetricsSnapshot, Span, Tracer, render_tree


@pytest.fixture
def tracer():
    """A fresh tracer installed as the global one for the test's duration."""
    with obs.use_tracer(Tracer()) as fresh:
        yield fresh


class TestSpanBasics:
    def test_noop_span_without_sink(self, tracer):
        span = obs.span("anything")
        assert span is obs.span("other")  # the shared no-op instance
        with span as sp:
            assert sp.set(x=1) is sp
            assert sp.seconds == 0.0

    def test_root_span_emitted_to_sink(self, tracer):
        sink = tracer.attach(InMemorySink())
        with obs.span("root", key="value") as sp:
            pass
        assert [span.name for span in sink.spans] == ["root"]
        assert sink.spans[0].attrs == {"key": "value"}
        assert sp.closed and sp.seconds >= 0.0

    def test_nesting_builds_a_tree(self, tracer):
        sink = tracer.attach(InMemorySink())
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
            with obs.span("d"):
                pass
        [root] = sink.spans
        assert [span.name for span in root.walk()] == ["a", "b", "c", "d"]
        assert [child.name for child in root.children] == ["b", "d"]

    def test_exception_recorded_and_propagated(self, tracer):
        sink = tracer.attach(InMemorySink())
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("no")
        [root] = sink.spans
        assert root.attrs["error"] == "ValueError"
        assert root.closed

    def test_self_seconds_excludes_children(self, tracer):
        sink = tracer.attach(InMemorySink())
        with obs.span("parent"):
            with obs.span("child"):
                sum(range(1000))
        [root] = sink.spans
        child = root.children[0]
        assert root.seconds >= child.seconds
        assert abs(root.self_seconds - (root.seconds - child.seconds)) < 1e-9

    def test_to_dict_from_dict_roundtrip(self, tracer):
        sink = tracer.attach(InMemorySink())
        with obs.span("outer", n=2):
            with obs.span("inner"):
                pass
        [root] = sink.spans
        rebuilt = Span.from_dict(root.to_dict())
        assert [s.name for s in rebuilt.walk()] == [s.name for s in root.walk()]
        assert rebuilt.attrs == root.attrs
        assert rebuilt.seconds == pytest.approx(root.seconds)


class TestCountersAndGauges:
    def test_counters_work_without_sinks(self, tracer):
        obs.count("x")
        obs.count("x", 2)
        obs.gauge("depth", 3.5)
        assert tracer.counters == {"x": 3}
        assert tracer.gauges == {"depth": 3.5}

    def test_reset_clears_counters(self, tracer):
        obs.count("x")
        tracer.reset()
        assert tracer.counters == {} and tracer.gauges == {}


class TestGraft:
    def test_graft_reparents_under_open_span(self, tracer):
        sink = tracer.attach(InMemorySink())
        worker = {
            "name": "unit:w",
            "seconds": 0.25,
            "attrs": {"mode": "pool"},
            "children": [{"name": "flow:GRAPHITI", "seconds": 0.2}],
        }
        with obs.span("batch"):
            grafted = tracer.graft(worker, uid="w")
        [root] = sink.spans
        assert grafted in root.children
        assert grafted.attrs["reparented"] is True
        assert grafted.attrs["uid"] == "w"
        assert grafted.seconds == pytest.approx(0.25)
        assert grafted.children[0].name == "flow:GRAPHITI"

    def test_graft_without_open_span_emits_as_root(self, tracer):
        sink = tracer.attach(InMemorySink())
        tracer.graft({"name": "orphan", "seconds": 0.1})
        assert [span.name for span in sink.spans] == ["orphan"]

    def test_graft_inactive_returns_none(self, tracer):
        assert tracer.graft({"name": "x", "seconds": 0.0}) is None


class TestJsonlSink:
    def test_lines_are_parseable_and_parent_linked(self, tracer, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer.attach(sink)
            with obs.span("a"):
                with obs.span("b"):
                    pass
            with obs.span("c"):
                pass
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["a", "b", "c"]
        ids = [r["id"] for r in records]
        assert len(set(ids)) == len(ids)
        by_id = {r["id"]: r for r in records}
        for record in records:
            if record["parent"] is not None:
                assert record["parent"] in by_id
                assert record["parent"] < record["id"]  # parents precede children
        assert records[1]["parent"] == records[0]["id"]
        assert records[2]["parent"] is None


class TestRenderTree:
    def test_tree_shows_names_times_and_attrs(self, tracer):
        sink = tracer.attach(InMemorySink())
        with obs.span("transform", kernel="gcd"):
            with obs.span("phase:purify"):
                pass
        text = render_tree(sink.spans)
        assert "transform" in text and "  phase:purify" in text
        assert "kernel=gcd" in text
        assert "total" in text.splitlines()[0] and "self" in text.splitlines()[0]


class TestMetricsSnapshot:
    def test_roundtrip_and_summary(self):
        snapshot = MetricsSnapshot(
            executor={"units": 4, "hits": 1, "executed": 3, "retries": 0, "total_seconds": 1.5},
            rewriting={"rewrites_applied": 7, "matches_tried": 40, "seconds": 0.3},
            counters={"pipeline.transforms": 1},
        )
        data = snapshot.to_dict()
        assert data["kind"] == "MetricsSnapshot"
        again = MetricsSnapshot.from_dict(data)
        assert again.to_dict() == data
        text = snapshot.summary()
        assert "4 units" in text and "7 rewrites applied" in text
        assert "pipeline.transforms=1" in text

    def test_empty_snapshot_summary(self):
        assert "0 units" in MetricsSnapshot().summary()
