"""Property tests for span-tree invariants (hypothesis)."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import InMemorySink, JsonlSink, Span, Tracer

# A tree shape is a list of children, each itself a tree shape.
tree_shapes = st.recursive(
    st.just([]),
    lambda children: st.lists(children, max_size=4),
    max_leaves=12,
)


def record_tree(shape, tracer, name="root") -> None:
    """Open and close a span per tree-shape node, depth-first."""
    with tracer.span(name):
        for index, child in enumerate(shape):
            record_tree(child, tracer, name=f"{name}.{index}")


def shape_size(shape) -> int:
    return 1 + sum(shape_size(child) for child in shape)


@given(tree_shapes)
@settings(max_examples=50, deadline=None)
def test_every_span_closed_and_shape_preserved(shape):
    tracer = Tracer()
    sink = tracer.attach(InMemorySink())
    record_tree(shape, tracer)
    [root] = sink.spans
    spans = list(root.walk())
    assert len(spans) == shape_size(shape)
    for span in spans:
        assert span.closed
        assert span.seconds >= 0.0


@given(tree_shapes)
@settings(max_examples=50, deadline=None)
def test_parent_time_bounds_children(shape):
    """A parent's cumulative time ≥ the sum of its children's (same clock)."""
    tracer = Tracer()
    sink = tracer.attach(InMemorySink())
    record_tree(shape, tracer)
    [root] = sink.spans
    for span in root.walk():
        child_total = sum(child.seconds for child in span.children)
        assert span.seconds >= child_total - 1e-12
        assert abs(span.self_seconds - (span.seconds - child_total)) < 1e-12


@given(tree_shapes)
@settings(max_examples=50, deadline=None)
def test_serialisation_roundtrip_preserves_structure(shape):
    tracer = Tracer()
    sink = tracer.attach(InMemorySink())
    record_tree(shape, tracer)
    [root] = sink.spans
    rebuilt = Span.from_dict(root.to_dict())
    originals = list(root.walk())
    copies = list(rebuilt.walk())
    assert [s.name for s in copies] == [s.name for s in originals]
    for original, copy in zip(originals, copies):
        assert copy.closed
        assert abs(copy.seconds - original.seconds) < 1e-12


@given(tree_shapes)
@settings(max_examples=50, deadline=None)
def test_grafted_worker_tree_is_reparented_intact(shape):
    """Simulate the pool round trip: record in a worker tracer, graft here."""
    worker = Tracer()
    worker_sink = worker.attach(InMemorySink())
    record_tree(shape, worker, name="unit")
    [worker_root] = worker_sink.spans
    shipped = worker_root.to_dict()  # what rides back with the result

    parent = Tracer()
    parent_sink = parent.attach(InMemorySink())
    with parent.span("exec:run"):
        grafted = parent.graft(shipped, uid="unit")
    [root] = parent_sink.spans
    assert root.children == [grafted]
    assert grafted.attrs["reparented"] is True
    # The subtree survives the hop: same names, same durations.
    assert [s.name for s in grafted.walk()] == [s.name for s in worker_root.walk()]
    for shipped_span, original in zip(grafted.walk(), worker_root.walk()):
        assert abs(shipped_span.seconds - original.seconds) < 1e-12
    # Only the grafted root is marked; descendants keep their own attrs.
    for descendant in list(grafted.walk())[1:]:
        assert "reparented" not in descendant.attrs


@given(shape=tree_shapes)
@settings(max_examples=25, deadline=None)
def test_jsonl_ids_unique_and_parents_first(shape, tmp_path_factory):
    path = tmp_path_factory.mktemp("jsonl") / "trace.jsonl"
    tracer = Tracer()
    with JsonlSink(path) as sink:
        tracer.attach(sink)
        record_tree(shape, tracer)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(records) == shape_size(shape)
    seen = set()
    for record in records:
        assert record["id"] not in seen
        if record["parent"] is not None:
            assert record["parent"] in seen  # parents always precede children
        seen.add(record["id"])
