"""Fixtures for the verification-service tests: real servers on free ports.

``make_server`` boots a :class:`ServiceServer` on port 0 inside a daemon
thread running its own event loop, waits for the bind, and hands back a
connected :class:`ServiceClient`.  Every server started through the
factory is shut down (gracefully, over HTTP) when the test ends.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import ServiceClient, ServiceServer


@pytest.fixture
def make_server(tmp_path):
    """Factory: ``make_server(**kwargs) -> (server, client)``; auto-shutdown."""
    running: list[tuple[ServiceServer, ServiceClient, threading.Thread]] = []
    counter = [0]

    def boot(**kwargs) -> tuple[ServiceServer, ServiceClient]:
        counter[0] += 1
        kwargs.setdefault("cache_dir", tmp_path / f"cache-{counter[0]}")
        kwargs.setdefault("workers", 2)
        server = ServiceServer(port=0, **kwargs)
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while server.port == 0:
            if time.monotonic() > deadline:
                raise RuntimeError("service server did not bind within 10s")
            time.sleep(0.01)
        client = ServiceClient(port=server.port)
        running.append((server, client, thread))
        return server, client

    yield boot

    for _, client, thread in running:
        try:
            client.shutdown()
        except Exception:
            pass
        thread.join(timeout=30)
