"""Refinement checking: the executable metatheory of sections 4.4 and 5."""

from .checker import (
    RefinementReport,
    check_graph_refinement,
    check_refinement,
    check_rewrite_obligation,
    io_stimuli,
    recheck_obligation_certificate,
    refines,
    uniform_stimuli,
)
from .simulation import (
    CERTIFICATE_FORMAT,
    SimulationCertificate,
    SimulationResult,
    Violation,
    decode_state,
    encode_state,
    find_weak_simulation,
    recheck_certificate,
)
from .traces import can_perform, enumerate_traces, trace_inclusion

__all__ = [
    "RefinementReport",
    "check_graph_refinement",
    "check_refinement",
    "check_rewrite_obligation",
    "io_stimuli",
    "recheck_obligation_certificate",
    "refines",
    "uniform_stimuli",
    "CERTIFICATE_FORMAT",
    "SimulationCertificate",
    "SimulationResult",
    "Violation",
    "decode_state",
    "encode_state",
    "find_weak_simulation",
    "recheck_certificate",
    "can_perform",
    "enumerate_traces",
    "trace_inclusion",
]
