"""Refinement obligations of the rewrite library, discharged.

This is the test-suite counterpart of the paper's Lean proofs: every
verified rewrite's ``rhs ⊑ lhs`` obligation is checked on its bounded
instances — including the core out-of-order loop rewrite (theorem 5.3) —
and the two rewrites the paper leaves unverified are shown to *fail* their
naive compositional obligation, with the counterexamples the docstrings
describe.
"""

import pytest

from repro.errors import RefinementError
from repro.rewriting.engine import RewriteEngine
from repro.rewriting.rules import (
    all_rewrites,
    combine,
    extra,
    loop_rewrite,
    pure_gen,
    reduction,
    shuffle,
)

VERIFIED_RULES = [
    combine.mux_combine,
    combine.merge_combine,
    reduction.split_join_elim,
    reduction.fork_sink_elim,
    reduction.pure_id_elim,
    pure_gen.op1_to_pure,
    pure_gen.op2_to_pure,
    pure_gen.fork_lift_pure,
    pure_gen.fork_to_pure,
    pure_gen.pure_compose,
    shuffle.join_pure_left,
    shuffle.join_pure_right,
    shuffle.split_pure_left,
    shuffle.split_pure_right,
    shuffle.join_assoc,
    shuffle.join_swap,
    extra.split_swap,
    extra.fork_assoc,
    extra.merge_swap,
    extra.buffer_elim,
]

UNVERIFIED_RULES = [combine.branch_combine, reduction.join_split_elim]


class TestVerifiedObligations:
    @pytest.mark.parametrize("factory", VERIFIED_RULES, ids=lambda f: f.__name__)
    def test_obligation_discharges(self, factory):
        rewrite = factory()
        assert rewrite.verified, f"{rewrite.name} should be marked verified"
        engine = RewriteEngine()
        assert engine.verify_rewrite(rewrite)

    def test_ooo_loop_obligation_discharges(self):
        """The bounded analogue of theorem 5.3: 𝓘 ⊑ 𝓢."""
        rewrite = loop_rewrite.ooo_loop(tags=2)
        assert rewrite.verified
        engine = RewriteEngine()
        assert engine.verify_rewrite(rewrite)

    def test_verification_is_cached(self):
        engine = RewriteEngine()
        rewrite = reduction.fork_sink_elim()
        engine.verify_rewrite(rewrite)
        # Second call must hit the cache (no new instances run).
        assert engine.verify_rewrite(rewrite)


class TestUnverifiedObligations:
    """The paper's limitation section says the minor rewrites of figures
    3a-3c are unverified; for these two the naive compositional obligation
    genuinely fails, so the flags are not just missing proofs."""

    @pytest.mark.parametrize("factory", UNVERIFIED_RULES, ids=lambda f: f.__name__)
    def test_marked_unverified(self, factory):
        assert not factory().verified

    def test_branch_combine_counterexample(self):
        # The splits after the combined branch buffer results, letting the
        # true-side output overtake an older false-side token.
        engine = RewriteEngine()
        with pytest.raises(RefinementError):
            engine.verify_rewrite(combine.branch_combine())

    def test_join_split_elim_counterexample(self):
        # Join;Split synchronises; two bare wires do not.
        engine = RewriteEngine()
        with pytest.raises(RefinementError):
            engine.verify_rewrite(reduction.join_split_elim())

    def test_library_size_matches_the_paper_scale(self):
        """Section 3.1: ~20 rewrites, one verified core + minor helpers."""
        rewrites = all_rewrites()
        assert len(rewrites) >= 20
        names = [r.name for r in rewrites]
        assert len(names) == len(set(names))
        assert "ooo-loop" in names
        unverified = [r.name for r in rewrites if not r.verified]
        assert set(unverified) == {"branch-combine", "join-split-elim"}

    def test_rewrite_without_obligation_rejected(self):
        from repro.rewriting.rewrite import Rewrite
        from repro.core.exprhigh import ExprHigh

        engine = RewriteEngine()
        bare = Rewrite(name="bare", lhs=ExprHigh(), rhs=lambda m: ExprHigh())
        with pytest.raises(RefinementError):
            engine.verify_rewrite(bare)
