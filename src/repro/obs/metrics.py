"""The unified metrics snapshot behind ``session.metrics()``.

Before v1.3 the statistics of one run were scattered over three
incompatible shapes — ``ExecutorMetrics`` (per-unit cache/pool accounting),
``EngineStats``/``RewriteStats`` (rewriting counters) — each with its own
accessors.  :class:`MetricsSnapshot` is the single surface they now roll up
into: plain-dict sections (so this module stays dependency-free) plus the
convenience properties the old accessors provided, implementing the
``to_dict()/summary()`` protocol of :mod:`repro.results`.

A snapshot is immutable-by-convention: it is built on demand by
:meth:`repro.api.Session.metrics` from the live accumulators and does not
update afterwards — call ``session.metrics()`` again for fresh numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MetricsSnapshot:
    """One moment's unified view of executor, rewriting and obs counters.

    Sections (all plain, JSON-serialisable dicts):

    * ``executor`` — ``units``/``hits``/``executed``/``retries``/
      ``total_seconds`` from the work-unit executor;
    * ``rewriting`` — ``rewrites_applied``/``matches_tried``/``seconds``/
      ``full_scans``/``worklist_scans`` plus ``per_rewrite`` keyed by
      rewrite name (``applied``/``matches_tried``/``match_seconds``);
    * ``saturation`` — e-graph backend counters accumulated across
      ``strategy="saturate"`` transforms: ``states``/``enodes``/
      ``eclasses``/``rules_fired``/``frontier``/``budget_exhausted`` and
      the saturate/extract/certify timings;
    * ``counters``/``gauges`` — the observability tracer's typed counters
      (e.g. ``matcher.plan_cache_hits``) and gauges.
    """

    executor: dict = field(default_factory=dict)
    rewriting: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    saturation: dict = field(default_factory=dict)

    # -- executor convenience (the old ExecutorMetrics surface) --------------

    @property
    def units(self) -> int:
        return int(self.executor.get("units", 0))

    @property
    def hits(self) -> int:
        return int(self.executor.get("hits", 0))

    @property
    def executed(self) -> int:
        return int(self.executor.get("executed", 0))

    @property
    def retries(self) -> int:
        return int(self.executor.get("retries", 0))

    @property
    def total_seconds(self) -> float:
        return float(self.executor.get("total_seconds", 0.0))

    # -- rewriting convenience (the old EngineStats surface) ------------------

    @property
    def rewrites_applied(self) -> int:
        return int(self.rewriting.get("rewrites_applied", 0))

    @property
    def matches_tried(self) -> int:
        return int(self.rewriting.get("matches_tried", 0))

    @property
    def per_rewrite(self) -> dict:
        return dict(self.rewriting.get("per_rewrite", {}))

    # -- result protocol / wire format (repro.results) -------------------------

    def to_dict(self) -> dict:
        from ..results import SCHEMA_VERSION

        return {
            "kind": "MetricsSnapshot",
            "schema_version": SCHEMA_VERSION,
            "executor": dict(self.executor),
            "rewriting": dict(self.rewriting),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "saturation": dict(self.saturation),
        }

    @staticmethod
    def from_dict(data: dict) -> "MetricsSnapshot":
        from ..results import check_schema

        entry = check_schema(data, "MetricsSnapshot")
        return MetricsSnapshot(
            executor=dict(entry.get("executor", {})),
            rewriting=dict(entry.get("rewriting", {})),
            counters=dict(entry.get("counters", {})),
            gauges=dict(entry.get("gauges", {})),
            saturation=dict(entry.get("saturation", {})),
        )

    def summary(self) -> str:
        parts = [
            f"{self.units} units: {self.hits} cached, {self.executed} executed"
            f" ({self.retries} retried), {self.total_seconds:.2f}s work"
        ]
        if self.rewriting:
            parts.append(
                f"{self.rewrites_applied} rewrites applied"
                f" ({self.matches_tried} candidates tried,"
                f" {float(self.rewriting.get('seconds', 0.0)):.2f}s)"
            )
        if self.saturation:
            parts.append(
                f"saturation: {int(self.saturation.get('states', 0))} states,"
                f" {int(self.saturation.get('enodes', 0))} e-nodes,"
                f" {int(self.saturation.get('frontier', 0))} pareto points"
            )
        if self.counters:
            parts.append(
                "counters: "
                + ", ".join(f"{key}={value}" for key, value in sorted(self.counters.items()))
            )
        return "; ".join(parts)
