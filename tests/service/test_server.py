"""End-to-end HTTP tests: a real ServiceServer on a free port per test."""

import json

import pytest

from repro.errors import ServiceError


def test_submit_watch_result_roundtrip(make_server):
    _, client = make_server()
    job = client.submit("simulate", {"kernel": "matvec", "flow": "DF-IO"})
    assert job["state"] in ("queued", "running")

    states = [status["state"] for status in client.watch(job["id"])]
    assert states[-1] == "done"
    # the stream is ordered: versions strictly increase, one line per change
    result = client.result(job["id"])
    assert result["kind"] == "SimStats"
    assert result["schema_version"] == 1
    assert result["cycles"] > 0


def test_watch_streams_ndjson_lines(make_server):
    import http.client

    server, client = make_server()
    job = client.submit("simulate", {"kernel": "matvec", "flow": "DF-IO"})
    connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    try:
        connection.request("GET", f"/v1/jobs/{job['id']}?watch=1")
        response = connection.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        lines = [json.loads(line) for line in response.read().decode().splitlines()]
    finally:
        connection.close()
    assert lines, "watch stream produced no status lines"
    versions = [line["version"] for line in lines]
    assert versions == sorted(versions)
    assert lines[-1]["state"] == "done"


def test_second_identical_request_served_from_store(make_server):
    _, client = make_server()
    first = client.submit("transform", {"kernel": "matvec"})
    final = client.wait(first["id"])
    assert final["state"] == "done" and not final["from_store"]
    result_one = client.result(first["id"])

    second = client.submit("transform", {"kernel": "matvec"})
    assert second["state"] == "done"  # answered synchronously, no recompute
    assert second["from_store"]
    result_two = client.result(second["id"])
    assert json.dumps(result_one, sort_keys=True) == json.dumps(result_two, sort_keys=True)


def test_dedup_false_bypasses_the_store(make_server):
    _, client = make_server()
    first = client.submit("simulate", {"kernel": "matvec", "flow": "DF-IO"})
    client.wait(first["id"])
    fresh = client.submit("simulate", {"kernel": "matvec", "flow": "DF-IO"}, dedup=False)
    assert not fresh["from_store"]
    assert fresh["state"] in ("queued", "running")
    client.wait(fresh["id"])


def test_default_spelling_dedupes_with_explicit_spelling(make_server):
    _, client = make_server()
    first = client.submit("simulate", {"kernel": "matvec"})
    client.wait(first["id"])
    second = client.submit(
        "simulate", {"kernel": "matvec", "flow": "DF-OoO", "backend": "compiled"}
    )
    assert second["from_store"]


def test_bad_submissions_answer_400(make_server):
    _, client = make_server()
    for kind, params in [
        ("explode", {}),
        ("bench", {"name": "not-a-benchmark"}),
        ("transform", {}),
        ("simulate", {"kernel": "matvec", "flow": "sideways"}),
    ]:
        with pytest.raises(ServiceError, match="400"):
            client.submit(kind, params)


def test_unknown_job_404(make_server):
    _, client = make_server()
    with pytest.raises(ServiceError, match="404"):
        client.status("job-12345")
    with pytest.raises(ServiceError, match="404"):
        client.result("job-12345")


def test_result_before_done_409(make_server):
    _, client = make_server()
    job = client.submit("bench", {"name": "matvec"}, priority=0)
    try:
        client.result(job["id"])
    except ServiceError as exc:
        assert "409" in str(exc)
    else:  # the job may legitimately already be done on a fast machine
        assert client.status(job["id"])["state"] == "done"
    client.wait(job["id"])


def test_cancel_queued_job(make_server):
    _, client = make_server(workers=1)
    # one running job keeps the single worker busy; the second stays queued
    hold = client.submit("bench", {"name": "gemm"}, dedup=False)
    victim = client.submit("bench", {"name": "mvt"}, dedup=False)
    status = client.cancel(victim["id"])
    assert status["state"] == "cancelled"
    final = client.wait(victim["id"])
    assert final["state"] == "cancelled"
    client.wait(hold["id"])


def test_metrics_endpoint(make_server):
    _, client = make_server()
    job = client.submit("simulate", {"kernel": "matvec", "flow": "DF-IO"})
    client.wait(job["id"])
    metrics = client.metrics()
    assert metrics["kind"] == "ServiceMetrics"
    assert metrics["jobs"]["done"] >= 1
    assert metrics["workers"] == 2
    assert "store" in metrics and "hits" in metrics["store"]


def test_job_timeout_reports_failed(make_server):
    _, client = make_server()
    job = client.submit("bench", {"name": "gemm"}, timeout=0.01, dedup=False)
    final = client.wait(job["id"])
    assert final["state"] == "failed"
    assert "timed out" in final["error"]
    with pytest.raises(ServiceError, match="500"):
        client.result(job["id"])


def test_certificates_endpoint_after_check_obligations(make_server):
    _, client = make_server()
    result = client.run("check_obligations", {"rules": ["mux_combine"]})
    [outcome] = result["outcomes"]
    assert outcome["holds"]
    assert outcome["certificate_hashes"]
    payload = client.certificate(outcome["certificate_hashes"][0])
    assert payload["kind"] == "SimulationCertificate"
    assert payload["hash"] == outcome["certificate_hashes"][0]
    with pytest.raises(ServiceError, match="404"):
        client.certificate("0" * 64)


def test_stored_binary_certificate_survives_restart(make_server, tmp_path):
    from repro.refinement.codec import from_bytes, looks_binary

    cache_dir = tmp_path / "shared-cache"
    _, client = make_server(cache_dir=cache_dir)
    result = client.run("check_obligations", {"rules": ["mux_combine"]})
    [outcome] = result["outcomes"]
    content_hash = outcome["certificate_hashes"][0]
    assert list(cache_dir.glob("*/*.bin"))  # persisted as the compact encoding
    client.shutdown()

    # a fresh server over the same cache directory re-indexes and serves it
    _, reborn = make_server(cache_dir=cache_dir)
    payload = reborn.certificate(content_hash)
    assert payload["kind"] == "SimulationCertificate"
    assert payload["hash"] == content_hash

    blob = reborn.certificate_bytes(content_hash)
    assert looks_binary(blob)
    certificate = from_bytes(blob)
    assert certificate.content_hash() == content_hash


def test_per_job_metrics_are_scoped(make_server):
    _, client = make_server()
    job = client.submit("verify", {"rules": ["mux_combine"]})
    final = client.wait(job["id"])
    assert final["state"] == "done"
    counters = final["metrics"]["counters"]
    assert counters.get("refinement.weak_sim_checks", 0) >= 1


def test_graceful_shutdown(make_server):
    server, client = make_server()
    job = client.submit("simulate", {"kernel": "matvec", "flow": "DF-IO"})
    client.wait(job["id"])
    assert client.shutdown()["state"] == "shutting-down"
