"""The dataflow component library (Table 1 of the paper).

This package provides:

* module builders giving each component its queue-based semantics;
* :func:`default_environment` assembling the standard environment ε;
* :class:`NodeSpec` factories with the canonical ExprHigh port names, so
  graphs built by hand, by the dot parser, and by the HLS front end all
  agree on port naming;
* component metadata used by the rewrite engine (effectfulness, steering
  class).
"""

from __future__ import annotations

from ..core.environment import Environment
from ..core.exprhigh import NodeSpec
from .base import build_buffer, build_fork, build_join, build_sink, build_source, build_split
from .compute import build_constant, build_operator, build_pure, build_reorg
from .memory import build_store, store_history
from .steering import build_branch, build_cmerge, build_init, build_merge, build_mux
from .tagging import build_tagger

__all__ = [
    "default_environment",
    "store_history",
    "EFFECTFUL_TYPES",
    "fork",
    "join",
    "split",
    "buffer",
    "sink",
    "source",
    "mux",
    "branch",
    "merge",
    "cmerge",
    "init",
    "operator",
    "pure",
    "reorg",
    "constant",
    "tagger",
    "store",
]

#: Component types whose execution has side effects beyond their ports.
#: The purity phase of the rewrite engine refuses to absorb these into a
#: Pure component, which is exactly what blocks the unsound bicg rewrite.
EFFECTFUL_TYPES = frozenset({"Store"})

_BUILDERS = {
    "Fork": build_fork,
    "Join": build_join,
    "Split": build_split,
    "Buffer": build_buffer,
    "Sink": build_sink,
    "Source": build_source,
    "Mux": build_mux,
    "Branch": build_branch,
    "Merge": build_merge,
    "CMerge": build_cmerge,
    "Init": build_init,
    "Operator": build_operator,
    "Pure": build_pure,
    "Reorg": build_reorg,
    "Constant": build_constant,
    "Tagger": build_tagger,
    "Store": build_store,
}


def default_environment(capacity: int | None = None) -> Environment:
    """The standard environment with every library component registered."""
    env = Environment(capacity)
    for name, builder in _BUILDERS.items():
        env.register(name, builder)
    _register_standard_functions(env)
    return env


def _register_standard_functions(env: Environment) -> None:
    """Arithmetic used by examples, tests, and the GCD running example."""
    env.register_function("add", lambda a, b: a + b, 2)
    env.register_function("sub", lambda a, b: a - b, 2)
    env.register_function("mul", lambda a, b: a * b, 2)
    env.register_function("mod", lambda a, b: a % b if b else 0, 2)
    env.register_function("lt", lambda a, b: a < b, 2)
    env.register_function("eq", lambda a, b: a == b, 2)
    env.register_function("ne", lambda a, b: a != b, 2)
    env.register_function("ne0", lambda a: a != 0, 1)
    env.register_function("eq0", lambda a: a == 0, 1)
    env.register_function("id", lambda a: a, 1)
    env.register_function("incr", lambda a: a + 1, 1)
    # One GCD step on an (a, b) pair, with the continue condition — the
    # function f ∈ T → T × BOOL of the section 5 loop rewrite.
    env.register_function(
        "gcd_step", lambda ab: ((ab[1], ab[0] % ab[1] if ab[1] else 0), (ab[0] % ab[1] if ab[1] else 0) != 0), 1
    )


# -- NodeSpec factories -------------------------------------------------------


def fork(n: int = 2, **params: object) -> NodeSpec:
    """A Fork with *n* outputs (``in0`` → ``out0..out{n-1}``)."""
    return NodeSpec.make("Fork", ["in0"], [f"out{i}" for i in range(n)], {"n": n, **params})


def join(**params: object) -> NodeSpec:
    """A Join synchronising ``in0``/``in1`` into a tuple on ``out0``."""
    return NodeSpec.make("Join", ["in0", "in1"], ["out0"], params)


def split(**params: object) -> NodeSpec:
    """A Split destructuring a tuple on ``in0`` into ``out0``/``out1``."""
    return NodeSpec.make("Split", ["in0"], ["out0", "out1"], params)


def buffer(slots: int = 1, **params: object) -> NodeSpec:
    return NodeSpec.make("Buffer", ["in0"], ["out0"], {"slots": slots, **params})


def sink(**params: object) -> NodeSpec:
    return NodeSpec.make("Sink", ["in0"], [], params)


def source(**params: object) -> NodeSpec:
    return NodeSpec.make("Source", [], ["out0"], params)


def mux(**params: object) -> NodeSpec:
    """A Mux: ``cond`` selects ``in0`` (true) or ``in1`` (false)."""
    return NodeSpec.make("Mux", ["cond", "in0", "in1"], ["out0"], params)


def branch(**params: object) -> NodeSpec:
    """A Branch: ``cond`` steers ``in0`` to ``out0`` (true) or ``out1``."""
    return NodeSpec.make("Branch", ["cond", "in0"], ["out0", "out1"], params)


def merge(**params: object) -> NodeSpec:
    """A nondeterministic two-input Merge."""
    return NodeSpec.make("Merge", ["in0", "in1"], ["out0"], params)


def cmerge(**params: object) -> NodeSpec:
    """A Control Merge: first token wins, its side reported on ``index``."""
    return NodeSpec.make("CMerge", ["in0", "in1"], ["out0", "index"], params)


def init(value: bool = False, **params: object) -> NodeSpec:
    """An Init queue pre-loaded with one boolean token."""
    return NodeSpec.make("Init", ["in0"], ["out0"], {"value": value, **params})


def operator(op: str, arity: int, **params: object) -> NodeSpec:
    """An Operator applying the registered function *op* to *arity* inputs."""
    in_ports = [f"in{i}" for i in range(arity)]
    return NodeSpec.make("Operator", in_ports, ["out0"], {"op": op, **params})


def pure(fn: str, **params: object) -> NodeSpec:
    """A Pure component applying the registered unary function *fn*."""
    return NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": fn, **params})


def reorg(fn: str, **params: object) -> NodeSpec:
    """A Reorg: tuple restructuring per the port type signatures (Table 1)."""
    return NodeSpec.make("Reorg", ["in0"], ["out0"], {"fn": fn, **params})


def constant(value: object, **params: object) -> NodeSpec:
    return NodeSpec.make("Constant", ["ctrl"], ["out0"], {"value": value, **params})


def tagger(tags: int = 4, **params: object) -> NodeSpec:
    """The Tagger/Untagger pair: ``in0``→``out0`` tags, ``in1``→``out1`` reorders."""
    return NodeSpec.make("Tagger", ["in0", "in1"], ["out0", "out1"], {"tags": tags, **params})


def store(**params: object) -> NodeSpec:
    """An effectful Store: synchronises ``addr``/``data``, emits ``done``."""
    return NodeSpec.make("Store", ["addr", "data"], ["done"], params)
