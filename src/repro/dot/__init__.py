"""Dot graph interchange: the input/output format of the tool flow (fig. 1)."""

from .parser import parse_dot
from .printer import print_dot

__all__ = ["parse_dot", "print_dot"]
