"""Equality saturation over whole circuits with cost-based Pareto extraction.

This generalises the term-level :mod:`repro.rewriting.egraph` (the purify
oracle) to complete :class:`~repro.core.exprhigh.ExprHigh` graphs.  Where
the destructive pipeline commits to one rewrite order and one answer,
saturation explores the closure of a circuit under a rewrite set and
extracts *all* cost-optimal variants — the SEER recipe, adapted to the
paper's dataflow rewrites:

* **States, not terms.**  Dataflow circuits are cyclic (the loop channel
  Mux → body → Branch → Mux), so they have no finite term DAG to hash-cons
  directly.  Exploration therefore works on whole-circuit *states*:
  concrete graphs reached from a seed by a derivation (a replayable
  sequence of ``(Rewrite, Match)`` steps), deduplicated by a
  name-independent Weisfeiler-Leman fingerprint (:func:`circuit_key`).

* **A real e-graph underneath.**  Every explored state is interned into a
  :class:`CircuitEGraph`: hash-consed e-nodes over node specs, a
  union-find over e-classes, and a congruence-closure pass.  Cycles are
  broken by seeding each channel with a provisional e-class derived from
  its WL colour, which makes the closure a *conservative approximation*:
  equal channels may stay in distinct classes (costing sharing, never
  soundness).  Each rewrite application unions the parent and child root
  classes, so after saturation every reachable variant of one seed lives
  in one e-class — extraction is cost-based selection inside that class.

* **Matching is the PR-2 matcher.**  E-matching runs the existing indexed
  :func:`~repro.rewriting.matcher.find_matches` with its cached per-rewrite
  plans, so every :class:`~repro.rewriting.rewrite.Rewrite` in the library
  participates unmodified.

* **Soundness via replay.**  Extracted circuits are not trusted e-graph
  artefacts: each Pareto point carries its derivation, every step of which
  is an ordinary rewrite application whose refinement obligation the
  certificate layer discharges (:func:`repro.refinement.checker.
  check_rewrite_obligation`).  Exploration can be wild; what ships is a
  replayed, certificate-checked rewrite sequence.

Exploration is *best-first*: states are expanded cheapest-first under
:func:`repro.hls.area.circuit_cost`, so rotation orbits (``fork-assoc``)
cannot starve cost-improving elimination chains, and a budget cut-off
still leaves the most promising region explored.  Everything is
deterministic — match enumeration, fresh-name generation, WL hashing and
the (cost, insertion-order) priority are all stable — so repeated runs
produce byte-identical frontiers.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Sequence

from .. import obs
from ..core.exprhigh import ExprHigh
from ..errors import SaturationLimitError
from ..hls.area import CircuitCost, circuit_cost
from .apply import apply_rewrite
from .matcher import MatchStats, find_matches
from .rewrite import Match, Rewrite

#: The strategy seam threaded through pipeline / Session / CLI.
STRATEGIES: tuple[str, ...] = ("fixpoint", "saturate")


# ---------------------------------------------------------------------------
# Name-independent circuit fingerprints (Weisfeiler-Leman refinement)
# ---------------------------------------------------------------------------


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def _initial_colors(graph: ExprHigh) -> dict[str, str]:
    """Per-node seed colours: spec content plus interface-mark positions."""
    marks: dict[str, list[str]] = {}
    for index, endpoint in graph.inputs.items():
        marks.setdefault(endpoint.node, []).append(f"i{index}:{endpoint.port}")
    for index, endpoint in graph.outputs.items():
        marks.setdefault(endpoint.node, []).append(f"o{index}:{endpoint.port}")
    colors: dict[str, str] = {}
    for name, spec in graph.nodes.items():
        params = ",".join(f"{k}={v!r}" for k, v in sorted(spec.param_dict().items()))
        colors[name] = _digest(
            spec.typ,
            "|".join(spec.in_ports),
            "|".join(spec.out_ports),
            params,
            "|".join(sorted(marks.get(name, ()))),
        )
    return colors


def _refine_colors(graph: ExprHigh, colors: dict[str, str]) -> dict[str, str]:
    """One WL round: fold each node's port-labelled neighbourhood in."""
    refined: dict[str, str] = {}
    for name in graph.nodes:
        signature = [colors[name]]
        edges: list[str] = []
        for src, dst in graph.in_edges(name):
            edges.append(f"<{dst.port}|{src.port}|{colors[src.node]}")
        for src, dst in graph.out_edges(name):
            edges.append(f">{src.port}|{dst.port}|{colors[dst.node]}")
        signature.extend(sorted(edges))
        refined[name] = _digest(*signature)
    return refined


def _stable_colors(graph: ExprHigh) -> dict[str, str]:
    """Refine until the colour partition stops splitting (or |V| rounds)."""
    colors = _initial_colors(graph)
    classes = len(set(colors.values()))
    for _ in range(max(1, len(graph.nodes))):
        colors = _refine_colors(graph, colors)
        now = len(set(colors.values()))
        if now == classes:
            # One extra round past stability distinguishes same-partition
            # graphs whose edge structure differs only across classes.
            return _refine_colors(graph, colors)
        classes = now
    return colors


def circuit_key(graph: ExprHigh) -> str:
    """A node-name-independent fingerprint of a circuit.

    Two graphs that differ only by a renaming of their nodes get the same
    key; structurally different graphs get different keys up to WL's
    (negligible for these sizes) blind spot of colour-preserving
    non-isomorphisms.  Keys only *deduplicate* exploration states —
    a collision prunes a variant, it never affects soundness.
    """
    colors = _stable_colors(graph)
    io = [f"i{index}:{colors[ep.node]}:{ep.port}" for index, ep in sorted(graph.inputs.items())]
    io += [f"o{index}:{colors[ep.node]}:{ep.port}" for index, ep in sorted(graph.outputs.items())]
    return _digest(*sorted(colors.values()), "--io--", *io)


# ---------------------------------------------------------------------------
# The circuit e-graph: hash-consed e-nodes, union-find, congruence closure
# ---------------------------------------------------------------------------


class CircuitEGraph:
    """Hash-consed e-nodes over node specs with union-find e-classes.

    One e-class per *channel* (a node output port); one e-node per node
    occurrence, keyed by ``(typ, params, ordered input classes)`` with one
    output class per out port.  Cyclic graphs are admitted by seeding each
    channel with a provisional class derived from its WL colour, then
    running congruence closure to fixpoint: e-nodes whose keys collapse
    under ``find`` have their output classes unioned.  Because the WL seeds
    may keep genuinely equal channels apart, the closure is conservative —
    it under-merges, never over-merges.

    Whole circuits intern through :meth:`add_circuit`, which returns a root
    class summarising the tuple of marked outputs; rewrite applications
    union parent and child roots (:meth:`union`), so "every variant reached
    from this seed" is literally one e-class.
    """

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._table: dict[tuple, tuple[int, ...]] = {}
        self._seed_class: dict[str, int] = {}

    # -- union-find ----------------------------------------------------------

    def _fresh(self) -> int:
        self._parent.append(len(self._parent))
        return len(self._parent) - 1

    def find(self, cls: int) -> int:
        root = cls
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[cls] != root:  # path compression
            self._parent[cls], cls = root, self._parent[cls]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge two e-classes; the lower root wins (deterministic)."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        lo, hi = (ra, rb) if ra < rb else (rb, ra)
        self._parent[hi] = lo
        return lo

    # -- interning -----------------------------------------------------------

    def _class_for_seed(self, seed: str) -> int:
        cls = self._seed_class.get(seed)
        if cls is None:
            cls = self._seed_class[seed] = self._fresh()
        return cls

    def _insert(self, key: tuple, outputs: tuple[int, ...]) -> None:
        existing = self._table.get(key)
        if existing is None:
            self._table[key] = outputs
        else:
            for a, b in zip(existing, outputs):
                self.union(a, b)

    def add_circuit(self, graph: ExprHigh) -> int:
        """Intern every node of *graph*; return the circuit's root class."""
        colors = _stable_colors(graph)
        channel: dict[tuple[str, str], int] = {}
        for name, spec in graph.nodes.items():
            for port in spec.out_ports:
                channel[(name, port)] = self._class_for_seed(
                    _digest("chan", colors[name], port)
                )
        for name in sorted(graph.nodes, key=lambda n: colors[n]):
            spec = graph.nodes[name]
            inputs = []
            for port in spec.in_ports:
                src = graph.source_of(name, port)
                if src is None:  # boundary input: class per interface index
                    index = next(
                        (i for i, ep in graph.inputs.items()
                         if ep.node == name and ep.port == port),
                        None,
                    )
                    inputs.append(self._class_for_seed(_digest("io-in", str(index))))
                else:
                    inputs.append(self.find(channel[(src.node, src.port)]))
            params = tuple(sorted((k, repr(v)) for k, v in spec.param_dict().items()))
            key = ("node", spec.typ, params, tuple(inputs))
            self._insert(key, tuple(channel[(name, p)] for p in spec.out_ports))
        self._congruence()
        root_inputs = tuple(
            self.find(channel[(ep.node, ep.port)])
            for _, ep in sorted(graph.outputs.items())
        )
        root = self._class_for_seed(_digest("root", *map(str, root_inputs)))
        self._insert(("root", root_inputs), (root,))
        return self.find(root)

    def _congruence(self) -> None:
        """Rebuild the hash-cons table modulo ``find`` until stable."""
        for _ in range(len(self._parent) + 1):
            rebuilt: dict[tuple, tuple[int, ...]] = {}
            changed = False
            for key, outputs in self._table.items():
                if key[0] == "node":
                    _, typ, params, inputs = key
                    key = ("node", typ, params, tuple(self.find(c) for c in inputs))
                else:
                    key = ("root", tuple(self.find(c) for c in key[1]))
                outputs = tuple(self.find(c) for c in outputs)
                existing = rebuilt.get(key)
                if existing is None:
                    rebuilt[key] = outputs
                else:
                    for a, b in zip(existing, outputs):
                        if self.find(a) != self.find(b):
                            self.union(a, b)
                            changed = True
            self._table = rebuilt
            if not changed:
                return

    # -- statistics ----------------------------------------------------------

    @property
    def enodes(self) -> int:
        return len(self._table)

    @property
    def eclasses(self) -> int:
        referenced: set[int] = set()
        for key, outputs in self._table.items():
            children = key[3] if key[0] == "node" else key[1]
            referenced.update(self.find(c) for c in children)
            referenced.update(self.find(c) for c in outputs)
        return len(referenced)


# ---------------------------------------------------------------------------
# Saturation: budget, stats, states
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SaturationBudget:
    """Exploration limits; ``on_exhausted`` picks the overrun policy.

    ``"partial"`` (the default) stops exploring and extracts from whatever
    was reached — the frontier is still sound, merely less explored.
    ``"error"`` raises :class:`~repro.errors.SaturationLimitError` instead.
    """

    max_states: int = 256
    max_iterations: int = 512
    max_enodes: int = 50_000
    on_exhausted: str = "partial"

    def __post_init__(self) -> None:
        if self.on_exhausted not in ("partial", "error"):
            raise ValueError(
                f"on_exhausted must be 'partial' or 'error', got {self.on_exhausted!r}"
            )


@dataclass
class SaturationStats:
    """Counters for one saturation + extraction run (obs 'saturation')."""

    states: int = 0  # distinct circuit variants interned
    deduped: int = 0  # applications rediscovering a known variant
    enodes: int = 0
    eclasses: int = 0
    rules_fired: int = 0  # successful rewrite applications
    matches_tried: int = 0  # matcher candidate bindings
    iterations: int = 0  # states expanded
    frontier: int = 0  # Pareto points extracted
    certified_points: int = 0
    budget_exhausted: bool = False
    saturate_seconds: float = 0.0
    extract_seconds: float = 0.0
    certify_seconds: float = 0.0
    per_rule: dict[str, int] = field(default_factory=dict)

    def fire(self, rule: str) -> None:
        self.rules_fired += 1
        self.per_rule[rule] = self.per_rule.get(rule, 0) + 1

    def merge(self, other: "SaturationStats") -> None:
        self.states += other.states
        self.deduped += other.deduped
        self.enodes += other.enodes
        self.eclasses += other.eclasses
        self.rules_fired += other.rules_fired
        self.matches_tried += other.matches_tried
        self.iterations += other.iterations
        self.frontier += other.frontier
        self.certified_points += other.certified_points
        self.budget_exhausted = self.budget_exhausted or other.budget_exhausted
        self.saturate_seconds += other.saturate_seconds
        self.extract_seconds += other.extract_seconds
        self.certify_seconds += other.certify_seconds
        for name, count in other.per_rule.items():
            self.per_rule[name] = self.per_rule.get(name, 0) + count

    def to_dict(self) -> dict:
        return {
            "states": self.states,
            "deduped": self.deduped,
            "enodes": self.enodes,
            "eclasses": self.eclasses,
            "rules_fired": self.rules_fired,
            "matches_tried": self.matches_tried,
            "iterations": self.iterations,
            "frontier": self.frontier,
            "certified_points": self.certified_points,
            "budget_exhausted": self.budget_exhausted,
            "saturate_seconds": self.saturate_seconds,
            "extract_seconds": self.extract_seconds,
            "certify_seconds": self.certify_seconds,
            "per_rule": dict(sorted(self.per_rule.items())),
        }


@dataclass(frozen=True)
class DerivationStep:
    """One replayable rewrite application within a derivation."""

    rewrite: Rewrite
    match: Match


@dataclass
class CircuitState:
    """One explored circuit variant."""

    graph: ExprHigh
    cost: CircuitCost
    key: str
    order: int  # insertion index: the deterministic tie-breaker
    seed: int  # which seed graph this state derives from
    steps: tuple[DerivationStep, ...] = ()


@dataclass
class ParetoPoint:
    """One extracted (area, cycles)-optimal circuit with its provenance."""

    graph: ExprHigh
    cost: CircuitCost
    seed: int
    derivation: tuple[str, ...]  # rewrite names, in application order
    order: int
    certified: bool | None = None  # None: certification not requested

    def to_dict(self) -> dict:
        from ..dot import print_dot

        return {
            "cost": self.cost.to_dict(),
            "seed": self.seed,
            "derivation": list(self.derivation),
            "nodes": len(self.graph.nodes),
            "certified": self.certified,
            "graph_dot": print_dot(self.graph),
        }

    @staticmethod
    def from_dict(data: dict) -> "ParetoPoint":
        """Rebuild a frontier point (circuit included) from its wire dict.

        A nested type: the envelope (``schema_version``) is validated on
        the enclosing :class:`~repro.rewriting.pipeline.TransformResult`.
        """
        from ..dot import parse_dot

        return ParetoPoint(
            graph=parse_dot(data["graph_dot"]),
            cost=CircuitCost.from_dict(data["cost"]),
            seed=int(data["seed"]),
            derivation=tuple(data["derivation"]),
            order=int(data.get("order", 0)),
            certified=data.get("certified"),
        )


def saturation_rewrites(tags: int = 4) -> list[Rewrite]:
    """The default saturation rule set: structural, cost-relevant rewrites.

    Excluded on purpose: the ``pure_gen`` family (collapsing operators into
    generic ``Pure`` nodes erases their area, gaming the cost model), and
    ``split_swap`` (grows a swap ``Pure`` per application with no inverse in
    the set).  ``ooo_loop`` needs the purified shape only the pipeline
    produces, so the saturate strategy feeds the fixpoint pipeline's output
    in as a second seed instead of re-deriving it.  Any other rule list can
    be passed to :func:`saturate_graph` directly.
    """
    from .rules import combine, extra, reduction

    del tags  # reserved: tag-parametric structural rules
    return [
        combine.mux_combine(),
        combine.branch_combine(),
        combine.merge_combine(),
        reduction.split_join_elim(),
        reduction.join_split_elim(),
        reduction.fork_sink_elim(),
        reduction.pure_id_elim(),
        extra.buffer_elim(),
        extra.fork_assoc(),
        extra.merge_swap(),
    ]


def saturate_graph(
    seed: ExprHigh,
    rewrites: Sequence[Rewrite],
    budget: SaturationBudget | None = None,
    stats: SaturationStats | None = None,
    extra_seeds: Iterable[ExprHigh] = (),
) -> tuple[list[CircuitState], CircuitEGraph, SaturationStats]:
    """Explore the closure of *seed* (and *extra_seeds*) under *rewrites*.

    Best-first: the cheapest unexpanded state (by modeled time, then area,
    then insertion order) is expanded next, every rewrite match spawning a
    child state.  States are deduplicated by :func:`circuit_key`; each
    application unions the parent and child root e-classes in the returned
    :class:`CircuitEGraph`.  Runs until the space is exhausted (true
    saturation) or the budget trips — then either raises
    :class:`~repro.errors.SaturationLimitError` or returns the partial
    exploration, per ``budget.on_exhausted``.
    """
    budget = budget if budget is not None else SaturationBudget()
    stats = stats if stats is not None else SaturationStats()
    start = perf_counter()

    egraph = CircuitEGraph()
    states: list[CircuitState] = []
    seen: dict[str, int] = {}
    roots: dict[int, int] = {}  # state order -> e-class root
    heap: list[tuple[float, int, int]] = []

    def intern(graph: ExprHigh, seed_index: int, steps: tuple[DerivationStep, ...]) -> int:
        key = circuit_key(graph)
        if key in seen:
            stats.deduped += 1
            return seen[key]
        order = len(states)
        state = CircuitState(
            graph=graph,
            cost=circuit_cost(graph),
            key=key,
            order=order,
            seed=seed_index,
            steps=steps,
        )
        states.append(state)
        seen[key] = order
        roots[order] = egraph.add_circuit(graph)
        stats.states += 1
        heapq.heappush(heap, (state.cost.time, state.cost.area, order))
        return order

    for seed_index, graph in enumerate([seed, *extra_seeds]):
        intern(graph, seed_index, ())

    exhausted: str | None = None
    try:
        while heap:
            if stats.iterations >= budget.max_iterations:
                exhausted = f"iteration budget ({budget.max_iterations}) exhausted"
                break
            if len(states) >= budget.max_states:
                exhausted = f"state budget ({budget.max_states}) exhausted"
                break
            if egraph.enodes >= budget.max_enodes:
                exhausted = f"e-node budget ({budget.max_enodes}) exhausted"
                break
            _, _, order = heapq.heappop(heap)
            state = states[order]
            stats.iterations += 1
            for rewrite in rewrites:
                mstats = MatchStats()
                for match in list(find_matches(state.graph, rewrite, stats=mstats)):
                    child, _ = apply_rewrite(state.graph, rewrite, match)
                    stats.fire(rewrite.name)
                    child_order = intern(
                        child, state.seed, state.steps + (DerivationStep(rewrite, match),)
                    )
                    egraph.union(roots[state.order], roots[child_order])
                    if len(states) >= budget.max_states:
                        break
                stats.matches_tried += mstats.candidates
                if len(states) >= budget.max_states:
                    break
    finally:
        stats.saturate_seconds += perf_counter() - start
        stats.enodes = egraph.enodes
        stats.eclasses = egraph.eclasses
        obs.count("saturation.states", stats.states)
        obs.count("saturation.rules_fired", stats.rules_fired)
        obs.gauge("saturation.enodes", egraph.enodes)
        obs.gauge("saturation.eclasses", egraph.eclasses)

    if exhausted is not None:
        stats.budget_exhausted = True
        obs.count("saturation.budget_exhausted")
        if budget.on_exhausted == "error":
            raise SaturationLimitError(
                f"equality saturation stopped: {exhausted} after exploring "
                f"{stats.states} states ({stats.rules_fired} rule firings); "
                "pass a larger SaturationBudget or on_exhausted='partial'"
            )
    return states, egraph, stats


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def extract_pareto(
    states: Sequence[CircuitState],
    stats: SaturationStats | None = None,
) -> list[ParetoPoint]:
    """The non-dominated (area, cycles) frontier of the explored states.

    Deterministic: among states with identical cost the one interned first
    (lowest ``order``) represents the point, and the frontier is sorted by
    (cycles, area, order) — so repeated runs extract byte-identical
    circuits.
    """
    start = perf_counter()
    best_at: dict[tuple[int, int], CircuitState] = {}
    for state in states:
        axis = (state.cost.area, state.cost.cycles)
        kept = best_at.get(axis)
        if kept is None or state.order < kept.order:
            best_at[axis] = state
    frontier = [
        state
        for state in best_at.values()
        if not any(
            other.cost.dominates(state.cost) for other in best_at.values()
        )
    ]
    frontier.sort(key=lambda s: (s.cost.cycles, s.cost.area, s.order))
    points = [
        ParetoPoint(
            graph=state.graph,
            cost=state.cost,
            seed=state.seed,
            derivation=tuple(step.rewrite.name for step in state.steps),
            order=state.order,
        )
        for state in frontier
    ]
    if stats is not None:
        stats.extract_seconds += perf_counter() - start
        stats.frontier = len(points)
    obs.gauge("saturation.frontier", len(points))
    return points


def replay_derivation(seed: ExprHigh, steps: Iterable[DerivationStep]) -> ExprHigh:
    """Re-apply a derivation from its seed; reproduces the state's graph.

    Application is a pure function of ``(graph, rewrite, match)`` with
    deterministic fresh-name generation, so replaying the recorded steps
    from the same seed rebuilds the exact graph the exploration reached —
    the property that lets a certificate-checked rewrite sequence stand in
    for trusting the e-graph.
    """
    graph = seed
    for step in steps:
        graph, _ = apply_rewrite(graph, step.rewrite, step.match)
    return graph
