"""Quickstart: build a dataflow graph, check a refinement, apply a rewrite.

Uses the :class:`repro.Session` facade, which owns the component
environment, the result cache and the (optionally parallel) executor; the
lower-level modules it wraps remain importable for fine-grained work, and
step 4 drops down to the RewriteEngine to apply a single rewrite by hand.

Run with:  python examples/quickstart.py
"""

from repro import Session
from repro.components import fork, mux
from repro.core import ExprHigh, denote
from repro.dot import parse_dot, print_dot
from repro.refinement import io_stimuli, refines
from repro.rewriting import RewriteEngine, first_match
from repro.rewriting.rules.combine import mux_combine


def main() -> None:
    # One Session owns the environment, cache, and executor configuration.
    # use_cache=False keeps the example hermetic; pass jobs=4 for parallel
    # benchmark or verification runs.
    session = Session(use_cache=False)
    session.env.capacity = 1  # small queues keep refinement state spaces tiny

    # 1. Build a small graph: two Muxes steered by one forked condition —
    #    the lhs of the paper's figure 3a rewrite.
    graph = ExprHigh()
    graph.add_node("cfork", fork(2))
    graph.add_node("m_a", mux())
    graph.add_node("m_b", mux())
    graph.connect("cfork", "out0", "m_a", "cond")
    graph.connect("cfork", "out1", "m_b", "cond")
    graph.mark_input(0, "cfork", "in0")
    graph.mark_input(1, "m_a", "in0")
    graph.mark_input(2, "m_a", "in1")
    graph.mark_input(3, "m_b", "in0")
    graph.mark_input(4, "m_b", "in1")
    graph.mark_output(0, "m_a", "out0")
    graph.mark_output(1, "m_b", "out0")
    print("input graph (dot):")
    print(print_dot(graph))

    # 2. Denote it into its semantics (a module) and sanity-check
    #    reflexivity of refinement on a bounded instance: both condition
    #    values, one distinguished data value per port.
    module = denote(graph.lower(), session.env)
    stimuli = io_stimuli(
        {0: (True, False), 1: ("a0",), 2: ("a1",), 3: ("b0",), 4: ("b1",)}
    )
    print("graph refines itself:", refines(module, module, stimuli))

    # 3. Discharge the mux-combine rewrite's obligation (rhs ⊑ lhs) through
    #    the session — the executable stand-in for the Lean proof.  With a
    #    cache enabled this is instant on every rerun.
    [outcome] = session.verify([("repro.rewriting.rules.combine", "mux_combine", {})])
    print(f"mux-combine obligation: holds={outcome['holds']} [{outcome['seconds']:.2f}s]")

    # 4. Apply the rewrite through the engine (theorem 4.6 then guarantees
    #    the output refines the input).
    rewrite = mux_combine()
    engine = RewriteEngine()
    match = first_match(graph, rewrite)
    rewritten = engine.apply_at(graph, rewrite, match)
    print("after mux-combine (dot):")
    print(print_dot(rewritten))
    print(f"applications logged: {[(a.rewrite, a.verified) for a in engine.log]}")

    # 5. Dot text round-trips, so results can feed back into a
    #    Dynamatic-style flow.
    reparsed = parse_dot(print_dot(rewritten))
    assert reparsed.nodes == rewritten.nodes
    print("dot round-trip OK")


if __name__ == "__main__":
    main()
