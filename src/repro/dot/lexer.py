"""Tokenizer for the Dynamatic-style dot dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import DotParseError


@dataclass(frozen=True)
class Token:
    kind: str  # "name" | "string" | "punct"
    text: str
    line: int


_PUNCT = {"{", "}", "[", "]", ";", ",", "="}


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens, skipping whitespace and ``//`` / ``#`` comments."""
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "/" and source[i : i + 2] == "//" or ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "-" and source[i : i + 2] == "->":
            yield Token("punct", "->", line)
            i += 2
            continue
        if ch in _PUNCT:
            yield Token("punct", ch, line)
            i += 1
            continue
        if ch == '"':
            end = i + 1
            parts = []
            while end < n and source[end] != '"':
                if source[end] == "\\" and end + 1 < n:
                    parts.append(source[end + 1])
                    end += 2
                else:
                    parts.append(source[end])
                    end += 1
            if end >= n:
                raise DotParseError("unterminated string literal", line)
            yield Token("string", "".join(parts), line)
            i = end + 1
            continue
        if ch.isalnum() or ch in "_.'<>*-":
            end = i
            while end < n and (source[end].isalnum() or source[end] in "_.'<>*-:"):
                end += 1
            yield Token("name", source[i:end], line)
            i = end
            continue
        raise DotParseError(f"unexpected character {ch!r}", line)
