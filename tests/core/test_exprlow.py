"""Tests for the ExprLow inductive graph language."""

import pytest

from repro.core.exprlow import (
    Base,
    Connect,
    Product,
    build,
    build_around,
    check_well_formed,
    fresh_instance,
    instance_names,
    isolate,
    product_fold,
)
from repro.core.ports import InternalPort, IOPort, PortMap, sequential_map
from repro.errors import GraphError


def base(name, typ="Fork", n_in=1, n_out=2):
    return Base(
        typ,
        sequential_map(name, [f"in{i}" for i in range(n_in)]),
        sequential_map(name, [f"out{i}" for i in range(n_out)]),
    )


class TestDanglingPorts:
    def test_base_exposes_its_ports(self):
        b = base("f")
        assert b.dangling_inputs() == frozenset({InternalPort("f", "in0")})
        assert b.dangling_outputs() == frozenset(
            {InternalPort("f", "out0"), InternalPort("f", "out1")}
        )

    def test_product_unions_ports(self):
        expr = Product(base("a"), base("b"))
        assert InternalPort("a", "in0") in expr.dangling_inputs()
        assert InternalPort("b", "in0") in expr.dangling_inputs()

    def test_product_overlap_rejected(self):
        expr = Product(base("a"), base("a"))
        with pytest.raises(GraphError):
            expr.dangling_inputs()

    def test_connect_removes_ports(self):
        expr = Connect(
            InternalPort("a", "out0"),
            InternalPort("b", "in0"),
            Product(base("a"), base("b")),
        )
        assert InternalPort("a", "out0") not in expr.dangling_outputs()
        assert InternalPort("b", "in0") not in expr.dangling_inputs()

    def test_connect_to_missing_port_rejected(self):
        expr = Connect(InternalPort("a", "nope"), InternalPort("b", "in0"), Product(base("a"), base("b")))
        with pytest.raises(GraphError):
            check_well_formed(expr)


class TestSubstitution:
    def test_exact_match_replaced(self):
        lhs = base("a")
        rhs = base("z", typ="Join")
        assert lhs.substitute(lhs, rhs) == rhs

    def test_match_inside_product(self):
        lhs = base("a")
        rhs = base("z")
        expr = Product(lhs, base("b"))
        assert expr.substitute(lhs, rhs) == Product(rhs, base("b"))

    def test_match_inside_connect(self):
        lhs = base("a")
        rhs = base("z")
        expr = Connect(InternalPort("a", "out0"), InternalPort("b", "in0"), Product(lhs, base("b")))
        result = expr.substitute(lhs, rhs)
        assert isinstance(result, Connect)
        assert result.expr == Product(rhs, base("b"))

    def test_no_match_returns_same_structure(self):
        expr = Product(base("a"), base("b"))
        assert expr.substitute(base("q"), base("z")) == expr

    def test_subterm_product_match(self):
        sub = Product(base("a"), base("b"))
        expr = Product(sub, base("c"))
        replacement = base("z")
        assert expr.substitute(sub, replacement) == Product(replacement, base("c"))


class TestFoldAndBuild:
    def test_fold_is_right_associated(self):
        a, b, c = base("a"), base("b"), base("c")
        assert product_fold([a, b, c]) == Product(a, Product(b, c))

    def test_fold_single_element(self):
        assert product_fold([base("a")]) == base("a")

    def test_fold_empty_rejected(self):
        with pytest.raises(GraphError):
            product_fold([])

    def test_build_applies_connections_in_order(self):
        a, b = base("a"), base("b")
        conn = (InternalPort("a", "out0"), InternalPort("b", "in0"))
        expr = build([a, b], [conn])
        assert isinstance(expr, Connect)
        assert list(expr.connections()) == [conn]

    def test_size_counts_bases(self):
        expr = build([base("a"), base("b"), base("c")], [])
        assert expr.size() == 3


class TestIsolate:
    def _graph(self):
        a, b, c = base("a"), base("b"), base("c", n_in=2, n_out=1)
        conns = [
            (InternalPort("a", "out0"), InternalPort("b", "in0")),
            (InternalPort("a", "out1"), InternalPort("c", "in0")),
            (InternalPort("b", "out0"), InternalPort("c", "in1")),
        ]
        return build([a, b, c], conns)

    def test_isolated_subterm_contains_internal_connections(self):
        expr = self._graph()
        sub, _, crossing, rest = isolate(expr, lambda b: b.inputs.targets() & {
            InternalPort("a", "in0"), InternalPort("b", "in0")})
        assert sub.size() == 2
        assert len(list(sub.connections())) == 1
        assert len(crossing) == 2
        assert len(rest) == 1

    def test_rebuild_preserves_components_and_connections(self):
        expr = self._graph()
        selected = lambda b: InternalPort("a", "in0") in b.inputs.targets()
        sub, _, crossing, rest = isolate(expr, selected)
        rebuilt = build_around(sub, rest, crossing)
        assert sorted(b.typ for b in rebuilt.bases()) == sorted(b.typ for b in expr.bases())
        assert set(rebuilt.connections()) == set(expr.connections())
        check_well_formed(rebuilt)

    def test_no_selection_rejected(self):
        with pytest.raises(GraphError):
            isolate(self._graph(), lambda b: False)


class TestNames:
    def test_instance_names_collected(self):
        expr = Product(base("a"), base("b"))
        assert instance_names(expr) == frozenset({"a", "b"})

    def test_fresh_instance_avoids_collisions(self):
        assert fresh_instance({"x"}, "x") == "x_1"
        assert fresh_instance({"x", "x_1"}, "x") == "x_2"
        assert fresh_instance(set(), "x") == "x"

    def test_rename_internals(self):
        expr = Connect(
            InternalPort("a", "out0"),
            InternalPort("b", "in0"),
            Product(base("a"), base("b")),
        )
        renamed = expr.rename_internals({"a": "alpha"})
        assert instance_names(renamed) == frozenset({"alpha", "b"})
        assert (InternalPort("alpha", "out0"), InternalPort("b", "in0")) in set(
            renamed.connections()
        )

    def test_contains(self):
        inner = base("a")
        expr = Product(inner, base("b"))
        assert expr.contains(inner)
        assert not expr.contains(base("q"))
