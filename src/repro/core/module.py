"""Modules: the semantic objects of the paper (figure 7), made executable.

A module 𝓜(S) is a map from port names to input transitions, a map from
port names to output transitions, a collection of internal transitions, and
a set of initial states.  In the paper transitions are relations; here they
are executable: a transition takes a state (an arbitrary hashable value) and
enumerates the possible successor states, which makes nondeterminism — the
heart of out-of-order semantics — a matter of yielding several successors.

The three combinators of section 4.5 are provided:

* :func:`rename` — rename ports through port maps;
* :func:`product` — the ⊎ union combinator over a product state;
* :func:`connect_ports` — ``m[o ⇝ i]``, fusing an output transition with an
  input transition into a single internal transition (no internal step may
  fire in between, which is the source of the asymmetry in the refinement
  definitions of section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Mapping

from ..errors import SemanticsError
from .ports import Port, PortMap
from .types import Type

State = Hashable
Value = Hashable


@dataclass(frozen=True)
class InputTransition:
    """An input transition: consumes a value, yields successor states."""

    typ: Type
    fire: Callable[[State, Value], Iterable[State]]


@dataclass(frozen=True)
class OutputTransition:
    """An output transition: yields (emitted value, successor state) pairs."""

    typ: Type
    fire: Callable[[State], Iterable[tuple[Value, State]]]


@dataclass(frozen=True)
class InternalTransition:
    """An internal transition: yields successor states, no I/O."""

    name: str
    fire: Callable[[State], Iterable[State]]


@dataclass(frozen=True)
class Module:
    """An executable module 𝓜(S); see figure 7 of the paper."""

    inputs: Mapping[Port, InputTransition]
    outputs: Mapping[Port, OutputTransition]
    internals: tuple[InternalTransition, ...]
    init: frozenset[State]

    def __post_init__(self) -> None:
        if not isinstance(self.inputs, dict):
            object.__setattr__(self, "inputs", dict(self.inputs))
        if not isinstance(self.outputs, dict):
            object.__setattr__(self, "outputs", dict(self.outputs))
        if not self.init:
            raise SemanticsError("module requires at least one initial state")

    # -- exploration helpers -------------------------------------------------

    def internal_steps(self, state: State) -> Iterator[State]:
        """All states reachable in exactly one internal step."""
        for transition in self.internals:
            yield from transition.fire(state)

    def tau_closure(self, state: State) -> frozenset[State]:
        """All states reachable by zero or more internal steps."""
        seen = {state}
        frontier = [state]
        while frontier:
            current = frontier.pop()
            for nxt in self.internal_steps(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def input_ports(self) -> frozenset[Port]:
        return frozenset(self.inputs)

    def output_ports(self) -> frozenset[Port]:
        return frozenset(self.outputs)


def rename(module: Module, in_map: PortMap, out_map: PortMap) -> Module:
    """Rename the module's ports; unmapped ports keep their names."""
    inputs = {in_map.apply(port): t for port, t in module.inputs.items()}
    outputs = {out_map.apply(port): t for port, t in module.outputs.items()}
    if len(inputs) != len(module.inputs) or len(outputs) != len(module.outputs):
        raise SemanticsError("renaming collapsed two ports onto the same name")
    return Module(inputs, outputs, module.internals, module.init)


def _lift_input_left(transition: InputTransition) -> InputTransition:
    def fire(state: State, value: Value) -> Iterator[State]:
        left, right = state  # type: ignore[misc]
        for nxt in transition.fire(left, value):
            yield (nxt, right)

    return InputTransition(transition.typ, fire)


def _lift_input_right(transition: InputTransition) -> InputTransition:
    def fire(state: State, value: Value) -> Iterator[State]:
        left, right = state  # type: ignore[misc]
        for nxt in transition.fire(right, value):
            yield (left, nxt)

    return InputTransition(transition.typ, fire)


def _lift_output_left(transition: OutputTransition) -> OutputTransition:
    def fire(state: State) -> Iterator[tuple[Value, State]]:
        left, right = state  # type: ignore[misc]
        for value, nxt in transition.fire(left):
            yield value, (nxt, right)

    return OutputTransition(transition.typ, fire)


def _lift_output_right(transition: OutputTransition) -> OutputTransition:
    def fire(state: State) -> Iterator[tuple[Value, State]]:
        left, right = state  # type: ignore[misc]
        for value, nxt in transition.fire(right):
            yield value, (left, nxt)

    return OutputTransition(transition.typ, fire)


def _lift_internal_left(transition: InternalTransition) -> InternalTransition:
    def fire(state: State) -> Iterator[State]:
        left, right = state  # type: ignore[misc]
        for nxt in transition.fire(left):
            yield (nxt, right)

    return InternalTransition(f"L.{transition.name}", fire)


def _lift_internal_right(transition: InternalTransition) -> InternalTransition:
    def fire(state: State) -> Iterator[State]:
        left, right = state  # type: ignore[misc]
        for nxt in transition.fire(right):
            yield (left, nxt)

    return InternalTransition(f"R.{transition.name}", fire)


def product(first: Module, second: Module) -> Module:
    """The ⊎ combinator: union of two modules over a product state.

    Port names must be disjoint — in a well-formed graph they are, because
    each instance owns its port namespace.
    """
    in_overlap = first.input_ports() & second.input_ports()
    out_overlap = first.output_ports() & second.output_ports()
    if in_overlap or out_overlap:
        raise SemanticsError(
            f"product of modules with overlapping ports: {sorted(map(str, in_overlap | out_overlap))}"
        )
    inputs: dict[Port, InputTransition] = {}
    for port, transition in first.inputs.items():
        inputs[port] = _lift_input_left(transition)
    for port, transition in second.inputs.items():
        inputs[port] = _lift_input_right(transition)
    outputs: dict[Port, OutputTransition] = {}
    for port, transition in first.outputs.items():
        outputs[port] = _lift_output_left(transition)
    for port, transition in second.outputs.items():
        outputs[port] = _lift_output_right(transition)
    internals = tuple(
        [_lift_internal_left(t) for t in first.internals]
        + [_lift_internal_right(t) for t in second.internals]
    )
    init = frozenset((l, r) for l in first.init for r in second.init)
    return Module(inputs, outputs, internals, init)


def connect_ports(module: Module, output: Port, input_: Port) -> Module:
    """The ``m[o ⇝ i]`` combinator of section 4.5.

    The output and input transitions are removed and replaced by one atomic
    internal transition that emits the value and immediately consumes it —
    with no internal steps allowed in between.
    """
    if output not in module.outputs:
        raise SemanticsError(f"module has no output port {output}")
    if input_ not in module.inputs:
        raise SemanticsError(f"module has no input port {input_}")
    out_t = module.outputs[output]
    in_t = module.inputs[input_]

    def fire(state: State) -> Iterator[State]:
        for value, intermediate in out_t.fire(state):
            yield from in_t.fire(intermediate, value)

    internal = InternalTransition(f"conn({output}⇝{input_})", fire)
    inputs = {p: t for p, t in module.inputs.items() if p != input_}
    outputs = {p: t for p, t in module.outputs.items() if p != output}
    return Module(inputs, outputs, module.internals + (internal,), module.init)


# -- queue helpers used by component definitions -----------------------------
#
# The paper models component state as tuples of lists with enq (add to the
# front) and deq (remove from the end); we use immutable tuples so states are
# hashable.

Queue = tuple


def enq(queue: Queue, value: Value, capacity: int | None = None) -> Queue | None:
    """Add *value* to the front of *queue*; None when the queue is full."""
    if capacity is not None and len(queue) >= capacity:
        return None
    return (value,) + queue


def deq(queue: Queue) -> tuple[Value, Queue] | None:
    """Remove the oldest element (the end); None when empty."""
    if not queue:
        return None
    return queue[-1], queue[:-1]


def first(queue: Queue) -> Value | None:
    """The oldest element (the end of the queue), or None when empty."""
    if not queue:
        return None
    return queue[-1]


@dataclass
class ExplorationStats:
    """Counters filled in by state-space exploration utilities."""

    states: int = 0
    transitions: int = 0


def reachable_states(
    module: Module,
    stimuli: Mapping[Port, Iterable[Value]],
    limit: int = 200_000,
    stats: ExplorationStats | None = None,
) -> frozenset[State]:
    """Explore all states reachable under any interleaving of the stimuli.

    *stimuli* gives, for each input port, the finite set of values the
    environment may offer at any time.  Output transitions are fired and
    their values discarded (the environment is always ready).  Exploration is
    exhaustive up to *limit* states, beyond which :class:`SemanticsError` is
    raised — refinement checking requires the bounded instance to be small.
    """
    stimuli = {port: tuple(values) for port, values in stimuli.items()}
    seen: set[State] = set(module.init)
    frontier = list(module.init)
    count = 0
    while frontier:
        state = frontier.pop()
        successors: list[State] = []
        for port, values in stimuli.items():
            transition = module.inputs.get(port)
            if transition is None:
                raise SemanticsError(f"stimulus for unknown input port {port}")
            for value in values:
                successors.extend(transition.fire(state, value))
        for transition in module.outputs.values():
            successors.extend(nxt for _, nxt in transition.fire(state))
        successors.extend(module.internal_steps(state))
        count += len(successors)
        for nxt in successors:
            if nxt not in seen:
                seen.add(nxt)
                if len(seen) > limit:
                    raise SemanticsError(
                        f"state space exceeded the exploration limit of {limit}"
                    )
                frontier.append(nxt)
    if stats is not None:
        stats.states = len(seen)
        stats.transitions = count
    return frozenset(seen)


def io_module(
    inputs: Mapping[Port, tuple[Type, Callable[[State, Value], Iterable[State]]]],
    outputs: Mapping[Port, tuple[Type, Callable[[State], Iterable[tuple[Value, State]]]]],
    internals: Iterable[tuple[str, Callable[[State], Iterable[State]]]] = (),
    init: Iterable[State] = ((),),
) -> Module:
    """Convenience constructor assembling a module from plain callables."""
    return Module(
        {p: InputTransition(t, f) for p, (t, f) in inputs.items()},
        {p: OutputTransition(t, f) for p, (t, f) in outputs.items()},
        tuple(InternalTransition(n, f) for n, f in internals),
        frozenset(init),
    )
