"""JobQueue unit tests: priorities, timeouts, cancellation, backpressure.

The queue is exercised with plain coroutines as the execute hook — no
HTTP, no Sessions — which is exactly why the server injects execution
instead of the queue owning it.
"""

import asyncio

import pytest

from repro.errors import ServiceError
from repro.service.jobs import JOB_STATES, JobQueue


def run(coro):
    return asyncio.run(coro)


def test_job_states_catalogue():
    assert JOB_STATES == ("queued", "running", "done", "failed", "cancelled")


def test_fifo_within_priority_and_priority_order():
    order = []

    async def main():
        gate = asyncio.Event()

        async def execute(job):
            order.append(job.params["tag"])
            return {"ok": True}

        queue = JobQueue(execute, concurrency=1)
        # hold the single worker busy so later submissions queue up
        first = queue.new_job("bench", {"tag": "hold"})

        async def holding(job):
            await gate.wait()
            return await execute(job)

        queue._execute = holding
        queue.submit(first)
        queue.start()
        await asyncio.sleep(0.05)  # the hold job is now running

        queue._execute = execute
        for tag, priority in [("c", 5), ("a", 0), ("b", 5), ("urgent", -1)]:
            queue.submit(queue.new_job("bench", {"tag": tag}, priority=priority))
        gate.set()
        await asyncio.gather(*(queue.wait_terminal(j) for j in queue.jobs.values()))
        await queue.close()

    run(main())
    assert order == ["hold", "urgent", "a", "c", "b"]


def test_timeout_marks_failed():
    async def main():
        async def execute(job):
            await asyncio.sleep(30)

        queue = JobQueue(execute, concurrency=1)
        job = queue.new_job("bench", {}, timeout=0.05)
        queue.submit(job)
        queue.start()
        await asyncio.wait_for(queue.wait_terminal(job), timeout=5)
        await queue.close()
        return job

    job = run(main())
    assert job.state == "failed"
    assert "timed out" in job.error
    assert job.cancel_requested  # best-effort signal to the underlying work


def test_execute_exception_marks_failed_not_queue_death():
    async def main():
        async def execute(job):
            if job.params.get("boom"):
                raise ValueError("kaboom")
            return {"ok": True}

        queue = JobQueue(execute, concurrency=1)
        bad = queue.new_job("bench", {"boom": True})
        good = queue.new_job("bench", {})
        queue.submit(bad)
        queue.submit(good)
        queue.start()
        await asyncio.gather(queue.wait_terminal(bad), queue.wait_terminal(good))
        await queue.close()
        return bad, good

    bad, good = run(main())
    assert bad.state == "failed" and "kaboom" in bad.error
    assert good.state == "done" and good.result == {"ok": True}


def test_cancel_queued_is_immediate_and_skipped():
    ran = []

    async def main():
        gate = asyncio.Event()

        async def execute(job):
            ran.append(job.id)
            await gate.wait()
            return {}

        queue = JobQueue(execute, concurrency=1)
        running = queue.new_job("bench", {})
        victim = queue.new_job("bench", {})
        queue.submit(running)
        queue.submit(victim)
        queue.start()
        await asyncio.sleep(0.05)
        cancelled = await queue.cancel(victim.id)
        assert cancelled.state == "cancelled"
        gate.set()
        await queue.wait_terminal(running)
        await queue.close()
        return victim

    victim = run(main())
    assert victim.state == "cancelled"
    assert victim.id not in ran  # never executed


def test_cancel_running_is_best_effort_flag():
    async def main():
        gate = asyncio.Event()

        async def execute(job):
            await gate.wait()
            return {"finished": True}

        queue = JobQueue(execute, concurrency=1)
        job = queue.new_job("bench", {})
        queue.submit(job)
        queue.start()
        await asyncio.sleep(0.05)
        assert job.state == "running"
        await queue.cancel(job.id)
        assert job.cancel_requested and job.state == "running"
        gate.set()
        await queue.wait_terminal(job)
        await queue.close()
        return job

    job = run(main())
    assert job.state == "done"  # it finished; the flag was advisory


def test_backpressure_raises_service_error():
    async def main():
        async def execute(job):
            await asyncio.sleep(30)

        queue = JobQueue(execute, concurrency=1, max_pending=2)
        queue.submit(queue.new_job("bench", {"n": 0}))
        queue.submit(queue.new_job("bench", {"n": 1}))
        with pytest.raises(ServiceError, match="full"):
            queue.submit(queue.new_job("bench", {"n": 2}))
        await queue.close()

    run(main())


def test_bounded_concurrency():
    peak = [0]
    active = [0]

    async def main():
        async def execute(job):
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            await asyncio.sleep(0.02)
            active[0] -= 1
            return {}

        queue = JobQueue(execute, concurrency=3)
        jobs = [queue.new_job("bench", {"n": n}) for n in range(10)]
        for job in jobs:
            queue.submit(job)
        queue.start()
        await asyncio.gather(*(queue.wait_terminal(j) for j in jobs))
        await queue.close()

    run(main())
    assert peak[0] <= 3


def test_close_cancels_queued_jobs():
    async def main():
        async def execute(job):
            await asyncio.sleep(30)

        queue = JobQueue(execute, concurrency=1)
        jobs = [queue.new_job("bench", {"n": n}) for n in range(3)]
        for job in jobs:
            queue.submit(job)
        queue.start()
        await asyncio.sleep(0.05)
        await queue.close()
        return jobs

    jobs = run(main())
    assert all(job.terminal for job in jobs)
    assert sum(job.state == "cancelled" for job in jobs) >= 2


def test_unknown_job_raises():
    async def main():
        queue = JobQueue(lambda job: None, concurrency=1)
        with pytest.raises(ServiceError, match="unknown job"):
            queue.get("job-999")

    run(main())


def test_status_dict_shape():
    async def main():
        async def execute(job):
            return {"ok": True}

        queue = JobQueue(execute, concurrency=1)
        job = queue.new_job("bench", {"name": "matvec"}, key="k" * 64, priority=7)
        queue.submit(job)
        queue.start()
        await queue.wait_terminal(job)
        await queue.close()
        return job.status_dict()

    status = run(main())
    assert status["state"] == "done"
    assert status["kind"] == "bench"
    assert status["priority"] == 7
    assert status["key"] == "k" * 64
    assert status["seconds"] >= 0
