"""Tests for the wire type language and unification."""

import pytest

from repro.core.types import (
    BOOL,
    I32,
    UNIT,
    FloatType,
    IntType,
    TaggedType,
    TupleType,
    TypeVar,
    parse_type,
    unify,
)
from repro.errors import TypeCheckError


class TestTypeConstruction:
    def test_int_width_must_be_positive(self):
        with pytest.raises(TypeCheckError):
            IntType(0)

    def test_float_width_restricted(self):
        with pytest.raises(TypeCheckError):
            FloatType(16)

    def test_concrete_types_have_no_free_vars(self):
        assert I32.is_concrete()
        assert TupleType(I32, BOOL).is_concrete()

    def test_type_var_is_not_concrete(self):
        assert not TypeVar("T").is_concrete()
        assert not TupleType(TypeVar("T"), BOOL).is_concrete()


class TestSubstitution:
    def test_substitute_into_tuple(self):
        pattern = TupleType(TypeVar("T"), TypeVar("U"))
        result = pattern.substitute({"T": I32, "U": BOOL})
        assert result == TupleType(I32, BOOL)

    def test_substitute_into_tagged(self):
        pattern = TaggedType(TypeVar("T"))
        assert pattern.substitute({"T": I32}) == TaggedType(I32)

    def test_unbound_var_left_alone(self):
        assert TypeVar("T").substitute({}) == TypeVar("T")


class TestUnify:
    def test_var_binds_to_concrete(self):
        assignment = unify(TypeVar("T"), I32)
        assert assignment == {"T": I32}

    def test_consistent_rebinding_allowed(self):
        pattern = TupleType(TypeVar("T"), TypeVar("T"))
        assert unify(pattern, TupleType(I32, I32)) == {"T": I32}

    def test_inconsistent_binding_rejected(self):
        pattern = TupleType(TypeVar("T"), TypeVar("T"))
        with pytest.raises(TypeCheckError):
            unify(pattern, TupleType(I32, BOOL))

    def test_structural_mismatch_rejected(self):
        with pytest.raises(TypeCheckError):
            unify(I32, BOOL)

    def test_tagged_structure(self):
        assignment = unify(TaggedType(TypeVar("T")), TaggedType(BOOL))
        assert assignment == {"T": BOOL}

    def test_tag_width_mismatch_rejected(self):
        with pytest.raises(TypeCheckError):
            unify(TaggedType(TypeVar("T"), tag_bits=4), TaggedType(BOOL, tag_bits=8))


class TestParseType:
    @pytest.mark.parametrize(
        "typ",
        [UNIT, BOOL, I32, IntType(8), FloatType(64), TupleType(I32, BOOL),
         TaggedType(I32), TaggedType(TupleType(I32, BOOL), 4), TypeVar("T"),
         TupleType(TupleType(BOOL, BOOL), I32)],
    )
    def test_round_trip(self, typ):
        assert parse_type(str(typ)) == typ

    def test_garbage_rejected(self):
        with pytest.raises(TypeCheckError):
            parse_type("notatype!!")
