"""Tests for the dev-stats and ablation measurement utilities."""

import pytest

from repro.eval.ablation import retag
from repro.eval.devstats import measure


class TestDevStats:
    @pytest.fixture(scope="class")
    def matvec_stats(self):
        return measure("matvec")

    def test_counts_are_positive(self, matvec_stats):
        assert matvec_stats.nodes > 10
        assert matvec_stats.rewrites > 5
        assert matvec_stats.composition_steps > 0
        assert matvec_stats.total_steps == (
            matvec_stats.rewrites + matvec_stats.composition_steps
        )

    def test_matvec_transforms_its_single_loop(self, matvec_stats):
        assert matvec_stats.transformed_loops == 1
        assert matvec_stats.refused_loops == 0

    def test_bicg_is_refused(self):
        stats = measure("bicg")
        assert stats.refused_loops == 1
        assert stats.transformed_loops == 0

    def test_mvt_has_two_loops(self):
        stats = measure("mvt")
        assert stats.transformed_loops == 2


class TestRetag:
    def test_retag_changes_every_kernel(self):
        from repro.benchmarks import mvt

        program = retag(mvt(5), 9)
        assert all(kernel.tags == 9 for kernel in program.kernels)

    def test_retag_copies_arrays(self):
        from repro.benchmarks import matvec

        original = matvec(5)
        copy = retag(original, 3)
        copy.arrays["y"][0] = 123.0
        assert original.arrays["y"][0] != 123.0


class TestTraceUtilities:
    def test_compare_utilization(self):
        from repro.sim.trace import FiringTrace, compare_utilization

        a, b = FiringTrace(), FiringTrace()
        a.record("u", 0, 5)
        b.record("v", 0, 1)
        result = compare_utilization(
            {"A": (a, 10), "B": (b, 10)}, {"A": "u", "B": "v"}
        )
        assert result == {"A": 0.5, "B": 0.1}


class TestStimuliHelpers:
    def test_uniform_stimuli_covers_all_inputs(self):
        from repro.components import default_environment, join
        from repro.core import ExprHigh, denote
        from repro.refinement import uniform_stimuli

        g = ExprHigh()
        g.add_node("j", join())
        g.mark_input(0, "j", "in0")
        g.mark_input(1, "j", "in1")
        g.mark_output(0, "j", "out0")
        module = denote(g.lower(), default_environment(capacity=1))
        stimuli = uniform_stimuli(module, (1, 2))
        assert set(stimuli) == module.input_ports()
        assert all(values == (1, 2) for values in stimuli.values())

    def test_io_stimuli_keys_by_index(self):
        from repro.core.ports import IOPort
        from repro.refinement import io_stimuli

        stimuli = io_stimuli({0: (True,), 3: (1, 2)})
        assert stimuli == {IOPort(0): (True,), IOPort(3): (1, 2)}
