"""The main out-of-order loop rewrite (fig. 3d, sections 3.3 and 5).

The left-hand side is the *normalized sequential loop*: a single Mux and a
single Branch guarding a Pure body, the Boolean condition split off the
body's output, forked to the Branch and (through an Init holding the initial
``false``) back to the Mux.

The right-hand side replaces the Mux by an unconditional Merge — which is
what lets independent loop instances overlap and overtake each other — and
wraps the loop in a Tagger/Untagger so results are released in program
order.  The Init and condition Fork disappear: a Merge needs no condition.

The refinement obligation is the bounded analogue of theorem 5.3
(𝓘 ⊑ 𝓢): checked here on concrete loop bodies, and dissected invariant by
invariant in :mod:`repro.refinement.loop_proof`.
"""

from __future__ import annotations

from ...components import branch, fork, init, merge, mux, split, tagger
from ...core.exprhigh import ExprHigh, NodeSpec
from ..rewrite import Match, Rewrite, Var
from .common import graph_of, io_values, obligation_env


def sequential_loop_lhs() -> ExprHigh:
    """The normalized sequential loop pattern (lhs of fig. 3d)."""
    return graph_of(
        nodes={
            "mx": mux(),
            "body": NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": Var("F")}),
            "sp": split(),
            "fk": fork(2),
            "ini": init(value=False),
            "br": branch(),
        },
        connections=[
            ("mx.out0", "body.in0"),
            ("body.out0", "sp.in0"),
            ("sp.out0", "br.in0"),
            ("sp.out1", "fk.in0"),
            ("fk.out0", "br.cond"),
            ("fk.out1", "ini.in0"),
            ("ini.out0", "mx.cond"),
            ("br.out0", "mx.in0"),
        ],
        inputs={0: "mx.in1"},
        outputs={0: "br.out1"},
    )


def ooo_loop_rhs(fn: str, tags: int) -> ExprHigh:
    """The tagged out-of-order loop (rhs of fig. 3d) for a concrete body."""
    return graph_of(
        nodes={
            "tg": tagger(tags=tags),
            "mg": merge(),
            "body": NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": fn, "tagged": True}),
            "sp": split(tagged=True),
            "br": branch(tagged=True),
        },
        connections=[
            ("tg.out0", "mg.in1"),
            ("mg.out0", "body.in0"),
            ("body.out0", "sp.in0"),
            ("sp.out0", "br.in0"),
            ("sp.out1", "br.cond"),
            ("br.out0", "mg.in0"),
            ("br.out1", "tg.in1"),
        ],
        inputs={0: "tg.in0"},
        outputs={0: "tg.out1"},
    )


def sequential_loop_concrete(fn: str) -> ExprHigh:
    """The lhs pattern instantiated with a concrete body function."""
    loop = sequential_loop_lhs().copy()
    spec = loop.nodes["body"]
    loop.nodes["body"] = NodeSpec.make(spec.typ, spec.in_ports, spec.out_ports, {"fn": fn})
    return loop


def _dec_step(n: int) -> tuple[int, bool]:
    """A tiny loop body: count down, continue while positive."""
    return n - 1, n - 1 > 0


def _obligation(tags: int):
    def instances():
        env = obligation_env(capacity=1, functions={"dec_step": (_dec_step, 1)})
        lhs = sequential_loop_concrete("dec_step")
        rhs = ooo_loop_rhs("dec_step", tags=min(tags, 2))
        yield lhs, rhs, env, io_values({0: (1, 2)})

    return instances


def ooo_loop(tags: int = 4) -> Rewrite:
    """The verified out-of-order loop rewrite, with *tags* in-flight slots.

    *tags* is the rewrite's parameter supplied by the oracle (the paper uses
    the per-benchmark counts of Elakhras et al.).  The obligation instance
    is checked with a small tag count and a terminating countdown body — the
    bounded stand-in for the parametric Lean proof of section 5.
    """
    lhs = sequential_loop_lhs()

    def rhs(match: Match) -> ExprHigh:
        return ooo_loop_rhs(str(match.params["F"]), tags)

    return Rewrite(
        name="ooo-loop",
        lhs=lhs,
        rhs=rhs,
        verified=True,
        obligation=_obligation(tags),
        description="Mux-guarded sequential loop becomes tagged Merge loop (fig. 3d)",
    )
