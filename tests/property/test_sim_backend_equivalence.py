"""Property: the compiled engine is cycle- and value-identical to the
interpreter.

The compiled backend (:mod:`repro.sim.compiled`) is only admissible as the
default because it is observationally indistinguishable from the reference
interpreter (:mod:`repro.sim.cycle`).  These tests pin that claim on every
built-in kernel in :mod:`repro.benchmarks.kernels`, across all three
dataflow transforms and under randomized buffer placements: identical
``SimStats`` (cycle count, tokens fired, per-channel occupancy peaks, store
history) and bit-identical computed arrays.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks import bicg, gemm, gsum_many, gsum_single, matvec, mvt
from repro.components import default_environment
from repro.hls.area import latency_of
from repro.hls.buffers import place_buffers
from repro.hls.frontend import compile_program
from repro.hls.ooo import transform_out_of_order
from repro.rewriting.pipeline import GraphitiPipeline
from repro.sim.dispatch import simulate_graph

#: every built-in kernel, at property-test sizes.
KERNELS = {
    "matvec": lambda: matvec(4),
    "mvt": lambda: mvt(3),
    "bicg": lambda: bicg(3),
    "gemm": lambda: gemm(3),
    "gsum-single": lambda: gsum_single(16),
    "gsum-many": lambda: gsum_many(2, 8),
}

TRANSFORMS = (None, "ooo", "graphiti")


def build(name, transform):
    """(program, env, [(kernel, graph, tags)]) for one kernel x transform."""
    program = KERNELS[name]()
    env = default_environment()
    compiled = compile_program(program, env)
    units = []
    for ck in compiled.kernels:
        if transform == "ooo":
            units.append((ck, transform_out_of_order(ck.graph, ck.mark), ck.mark.tags))
        elif transform == "graphiti":
            outcome = GraphitiPipeline(env).transform_kernel(ck.graph, ck.mark)
            if outcome.transformed:
                units.append((ck, outcome.graph, ck.mark.tags))
            else:  # e.g. bicg: the purity check refuses, in-order fallback
                units.append((ck, ck.graph, None))
        else:
            units.append((ck, ck.graph, None))
    return program, env, units


def observe(stats):
    """Everything a backend exposes about one run, in comparable form."""
    return (
        stats.cycles,
        stats.tokens_fired,
        stats.results_collected,
        stats.peak_in_flight,
        stats.channel_peaks,
        [(a, int(i), float(v)) for a, i, v in stats.store_history],
    )


def run_backend(program, env, units, capacities_of, backend, pristine):
    for key, value in pristine.items():
        program.arrays[key][...] = value
    observations = []
    for ck, graph, tags in units:
        stats = simulate_graph(
            graph,
            env,
            ck.kernel,
            program.arrays,
            capacities=capacities_of(graph, tags),
            latency_of=latency_of,
            backend=backend,
        )
        observations.append(observe(stats))
    return observations, {k: v.copy() for k, v in program.arrays.items()}


def assert_backends_agree(name, transform, capacities_of):
    program, env, units = build(name, transform)
    pristine = {k: v.copy() for k, v in program.arrays.items()}
    compiled_obs, compiled_arrays = run_backend(
        program, env, units, capacities_of, "compiled", pristine
    )
    interp_obs, interp_arrays = run_backend(
        program, env, units, capacities_of, "interp", pristine
    )
    assert compiled_obs == interp_obs, f"{name}/{transform}: SimStats diverge"
    for key in interp_arrays:
        assert np.array_equal(compiled_arrays[key], interp_arrays[key]), (
            f"{name}/{transform}: array {key!r} diverges"
        )


def default_placement(graph, tags):
    return place_buffers(graph, tags).capacities


class TestEveryKernelEveryTransform:
    """Exhaustive sweep under the production buffer placement."""

    @pytest.mark.parametrize("transform", TRANSFORMS)
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_backends_identical(self, name, transform):
        assert_backends_agree(name, transform, default_placement)


class TestRandomizedPlacements:
    """Equivalence is placement-independent, not an artifact of one sizing."""

    @given(
        name=st.sampled_from(sorted(KERNELS)),
        transform=st.sampled_from(TRANSFORMS),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_backends_identical_under_jittered_capacities(
        self, name, transform, seed
    ):
        def jittered(graph, tags):
            # Widen each placed buffer by a seeded random amount; widening
            # never deadlocks, so every drawn placement runs to completion
            # and the full SimStats comparison stays meaningful.
            rng = random.Random(seed)
            return {
                edge: cap + rng.randint(0, 3)
                for edge, cap in place_buffers(graph, tags).capacities.items()
            }

        assert_backends_agree(name, transform, jittered)
