"""Section 6.3 analogue: rewriting statistics and engine throughput.

Run with:  pytest benchmarks/bench_rewriting.py --benchmark-only -s

Run standalone (``python benchmarks/bench_rewriting.py``) to microbenchmark
the matcher and the rewrite fixpoint on the largest benchmark graphs and
append an entry to ``benchmarks/BENCH_rewriting.json``.
"""

import pytest

from repro.benchmarks import load_benchmark
from repro.components import default_environment
from repro.eval.devstats import measure, report
from repro.eval.paper_data import BENCHMARKS, PAPER_DEV_STATS
from repro.hls.frontend import compile_program
from repro.rewriting.pipeline import GraphitiPipeline


def test_print_dev_stats(once):
    print()
    print(report())
    print()
    print("paper reference: matvec 90 nodes / 1650 rewrites / 9.76 s;")
    print("                 gemm  180 nodes / 4416 rewrites / 81.49 s")
    print("(steps count named rewrites + purifier compositions + the")
    print(" e-graph oracle's replayable rule applications; magnitudes and")
    print(" the node-count scaling match the paper's)")


def test_rewriting_work_scales_with_nodes(once):
    """The gemm/matvec relationship of section 6.3: more nodes, more work."""
    stats = {name: measure(name) for name in ("matvec", "gemm", "mvt")}
    assert stats["gemm"].nodes > stats["matvec"].nodes
    assert stats["gemm"].total_steps >= stats["matvec"].total_steps
    assert stats["mvt"].total_steps > stats["matvec"].total_steps  # two loops


def test_bicg_counts_a_refusal(once):
    stats = measure("bicg")
    assert stats.refused_loops == 1
    assert stats.transformed_loops == 0


@pytest.mark.benchmark(group="verification")
def test_benchmark_verify_all_rewrites(benchmark):
    """Time the full verification pass: every obligation in the library,
    including the theorem 5.3 instance (the 'one person-year of Lean'
    counterpart runs in seconds here, on bounded instances)."""
    from repro.errors import RefinementError
    from repro.rewriting.engine import RewriteEngine
    from repro.rewriting.rules import all_rewrites

    def verify():
        engine = RewriteEngine()
        discharged = 0
        refuted = 0
        for rewrite in all_rewrites(tags=2):
            try:
                engine.verify_rewrite(rewrite)
                discharged += 1
            except RefinementError:
                assert not rewrite.verified  # only the documented two refute
                refuted += 1
        return discharged, refuted

    discharged, refuted = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert discharged == 21
    assert refuted == 2


@pytest.mark.benchmark(group="rewriting")
@pytest.mark.parametrize("name", ["matvec", "gemm"])
def test_benchmark_pipeline_runtime(benchmark, name):
    """Time the rewriting pipeline itself (the 9.76s/81.49s analogue)."""
    program = load_benchmark(name)
    env = default_environment()
    compiled = compile_program(program, env)

    def run():
        outcomes = []
        for ck in compiled.kernels:
            pipeline = GraphitiPipeline(env)
            outcomes.append(pipeline.transform_kernel(ck.graph, ck.mark))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(outcome.transformed for outcome in outcomes)


# -- standalone microbenchmark: matcher + fixpoint on the largest graphs ----

_LARGEST = ("gemm", "mvt")  # most nodes / most loops among the paper set


def _phase_rules():
    from repro.rewriting.rules import combine, reduction

    return [
        combine.mux_combine(),
        combine.branch_combine(),
        reduction.split_join_elim(),
        reduction.fork_sink_elim(),
        reduction.pure_id_elim(),
    ]


def _best_of(repeats, fn):
    from time import perf_counter

    best = float("inf")
    value = None
    for _ in range(repeats):
        start = perf_counter()
        value = fn()
        best = min(best, perf_counter() - start)
    return best, value


def collect_measurements(repeats: int = 5) -> dict:
    """Time match enumeration and the rewrite fixpoint per large benchmark."""
    from repro.rewriting.engine import RewriteEngine
    from repro.rewriting.matcher import find_matches

    env = default_environment()
    results = {}
    for name in _LARGEST:
        compiled = compile_program(load_benchmark(name), env)
        graph = compiled.kernels[0].graph
        rules = _phase_rules()

        def enumerate_all():
            return sum(1 for rule in rules for _ in find_matches(graph, rule))

        match_seconds, match_count = _best_of(repeats, enumerate_all)

        def fixpoint(use_worklist):
            engine = RewriteEngine()
            engine.apply_exhaustively(graph.copy(), rules, use_worklist=use_worklist)
            return engine.stats

        worklist_seconds, worklist_stats = _best_of(repeats, lambda: fixpoint(True))
        scan_seconds, scan_stats = _best_of(repeats, lambda: fixpoint(False))
        results[name] = {
            "nodes": len(graph.nodes),
            "edges": len(graph.connections),
            "match_enumeration_seconds": round(match_seconds, 6),
            "matches_enumerated": match_count,
            "fixpoint_worklist_seconds": round(worklist_seconds, 6),
            "fixpoint_scan_seconds": round(scan_seconds, 6),
            "rewrites_applied": worklist_stats.rewrites_applied,
            "worklist_matches_tried": worklist_stats.matches_tried,
            "scan_matches_tried": scan_stats.matches_tried,
            "worklist_scans": worklist_stats.worklist_scans,
            "full_scans": worklist_stats.full_scans,
        }
        assert worklist_stats.rewrites_applied == scan_stats.rewrites_applied
    return results


def measure_overhead(repeats: int = 5) -> dict:
    """Cost of the observability instrumentation on the rewrite fixpoint.

    Three configurations of the same workload (the worklist fixpoint on the
    largest graphs), interleaved round-robin and reported best-of:

    * ``stubbed`` — ``obs.span``/``count``/``gauge`` replaced by no-ops,
      approximating the pre-instrumentation engine;
    * ``nosink`` — the shipped default: real obs calls, no sink attached,
      so every span is the shared no-op span;
    * ``sink`` — an ``InMemorySink`` attached, full span trees recorded.

    The contract (and the CI guard) is on ``nosink_overhead``: tracing that
    nobody turned on must stay within a few percent of the stubbed run.
    """
    from time import perf_counter

    from repro import obs
    from repro.obs.core import _NOOP_SPAN
    from repro.rewriting.engine import RewriteEngine

    env = default_environment()
    workload = []
    for name in _LARGEST:
        compiled = compile_program(load_benchmark(name), env)
        workload.append((compiled.kernels[0].graph, _phase_rules()))

    def fixpoint() -> None:
        engine = RewriteEngine()
        for graph, rules in workload:
            engine.apply_exhaustively(graph.copy(), rules, use_worklist=True)

    def timed(fn) -> float:
        start = perf_counter()
        fn()
        return perf_counter() - start

    def run_stubbed() -> float:
        originals = (obs.span, obs.count, obs.gauge)
        obs.span = lambda name, **attrs: _NOOP_SPAN
        obs.count = lambda name, n=1: None
        obs.gauge = lambda name, value: None
        try:
            return timed(fixpoint)
        finally:
            obs.span, obs.count, obs.gauge = originals

    def run_with_sink() -> float:
        tracer = obs.Tracer()
        tracer.attach(obs.InMemorySink())
        with obs.use_tracer(tracer):
            return timed(fixpoint)

    fixpoint()  # warm caches (match plans, imports) outside the timings
    best = {"stubbed": float("inf"), "nosink": float("inf"), "sink": float("inf")}
    for _ in range(repeats):
        best["stubbed"] = min(best["stubbed"], run_stubbed())
        best["nosink"] = min(best["nosink"], timed(fixpoint))
        best["sink"] = min(best["sink"], run_with_sink())

    return {
        "workload": list(_LARGEST),
        "repeats": repeats,
        "stubbed_seconds": round(best["stubbed"], 6),
        "nosink_seconds": round(best["nosink"], 6),
        "sink_seconds": round(best["sink"], 6),
        "nosink_overhead": round(best["nosink"] / best["stubbed"] - 1.0, 4),
        "sink_overhead": round(best["sink"] / best["stubbed"] - 1.0, 4),
    }


def _append_history(entry: dict) -> None:
    import json
    from pathlib import Path

    out = Path(__file__).with_name("BENCH_rewriting.json")
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(entry, indent=2))


def main(argv=None) -> int:
    import argparse

    from repro._version import __version__

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--overhead-guard",
        action="store_true",
        help="measure observability overhead instead of the microbenchmarks; "
        "exit 1 when the no-sink overhead exceeds the threshold",
    )
    parser.add_argument("--repeats", type=int, default=5, help="best-of repeats")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="maximum tolerated no-sink overhead fraction (default: 0.05)",
    )
    args = parser.parse_args(argv)

    if args.overhead_guard:
        overhead = measure_overhead(repeats=args.repeats)
        _append_history({"tool_version": __version__, "overhead": overhead})
        if overhead["nosink_overhead"] > args.threshold:
            print(
                f"FAIL: no-sink observability overhead {overhead['nosink_overhead']:.1%} "
                f"exceeds the {args.threshold:.0%} budget"
            )
            return 1
        print(
            f"OK: no-sink overhead {overhead['nosink_overhead']:.1%} "
            f"(sink attached: {overhead['sink_overhead']:.1%})"
        )
        return 0

    _append_history(
        {"tool_version": __version__, "benchmarks": collect_measurements(repeats=args.repeats)}
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
