"""Phase-3 rewrites: turning a loop body into Pure components (fig. 5).

The sequence of figure 5: replace each operator by a Pure implementation
(adding Joins for extra inputs), lift Forks to the top of the body
(duplicating what sits above them), replace Forks by ``Pure{dup}; Split``,
and compose adjacent Pures.  Together with the shuffle rules these reduce an
arbitrary side-effect-free body to a single Pure — which *is* the proof that
the body consumes one token and produces one token, in order.
"""

from __future__ import annotations

from ...components import fork, join, split
from ...core.exprhigh import NodeSpec
from .. import algebra
from ..rewrite import Match, Rewrite, Var
from .common import graph_of, io_values, obligation_env


def _tagged(match: Match, node: str) -> bool:
    return bool(match.host_specs[match.nodes[node]].param("tagged", False))


def _pure_spec(fn: str, tagged: bool) -> NodeSpec:
    return NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": fn, "tagged": tagged})


def _op1_lhs():
    spec = NodeSpec.make("Operator", ["in0"], ["out0"], {"op": Var("F")})
    return graph_of({"op": spec}, [], {0: "op.in0"}, {0: "op.out0"})


def _op1_rhs(match: Match):
    fn = str(match.params["F"])
    return graph_of(
        {"p": _pure_spec(fn, _tagged(match, "op"))}, [], {0: "p.in0"}, {0: "p.out0"}
    )


def _op1_obligation():
    env = obligation_env(capacity=1)
    lhs = graph_of(
        {"op": NodeSpec.make("Operator", ["in0"], ["out0"], {"op": "ne0"})},
        [], {0: "op.in0"}, {0: "op.out0"},
    )
    rhs = graph_of({"p": _pure_spec("ne0", False)}, [], {0: "p.in0"}, {0: "p.out0"})
    yield lhs, rhs, env, io_values({0: (0, 1)})


def op1_to_pure() -> Rewrite:
    """A unary Operator is already a Pure."""
    return Rewrite(
        name="op1-to-pure",
        lhs=_op1_lhs(),
        rhs=_op1_rhs,
        verified=True,
        obligation=_op1_obligation,
        description="Unary operator becomes a Pure component (fig. 5b)",
    )


def _op2_lhs():
    spec = NodeSpec.make("Operator", ["in0", "in1"], ["out0"], {"op": Var("F")})
    return graph_of({"op": spec}, [], {0: "op.in0", 1: "op.in1"}, {0: "op.out0"})


def _op2_rhs(match: Match):
    fn = algebra.tup(str(match.params["F"]))
    tagged = _tagged(match, "op")
    return graph_of(
        {"jn": join(tagged=tagged), "p": _pure_spec(fn, tagged)},
        [("jn.out0", "p.in0")],
        {0: "jn.in0", 1: "jn.in1"},
        {0: "p.out0"},
    )


def _op2_obligation():
    env = obligation_env(capacity=1)
    algebra.ensure(env, "tup(mod)")
    lhs = graph_of(
        {"op": NodeSpec.make("Operator", ["in0", "in1"], ["out0"], {"op": "mod"})},
        [], {0: "op.in0", 1: "op.in1"}, {0: "op.out0"},
    )
    rhs = graph_of(
        {"jn": join(tagged=False), "p": _pure_spec("tup(mod)", False)},
        [("jn.out0", "p.in0")],
        {0: "jn.in0", 1: "jn.in1"},
        {0: "p.out0"},
    )
    yield lhs, rhs, env, io_values({0: (5, 7), 1: (3,)})


def op2_to_pure() -> Rewrite:
    """A binary Operator becomes Join followed by a tupled Pure."""
    return Rewrite(
        name="op2-to-pure",
        lhs=_op2_lhs(),
        rhs=_op2_rhs,
        verified=True,
        obligation=_op2_obligation,
        description="Binary operator becomes Join; Pure(tup f) (fig. 5b)",
    )


def _fork_lift_lhs():
    return graph_of(
        {"p": NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": Var("F")}), "fk": fork(2)},
        [("p.out0", "fk.in0")],
        {0: "p.in0"},
        {0: "fk.out0", 1: "fk.out1"},
    )


def _fork_lift_rhs(match: Match):
    fn = str(match.params["F"])
    tagged = _tagged(match, "p")
    return graph_of(
        {"fk": fork(2), "pa": _pure_spec(fn, tagged), "pb": _pure_spec(fn, tagged)},
        [("fk.out0", "pa.in0"), ("fk.out1", "pb.in0")],
        {0: "fk.in0"},
        {0: "pa.out0", 1: "pb.out0"},
    )


def _fork_lift_obligation():
    env = obligation_env(capacity=1)
    lhs = graph_of(
        {"p": _pure_spec("incr", False), "fk": fork(2)},
        [("p.out0", "fk.in0")],
        {0: "p.in0"},
        {0: "fk.out0", 1: "fk.out1"},
    )
    rhs = graph_of(
        {"fk": fork(2), "pa": _pure_spec("incr", False), "pb": _pure_spec("incr", False)},
        [("fk.out0", "pa.in0"), ("fk.out1", "pb.in0")],
        {0: "fk.in0"},
        {0: "pa.out0", 1: "pb.out0"},
    )
    yield lhs, rhs, env, io_values({0: (1, 2)})


def fork_lift_pure() -> Rewrite:
    """Move a Fork above a Pure, duplicating the Pure (fig. 5c)."""
    return Rewrite(
        name="fork-lift-pure",
        lhs=_fork_lift_lhs(),
        rhs=_fork_lift_rhs,
        verified=True,
        obligation=_fork_lift_obligation,
        description="Fork moved above a Pure, duplicating it (fig. 5c)",
    )


def _fork_to_pure_lhs():
    return graph_of({"fk": fork(2)}, [], {0: "fk.in0"}, {0: "fk.out0", 1: "fk.out1"})


def _fork_to_pure_rhs(match: Match):
    tagged = _tagged(match, "fk")
    return graph_of(
        {"p": _pure_spec("dup", tagged), "sp": split(tagged=tagged)},
        [("p.out0", "sp.in0")],
        {0: "p.in0"},
        {0: "sp.out0", 1: "sp.out1"},
    )


def _fork_to_pure_obligation():
    env = obligation_env(capacity=1)
    algebra.ensure(env, "dup")
    lhs = _fork_to_pure_lhs()
    rhs = graph_of(
        {"p": _pure_spec("dup", False), "sp": split(tagged=False)},
        [("p.out0", "sp.in0")],
        {0: "p.in0"},
        {0: "sp.out0", 1: "sp.out1"},
    )
    yield lhs, rhs, env, io_values({0: ("x", "y")})


def fork_to_pure() -> Rewrite:
    """A Fork becomes ``Pure{dup}`` followed by a Split (fig. 5d)."""
    return Rewrite(
        name="fork-to-pure",
        lhs=_fork_to_pure_lhs(),
        rhs=_fork_to_pure_rhs,
        verified=True,
        obligation=_fork_to_pure_obligation,
        description="Fork becomes Pure(dup); Split (fig. 5d)",
    )


def _compose_lhs():
    return graph_of(
        {
            "p": NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": Var("F")}),
            "q": NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": Var("G")}),
        },
        [("p.out0", "q.in0")],
        {0: "p.in0"},
        {0: "q.out0"},
    )


def _compose_rhs(match: Match):
    fn = algebra.comp(str(match.params["F"]), str(match.params["G"]))
    tagged = _tagged(match, "p") or _tagged(match, "q")
    return graph_of({"pq": _pure_spec(fn, tagged)}, [], {0: "pq.in0"}, {0: "pq.out0"})


def _compose_obligation():
    env = obligation_env(capacity=1)
    algebra.ensure(env, "comp(incr,ne0)")
    lhs = graph_of(
        {"p": _pure_spec("incr", False), "q": _pure_spec("ne0", False)},
        [("p.out0", "q.in0")],
        {0: "p.in0"},
        {0: "q.out0"},
    )
    rhs = graph_of(
        {"pq": _pure_spec("comp(incr,ne0)", False)}, [], {0: "pq.in0"}, {0: "pq.out0"}
    )
    yield lhs, rhs, env, io_values({0: (-1, 0)})


def pure_compose() -> Rewrite:
    """Two Pures in sequence compose into one."""
    return Rewrite(
        name="pure-compose",
        lhs=_compose_lhs(),
        rhs=_compose_rhs,
        verified=True,
        obligation=_compose_obligation,
        description="Sequential Pures fuse into one Pure (fig. 5e)",
    )
