"""Canonical encoding of a component type plus parameters into one string.

ExprLow base components carry a single ``STR`` naming the component (section
4.1); parameters such as the wire type of a Mux or the function name of a
Pure component are encoded into that string, so both the environment lookup
and the syntactic matching of the rewriting function see one canonical name.

The format is ``Name{key=value;key=value}`` with keys sorted.  Values are
decoded by convention: keys listed in :data:`TYPE_KEYS` parse as wire types,
``true``/``false`` parse as booleans, numerals as int/float, everything else
stays a string.  Function-valued parameters are therefore stored as names and
resolved through the environment's function registry.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import GraphError
from .types import Type, parse_type

TYPE_KEYS = frozenset({"type", "in_type", "out_type", "left_type", "right_type", "data_type"})

_FORBIDDEN = set("{};=")


def encode_component(typ: str, params: Mapping[str, object]) -> str:
    """Encode *typ* and *params* into the canonical component string."""
    if any(ch in typ for ch in _FORBIDDEN):
        raise GraphError(f"component type name {typ!r} contains reserved characters")
    if not params:
        return typ
    parts = []
    for key in sorted(params):
        value = params[key]
        text = _encode_value(value)
        if any(ch in key for ch in _FORBIDDEN) or any(ch in text for ch in _FORBIDDEN):
            raise GraphError(f"parameter {key}={value!r} contains reserved characters")
        parts.append(f"{key}={text}")
    return f"{typ}{{{';'.join(parts)}}}"


def _encode_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float, Type)):
        return str(value)
    if isinstance(value, str):
        return value
    raise GraphError(f"cannot encode parameter value {value!r} into a component string")


def decode_component(text: str) -> tuple[str, dict[str, object]]:
    """Invert :func:`encode_component`."""
    if "{" not in text:
        return text, {}
    if not text.endswith("}"):
        raise GraphError(f"malformed component string {text!r}")
    name, _, body = text[:-1].partition("{")
    params: dict[str, object] = {}
    if body:
        for part in body.split(";"):
            key, sep, raw = part.partition("=")
            if not sep:
                raise GraphError(f"malformed parameter {part!r} in {text!r}")
            params[key] = _decode_value(key, raw)
    return name, params


def _decode_value(key: str, raw: str) -> object:
    if key in TYPE_KEYS:
        return parse_type(raw)
    if raw == "true":
        return True
    if raw == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw
