"""The evaluation harness: run a benchmark through all four flows.

The methodology mirrors section 6.1: the front end produces the untagged
DF-IO circuit; Graphiti's verified rewriting pipeline and the unverified
DF-OoO transform each derive an out-of-order version; buffer placement runs
on every circuit; the cycle simulator supplies cycle counts (ModelSim's
role); the technology model supplies clock period and LUT/FF/DSP (Vivado's
role); and the static scheduler plays Vericert.

Each dataflow simulation also checks functional correctness against the
sequential reference interpreter — including the order of memory writes,
which is what exposes the DF-OoO bicg bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..benchmarks import load_benchmark
from ..components import default_environment
from ..core.environment import Environment
from ..hls.area import AreaReport, analyze, latency_of
from ..hls.buffers import place_buffers
from ..hls.frontend import CompiledProgram, compile_program
from ..hls.ir import Program, run_program
from ..hls.ooo import transform_out_of_order
from ..hls.static_sched import schedule_program
from ..rewriting.pipeline import GraphitiPipeline
from ..sim.dispatch import simulate_graph

FLOWS = ("DF-IO", "DF-OoO", "GRAPHITI", "Vericert")

#: Flow name → transform argument of :func:`_run_dataflow`.
_DATAFLOW_TRANSFORMS = {"DF-IO": None, "DF-OoO": "ooo", "GRAPHITI": "graphiti"}


@dataclass
class FlowResult:
    """One flow's measurements on one benchmark."""

    flow: str
    cycles: int
    area: AreaReport
    correct: bool
    stores_in_order: bool
    refused_loops: int = 0
    rewrite_steps: int = 0

    @property
    def execution_time(self) -> float:
        return self.area.execution_time(self.cycles)

    # -- result protocol / wire format (repro.results) ------------------------

    def to_dict(self) -> dict:
        from ..results import SCHEMA_VERSION

        return {
            "kind": "FlowResult",
            "schema_version": SCHEMA_VERSION,
            "flow": self.flow,
            "cycles": int(self.cycles),
            "area": self.area.to_dict(),
            "correct": bool(self.correct),
            "stores_in_order": bool(self.stores_in_order),
            "refused_loops": int(self.refused_loops),
            "rewrite_steps": int(self.rewrite_steps),
        }

    @staticmethod
    def from_dict(data: dict) -> "FlowResult":
        from ..errors import ResultSchemaError
        from ..results import check_schema

        entry = check_schema(data, "FlowResult")
        try:
            return FlowResult(
                flow=entry["flow"],
                cycles=int(entry["cycles"]),
                area=AreaReport.from_dict(entry["area"]),
                correct=bool(entry["correct"]),
                stores_in_order=bool(entry["stores_in_order"]),
                refused_loops=int(entry["refused_loops"]),
                rewrite_steps=int(entry["rewrite_steps"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ResultSchemaError(f"malformed FlowResult wire dict: {exc}") from exc

    def summary(self) -> str:
        status = "ok" if self.correct else "WRONG RESULT"
        return (
            f"{self.flow}: {self.cycles} cycles @ {self.area.clock_period:.2f}ns"
            f" ({self.execution_time:.0f}ns), {self.area.luts} LUTs, {status}"
        )


@dataclass
class BenchmarkResult:
    name: str
    flows: dict[str, FlowResult] = field(default_factory=dict)

    def __getitem__(self, flow: str) -> FlowResult:
        return self.flows[flow]

    def to_dict(self) -> dict:
        from ..results import SCHEMA_VERSION

        return {
            "kind": "BenchmarkResult",
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "flows": {flow: result.to_dict() for flow, result in self.flows.items()},
        }

    @staticmethod
    def from_dict(data: dict) -> "BenchmarkResult":
        from ..errors import ResultSchemaError
        from ..results import check_schema

        entry = check_schema(data, "BenchmarkResult")
        try:
            result = BenchmarkResult(entry["name"])
            for flow, flow_entry in entry["flows"].items():
                result.flows[flow] = FlowResult.from_dict(flow_entry)
        except (KeyError, TypeError) as exc:
            raise ResultSchemaError(f"malformed BenchmarkResult wire dict: {exc}") from exc
        return result

    def summary(self) -> str:
        flows = ", ".join(
            f"{flow}={result.cycles}c" for flow, result in self.flows.items()
        )
        return f"{self.name}: {flows}"


def run_benchmark(
    name: str, program: Program | None = None, backend: str = "compiled"
) -> BenchmarkResult:
    """Run *name* through DF-IO, DF-OoO, Graphiti, and Vericert."""
    program = program if program is not None else load_benchmark(name)
    pristine = {key: array.copy() for key, array in program.arrays.items()}

    reference = run_program(program, {key: array.copy() for key, array in pristine.items()})

    env = default_environment()
    compiled = compile_program(program, env)

    result = BenchmarkResult(name)
    result.flows["DF-IO"] = _run_dataflow(
        "DF-IO", compiled, program, pristine, reference, env, transform=None,
        backend=backend,
    )
    result.flows["DF-OoO"] = _run_dataflow(
        "DF-OoO", compiled, program, pristine, reference, env, transform="ooo",
        backend=backend,
    )
    result.flows["GRAPHITI"] = _run_dataflow(
        "GRAPHITI", compiled, program, pristine, reference, env, transform="graphiti",
        backend=backend,
    )
    result.flows["Vericert"] = _run_vericert(program, pristine)
    return result


def run_flow(
    name: str,
    flow: str,
    program: Program | None = None,
    backend: str = "compiled",
) -> FlowResult:
    """Run *name* under a single flow — the executor's unit of work.

    Compiling per flow (rather than sharing one compiled program across the
    four flows, as :func:`run_benchmark` does) is deterministic, so the
    measurements are identical to the serial path's; it is what lets the
    (benchmark × flow) matrix fan out as independent, picklable work units.
    """
    program = program if program is not None else load_benchmark(name)
    pristine = {key: array.copy() for key, array in program.arrays.items()}
    if flow == "Vericert":
        return _run_vericert(program, pristine)
    if flow not in _DATAFLOW_TRANSFORMS:
        raise ValueError(f"unknown flow {flow!r}; expected one of {FLOWS}")
    reference = run_program(program, {key: array.copy() for key, array in pristine.items()})
    env = default_environment()
    compiled = compile_program(program, env)
    return _run_dataflow(
        flow, compiled, program, pristine, reference, env,
        transform=_DATAFLOW_TRANSFORMS[flow],
        backend=backend,
    )


def _restore_arrays(program: Program, pristine: dict) -> None:
    # The compiled circuits' load operators close over program.arrays by
    # name, so restore contents in place rather than rebinding.
    for key, array in pristine.items():
        program.arrays[key][...] = array


def _run_dataflow(
    flow: str,
    compiled: CompiledProgram,
    program: Program,
    pristine: dict,
    reference,
    env: Environment,
    transform: str | None,
    backend: str = "compiled",
) -> FlowResult:
    _restore_arrays(program, pristine)

    graphs = []
    refused = 0
    rewrite_steps = 0
    for ck in compiled.kernels:
        if transform is None:
            graphs.append((ck, ck.graph, None))
        elif transform == "ooo":
            graphs.append((ck, transform_out_of_order(ck.graph, ck.mark), ck.mark.tags))
        else:
            pipeline = GraphitiPipeline(env)
            outcome = pipeline.transform_kernel(ck.graph, ck.mark)
            rewrite_steps += outcome.total_steps
            if outcome.transformed:
                graphs.append((ck, outcome.graph, ck.mark.tags))
            else:
                refused += 1
                graphs.append((ck, ck.graph, None))

    total_cycles = 0
    area = AreaReport()
    history: list = []
    for ck, graph, tags in graphs:
        placement = place_buffers(graph, tags)
        stats = simulate_graph(
            graph,
            env,
            ck.kernel,
            program.arrays,
            capacities=placement.capacities,
            latency_of=latency_of,
            backend=backend,
        )
        total_cycles += stats.cycles
        history.extend(stats.store_history)
        report = analyze(graph, extra_buffer_slots=placement.extra_slots)
        area.luts += report.luts
        area.ffs += report.ffs
        area.dsps += report.dsps
        area.clock_period = max(area.clock_period, report.clock_period)

    correct = _arrays_match(program.arrays, reference.arrays)
    stores_in_order = _stores_in_order(history, reference.store_history)
    return FlowResult(
        flow=flow,
        cycles=total_cycles,
        area=area,
        correct=correct,
        stores_in_order=stores_in_order,
        refused_loops=refused,
        rewrite_steps=rewrite_steps,
    )


def _stores_in_order(actual: list, expected: list) -> bool:
    """Per-array, the sequence of (index, value) writes must match.

    Writes to *different* arrays may legitimately interleave differently
    (the collector of instance *i* can overlap the loop of instance *i+1*),
    but reordering writes within one array is the observable symptom of the
    unsound out-of-order transformation.
    """
    def by_array(history: list) -> dict[str, list]:
        grouped: dict[str, list] = {}
        for array, index, value in history:
            grouped.setdefault(array, []).append((index, value))
        return grouped

    actual_groups, expected_groups = by_array(actual), by_array(expected)
    if set(actual_groups) != set(expected_groups):
        return False
    for array, writes in expected_groups.items():
        candidate = actual_groups[array]
        if len(candidate) != len(writes):
            return False
        for (ai, av), (ei, ev) in zip(candidate, writes):
            if ai != ei or not np.isclose(float(av), float(ev), atol=1e-6):
                return False
    return True


def _arrays_match(actual: dict, expected: dict) -> bool:
    for key, array in expected.items():
        candidate = actual.get(key)
        if candidate is None:
            return False
        if not np.allclose(np.asarray(candidate, dtype=float), np.asarray(array, dtype=float), atol=1e-6):
            return False
    return True


def simulate_flow(
    program: Program, flow: str, kernel_index: int = 0, backend: str = "compiled"
):
    """Simulate one kernel under one dataflow flow, recording a firing trace.

    Returns ``(stats, trace, graph)`` — the instrumentation used by the
    figure 2d/2e execution-trace views.  *flow* is one of ``"DF-IO"``,
    ``"DF-OoO"``, ``"GRAPHITI"``.
    """
    from ..sim.trace import FiringTrace

    pristine = {key: array.copy() for key, array in program.arrays.items()}
    env = default_environment()
    compiled = compile_program(program, env)
    ck = compiled.kernels[kernel_index]
    if flow == "DF-IO":
        graph, tags = ck.graph, None
    elif flow == "DF-OoO":
        graph, tags = transform_out_of_order(ck.graph, ck.mark), ck.mark.tags
    elif flow == "GRAPHITI":
        outcome = GraphitiPipeline(env).transform_kernel(ck.graph, ck.mark)
        if outcome.transformed:
            graph, tags = outcome.graph, ck.mark.tags
        else:
            graph, tags = ck.graph, None
    else:
        raise ValueError(f"unknown dataflow flow {flow!r}")
    _restore_arrays(program, pristine)
    placement = place_buffers(graph, tags)
    trace = FiringTrace()
    stats = simulate_graph(
        graph,
        env,
        ck.kernel,
        program.arrays,
        capacities=placement.capacities,
        latency_of=latency_of,
        backend=backend,
        trace=trace,
    )
    return stats, trace, graph


def _run_vericert(program: Program, pristine: dict) -> FlowResult:
    report = schedule_program(program, {key: array.copy() for key, array in pristine.items()})
    return FlowResult(
        flow="Vericert",
        cycles=report.cycles,
        area=report.area,
        correct=True,  # the FSM interpreter is the sequential semantics
        stores_in_order=True,
    )
