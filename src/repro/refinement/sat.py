"""A SAT oracle for refinement verdicts, independent of the game solver.

:func:`repro.refinement.simulation.find_weak_simulation` decides bounded
refinement by *solving the simulation game* — forward exploration plus
backward loss propagation.  This module decides the same question by a
different route: the existence of a weak simulation over the
product-reachable arena is encoded as propositional satisfiability and
handed to an in-tree DPLL solver with watched literals.  Agreement
between two independently-implemented decision procedures is the point:
:func:`cross_check_obligation` runs both on one rewrite obligation and
raises :class:`~repro.errors.OracleDisagreement` if their *definitive*
verdicts ever contradict.

**The encoding.**  One boolean variable ``r_p`` per product-reachable
pair ``p = (impl state, spec state)``, read as "p is in the simulation
relation".  The clauses say exactly that a relation exists which contains
the initial pairs and is closed under the three simulation diagrams:

* for every implementation initial state ``s0``:
  ``(r_{(s0,t0)} ∨ … )`` over all spec initial states ``t0`` — some
  initial pair must be related;
* for every explored pair ``p`` and every implementation move
  ``s → s'`` whose permitted spec responses are ``{t'_1 … t'_k}``:
  ``(¬r_p ∨ r_{(s',t'_1)} ∨ … ∨ r_{(s',t'_k)})`` — if p is related, some
  response pair must be related too.  A move with *no* permitted
  response contributes the unit clause ``(¬r_p)``.

Every clause has at most one negative literal (the formula is
dual-Horn), so unit propagation alone mirrors the game's backward loss
propagation; the solver's true-first decision polarity makes the common
(refinement-holds) instance propagate to a model almost decision-free.

**Soundness of the verdicts.**  Exploration stops after *bound* pairs.
Pairs beyond the bound get a variable but no closure clauses — they are
*optimistically unconstrained* (free to be "related").  Hence:

* **UNSAT is always a definitive "fails"**: even with every out-of-bound
  pair granted for free, no relation exists, so none exists outright.
* **SAT with complete exploration is a definitive "holds"**: the model's
  true variables form a genuine weak simulation containing an initial
  pair for every implementation initial state.
* **SAT with truncated exploration is indefinite** ("holds up to the
  bound") and is never allowed to contradict the game checker.

:class:`SatVerdict.definitive` captures exactly this asymmetry, and
:func:`cross_check_obligation` only raises on definitive disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .. import obs
from ..core.environment import Environment
from ..core.exprhigh import ExprHigh
from ..core.module import Module, Value
from ..core.ports import Port
from ..core.semantics import denote
from ..errors import OracleDisagreement
from .checker import uniform_stimuli
from .simulation import (
    SimulationResult,
    _GameCache,
    _interface_violation,
    _normalise_stimuli,
    find_weak_simulation,
)

Stimuli = Mapping[Port, Iterable[Value]]

#: Default pair-exploration bound; comfortably above every library-rule
#: obligation (the largest explores a few tens of thousands of pairs), so
#: in-tree cross-checks are complete and therefore definitive.
DEFAULT_BOUND = 200_000


# -- CNF + DPLL ---------------------------------------------------------------


class CnfFormula:
    """A CNF formula in DIMACS convention: variables are positive ints,
    a literal is ``±var``, a clause is a sequence of literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = list(literals)
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} outside variable range")
        self.clauses.append(clause)


@dataclass
class SatResult:
    """Outcome of :func:`solve`: a model (var → bool, 1-indexed) or UNSAT."""

    satisfiable: bool
    model: list[bool] | None
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0


def solve(formula: CnfFormula) -> SatResult:
    """Decide *formula* by DPLL with two watched literals per clause.

    Chronological backtracking, no clause learning — deliberately simple,
    since the refinement encodings are dual-Horn and resolve almost
    entirely by unit propagation.  Decisions assign **true first**: on a
    dual-Horn formula every non-unit clause keeps a positive literal, so
    the all-true direction is the one that models live in.
    """
    n = formula.num_vars
    assign = [0] * (n + 1)  # 0 unassigned / 1 true / -1 false
    trail: list[int] = []
    decisions = propagations = conflicts = 0

    # Clause lists are mutable: the two watched literals are kept at
    # positions 0 and 1 and swapped into place as watches move.
    clauses: list[list[int]] = []
    watches: dict[int, list[int]] = {}
    units: list[int] = []
    for clause in formula.clauses:
        if not clause:
            return SatResult(False, None)
        if len(clause) == 1:
            units.append(clause[0])
            continue
        ci = len(clauses)
        clauses.append(list(clause))
        watches.setdefault(clause[0], []).append(ci)
        watches.setdefault(clause[1], []).append(ci)

    def value(lit: int) -> int:
        v = assign[lit] if lit > 0 else -assign[-lit]
        return v

    def enqueue(lit: int) -> bool:
        v = value(lit)
        if v == 1:
            return True
        if v == -1:
            return False
        assign[abs(lit)] = 1 if lit > 0 else -1
        trail.append(lit)
        return True

    qhead = 0

    def propagate() -> bool:
        """Drain the trail; returns False on conflict."""
        nonlocal qhead, propagations
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            propagations += 1
            falsified = -lit
            ws = watches.get(falsified)
            if not ws:
                continue
            i = 0
            while i < len(ws):
                ci = ws[i]
                clause = clauses[ci]
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                if value(clause[0]) == 1:
                    i += 1
                    continue
                for k in range(2, len(clause)):
                    if value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches.setdefault(clause[1], []).append(ci)
                        ws[i] = ws[-1]
                        ws.pop()
                        break
                else:
                    if not enqueue(clause[0]):
                        return False
                    i += 1
        return True

    for lit in units:
        if not enqueue(lit):
            return SatResult(False, None, decisions, propagations, conflicts + 1)
    if not propagate():
        return SatResult(False, None, decisions, propagations, conflicts + 1)

    # Decision stack entries: [trail length at decision, decided var,
    # flipped?].  search_from is a monotone low-water mark for the next
    # unassigned variable, rewound on backtracking.
    stack: list[list] = []
    search_from = 1

    while True:
        var = 0
        for v in range(search_from, n + 1):
            if assign[v] == 0:
                var = v
                break
        if var == 0:
            model = [False] + [assign[v] == 1 for v in range(1, n + 1)]
            return SatResult(True, model, decisions, propagations, conflicts)
        search_from = var
        decisions += 1
        stack.append([len(trail), var, False])
        enqueue(var)
        while not propagate():
            conflicts += 1
            while stack and stack[-1][2]:
                mark, dvar, _ = stack.pop()
                for lit in trail[mark:]:
                    assign[abs(lit)] = 0
                del trail[mark:]
                search_from = min(search_from, dvar)
            if not stack:
                return SatResult(False, None, decisions, propagations, conflicts)
            frame = stack[-1]
            mark, dvar, _ = frame
            for lit in trail[mark:]:
                assign[abs(lit)] = 0
            del trail[mark:]
            qhead = mark
            search_from = min(search_from, dvar)
            frame[2] = True
            enqueue(-dvar)


# -- the refinement encoding --------------------------------------------------


@dataclass
class SatVerdict:
    """The SAT oracle's answer on one bounded refinement instance.

    ``holds`` is the raw SAT answer (a relation exists, possibly leaning
    on unconstrained out-of-bound pairs); ``complete`` records whether
    exploration covered every product-reachable pair.  Only
    :attr:`definitive` verdicts may be compared against the game checker.
    """

    holds: bool
    complete: bool
    pairs_explored: int
    variables: int
    clauses: int
    #: Winning pairs in the model (None when UNSAT).
    relation_size: int | None = None
    stats: dict = field(default_factory=dict)
    detail: str = ""

    @property
    def definitive(self) -> bool:
        """UNSAT is always definitive; SAT only under complete exploration."""
        return (not self.holds) or self.complete

    def summary(self) -> str:
        verdict = "holds" if self.holds else "fails"
        qualifier = "" if self.definitive else " (up to bound)"
        return (
            f"sat oracle: {verdict}{qualifier} — {self.pairs_explored} pairs, "
            f"{self.variables} vars, {self.clauses} clauses"
        )


def encode_refinement(
    impl: Module,
    spec: Module,
    stimuli: Stimuli,
    bound: int = DEFAULT_BOUND,
) -> tuple[CnfFormula, dict[tuple[int, int], int], int, bool]:
    """Encode ``impl ⊑ spec`` (bounded by *stimuli*) as CNF.

    Returns ``(formula, var_of, explored, truncated)``: *var_of* maps
    product pairs ``(impl id, spec id)`` — ids in a fresh
    :class:`_GameCache` ordering — to DIMACS variables, *explored* counts
    pairs whose closure clauses were emitted, and *truncated* is True when
    the *bound* cut exploration short (see the module docstring for what
    that does to verdict status).
    """
    stimuli = _normalise_stimuli(impl, stimuli)
    cache = _GameCache(impl, spec, stimuli)
    formula = CnfFormula()
    var_of: dict[tuple[int, int], int] = {}
    frontier: list[tuple[int, int]] = []

    def var(sid: int, tid: int) -> int:
        key = (sid, tid)
        v = var_of.get(key)
        if v is None:
            v = formula.new_var()
            var_of[key] = v
            frontier.append(key)
        return v

    for s0 in sorted(impl.init, key=repr):
        sid = cache.impl_id(s0)
        formula.add_clause(
            [var(sid, cache.spec_id(t0)) for t0 in sorted(spec.init, key=repr)]
        )

    explored: set[tuple[int, int]] = set()
    truncated = False
    head = 0
    while head < len(frontier):
        pair = frontier[head]
        head += 1
        if pair in explored:
            continue
        if len(explored) >= bound:
            truncated = True
            break
        explored.add(pair)
        sid, tid = pair
        p = var_of[pair]
        inputs, outputs, internals = cache.impl_moves(sid)
        for port, value, s_next in inputs:
            formula.add_clause(
                [-p]
                + [var(s_next, t) for t in cache.spec_input_responses(tid, port, value)]
            )
        for port, value, s_next in outputs:
            formula.add_clause(
                [-p]
                + [var(s_next, t) for t in cache.spec_output_responses(tid, port, value)]
            )
        for s_next in internals:
            formula.add_clause([-p] + [var(s_next, t) for t in cache.closure(tid)])

    return formula, var_of, len(explored), truncated


def check_refinement_sat(
    impl: Module,
    spec: Module,
    stimuli: Stimuli,
    bound: int = DEFAULT_BOUND,
) -> SatVerdict:
    """Decide ``impl ⊑ spec`` through the CNF encoding and DPLL solver."""
    interface = _interface_violation(impl, spec)
    if interface is not None:
        return SatVerdict(
            holds=False,
            complete=True,
            pairs_explored=0,
            variables=0,
            clauses=0,
            detail=str(interface),
        )
    with obs.span("refine:sat") as sp:
        formula, var_of, explored, truncated = encode_refinement(
            impl, spec, stimuli, bound
        )
        result = solve(formula)
        sp.set(
            holds=result.satisfiable,
            complete=not truncated,
            pairs=explored,
            variables=formula.num_vars,
            clauses=len(formula.clauses),
        )
    obs.count("refinement.sat_checks")
    relation_size = None
    if result.satisfiable and result.model is not None:
        relation_size = sum(1 for v in var_of.values() if result.model[v])
    return SatVerdict(
        holds=result.satisfiable,
        complete=not truncated,
        pairs_explored=explored,
        variables=formula.num_vars,
        clauses=len(formula.clauses),
        relation_size=relation_size,
        stats={
            "decisions": result.decisions,
            "propagations": result.propagations,
            "conflicts": result.conflicts,
        },
    )


def check_obligation_sat(
    lhs: ExprHigh,
    rhs: ExprHigh,
    env: Environment,
    stimuli: Stimuli | None = None,
    values: Iterable[Value] = (0, 1),
    spec_capacity: int | None = 4,
    bound: int = DEFAULT_BOUND,
) -> SatVerdict:
    """The SAT oracle's verdict on a rewrite's ``rhs ⊑ lhs`` obligation.

    Denotes both sides exactly as
    :func:`~repro.refinement.checker.check_rewrite_obligation` does (the
    rhs under *env*, the lhs under the roomier *spec_capacity*), then
    decides refinement through the CNF encoding.  Unlike the game checker
    this never raises on a negative verdict — the caller inspects
    :class:`SatVerdict`.
    """
    impl = denote(rhs.lower(), env)
    spec = denote(lhs.lower(), env.with_capacity(spec_capacity))
    if stimuli is None:
        stimuli = uniform_stimuli(impl, values)
    return check_refinement_sat(impl, spec, stimuli, bound=bound)


@dataclass
class CrossCheckReport:
    """Both oracles' verdicts on one obligation, plus the comparison."""

    game_holds: bool
    sat: SatVerdict
    #: True when the SAT verdict was definitive and matched, or was
    #: indefinite (an indefinite verdict cannot disagree).
    agreed: bool

    def summary(self) -> str:
        game = "holds" if self.game_holds else "fails"
        return f"game: {game} / {self.sat.summary()} / agreed={self.agreed}"


def cross_check_obligation(
    lhs: ExprHigh,
    rhs: ExprHigh,
    env: Environment,
    stimuli: Stimuli | None = None,
    values: Iterable[Value] = (0, 1),
    spec_capacity: int | None = 4,
    bound: int = DEFAULT_BOUND,
) -> CrossCheckReport:
    """Run both decision procedures on one obligation and compare.

    The weak-simulation game is solved and the SAT oracle consulted on
    the *same* denoted modules and stimuli.  A definitive SAT verdict
    that contradicts the game raises :class:`OracleDisagreement` carrying
    both witnesses; an indefinite one (SAT under a truncating bound) is
    recorded as agreement-by-default since it claims nothing beyond the
    bound.
    """
    impl = denote(rhs.lower(), env)
    spec = denote(lhs.lower(), env.with_capacity(spec_capacity))
    if stimuli is None:
        stimuli = uniform_stimuli(impl, values)

    game: SimulationResult = find_weak_simulation(impl, spec, stimuli)
    verdict = check_refinement_sat(impl, spec, stimuli, bound=bound)
    obs.count("refinement.sat_cross_checks")

    if verdict.definitive and verdict.holds != game.holds:
        obs.count("refinement.sat_disagreements")
        game_witness = game.certificate if game.holds else game.violation
        raise OracleDisagreement(
            f"SAT oracle says {'holds' if verdict.holds else 'fails'} but the "
            f"weak-simulation game says {'holds' if game.holds else 'fails'} "
            f"({verdict.pairs_explored} pairs explored, complete={verdict.complete})",
            game_witness=game_witness,
            sat_witness=verdict,
        )
    obs.count("refinement.sat_agreements")
    return CrossCheckReport(game_holds=game.holds, sat=verdict, agreed=True)
