"""Certified refinement checking: fresh search vs certificate recheck.

Run standalone (``python benchmarks/bench_refinement.py``) to measure, for
the bundled heavyweight rewrite obligations,

* the full weak-simulation **search** (solve the game from scratch),
* the certificate **recheck** path (deserialise the stored certificate and
  replay every simulation diagram in one O(relation) pass), and
* the **parallel batch** through ``Session.check_obligations`` — a cold run
  that populates the certificate cache, then a warm run that rechecks,

and append an entry to ``benchmarks/BENCH_refinement.json``.

``--guard --min-speedup 3`` is the CI mode: it exits 1 unless the recheck
path on the loop-rewrite obligation is at least the given factor faster
than a fresh search.
"""

_OBLIGATIONS = [
    ("repro.rewriting.rules.combine", "mux_combine", {}),
    ("repro.rewriting.rules.loop_rewrite", "ooo_loop", {"tags": 2}),
]

#: The acceptance guard runs on this factory's obligations specifically.
_GUARD_FACTORY = "ooo_loop"


def _best_of(repeats, fn):
    from time import perf_counter

    best = float("inf")
    value = None
    for _ in range(repeats):
        start = perf_counter()
        value = fn()
        best = min(best, perf_counter() - start)
    return best, value


def collect_measurements(repeats: int = 3) -> dict:
    """Time search vs recheck per bundled obligation instance.

    Both sides pay graph denotation (the recheck path re-denotes the
    modules exactly as a cache hit inside ``check_rewrite_obligation``
    would), so the ratio reflects what a warm ``Session.check_obligations``
    run actually saves.
    """
    import json

    from repro.refinement.checker import (
        check_rewrite_obligation,
        recheck_obligation_certificate,
    )
    from repro.refinement.simulation import SimulationCertificate
    from repro.rewriting.rules import build_rewrite

    results = {}
    for module, factory, kwargs in _OBLIGATIONS:
        rewrite = build_rewrite(module, factory, kwargs)
        for index, (lhs, rhs, env, stimuli) in enumerate(rewrite.obligation()):
            search_seconds, report = _best_of(
                repeats, lambda: check_rewrite_obligation(lhs, rhs, env, stimuli)
            )
            certificate = report.certificate
            serialise_seconds, payload = _best_of(1, certificate.to_dict)

            def recheck():
                restored = SimulationCertificate.from_dict(payload)
                return recheck_obligation_certificate(lhs, rhs, env, restored, stimuli)

            recheck_seconds, rechecked = _best_of(repeats, recheck)
            assert rechecked.mode == "recheck"
            assert rechecked.certificate.content_hash() == certificate.content_hash()
            results[f"{factory}[{index}]"] = {
                "relation_size": len(certificate.relation),
                "impl_states": certificate.impl_states,
                "spec_states": certificate.spec_states,
                "certificate_bytes": len(json.dumps(payload)),
                "search_seconds": round(search_seconds, 6),
                "serialise_seconds": round(serialise_seconds, 6),
                "recheck_seconds": round(recheck_seconds, 6),
                "speedup": round(search_seconds / recheck_seconds, 2),
            }
    return results


def measure_batch(jobs: int = 2) -> dict:
    """Cold-then-warm ``Session.check_obligations`` over the executor pool."""
    import tempfile
    from time import perf_counter

    from repro.api import Session

    with tempfile.TemporaryDirectory() as cache_dir:
        timings = {}
        for phase in ("cold", "warm"):
            session = Session(jobs=jobs, cache_dir=cache_dir)
            start = perf_counter()
            outcomes = session.check_obligations(_OBLIGATIONS)
            timings[phase] = perf_counter() - start
            assert all(outcome["holds"] for outcome in outcomes)
            timings[f"{phase}_modes"] = [outcome["mode"] for outcome in outcomes]
    return {
        "jobs": jobs,
        "obligations": [factory for _, factory, _ in _OBLIGATIONS],
        "cold_seconds": round(timings["cold"], 6),
        "warm_seconds": round(timings["warm"], 6),
        "cold_modes": timings["cold_modes"],
        "warm_modes": timings["warm_modes"],
        "speedup": round(timings["cold"] / timings["warm"], 2),
    }


def _append_history(entry: dict) -> None:
    import json
    from pathlib import Path

    out = Path(__file__).with_name("BENCH_refinement.json")
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(entry, indent=2))


def main(argv=None) -> int:
    import argparse

    from repro._version import __version__

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--guard",
        action="store_true",
        help="exit 1 unless recheck beats search by --min-speedup on the "
        "loop-rewrite obligations",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required search/recheck ratio in guard mode (default: 3.0)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument(
        "--jobs", type=int, default=2, help="pool width for the batch measurement"
    )
    args = parser.parse_args(argv)

    measurements = collect_measurements(repeats=args.repeats)
    batch = measure_batch(jobs=args.jobs)
    _append_history(
        {"tool_version": __version__, "obligations": measurements, "batch": batch}
    )

    if args.guard:
        guarded = {
            name: row
            for name, row in measurements.items()
            if name.startswith(_GUARD_FACTORY)
        }
        failed = {
            name: row["speedup"]
            for name, row in guarded.items()
            if row["speedup"] < args.min_speedup
        }
        if failed:
            print(
                f"FAIL: recheck speedup below {args.min_speedup:g}x on {failed}"
            )
            return 1
        print(
            "OK: recheck speedups "
            + ", ".join(f"{name} {row['speedup']:g}x" for name, row in guarded.items())
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
