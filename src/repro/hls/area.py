"""Technology model: latency, combinational delay, and area per component.

This replaces Vivado + the Kintex-7 target in the paper's methodology.  The
table is calibrated so the evaluation reproduces the paper's *orderings and
factors*, not its absolute numbers:

* pipelined FP units carry multi-cycle latency (what makes sequential inner
  loops slow and pipelined out-of-order loops fast);
* tagged steering and the Tagger/Untagger have larger combinational delay,
  which is why tagged circuits close at a worse clock period (Table 2);
* the Tagger's flip-flop cost grows with the tag count — 50 tags is what
  blows up matvec's FF count in Table 3;
* DSP usage: an FP multiplier costs 5 DSPs, an integer multiplier 1, all
  else 0 — matching the per-benchmark DSP totals in Table 3, including
  Vericert's constant 5 from sharing a single FP multiplier.

Clock period is estimated as the largest per-component combinational delay
in the netlist (every channel hop is registered), plus a wiring margin that
grows slowly with design size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..core.exprhigh import ExprHigh


@dataclass(frozen=True)
class OpProfile:
    """Latency (cycles), delay (ns) and area of one operation."""

    latency: int
    delay: float
    luts: int
    ffs: int
    dsps: int


#: Profiles for functional operations, keyed by the base op name.
OP_PROFILES: dict[str, OpProfile] = {
    # integer
    "add": OpProfile(1, 2.3, 32, 32, 0),
    "sub": OpProfile(1, 2.3, 32, 32, 0),
    "mul": OpProfile(2, 3.8, 40, 64, 1),
    "mod": OpProfile(12, 6.3, 180, 220, 0),
    "lt": OpProfile(1, 2.1, 18, 8, 0),
    "le": OpProfile(1, 2.1, 18, 8, 0),
    "ne": OpProfile(1, 1.9, 16, 8, 0),
    "eq": OpProfile(1, 1.9, 16, 8, 0),
    "ne0": OpProfile(1, 1.6, 10, 4, 0),
    "eq0": OpProfile(1, 1.6, 10, 4, 0),
    "not": OpProfile(1, 1.2, 2, 2, 0),
    "and": OpProfile(1, 1.4, 4, 4, 0),
    "or": OpProfile(1, 1.4, 4, 4, 0),
    "select": OpProfile(1, 2.4, 34, 34, 0),
    # floating point (pipelined units)
    "fadd": OpProfile(7, 5.6, 220, 360, 0),
    "fsub": OpProfile(7, 5.6, 220, 360, 0),
    "fmul": OpProfile(4, 5.6, 90, 160, 5),
    # memory ports
    "load": OpProfile(2, 4.4, 60, 70, 0),
    "store": OpProfile(1, 4.4, 50, 40, 0),
}

#: Structural / steering component profiles, keyed by component type.
#: Latency 0 marks purely combinational elastic components: their outputs
#: propagate within the cycle (registers live in the channel buffers), which
#: is what keeps a fast-token-delivery condition loop tight.
COMPONENT_PROFILES: dict[str, OpProfile] = {
    "Fork": OpProfile(0, 2.6, 6, 10, 0),
    "Join": OpProfile(0, 3.4, 12, 18, 0),
    "Split": OpProfile(0, 2.8, 8, 12, 0),
    "Mux": OpProfile(1, 3.9, 22, 26, 0),
    "Branch": OpProfile(1, 3.6, 18, 22, 0),
    "Merge": OpProfile(1, 3.7, 20, 24, 0),
    "CMerge": OpProfile(1, 4.0, 26, 30, 0),
    "Init": OpProfile(0, 2.4, 8, 10, 0),
    "Buffer": OpProfile(1, 2.2, 4, 34, 0),
    "Sink": OpProfile(0, 0.6, 1, 0, 0),
    "Source": OpProfile(0, 0.6, 1, 0, 0),
    "Constant": OpProfile(0, 1.2, 4, 34, 0),
    "Driver": OpProfile(1, 3.0, 40, 60, 0),
    "Collector": OpProfile(1, 3.0, 40, 60, 0),
    "Store": OpProfile(1, 4.4, 50, 40, 0),
    "Pure": OpProfile(1, 3.0, 20, 20, 0),
    "Reorg": OpProfile(0, 1.8, 6, 8, 0),
}

#: Extra combinational delay on components operating on tagged values: the
#: tag comparison/steering logic lengthens the critical path.
TAGGED_DELAY_PENALTY = 1.5

#: Tagger base profile; FF cost additionally grows with tags × payload bits.
TAGGER_PROFILE = OpProfile(1, 7.0, 60, 40, 0)
TAGGER_FFS_PER_TAG = 70
TAGGER_LUTS_PER_TAG = 14

#: Extra flip-flops per additional channel buffer slot (payload register +
#: handshake state).
FFS_PER_BUFFER_SLOT = 34
LUTS_PER_BUFFER_SLOT = 4


def base_op(op: str) -> str:
    """The profile key of a (possibly partially-applied or load) operator.

    ``read.<array>`` operators are loads; ``op.kN.value`` operators keep the
    profile of their base op.
    """
    if op.startswith("read."):
        return "load"
    return op.split(".", 1)[0]


def op_profile(op: str) -> OpProfile:
    profile = OP_PROFILES.get(base_op(op))
    if profile is None:
        return OpProfile(1, 3.0, 20, 20, 0)
    return profile


def latency_of(typ: str, params: Mapping[str, object]) -> int:
    """Cycle latency of one component instance (simulator hook).

    Zero means combinational: the simulator propagates the token within the
    same cycle (consumers later in the topological sweep see it).
    """
    if typ == "Operator":
        return op_profile(str(params.get("op", ""))).latency
    if typ == "Tagger":
        return TAGGER_PROFILE.latency
    profile = COMPONENT_PROFILES.get(typ)
    return profile.latency if profile else 1


@dataclass
class AreaReport:
    """LUT/FF/DSP totals plus the estimated clock period."""

    luts: int = 0
    ffs: int = 0
    dsps: int = 0
    clock_period: float = 0.0

    def execution_time(self, cycles: int) -> float:
        return cycles * self.clock_period

    def to_dict(self) -> dict:
        return {
            "luts": int(self.luts),
            "ffs": int(self.ffs),
            "dsps": int(self.dsps),
            "clock_period": float(self.clock_period),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "AreaReport":
        return AreaReport(
            luts=int(data["luts"]),
            ffs=int(data["ffs"]),
            dsps=int(data["dsps"]),
            clock_period=float(data["clock_period"]),
        )


#: One DSP slice is worth this many LUT+FF units in the scalar area axis
#: used for Pareto extraction (a Kintex-7-flavoured exchange rate).
DSP_AREA_WEIGHT = 120

#: Nominal trip count of the modeled steady-state loop.  The cost model is
#: comparative (it ranks circuit variants of *one* kernel against each
#: other), so any fixed count works; 16 keeps the numbers readable.
MODEL_TRIP_COUNT = 16


@dataclass(frozen=True)
class CircuitCost:
    """The (area, cycles) point one circuit variant occupies.

    ``area`` folds LUTs, FFs and DSPs into one scalar axis
    (:data:`DSP_AREA_WEIGHT`); ``cycles`` is the *modeled* steady-state
    loop cost of :func:`modeled_cycles` — a static estimate, deliberately
    cheap enough to score thousands of e-graph extraction candidates
    without simulating any of them.
    """

    area: int
    cycles: int
    clock_period: float

    @property
    def time(self) -> float:
        """Modeled execution time (ns): the scalar used to rank variants."""
        return self.cycles * self.clock_period

    def dominates(self, other: "CircuitCost") -> bool:
        """Pareto dominance on the (area, cycles) axes."""
        return (
            self.area <= other.area
            and self.cycles <= other.cycles
            and (self.area < other.area or self.cycles < other.cycles)
        )

    def to_dict(self) -> dict:
        return {
            "area": int(self.area),
            "cycles": int(self.cycles),
            "clock_period": float(self.clock_period),
            "time": round(self.time, 3),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "CircuitCost":
        return CircuitCost(
            area=int(data["area"]),
            cycles=int(data["cycles"]),
            clock_period=float(data["clock_period"]),
        )


def _node_latency(spec) -> int:
    return latency_of(spec.typ, dict(spec.params))


def _strongly_connected_components(graph: ExprHigh) -> list[list[str]]:
    """Tarjan's SCC (iterative), over the directed connection structure."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in sorted(graph.nodes):
        if root in index:
            continue
        work: list[tuple[str, Iterator]] = [(root, iter(sorted(
            {succ for succ, _, _ in graph.successors(root)})))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(
                        {s for s, _, _ in graph.successors(succ)}))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def _has_self_loop(graph: ExprHigh, node: str) -> bool:
    return any(dst.node == node for _, _, dst in graph.successors(node))


def modeled_cycles(graph: ExprHigh, trip_count: int = MODEL_TRIP_COUNT) -> int:
    """Static steady-state cycle estimate for one loop circuit.

    The model follows the paper's performance story: an in-order loop's
    initiation interval is the total latency around its feedback cycle
    (each iteration waits for the loop-carried token), while a tagged
    out-of-order loop overlaps up to ``tags`` iterations, dividing that
    latency.  Nodes outside any cycle contribute once as pipeline fill.
    """
    overlap = 1
    for name in graph.nodes_of_type("Tagger"):
        overlap = max(overlap, int(graph.nodes[name].param("tags", 4)))

    in_cycle: set[str] = set()
    interval = 1
    for component in _strongly_connected_components(graph):
        if len(component) == 1 and not _has_self_loop(graph, component[0]):
            continue
        in_cycle.update(component)
        latency = sum(_node_latency(graph.nodes[name]) for name in component)
        tagged = any(
            graph.nodes[name].param("tagged", False) is True for name in component
        )
        if tagged:
            latency = -(-latency // overlap)  # ceil division: tags-way overlap
        interval = max(interval, latency, 1)

    fill = sum(
        _node_latency(spec)
        for name, spec in graph.nodes.items()
        if name not in in_cycle
    )
    return trip_count * interval + fill


def circuit_cost(graph: ExprHigh, trip_count: int = MODEL_TRIP_COUNT) -> CircuitCost:
    """Score one circuit variant for Pareto extraction.

    Uses the same technology table as :func:`analyze` for area and clock
    period, and :func:`modeled_cycles` for the cycle axis.
    """
    report = analyze(graph)
    return CircuitCost(
        area=report.luts + report.ffs + DSP_AREA_WEIGHT * report.dsps,
        cycles=modeled_cycles(graph, trip_count),
        clock_period=report.clock_period,
    )


def analyze(
    graph: ExprHigh,
    extra_buffer_slots: int = 0,
    wiring_margin: float = 0.0006,
) -> AreaReport:
    """Compute the area/timing report for one circuit.

    *extra_buffer_slots* is the number of channel slots buffer placement
    added beyond the default one per edge (each costs registers).
    The clock period is the worst per-component delay plus a wiring margin
    proportional to design size — larger designs route worse.
    """
    report = AreaReport()
    worst_delay = 0.0
    for spec in graph.nodes.values():
        tagged = bool(spec.param("tagged", False))
        if spec.typ == "Operator":
            profile = op_profile(str(spec.param("op", "")))
        elif spec.typ == "Tagger":
            tags = int(spec.param("tags", 4))
            profile = OpProfile(
                TAGGER_PROFILE.latency,
                TAGGER_PROFILE.delay + 0.012 * tags,
                TAGGER_PROFILE.luts + TAGGER_LUTS_PER_TAG * tags,
                TAGGER_PROFILE.ffs + TAGGER_FFS_PER_TAG * tags,
                0,
            )
        else:
            profile = COMPONENT_PROFILES.get(spec.typ, OpProfile(1, 3.0, 20, 20, 0))
        delay = profile.delay + (TAGGED_DELAY_PENALTY if tagged else 0.0)
        worst_delay = max(worst_delay, delay)
        report.luts += profile.luts
        report.ffs += profile.ffs
        report.dsps += profile.dsps
    report.luts += LUTS_PER_BUFFER_SLOT * extra_buffer_slots
    report.ffs += FFS_PER_BUFFER_SLOT * extra_buffer_slots
    report.clock_period = round(worst_delay + wiring_margin * report.luts, 3)
    return report
