"""The paper's reported numbers (Tables 2 and 3), kept for comparison.

EXPERIMENTS.md and the benchmark harness print measured-vs-paper ratios
from these values.  Absolute agreement is not expected (our substrate is a
calibrated simulator, not a Kintex-7 flow); the *shape* — who wins, by
roughly what factor, where the exceptions fall — is the reproduction
target.
"""

from __future__ import annotations

BENCHMARKS = ("bicg", "gemm", "gsum-many", "gsum-single", "matvec", "mvt")
FLOWS = ("DF-IO", "DF-OoO", "GRAPHITI", "Vericert")

#: Table 2 — cycle counts.
PAPER_CYCLES = {
    "bicg": {"DF-IO": 7936, "DF-OoO": 1000, "GRAPHITI": 7936, "Vericert": 44557},
    "gemm": {"DF-IO": 68825, "DF-OoO": 8278, "GRAPHITI": 8338, "Vericert": 252013},
    "gsum-many": {"DF-IO": 68523, "DF-OoO": 36537, "GRAPHITI": 34363, "Vericert": 118096},
    "gsum-single": {"DF-IO": 6703, "DF-OoO": 9234, "GRAPHITI": 9436, "Vericert": 18798},
    "matvec": {"DF-IO": 7936, "DF-OoO": 919, "GRAPHITI": 993, "Vericert": 25447},
    "mvt": {"DF-IO": 7940, "DF-OoO": 2044, "GRAPHITI": 2002, "Vericert": 46538},
}

#: Table 2 — clock periods (ns).
PAPER_CLOCK_PERIOD = {
    "bicg": {"DF-IO": 6.43, "DF-OoO": 11.27, "GRAPHITI": 6.43, "Vericert": 4.807},
    "gemm": {"DF-IO": 6.361, "DF-OoO": 8.631, "GRAPHITI": 12.439, "Vericert": 5.059},
    "gsum-many": {"DF-IO": 7.57, "DF-OoO": 8.052, "GRAPHITI": 7.388, "Vericert": 5.127},
    "gsum-single": {"DF-IO": 6.026, "DF-OoO": 8.937, "GRAPHITI": 8.421, "Vericert": 5.127},
    "matvec": {"DF-IO": 5.589, "DF-OoO": 8.628, "GRAPHITI": 7.114, "Vericert": 4.805},
    "mvt": {"DF-IO": 6.101, "DF-OoO": 8.31, "GRAPHITI": 7.45, "Vericert": 4.805},
}

#: Table 2 — execution times (ns).
PAPER_EXEC_TIME = {
    "bicg": {"DF-IO": 51028, "DF-OoO": 11270, "GRAPHITI": 51028, "Vericert": 214185},
    "gemm": {"DF-IO": 437796, "DF-OoO": 71447, "GRAPHITI": 103716, "Vericert": 1274934},
    "gsum-many": {"DF-IO": 518719, "DF-OoO": 294196, "GRAPHITI": 253874, "Vericert": 605478},
    "gsum-single": {"DF-IO": 40392, "DF-OoO": 82524, "GRAPHITI": 79461, "Vericert": 96377},
    "matvec": {"DF-IO": 44354, "DF-OoO": 7929, "GRAPHITI": 7064, "Vericert": 122273},
    "mvt": {"DF-IO": 48442, "DF-OoO": 16986, "GRAPHITI": 14915, "Vericert": 223615},
}

#: Table 3 — LUT counts.
PAPER_LUTS = {
    "bicg": {"DF-IO": 2051, "DF-OoO": 3229, "GRAPHITI": 2051, "Vericert": 838},
    "gemm": {"DF-IO": 3248, "DF-OoO": 5564, "GRAPHITI": 6282, "Vericert": 940},
    "gsum-many": {"DF-IO": 3028, "DF-OoO": 3867, "GRAPHITI": 4438, "Vericert": 1151},
    "gsum-single": {"DF-IO": 2648, "DF-OoO": 2541, "GRAPHITI": 3862, "Vericert": 1042},
    "matvec": {"DF-IO": 1400, "DF-OoO": 6027, "GRAPHITI": 6107, "Vericert": 613},
    "mvt": {"DF-IO": 2980, "DF-OoO": 5084, "GRAPHITI": 5656, "Vericert": 936},
}

#: Table 3 — FF counts.
PAPER_FFS = {
    "bicg": {"DF-IO": 2182, "DF-OoO": 2737, "GRAPHITI": 2182, "Vericert": 1302},
    "gemm": {"DF-IO": 2709, "DF-OoO": 3880, "GRAPHITI": 4908, "Vericert": 1484},
    "gsum-many": {"DF-IO": 3319, "DF-OoO": 3855, "GRAPHITI": 4546, "Vericert": 1381},
    "gsum-single": {"DF-IO": 3110, "DF-OoO": 3101, "GRAPHITI": 4283, "Vericert": 1342},
    "matvec": {"DF-IO": 1282, "DF-OoO": 6839, "GRAPHITI": 6680, "Vericert": 1137},
    "mvt": {"DF-IO": 2721, "DF-OoO": 4028, "GRAPHITI": 5179, "Vericert": 1386},
}

#: Table 3 — DSP counts.
PAPER_DSPS = {
    "bicg": {"DF-IO": 10, "DF-OoO": 10, "GRAPHITI": 10, "Vericert": 5},
    "gemm": {"DF-IO": 11, "DF-OoO": 11, "GRAPHITI": 11, "Vericert": 5},
    "gsum-many": {"DF-IO": 22, "DF-OoO": 22, "GRAPHITI": 22, "Vericert": 5},
    "gsum-single": {"DF-IO": 22, "DF-OoO": 22, "GRAPHITI": 22, "Vericert": 5},
    "matvec": {"DF-IO": 5, "DF-OoO": 5, "GRAPHITI": 5, "Vericert": 5},
    "mvt": {"DF-IO": 10, "DF-OoO": 10, "GRAPHITI": 10, "Vericert": 5},
}

#: Section 6.3 — rewriting statistics of the Lean development.
PAPER_DEV_STATS = {
    "matvec": {"nodes": 90, "rewrites": 1650, "seconds": 9.76},
    "gemm": {"nodes": 180, "rewrites": 4416, "seconds": 81.49},
}


def geomean(values) -> float:
    """Geometric mean, as used in the paper's summary rows."""
    import math

    values = [float(v) for v in values]
    if not values or any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
