"""Load test for the verification service (``repro serve``).

Run standalone (``PYTHONPATH=src python benchmarks/bench_service.py``) to
boot a :class:`repro.service.server.ServiceServer` on a free port and
measure, over all six built-in kernels,

* the **store speedup** — a cold ``transform`` request (computed by a
  worker Session) against an immediately repeated identical request
  (answered synchronously from the content-addressed result store), and
* the **replay determinism** — ``--clients`` concurrent clients (64 by
  default) each replaying a transform + simulate request per kernel;
  every byte that comes back over HTTP must equal the same call made on
  an in-process, uncached :class:`repro.Session`,

and append an entry to ``benchmarks/BENCH_service.json``.

``--guard --min-speedup 5`` is the CI mode: it exits 1 unless the
aggregate warm/cold transform ratio clears the given factor, every
replayed result is byte-identical to the in-process ground truth, and no
job failed.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

#: The six paper kernels every client replays.
BENCHMARKS = ("bicg", "gemm", "gsum-many", "gsum-single", "matvec", "mvt")

#: (kind, params) requests replayed per client, in order, for one kernel.
def _replay_ops(name):
    return [
        ("transform", {"kernel": name}),
        ("simulate", {"kernel": name, "flow": "DF-IO"}),
    ]


def _boot_server(cache_dir):
    """Start a ServiceServer in a daemon thread; return (server, client)."""
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceServer

    server = ServiceServer(port=0, workers=4, cache_dir=cache_dir)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    deadline = perf_counter() + 10
    while server.port == 0:
        if perf_counter() > deadline:
            raise RuntimeError("service did not bind a port within 10s")
    return server, ServiceClient(port=server.port), thread


def _expected_results():
    """Ground truth: every replayed op on one in-process, uncached Session."""
    from repro import Session
    from repro.service.ops import canonical_params, run_op

    expected = {}
    with Session(use_cache=False) as session:
        for name in BENCHMARKS:
            for kind, params in _replay_ops(name):
                expected[(kind, name)] = json.dumps(
                    run_op(session, kind, canonical_params(kind, params)),
                    sort_keys=True,
                )
    return expected


def collect_measurements(clients: int = 64) -> dict:
    """Boot a server, time cold-vs-store transforms, then hammer it."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        server, client, thread = _boot_server(tmp)
        try:
            return _measure(client, clients)
        finally:
            client.shutdown()
            thread.join(timeout=30)


def _measure(client, clients: int) -> dict:
    kernels = {}
    for name in BENCHMARKS:
        start = perf_counter()
        cold = client.run("transform", {"kernel": name})
        cold_seconds = perf_counter() - start
        start = perf_counter()
        warm = client.run("transform", {"kernel": name})
        warm_seconds = perf_counter() - start
        kernels[name] = {
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "store_speedup": round(cold_seconds / warm_seconds, 2),
            "results_match": json.dumps(cold, sort_keys=True)
            == json.dumps(warm, sort_keys=True),
        }

    expected = _expected_results()
    replay = [
        (kind, name, dict(params))
        for name in BENCHMARKS
        for kind, params in _replay_ops(name)
    ]

    def drive(client_index):
        matches, requests = 0, 0
        for kind, name, params in replay:
            payload = json.dumps(client.run(kind, params), sort_keys=True)
            requests += 1
            matches += payload == expected[(kind, name)]
        return matches, requests

    start = perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        outcomes = list(pool.map(drive, range(clients)))
    replay_seconds = perf_counter() - start

    metrics = client.metrics()
    requests = sum(count for _, count in outcomes)
    return {
        "kernels": kernels,
        "replay": {
            "clients": clients,
            "requests": requests,
            "byte_identical": sum(matched for matched, _ in outcomes),
            "seconds": round(replay_seconds, 6),
            "requests_per_second": round(requests / replay_seconds, 1),
        },
        "service": {
            "jobs_done": metrics["jobs"]["done"],
            "jobs_failed": metrics["jobs"]["failed"],
            "store_hits": metrics["store"]["hits"],
            "store_writes": metrics["store"]["writes"],
        },
    }


def _aggregate(measurements: dict) -> dict:
    kernels = measurements["kernels"]
    cold = sum(row["cold_seconds"] for row in kernels.values())
    warm = sum(row["warm_seconds"] for row in kernels.values())
    replay = measurements["replay"]
    return {
        "cold_seconds": round(cold, 6),
        "warm_seconds": round(warm, 6),
        "store_speedup": round(cold / warm, 2),
        "results_match": all(row["results_match"] for row in kernels.values()),
        "byte_identical": replay["byte_identical"] == replay["requests"],
        "jobs_failed": measurements["service"]["jobs_failed"],
    }


def _append_history(entry: dict) -> None:
    from pathlib import Path

    out = Path(__file__).with_name("BENCH_service.json")
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(entry, indent=2))


def main(argv=None) -> int:
    import argparse

    from repro._version import __version__

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--guard",
        action="store_true",
        help="exit 1 unless the aggregate store speedup clears --min-speedup "
        "and every replayed result is byte-identical to an in-process Session",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required cold/warm transform ratio in guard mode (default: 5.0)",
    )
    parser.add_argument(
        "--clients", type=int, default=64, help="concurrent replay clients"
    )
    args = parser.parse_args(argv)
    if args.clients < 1:
        parser.error("--clients must be >= 1")

    measurements = collect_measurements(clients=args.clients)
    aggregate = _aggregate(measurements)
    _append_history(
        {"tool_version": __version__, "load": measurements, "aggregate": aggregate}
    )

    if args.guard:
        if not aggregate["results_match"] or not aggregate["byte_identical"]:
            print("FAIL: a service result diverged from the in-process Session")
            return 1
        if aggregate["jobs_failed"]:
            print(f"FAIL: {aggregate['jobs_failed']} job(s) failed under load")
            return 1
        if aggregate["store_speedup"] < args.min_speedup:
            print(
                f"FAIL: aggregate store speedup {aggregate['store_speedup']:g}x "
                f"below {args.min_speedup:g}x"
            )
            return 1
        print(
            f"OK: store answers repeated transforms "
            f"{aggregate['store_speedup']:g}x faster, "
            f"{measurements['replay']['requests']} replayed requests from "
            f"{measurements['replay']['clients']} clients all byte-identical"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
