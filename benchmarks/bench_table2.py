"""Regenerate Table 2: cycle count, clock period, execution time.

Run with:  pytest benchmarks/bench_table2.py --benchmark-only -s
"""

import pytest

from repro.eval import paper_data
from repro.eval.report import clock_table, cycle_table, exec_time_table
from repro.eval.runner import run_benchmark

from conftest import get_results


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("name", paper_data.BENCHMARKS)
def test_benchmark_all_flows(benchmark, name):
    """Time one full four-flow evaluation of each benchmark (one round:
    these are minutes-scale simulations, not microbenchmarks)."""
    cache = get_results()

    def run():
        if name in cache:
            return cache[name]
        cache[name] = run_benchmark(name)
        return cache[name]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # Shape assertions from the paper's Table 2 narrative.
    if name == "bicg":
        assert result["GRAPHITI"].cycles == result["DF-IO"].cycles
    elif name == "gsum-single":
        assert result["GRAPHITI"].cycles >= result["DF-IO"].cycles
    else:
        assert result["GRAPHITI"].cycles < result["DF-IO"].cycles
    assert result["Vericert"].cycles > result["DF-IO"].cycles


def test_print_table2(results, once):
    print()
    print(cycle_table(results).render())
    print()
    print(clock_table(results).render())
    print()
    print(exec_time_table(results).render())

    # Headline factors (paper: 2.1x over DF-IO, 5.8x over Vericert).
    geomean = paper_data.geomean
    graphiti = geomean([results[n]["GRAPHITI"].execution_time for n in results])
    df_io = geomean([results[n]["DF-IO"].execution_time for n in results])
    vericert = geomean([results[n]["Vericert"].execution_time for n in results])
    print()
    print(f"geomean speedup over DF-IO:    {df_io / graphiti:.2f}x (paper: 2.1x)")
    print(f"geomean speedup over Vericert: {vericert / graphiti:.2f}x (paper: 5.8x)")
    assert df_io / graphiti > 1.3
    assert vericert / graphiti > 1.5
