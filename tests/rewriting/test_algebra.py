"""Tests for the derived-function algebra."""

import pytest

from repro.components import default_environment
from repro.errors import SemanticsError
from repro.rewriting import algebra


@pytest.fixture
def env():
    return default_environment()


class TestBuiltins:
    @pytest.mark.parametrize(
        "name,arg,expected",
        [
            ("id", 5, 5),
            ("dup", 5, (5, 5)),
            ("swap", (1, 2), (2, 1)),
            ("fst", (1, 2), 1),
            ("snd", (1, 2), 2),
            ("assocl", (1, (2, 3)), ((1, 2), 3)),
            ("assocr", ((1, 2), 3), (1, (2, 3))),
        ],
    )
    def test_builtin_semantics(self, env, name, arg, expected):
        assert algebra.ensure(env, name)(arg) == expected


class TestCombinators:
    def test_tup_uncurries(self, env):
        fn = algebra.ensure(env, "tup(mod)")
        assert fn((10, 4)) == 2

    def test_comp_applies_left_to_right(self, env):
        fn = algebra.ensure(env, "comp(incr,ne0)")
        assert fn(-1) is False
        assert fn(0) is True

    def test_first_and_second(self, env):
        assert algebra.ensure(env, "first(incr)")((1, "x")) == (2, "x")
        assert algebra.ensure(env, "second(incr)")(("x", 1)) == ("x", 2)

    def test_par(self, env):
        assert algebra.ensure(env, "par(incr,ne0)")((1, 0)) == (2, False)

    def test_nested_combinators(self, env):
        fn = algebra.ensure(env, "comp(dup,par(incr,comp(incr,incr)))")
        assert fn(0) == (1, 2)

    def test_untree3_flattens_left_nested_tuple(self, env):
        env.register_function("sum3", lambda a, b, c: a + b + c, 3)
        fn = algebra.ensure(env, "untree3(sum3)")
        assert fn(((1, 2), 3)) == 6

    def test_registration_is_idempotent(self, env):
        a = algebra.ensure(env, "comp(incr,incr)")
        b = algebra.ensure(env, "comp(incr,incr)")
        assert a.name == b.name
        assert a(1) == b(1) == 3

    def test_unknown_base_rejected(self, env):
        with pytest.raises(SemanticsError):
            algebra.ensure(env, "comp(nonexistent,incr)")

    def test_unknown_combinator_rejected(self, env):
        with pytest.raises(SemanticsError):
            algebra.ensure(env, "frobnicate(incr)")


class TestSmartConstructors:
    def test_comp_absorbs_id(self):
        assert algebra.comp("id", "f") == "f"
        assert algebra.comp("f", "id") == "f"
        assert algebra.comp("f", "g") == "comp(f,g)"

    def test_first_second_absorb_id(self):
        assert algebra.first("id") == "id"
        assert algebra.second("id") == "id"

    def test_par_absorbs_double_id(self):
        assert algebra.par("id", "id") == "id"
        assert algebra.par("f", "id") == "par(f,id)"

    def test_names_round_trip_through_ensure(self, ):
        env = default_environment()
        name = algebra.comp(algebra.tup("mod"), "ne0")
        fn = algebra.ensure(env, name)
        assert fn((9, 3)) is False
        assert fn((9, 4)) is True
