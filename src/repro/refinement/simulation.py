"""Executable weak-simulation checking (definitions 4.1–4.5 of the paper).

The paper proves refinements ``m ⊑ m'`` in Lean by exhibiting a simulation
relation φ.  Here, for *bounded* instances (finite stimulus domains, bounded
queues), we *decide* the existence of a weak simulation by solving the
simulation game restricted to product-reachable pairs:

* positions are pairs (impl state, spec state), starting from all pairs of
  initial states;
* for every implementation move (input with a stimulus value, output,
  internal step) the game records the set of *spec responses* permitted by
  the corresponding diagram;
* a position is losing if some implementation move has no winning response;
  losing positions propagate backwards to a fixpoint.

Restricting to product-reachable pairs is sound and complete for deciding
whether the initial states are simulated, because every witness pair that a
diagram could use is itself product-reachable.

The three simulation diagrams keep the paper's asymmetry:

* **input** transitions may be followed by internal steps in the spec;
* **output** transitions may be *preceded* by internal steps in the spec,
  but not followed — connecting ports fuses an output to an input with no
  internal step in between (section 4.5), so allowing trailing internal
  steps would make the connect combinator unsound;
* **internal** transitions map to zero or more internal steps.

Success yields a :class:`SimulationCertificate` whose relation (the winning
positions) is a genuine weak simulation containing the initial pairs;
failure yields a counterexample with the violated diagram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.module import Module, State, Value
from ..core.ports import Port
from ..errors import RefinementError, SemanticsError

Stimuli = Mapping[Port, Iterable[Value]]


@dataclass(frozen=True)
class Violation:
    """Why the simulation game is lost from some position."""

    kind: str  # "input" | "output" | "internal" | "interface" | "init"
    impl_state: State
    spec_state: State | None
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} diagram fails: {self.detail}"


@dataclass
class SimulationCertificate:
    """A checked simulation relation between an implementation and a spec."""

    relation: frozenset[tuple[State, State]]
    impl_states: int
    spec_states: int
    iterations: int

    def related(self, impl_state: State, spec_state: State) -> bool:
        return (impl_state, spec_state) in self.relation


@dataclass
class SimulationResult:
    """Outcome of a simulation search."""

    holds: bool
    certificate: SimulationCertificate | None = None
    violation: Violation | None = None

    def raise_on_failure(self) -> SimulationCertificate:
        if not self.holds or self.certificate is None:
            raise RefinementError(str(self.violation), counterexample=self.violation)
        return self.certificate


@dataclass
class _Move:
    """One implementation move and the indices of winning response pairs."""

    kind: str
    detail: str
    responses: list[int]


def find_weak_simulation(
    impl: Module,
    spec: Module,
    stimuli: Stimuli,
    limit: int = 500_000,
) -> SimulationResult:
    """Decide ``impl ⊑ spec`` on the bounded instance given by *stimuli*.

    *stimuli* bounds the environment: for each input port, the finite set of
    values that may ever be offered.  Both modules must expose identical
    input and output port sets.
    """
    stimuli = {port: tuple(values) for port, values in stimuli.items()}
    if impl.input_ports() != spec.input_ports() or impl.output_ports() != spec.output_ports():
        detail = (
            f"impl ports in={sorted(map(str, impl.input_ports()))} "
            f"out={sorted(map(str, impl.output_ports()))} vs spec "
            f"in={sorted(map(str, spec.input_ports()))} out={sorted(map(str, spec.output_ports()))}"
        )
        return SimulationResult(False, violation=Violation("interface", None, None, detail))
    missing = impl.input_ports() - set(stimuli)
    if missing:
        raise RefinementError(f"no stimuli provided for input ports {sorted(map(str, missing))}")

    index_of: dict[tuple[State, State], int] = {}
    pairs: list[tuple[State, State]] = []
    moves: list[list[_Move] | None] = []
    spec_closures: dict[State, tuple[State, ...]] = {}

    def closure(state: State) -> tuple[State, ...]:
        cached = spec_closures.get(state)
        if cached is None:
            cached = tuple(spec.tau_closure(state))
            spec_closures[state] = cached
        return cached

    def intern(pair: tuple[State, State]) -> int:
        idx = index_of.get(pair)
        if idx is None:
            idx = len(pairs)
            if idx >= limit:
                raise SemanticsError(f"simulation game exceeded the limit of {limit} positions")
            index_of[pair] = idx
            pairs.append(pair)
            moves.append(None)
        return idx

    initial_indices = [intern((s0, t0)) for s0 in impl.init for t0 in spec.init]

    # Forward exploration: compute every position's moves and responses.
    frontier = list(initial_indices)
    explored = 0
    while frontier:
        idx = frontier.pop()
        if moves[idx] is not None:
            continue
        s, t = pairs[idx]
        position_moves: list[_Move] = []

        for port, values in stimuli.items():
            impl_in = impl.inputs[port]
            spec_in = spec.inputs[port]
            for value in values:
                for s_next in impl_in.fire(s, value):
                    responses = [
                        (s_next, t_next)
                        for t_mid in spec_in.fire(t, value)
                        for t_next in closure(t_mid)
                    ]
                    position_moves.append(
                        _Move("input", f"input {port}={value!r}", [intern(p) for p in responses])
                    )

        for port, impl_out in impl.outputs.items():
            spec_out = spec.outputs[port]
            for value, s_next in impl_out.fire(s):
                responses = [
                    (s_next, t_next)
                    for t_mid in closure(t)
                    for spec_value, t_next in spec_out.fire(t_mid)
                    if spec_value == value
                ]
                position_moves.append(
                    _Move("output", f"output {port} emits {value!r}", [intern(p) for p in responses])
                )

        for s_next in impl.internal_steps(s):
            responses = [(s_next, t_next) for t_next in closure(t)]
            position_moves.append(_Move("internal", "internal step", [intern(p) for p in responses]))

        moves[idx] = position_moves
        explored += 1
        for move in position_moves:
            for succ in move.responses:
                if moves[succ] is None:
                    frontier.append(succ)

    # Backward propagation of losing positions.
    good = [True] * len(pairs)
    reason: list[_Move | None] = [None] * len(pairs)
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for idx in range(len(pairs)):
            if not good[idx]:
                continue
            for move in moves[idx] or ():
                if not any(good[succ] for succ in move.responses):
                    good[idx] = False
                    reason[idx] = move
                    changed = True
                    break

    for s0 in impl.init:
        winners = [t0 for t0 in spec.init if good[index_of[(s0, t0)]]]
        if not winners:
            violation = _diagnose(pairs, index_of, reason, s0, spec.init)
            return SimulationResult(False, violation=violation)

    relation = frozenset(pair for idx, pair in enumerate(pairs) if good[idx])
    certificate = SimulationCertificate(
        relation=relation,
        impl_states=len({s for s, _ in pairs}),
        spec_states=len({t for _, t in pairs}),
        iterations=iterations,
    )
    return SimulationResult(True, certificate=certificate)


def _diagnose(
    pairs: list[tuple[State, State]],
    index_of: dict[tuple[State, State], int],
    reason: list["_Move | None"],
    s0: State,
    spec_inits: frozenset[State],
) -> Violation:
    for t0 in spec_inits:
        move = reason[index_of[(s0, t0)]]
        if move is not None:
            s, t = pairs[index_of[(s0, t0)]]
            return Violation(move.kind, s, t, f"{move.detail} has no winning spec response")
    return Violation("init", s0, None, f"initial state {s0!r} is not simulated")
