"""Netlist interop: external exchange formats for dataflow graphs.

Two structural formats round-trip losslessly through the indexed graph
core (:class:`repro.core.ExprHigh`):

* :mod:`~repro.interop.netlist` — a JSON netlist schema
  (``graphiti-netlist`` version 1) with canonical, byte-deterministic
  serialisation;
* :mod:`~repro.interop.verilog` — a small structural-Verilog subset
  (module / wire / instance, with ``(* in = "...", out = "..." *)``
  attributes carrying the ordered port lists).

:mod:`~repro.interop.corpus` generates seeded random loop-nest programs on
the HLS mini-IR and fuzzes the whole transform→verify→simulate flow,
turning the paper's bicg-bug story into a general differential tester.

:func:`load_graph` / :func:`save_graph` dispatch on file extension
(``.json`` / ``.v`` / ``.dot``) and back ``Session.load_graph`` /
``Session.export_graph``.
"""

from __future__ import annotations

import os

from ..errors import NetlistError
from .corpus import (
    CorpusCase,
    case_seeds,
    corpus_manifest,
    generate_case,
    generate_program,
    run_fuzz_case,
)
from .netlist import dumps_netlist, graph_to_netlist, loads_netlist, netlist_to_graph
from .verilog import dump_verilog, parse_verilog

FORMATS = ("json", "verilog", "dot")

_EXTENSIONS = {".json": "json", ".v": "verilog", ".sv": "verilog", ".dot": "dot"}


def infer_format(path: str | os.PathLike) -> str:
    """Map a file extension to a netlist format name.

    Raises :class:`~repro.errors.NetlistError` for unknown extensions.
    """
    ext = os.path.splitext(os.fspath(path))[1].lower()
    fmt = _EXTENSIONS.get(ext)
    if fmt is None:
        raise NetlistError(
            f"cannot infer netlist format from {path!r}; expected one of "
            f"{sorted(_EXTENSIONS)} (or pass format= explicitly)"
        )
    return fmt


def graph_to_text(graph, fmt: str, name: str = "graph") -> str:
    """Serialise *graph* in *fmt* (one of :data:`FORMATS`)."""
    if fmt == "json":
        return dumps_netlist(graph, name=name)
    if fmt == "verilog":
        return dump_verilog(graph, name=name)
    if fmt == "dot":
        from ..dot import print_dot

        return print_dot(graph)
    raise NetlistError(f"unknown netlist format {fmt!r}; expected one of {list(FORMATS)}")


def text_to_graph(text: str, fmt: str):
    """Parse *text* in *fmt* (one of :data:`FORMATS`) into an ExprHigh."""
    if fmt == "json":
        return loads_netlist(text)
    if fmt == "verilog":
        _, graph = parse_verilog(text)
        return graph
    if fmt == "dot":
        from ..dot import parse_dot

        return parse_dot(text)
    raise NetlistError(f"unknown netlist format {fmt!r}; expected one of {list(FORMATS)}")


def save_graph(graph, path: str | os.PathLike, fmt: str | None = None, name: str = "graph") -> str:
    """Write *graph* to *path*, inferring the format from the extension.

    Returns the format used.
    """
    fmt = fmt or infer_format(path)
    text = graph_to_text(graph, fmt, name=name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return fmt


def load_graph(path: str | os.PathLike, fmt: str | None = None):
    """Read a dataflow graph from *path*, inferring format from extension."""
    fmt = fmt or infer_format(path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return text_to_graph(text, fmt)


__all__ = [
    "FORMATS",
    "CorpusCase",
    "case_seeds",
    "corpus_manifest",
    "dump_verilog",
    "dumps_netlist",
    "generate_case",
    "generate_program",
    "graph_to_netlist",
    "graph_to_text",
    "infer_format",
    "load_graph",
    "loads_netlist",
    "netlist_to_graph",
    "parse_verilog",
    "run_fuzz_case",
    "save_graph",
    "text_to_graph",
]
