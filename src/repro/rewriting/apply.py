"""Rewrite application, routed through ExprLow (sections 4.2 and 4.6).

Application follows the paper's architecture: the match is found on
ExprHigh, the graph is lowered to ExprLow, the matched subgraph is isolated
by reassociation (:func:`repro.core.exprlow.isolate`), replaced using the
syntactic substitution ``e[lhs := rhs]``, the interface ports are stitched
to the names the host graph uses, and the result is lifted back to ExprHigh.

Theorem 4.6 then gives the engine its guarantee: if ⟦rhs⟧ ⊑ ⟦lhs⟧ (checked
on bounded instances by the refinement engine), the output graph refines the
input graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import exprlow
from ..core.exprhigh import Endpoint, ExprHigh, lift
from ..core.ports import InternalPort, IOPort, Port
from ..errors import RewriteError
from .rewrite import Match, Rewrite


@dataclass
class Application:
    """Provenance record of one rewrite application."""

    rewrite: str
    matched_nodes: frozenset[str]
    new_nodes: frozenset[str]
    verified: bool


def apply_rewrite(graph: ExprHigh, rewrite: Rewrite, match: Match) -> tuple[ExprHigh, Application]:
    """Apply *rewrite* at *match*, returning the new graph and a record."""
    replacement = rewrite.rhs(match)
    replacement.validate()
    if set(replacement.inputs) != set(rewrite.lhs.inputs):
        raise RewriteError(
            f"rewrite {rewrite.name!r}: rhs inputs {sorted(replacement.inputs)} "
            f"differ from lhs interface {sorted(rewrite.lhs.inputs)}"
        )
    if set(replacement.outputs) != set(rewrite.lhs.outputs):
        raise RewriteError(
            f"rewrite {rewrite.name!r}: rhs outputs {sorted(replacement.outputs)} "
            f"differ from lhs interface {sorted(rewrite.lhs.outputs)}"
        )

    matched = match.host_nodes()
    fresh_names = _fresh_names(graph, replacement, rewrite.name)
    rhs_specs = {fresh_names[name]: spec for name, spec in replacement.nodes.items()}

    # Lower the host graph; identify the bases belonging to the match.
    owners = sorted(graph.nodes)
    low = graph.lower(node_order=owners)
    bases = list(low.bases())
    selected_ids = {id(base) for base, owner in zip(bases, owners) if owner in matched}

    sub, _, crossing, rest = exprlow.isolate(low, lambda base: id(base) in selected_ids)
    iso = exprlow.build_around(sub, rest, crossing)

    # Lower the replacement with fresh instance names; its interface ports
    # come out as io:k, to be renamed onto the host-side names.
    renamed_replacement = _rename_graph(replacement, fresh_names)
    rhs_low = renamed_replacement.lower(node_order=sorted(renamed_replacement.nodes))

    in_map: dict[Port, Port] = {}
    cross_in: dict[Port, Port] = {}
    for index, host_endpoint in match.inputs.items():
        rhs_endpoint = renamed_replacement.inputs[index]
        new_name: Port = InternalPort(rhs_endpoint.node, rhs_endpoint.port)
        host_name = _host_input_name(graph, host_endpoint)
        if isinstance(host_name, IOPort):
            in_map[IOPort(index)] = host_name  # stays an external input
        else:
            in_map[IOPort(index)] = new_name
            cross_in[host_name] = new_name

    out_map: dict[Port, Port] = {}
    cross_out: dict[Port, Port] = {}
    for index, host_endpoint in match.outputs.items():
        rhs_endpoint = renamed_replacement.outputs[index]
        new_name = InternalPort(rhs_endpoint.node, rhs_endpoint.port)
        host_name = _host_output_name(graph, host_endpoint)
        if isinstance(host_name, IOPort):
            out_map[IOPort(index)] = host_name
        else:
            out_map[IOPort(index)] = new_name
            cross_out[host_name] = new_name

    new_sub = exprlow.rename_ports(rhs_low, in_map, out_map)

    # The syntactic substitution of section 4.2, followed by stitching the
    # crossing connections onto the replacement's port names.
    replaced = iso.substitute(sub, new_sub)
    if replaced is iso or replaced == iso:
        raise RewriteError(f"rewrite {rewrite.name!r}: substitution did not fire")
    final_low = exprlow.rename_ports(replaced, cross_in, cross_out)

    specs = {name: spec for name, spec in graph.nodes.items() if name not in matched}
    specs.update(rhs_specs)
    new_graph = lift(final_low, specs)
    new_graph.validate()
    application = Application(
        rewrite=rewrite.name,
        matched_nodes=matched,
        new_nodes=frozenset(rhs_specs),
        verified=rewrite.verified,
    )
    return new_graph, application


def _fresh_names(graph: ExprHigh, replacement: ExprHigh, prefix: str) -> dict[str, str]:
    taken = set(graph.nodes)
    mapping: dict[str, str] = {}
    for name in sorted(replacement.nodes):
        candidate = name
        counter = 0
        while candidate in taken:
            counter += 1
            candidate = f"{name}_{counter}"
        mapping[name] = candidate
        taken.add(candidate)
    return mapping


def _rename_graph(replacement: ExprHigh, mapping: dict[str, str]) -> ExprHigh:
    renamed = ExprHigh()
    for name, spec in replacement.nodes.items():
        renamed.add_node(mapping[name], spec)
    for dst, src in replacement.connections.items():
        renamed.connect(mapping[src.node], src.port, mapping[dst.node], dst.port)
    for index, endpoint in replacement.inputs.items():
        renamed.mark_input(index, mapping[endpoint.node], endpoint.port)
    for index, endpoint in replacement.outputs.items():
        renamed.mark_output(index, mapping[endpoint.node], endpoint.port)
    return renamed


def _host_input_name(graph: ExprHigh, endpoint: Endpoint) -> Port:
    for index, marked in graph.inputs.items():
        if marked == endpoint:
            return IOPort(index)
    return InternalPort(endpoint.node, endpoint.port)


def _host_output_name(graph: ExprHigh, endpoint: Endpoint) -> Port:
    for index, marked in graph.outputs.items():
        if marked == endpoint:
            return IOPort(index)
    return InternalPort(endpoint.node, endpoint.port)
