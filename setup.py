"""Legacy setup shim.

The offline environment this project targets has setuptools but not the
``wheel`` package, so PEP 517 editable installs (which build a wheel) fail.
With this shim present and no ``[build-system]`` table in pyproject.toml,
``pip install -e .`` falls back to ``setup.py develop``, which works offline.
Metadata lives in pyproject.toml and is read by setuptools >= 61.
"""

from setuptools import setup

setup()
