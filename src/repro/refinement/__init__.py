"""Refinement checking: the executable metatheory of sections 4.4 and 5."""

from .checker import (
    RefinementReport,
    check_graph_refinement,
    check_refinement,
    check_rewrite_obligation,
    io_stimuli,
    refines,
    uniform_stimuli,
)
from .simulation import SimulationCertificate, SimulationResult, Violation, find_weak_simulation
from .traces import can_perform, enumerate_traces, trace_inclusion

__all__ = [
    "RefinementReport",
    "check_graph_refinement",
    "check_refinement",
    "check_rewrite_obligation",
    "io_stimuli",
    "refines",
    "uniform_stimuli",
    "SimulationCertificate",
    "SimulationResult",
    "Violation",
    "find_weak_simulation",
    "can_perform",
    "enumerate_traces",
    "trace_inclusion",
]
