"""Refinement checking: the executable metatheory of sections 4.4 and 5."""

from .checker import (
    RefinementReport,
    check_graph_refinement,
    check_refinement,
    check_rewrite_obligation,
    io_stimuli,
    recheck_obligation_certificate,
    recheck_obligation_incremental,
    refines,
    uniform_stimuli,
)
from .codec import from_bytes as certificate_from_bytes
from .codec import looks_binary, to_bytes as certificate_to_bytes
from .incremental import (
    GraphDiff,
    IncrementalOutcome,
    diff_graphs,
    incremental_recheck,
    transport_certificate,
)
from .sat import (
    CnfFormula,
    CrossCheckReport,
    SatResult,
    SatVerdict,
    check_obligation_sat,
    check_refinement_sat,
    cross_check_obligation,
    encode_refinement,
    solve as solve_cnf,
)
from .sharded import find_weak_simulation_sharded, obligation_ref
from .simulation import (
    CERTIFICATE_FORMAT,
    ReplayWitnesses,
    SimulationCertificate,
    SimulationResult,
    Violation,
    decode_state,
    encode_state,
    find_weak_simulation,
    recheck_certificate,
)
from .traces import can_perform, enumerate_traces, trace_inclusion

__all__ = [
    "RefinementReport",
    "check_graph_refinement",
    "check_refinement",
    "check_rewrite_obligation",
    "io_stimuli",
    "recheck_obligation_certificate",
    "recheck_obligation_incremental",
    "refines",
    "uniform_stimuli",
    "certificate_from_bytes",
    "certificate_to_bytes",
    "looks_binary",
    "GraphDiff",
    "IncrementalOutcome",
    "diff_graphs",
    "incremental_recheck",
    "transport_certificate",
    "CnfFormula",
    "CrossCheckReport",
    "SatResult",
    "SatVerdict",
    "check_obligation_sat",
    "check_refinement_sat",
    "cross_check_obligation",
    "encode_refinement",
    "solve_cnf",
    "find_weak_simulation_sharded",
    "obligation_ref",
    "CERTIFICATE_FORMAT",
    "ReplayWitnesses",
    "SimulationCertificate",
    "SimulationResult",
    "Violation",
    "decode_state",
    "encode_state",
    "find_weak_simulation",
    "recheck_certificate",
    "can_perform",
    "enumerate_traces",
    "trace_inclusion",
]
