"""The parallel, cached work-unit executor.

A :class:`WorkUnit` names a module-level worker function (``"module:attr"``
— the indirection keeps units picklable, since worker processes re-resolve
the callable themselves), a picklable keyword payload, and an optional
content-addressed cache key.  :meth:`Executor.run` evaluates a batch:

1. every unit with a cache hit is answered immediately;
2. the misses run — serially when ``jobs == 1`` (or only one miss), else
   fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor`;
3. a unit whose worker raises, or whose pool dies underneath it
   (``BrokenProcessPool``), is retried *serially in the parent* — the pool
   is an optimisation, never a source of new failure modes; an exception
   from the serial retry is genuine and propagates;
4. results come back **in submission order**, whatever order workers
   finished in, so downstream output is byte-identical to a serial run.

Worker functions must return a JSON-serialisable value other than ``None``
(``None`` is the cache-miss sentinel).

Observability: when the global tracer has a sink attached, every unit gets
a ``unit:<uid>`` span whose ``mode`` attribute records how it was answered
(``cache`` / ``serial`` / ``pool``, plus ``retried``).  Serial units nest
their callee spans naturally; pool workers record into a private tracer
and ship the subtree back inside the outcome dict, which the parent grafts
under its open span (see :meth:`repro.obs.Tracer.graft`).
"""

from __future__ import annotations

import importlib
import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Sequence

from .. import obs
from ..errors import GraphitiError
from .cache import NullCache
from .metrics import ExecutorMetrics, UnitMetric


class ExecutorError(GraphitiError):
    """A work unit was malformed or its worker could not be resolved."""


@dataclass(frozen=True)
class WorkUnit:
    """One independent, picklable piece of work."""

    uid: str
    fn: str  # "package.module:function"
    payload: dict = field(default_factory=dict)
    cache_key: str | None = None


def resolve_worker(spec: str) -> Callable[..., Any]:
    """Import ``"module:function"`` and return the callable."""
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ExecutorError(f"worker spec {spec!r} is not of the form 'module:function'")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ExecutorError(f"cannot import worker module {module_name!r}: {exc}") from exc
    fn = getattr(module, attr, None)
    if not callable(fn):
        raise ExecutorError(f"worker {spec!r} does not name a callable")
    return fn


def _call_unit(fn_spec: str, payload: dict, uid: str = "", trace: bool = False) -> dict:
    """Pool entry point: run one unit, returning its in-worker wall time.

    With *trace* the worker records spans into a private tracer and ships
    the serialised subtree back under ``"spans"`` so the parent can graft
    it into its own trace (durations are in-worker wall times).
    """
    if not trace:
        start = perf_counter()
        value = resolve_worker(fn_spec)(**payload)
        return {"seconds": perf_counter() - start, "value": value}
    tracer = obs.Tracer()
    sink = tracer.attach(obs.InMemorySink())
    start = perf_counter()
    with obs.use_tracer(tracer):
        with tracer.span(f"unit:{uid}", mode="pool"):
            value = resolve_worker(fn_spec)(**payload)
    return {
        "seconds": perf_counter() - start,
        "value": value,
        "spans": [root.to_dict() for root in sink.spans],
    }


class Executor:
    """Runs batches of work units with caching and a process pool.

    The pool is created lazily on the first parallel batch and **reused**
    across :meth:`run` calls — a long-running caller (the verification
    service, a warm REPL session) pays the worker-spawn cost once, not per
    batch.  :meth:`close` drains and releases it; a broken pool is
    discarded and transparently rebuilt on the next batch.
    """

    def __init__(self, jobs: int = 1, cache=None, metrics: ExecutorMetrics | None = None):
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else NullCache()
        self.metrics = metrics if metrics is not None else ExecutorMetrics()
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drain the persistent worker pool and refuse further batches.

        Idempotent.  In-flight work submitted by an earlier :meth:`run`
        call finishes (``shutdown(wait=True)``); subsequent :meth:`run`
        calls raise :class:`ExecutorError`.
        """
        self._closed = True
        self._discard_pool(wait=True)

    def _discard_pool(self, wait: bool) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods() else None
            )
            self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=context)
        return self._pool

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- batches ---------------------------------------------------------------

    def run(self, units: Sequence[WorkUnit]) -> list[Any]:
        """Evaluate every unit; results are indexed like *units*."""
        if self._closed:
            raise ExecutorError("executor is closed (Session.close() was called)")
        units = list(units)
        with obs.span("exec:run", units=len(units), jobs=self.jobs) as batch_span:
            results: list[Any] = [None] * len(units)
            pending: list[int] = []
            for index, unit in enumerate(units):
                hit = self._lookup(unit)
                if hit is not None:
                    results[index] = hit[0]
                else:
                    pending.append(index)
            batch_span.set(cached=len(units) - len(pending))
            if not pending:
                return results
            if self.jobs == 1 or len(pending) == 1:
                for index in pending:
                    results[index] = self._run_serial(units[index])
            else:
                self._run_pool(units, pending, results)
            return results

    # -- cache --------------------------------------------------------------

    def _lookup(self, unit: WorkUnit) -> tuple[Any] | None:
        if unit.cache_key is None:
            return None
        start = perf_counter()
        payload = self.cache.get(unit.cache_key)
        if payload is None:
            obs.count("executor.cache_misses")
            return None
        seconds = perf_counter() - start
        obs.count("executor.cache_hits")
        tracer = obs.get_tracer()
        if tracer.active:
            tracer.graft(
                {"name": f"unit:{unit.uid}", "seconds": seconds}, mode="cache"
            )
        self.metrics.record(
            UnitMetric(uid=unit.uid, seconds=seconds, cached=True, mode="cache")
        )
        return (payload,)

    def _store(self, unit: WorkUnit, value: Any) -> None:
        if unit.cache_key is not None and value is not None:
            self.cache.put(unit.cache_key, value)

    # -- serial path ---------------------------------------------------------

    def _run_serial(self, unit: WorkUnit, retried: bool = False) -> Any:
        mode = "serial-retry" if retried else "serial"
        obs.count(f"executor.{mode}")
        with obs.span(f"unit:{unit.uid}", mode=mode, retried=retried):
            start = perf_counter()
            value = resolve_worker(unit.fn)(**unit.payload)
            self.metrics.record(
                UnitMetric(
                    uid=unit.uid,
                    seconds=perf_counter() - start,
                    cached=False,
                    mode="serial",
                    retried=retried,
                )
            )
        self._store(unit, value)
        return value

    # -- pool path ------------------------------------------------------------

    def _run_pool(self, units: list[WorkUnit], pending: list[int], results: list[Any]) -> None:
        completed: set[int] = set()
        fallback: list[int] = []
        tracer = obs.get_tracer()
        trace = tracer.active
        try:
            pool = self._ensure_pool()
            futures = {
                pool.submit(
                    _call_unit,
                    units[index].fn,
                    units[index].payload,
                    uid=units[index].uid,
                    trace=trace,
                ): index
                for index in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception:
                        # The unit itself failed in the worker; retry it
                        # serially so a transient worker problem cannot
                        # fail the batch.
                        fallback.append(index)
                        completed.add(index)
                        continue
                    results[index] = outcome["value"]
                    completed.add(index)
                    obs.count("executor.pool")
                    for data in outcome.get("spans", ()):
                        tracer.graft(data, uid=units[index].uid)
                    self.metrics.record(
                        UnitMetric(
                            uid=units[index].uid,
                            seconds=outcome["seconds"],
                            cached=False,
                            mode="pool",
                        )
                    )
                    self._store(units[index], outcome["value"])
        except (BrokenProcessPool, OSError):
            # The pool itself died (a worker crashed hard, or fork failed):
            # everything not finished falls back to the serial path, and the
            # dead pool is discarded so the next batch forks a fresh one.
            self._discard_pool(wait=False)
        fallback.extend(index for index in pending if index not in completed)
        for index in fallback:
            results[index] = self._run_serial(units[index], retried=True)
