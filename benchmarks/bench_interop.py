"""Interop throughput and oracle agreement: the bench-interop guard.

Run standalone (``python benchmarks/bench_interop.py``) to measure

* **round-trip throughput** — every built-in kernel graph serialised and
  re-parsed through the JSON netlist schema and the structural-Verilog
  subset, asserting byte-identical re-serialisation;
* **SAT oracle vs certificate recheck** — for every library-rule
  obligation, the SAT decision (:func:`check_obligation_sat`) timed
  against the weak-simulation game (:func:`find_weak_simulation`), and
  the cross-check (:func:`cross_check_obligation`) asserting the two
  never disagree definitively;
* **fuzz throughput** — a fixed-seed corpus of differential fuzz cases
  (cases/sec, failures, DF-OoO divergences),

and append an entry to ``benchmarks/BENCH_interop.json``.

``--guard`` is the CI mode: exit 1 if any round-trip breaks, any fuzz
case fails, or the SAT oracle and the game disagree on any obligation.
"""

_FUZZ_SEED = 0
_FUZZ_CASES = 25


def _kernel_graphs():
    from repro.benchmarks import BENCHMARKS, load_benchmark
    from repro.components import default_environment
    from repro.hls.frontend import compile_program

    env = default_environment()
    graphs = []
    for name in BENCHMARKS:
        for ck in compile_program(load_benchmark(name), env).kernels:
            graphs.append((ck.kernel.name, ck.graph))
    return graphs


def measure_round_trips(repeats: int = 3) -> dict:
    from time import perf_counter

    from repro.interop import dump_verilog, dumps_netlist, loads_netlist, parse_verilog

    graphs = _kernel_graphs()
    total_nodes = sum(len(g.nodes) for _, g in graphs)
    out = {"kernels": len(graphs), "total_nodes": total_nodes, "ok": True}
    for fmt, dump, load in (
        ("json", dumps_netlist, loads_netlist),
        ("verilog", dump_verilog, lambda text: parse_verilog(text)[1]),
    ):
        best = float("inf")
        ok = True
        for _ in range(repeats):
            start = perf_counter()
            for name, graph in graphs:
                text = dump(graph, name=name)
                recovered = load(text)
                ok = ok and recovered == graph and dump(recovered, name=name) == text
            best = min(best, perf_counter() - start)
        out[fmt] = {
            "seconds": round(best, 6),
            "graphs_per_second": round(len(graphs) / best, 1),
            "nodes_per_second": round(total_nodes / best, 1),
        }
        out["ok"] = out["ok"] and ok
    return out


def measure_oracle(bound: int | None = None) -> dict:
    from time import perf_counter

    from repro.core.semantics import denote
    from repro.refinement.checker import uniform_stimuli
    from repro.refinement.sat import DEFAULT_BOUND, check_refinement_sat
    from repro.refinement.simulation import find_weak_simulation
    from repro.rewriting.rules import VERIFY_FACTORY_SPECS, build_rewrite

    bound = bound or DEFAULT_BOUND
    per_rewrite = {}
    agreed = True
    for spec in VERIFY_FACTORY_SPECS:
        rewrite = build_rewrite(*spec)
        if rewrite.obligation is None:
            continue
        rows = []
        for lhs, rhs, env, stimuli in rewrite.obligation():
            impl = denote(rhs.lower(), env)
            spec_mod = denote(lhs.lower(), env.with_capacity(4))
            if stimuli is None:
                stimuli = uniform_stimuli(impl, (0, 1))

            start = perf_counter()
            game = find_weak_simulation(impl, spec_mod, stimuli)
            game_seconds = perf_counter() - start

            start = perf_counter()
            verdict = check_refinement_sat(impl, spec_mod, stimuli, bound=bound)
            sat_seconds = perf_counter() - start

            instance_agreed = (not verdict.definitive) or verdict.holds == game.holds
            agreed = agreed and instance_agreed
            rows.append(
                {
                    "holds": game.holds,
                    "sat_holds": verdict.holds,
                    "definitive": verdict.definitive,
                    "agreed": instance_agreed,
                    "pairs": verdict.pairs_explored,
                    "clauses": verdict.clauses,
                    "game_seconds": round(game_seconds, 6),
                    "sat_seconds": round(sat_seconds, 6),
                }
            )
        if rows:
            per_rewrite[rewrite.name] = rows
    instances = [row for rows in per_rewrite.values() for row in rows]
    return {
        "bound": bound,
        "obligations": len(instances),
        "agreed": agreed,
        "failing_rules": sorted(
            name
            for name, rows in per_rewrite.items()
            if any(not row["holds"] for row in rows)
        ),
        "game_seconds": round(sum(row["game_seconds"] for row in instances), 6),
        "sat_seconds": round(sum(row["sat_seconds"] for row in instances), 6),
        "per_rewrite": per_rewrite,
    }


def measure_fuzz(cases: int = _FUZZ_CASES, seed: int = _FUZZ_SEED) -> dict:
    from time import perf_counter

    from repro.interop.corpus import case_seeds, corpus_manifest, run_fuzz_case

    start = perf_counter()
    entries = [run_fuzz_case(s, "compiled") for s in case_seeds(seed, cases)]
    seconds = perf_counter() - start
    manifest = corpus_manifest(entries, seed=seed, backend="compiled")
    return {
        "seed": seed,
        "cases": cases,
        "ok": manifest["ok"],
        "failures": [f for e in entries for f in e["failures"]],
        "effectful_cases": manifest["effectful_cases"],
        "ooo_divergences": manifest["ooo_divergences"],
        "content_hash": manifest["content_hash"],
        "seconds": round(seconds, 6),
        "cases_per_second": round(cases / seconds, 2),
    }


def _append_history(entry: dict) -> None:
    import json
    from pathlib import Path

    out = Path(__file__).with_name("BENCH_interop.json")
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    summary = {k: v for k, v in entry.items() if k != "oracle"}
    summary["oracle"] = {
        k: v for k, v in entry["oracle"].items() if k != "per_rewrite"
    }
    print(json.dumps(summary, indent=2))


def main(argv=None) -> int:
    import argparse

    from repro._version import __version__

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--guard",
        action="store_true",
        help="exit 1 on any broken round-trip, failing fuzz case, or "
        "definitive SAT/game disagreement",
    )
    parser.add_argument("--cases", type=int, default=_FUZZ_CASES, help="fuzz cases")
    parser.add_argument("--seed", type=int, default=_FUZZ_SEED, help="corpus seed")
    parser.add_argument("--bound", type=int, default=None, help="SAT pair bound")
    parser.add_argument("--repeats", type=int, default=3, help="round-trip best-of")
    args = parser.parse_args(argv)

    round_trips = measure_round_trips(repeats=args.repeats)
    oracle = measure_oracle(bound=args.bound)
    fuzz = measure_fuzz(cases=args.cases, seed=args.seed)
    _append_history(
        {
            "tool_version": __version__,
            "round_trips": round_trips,
            "oracle": oracle,
            "fuzz": fuzz,
        }
    )

    if args.guard:
        failed = []
        if not round_trips["ok"]:
            failed.append("a kernel netlist round-trip was not byte-identical")
        if not oracle["agreed"]:
            failed.append("SAT oracle and weak-simulation game disagreed")
        if not fuzz["ok"]:
            failed.append(f"fuzz failures: {fuzz['failures']}")
        if failed:
            for reason in failed:
                print(f"FAIL: {reason}")
            return 1
        print(
            f"OK: {round_trips['kernels']} kernels round-trip both formats, "
            f"oracles agree on {oracle['obligations']} obligations "
            f"(negatives: {', '.join(oracle['failing_rules'])}), "
            f"{fuzz['cases']} fuzz cases at {fuzz['cases_per_second']:g}/s"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
