"""ExprHigh: the named, dot-like graph language (figure 1 of the paper).

ExprHigh is the representation rewrites are *matched* on: a finite map from
instance names to components plus a set of connections between named ports,
together with the graph's external inputs and outputs.  Its semantics are
defined by translation to ExprLow (:meth:`ExprHigh.lower`), as in the paper;
lifting back (:func:`lift`) reconstructs an ExprHigh from any well-formed
ExprLow expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..errors import GraphError
from . import exprlow
from .encoding import decode_component, encode_component
from .ports import IOPort, InternalPort, Port, PortMap


@dataclass(frozen=True)
class NodeSpec:
    """A component instance: type name, parameters, and named ports.

    Parameters are an immutable sorted tuple of key/value pairs so specs are
    hashable; use :meth:`param` / :meth:`with_params` for access and update.
    """

    typ: str
    in_ports: tuple[str, ...]
    out_ports: tuple[str, ...]
    params: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def make(
        typ: str,
        in_ports: Iterable[str],
        out_ports: Iterable[str],
        params: Mapping[str, object] | None = None,
    ) -> "NodeSpec":
        items = tuple(sorted((params or {}).items()))
        return NodeSpec(typ, tuple(in_ports), tuple(out_ports), items)

    def param(self, key: str, default: object = None) -> object:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def param_dict(self) -> dict[str, object]:
        return dict(self.params)

    def with_params(self, **updates: object) -> "NodeSpec":
        merged = self.param_dict()
        merged.update(updates)
        return NodeSpec.make(self.typ, self.in_ports, self.out_ports, merged)

    def with_type(self, typ: str) -> "NodeSpec":
        return NodeSpec(typ, self.in_ports, self.out_ports, self.params)


@dataclass(frozen=True)
class Endpoint:
    """One end of a connection: an instance name and one of its port names."""

    node: str
    port: str

    def __str__(self) -> str:
        return f"{self.node}.{self.port}"


@dataclass
class ExprHigh:
    """A mutable named dataflow graph.

    Invariants maintained by the mutating methods:

    * every connection joins an existing output port to an existing input
      port, each used at most once;
    * external inputs/outputs map distinct I/O indices to otherwise
      unconnected ports.

    Alongside the four public mappings the graph keeps incrementally
    maintained indexes — a reverse adjacency map (source endpoint →
    destination endpoint), per-node edge lists, and a component-type index —
    so adjacency and type queries are O(degree) rather than O(edges).  Every
    mutator validates its arguments *before* touching any state, so a raised
    :class:`GraphError` always leaves the graph (and its indexes) unchanged.
    """

    nodes: dict[str, NodeSpec] = field(default_factory=dict)
    connections: dict[Endpoint, Endpoint] = field(default_factory=dict)  # dst -> src
    inputs: dict[int, Endpoint] = field(default_factory=dict)  # io index -> input port
    outputs: dict[int, Endpoint] = field(default_factory=dict)  # io index -> output port

    def __post_init__(self) -> None:
        self._rebuild_indexes()

    # -- index maintenance --------------------------------------------------

    def _rebuild_indexes(self) -> None:
        """Derive every index from the public mappings (O(V + E)).

        Called on construction; the mutators below keep the indexes in sync
        incrementally, so this never runs on the hot path.  Inner dicts are
        used as insertion-ordered sets to keep iteration deterministic.
        """
        # src endpoint -> dst endpoint (total: each output feeds <= 1 input)
        self._rev: dict[Endpoint, Endpoint] = {
            src: dst for dst, src in self.connections.items()
        }
        # node -> {dst endpoint of each edge leaving / entering the node}
        self._out_edges: dict[str, dict[Endpoint, None]] = {n: {} for n in self.nodes}
        self._in_edges: dict[str, dict[Endpoint, None]] = {n: {} for n in self.nodes}
        # component type -> {node name}
        self._by_type: dict[str, dict[str, None]] = {}
        for name, spec in self.nodes.items():
            self._by_type.setdefault(spec.typ, {})[name] = None
        for dst, src in self.connections.items():
            self._out_edges[src.node][dst] = None
            self._in_edges[dst.node][dst] = None

    def _link(self, src: Endpoint, dst: Endpoint) -> None:
        self.connections[dst] = src
        self._rev[src] = dst
        self._out_edges[src.node][dst] = None
        self._in_edges[dst.node][dst] = None

    def _unlink(self, dst: Endpoint) -> Endpoint:
        src = self.connections.pop(dst)
        del self._rev[src]
        del self._out_edges[src.node][dst]
        del self._in_edges[dst.node][dst]
        return src

    # -- construction -----------------------------------------------------

    def add_node(self, name: str, spec: NodeSpec) -> None:
        if name in self.nodes:
            raise GraphError(f"duplicate node name {name!r}")
        self.nodes[name] = spec
        self._by_type.setdefault(spec.typ, {})[name] = None
        self._out_edges[name] = {}
        self._in_edges[name] = {}

    def replace_spec(self, name: str, spec: NodeSpec) -> None:
        """Swap a node's spec in place, keeping the type index consistent.

        Port lists may only change while every connected or I/O-marked port
        survives; connections are untouched.
        """
        old = self.nodes.get(name)
        if old is None:
            raise GraphError(f"unknown node {name!r}")
        if old.in_ports != spec.in_ports or old.out_ports != spec.out_ports:
            for dst in self._in_edges[name]:
                if dst.port not in spec.in_ports:
                    raise GraphError(f"new spec for {name!r} drops connected port {dst.port!r}")
            for dst in self._out_edges[name]:
                if self.connections[dst].port not in spec.out_ports:
                    raise GraphError(f"new spec for {name!r} drops connected output port")
            for endpoint in list(self.inputs.values()) + list(self.outputs.values()):
                if endpoint.node == name and endpoint.port not in spec.in_ports + spec.out_ports:
                    raise GraphError(f"new spec for {name!r} drops I/O-marked port {endpoint.port!r}")
        if old.typ != spec.typ:
            del self._by_type[old.typ][name]
            if not self._by_type[old.typ]:
                del self._by_type[old.typ]
            self._by_type.setdefault(spec.typ, {})[name] = None
        self.nodes[name] = spec

    def connect(self, src_node: str, src_port: str, dst_node: str, dst_port: str) -> None:
        src = Endpoint(src_node, src_port)
        dst = Endpoint(dst_node, dst_port)
        self._check_output(src)
        self._check_input(dst)
        if dst in self.connections:
            raise GraphError(f"input port {dst} already connected")
        if src in self._rev:
            raise GraphError(f"output port {src} already connected")
        self._link(src, dst)

    def mark_input(self, index: int, node: str, port: str) -> None:
        endpoint = Endpoint(node, port)
        self._check_input(endpoint)
        if index in self.inputs:
            raise GraphError(f"duplicate external input index {index}")
        if endpoint in self.connections:
            raise GraphError(f"external input {endpoint} is already connected")
        self.inputs[index] = endpoint

    def mark_output(self, index: int, node: str, port: str) -> None:
        endpoint = Endpoint(node, port)
        self._check_output(endpoint)
        if index in self.outputs:
            raise GraphError(f"duplicate external output index {index}")
        if endpoint in self._rev:
            raise GraphError(f"external output {endpoint} is already connected")
        self.outputs[index] = endpoint

    def _check_input(self, endpoint: Endpoint) -> None:
        spec = self.nodes.get(endpoint.node)
        if spec is None:
            raise GraphError(f"unknown node {endpoint.node!r}")
        if endpoint.port not in spec.in_ports:
            raise GraphError(f"{endpoint.node!r} has no input port {endpoint.port!r}")

    def _check_output(self, endpoint: Endpoint) -> None:
        spec = self.nodes.get(endpoint.node)
        if spec is None:
            raise GraphError(f"unknown node {endpoint.node!r}")
        if endpoint.port not in spec.out_ports:
            raise GraphError(f"{endpoint.node!r} has no output port {endpoint.port!r}")

    # -- queries -----------------------------------------------------------

    def source_of(self, node: str, port: str) -> Endpoint | None:
        """The endpoint driving input ``node.port``, or None when dangling."""
        return self.connections.get(Endpoint(node, port))

    def sinks_of(self, node: str, port: str) -> list[Endpoint]:
        """Endpoints driven by output ``node.port`` (at most one by invariant)."""
        dst = self._rev.get(Endpoint(node, port))
        return [dst] if dst is not None else []

    def sink_of(self, node: str, port: str) -> Endpoint | None:
        """The endpoint driven by output ``node.port``, or None when dangling."""
        return self._rev.get(Endpoint(node, port))

    def successors(self, node: str) -> Iterator[tuple[str, Endpoint, Endpoint]]:
        """Yield ``(succ_name, src_endpoint, dst_endpoint)`` for each edge out."""
        for dst in self._out_edges.get(node, ()):
            yield dst.node, self.connections[dst], dst

    def predecessors(self, node: str) -> Iterator[tuple[str, Endpoint, Endpoint]]:
        """Yield ``(pred_name, src_endpoint, dst_endpoint)`` for each edge in."""
        for dst in self._in_edges.get(node, ()):
            src = self.connections[dst]
            yield src.node, src, dst

    def out_edges(self, node: str) -> Iterator[tuple[Endpoint, Endpoint]]:
        """Yield ``(src, dst)`` for each connection leaving *node*."""
        for dst in self._out_edges.get(node, ()):
            yield self.connections[dst], dst

    def in_edges(self, node: str) -> Iterator[tuple[Endpoint, Endpoint]]:
        """Yield ``(src, dst)`` for each connection entering *node*."""
        for dst in self._in_edges.get(node, ()):
            yield self.connections[dst], dst

    def adjacent_nodes(self, node: str) -> Iterator[str]:
        """Yield each distinct neighbour of *node* (either direction) once."""
        seen = {node}
        for dst in self._out_edges.get(node, ()):
            if dst.node not in seen:
                seen.add(dst.node)
                yield dst.node
        for dst in self._in_edges.get(node, ()):
            src = self.connections[dst].node
            if src not in seen:
                seen.add(src)
                yield src

    def nodes_of_type(self, typ: str) -> list[str]:
        """Node names with component type *typ*, in insertion order."""
        return list(self._by_type.get(typ, ()))

    def sorted_connections(self) -> list[tuple[Endpoint, Endpoint]]:
        """``(dst, src)`` pairs in the canonical (lexicographic) edge order.

        This is the one edge ordering shared by the printer, the lowering
        translation and the cache fingerprints.
        """
        return sorted(self.connections.items(), key=lambda kv: (str(kv[0]), str(kv[1])))

    def unconnected_inputs(self) -> list[Endpoint]:
        result = []
        external = set(self.inputs.values())
        for name, spec in self.nodes.items():
            for port in spec.in_ports:
                endpoint = Endpoint(name, port)
                if endpoint not in self.connections and endpoint not in external:
                    result.append(endpoint)
        return result

    def unconnected_outputs(self) -> list[Endpoint]:
        external = set(self.outputs.values())
        result = []
        for name, spec in self.nodes.items():
            for port in spec.out_ports:
                endpoint = Endpoint(name, port)
                if endpoint not in self._rev and endpoint not in external:
                    result.append(endpoint)
        return result

    def validate(self) -> None:
        """Check the graph is closed: every port connected or marked I/O."""
        loose_in = self.unconnected_inputs()
        loose_out = self.unconnected_outputs()
        if loose_in or loose_out:
            raise GraphError(
                "graph has unconnected ports: "
                f"inputs {sorted(map(str, loose_in))}, outputs {sorted(map(str, loose_out))}"
            )

    # -- mutation used by the rewriting engine ------------------------------

    def remove_node(self, name: str) -> NodeSpec:
        """Remove a node and every connection or I/O marking that touches it.

        Atomic: an unknown name raises before any state is touched.  Edges
        are unlinked incrementally through the indexes (O(degree)) rather
        than by rebuilding the connection map.
        """
        spec = self.nodes.get(name)
        if spec is None:
            raise GraphError(f"unknown node {name!r}")
        # Merge the two edge lists so a self-loop is unlinked exactly once.
        for dst in list({**self._out_edges[name], **self._in_edges[name]}):
            self._unlink(dst)
        del self.nodes[name]
        del self._by_type[spec.typ][name]
        if not self._by_type[spec.typ]:
            del self._by_type[spec.typ]
        del self._out_edges[name]
        del self._in_edges[name]
        for index in [i for i, e in self.inputs.items() if e.node == name]:
            del self.inputs[index]
        for index in [i for i, e in self.outputs.items() if e.node == name]:
            del self.outputs[index]
        return spec

    def disconnect(self, dst_node: str, dst_port: str) -> Endpoint:
        """Remove the connection driving ``dst_node.dst_port``; return its source."""
        dst = Endpoint(dst_node, dst_port)
        if dst not in self.connections:
            raise GraphError(f"input port {dst} is not connected")
        return self._unlink(dst)

    def rename_node(self, old: str, new: str) -> None:
        """Rename a node, rewriting every endpoint that mentions it.

        Atomic: both name checks run before any state changes, so a failed
        rename leaves the graph untouched.  Only the O(degree) edges incident
        to the node are re-keyed; the rest of the connection map is not
        rebuilt.
        """
        if new in self.nodes:
            raise GraphError(f"node name {new!r} already in use")
        spec = self.nodes.get(old)
        if spec is None:
            raise GraphError(f"unknown node {old!r}")

        def fix(endpoint: Endpoint) -> Endpoint:
            return Endpoint(new, endpoint.port) if endpoint.node == old else endpoint

        pairs = [
            (dst, self.connections[dst])
            for dst in {**self._out_edges[old], **self._in_edges[old]}
        ]
        for dst, _ in pairs:
            self._unlink(dst)
        del self.nodes[old]
        self.nodes[new] = spec
        del self._by_type[spec.typ][old]
        self._by_type[spec.typ][new] = None
        self._out_edges[new] = self._out_edges.pop(old)  # both empty now
        self._in_edges[new] = self._in_edges.pop(old)
        for dst, src in pairs:
            self._link(fix(src), fix(dst))
        for index, endpoint in self.inputs.items():
            if endpoint.node == old:
                self.inputs[index] = fix(endpoint)
        for index, endpoint in self.outputs.items():
            if endpoint.node == old:
                self.outputs[index] = fix(endpoint)

    def fresh_name(self, prefix: str) -> str:
        if prefix not in self.nodes:
            return prefix
        counter = 1
        while f"{prefix}_{counter}" in self.nodes:
            counter += 1
        return f"{prefix}_{counter}"

    def copy(self) -> "ExprHigh":
        clone = ExprHigh()
        clone.nodes = dict(self.nodes)
        clone.connections = dict(self.connections)
        clone.inputs = dict(self.inputs)
        clone.outputs = dict(self.outputs)
        clone._rev = dict(self._rev)
        clone._out_edges = {name: dict(edges) for name, edges in self._out_edges.items()}
        clone._in_edges = {name: dict(edges) for name, edges in self._in_edges.items()}
        clone._by_type = {typ: dict(names) for typ, names in self._by_type.items()}
        return clone

    # -- translation to / from ExprLow --------------------------------------

    def lower(self, node_order: Iterable[str] | None = None) -> exprlow.ExprLow:
        """Translate to ExprLow using the canonical product fold.

        Node order defaults to sorted instance names; the rewrite engine
        passes an explicit order to line the matched subgraph up with the
        left-hand side pattern.
        """
        self.validate()
        order = list(node_order) if node_order is not None else sorted(self.nodes)
        if set(order) != set(self.nodes):
            raise GraphError("node_order must be a permutation of the node names")

        input_names = {endpoint: IOPort(i) for i, endpoint in self.inputs.items()}
        output_names = {endpoint: IOPort(i) for i, endpoint in self.outputs.items()}

        bases = []
        for name in order:
            spec = self.nodes[name]
            in_map: dict[Port, Port] = {}
            for idx, port in enumerate(spec.in_ports):
                endpoint = Endpoint(name, port)
                in_map[IOPort(idx)] = input_names.get(endpoint, InternalPort(name, port))
            out_map: dict[Port, Port] = {}
            for idx, port in enumerate(spec.out_ports):
                endpoint = Endpoint(name, port)
                out_map[IOPort(idx)] = output_names.get(endpoint, InternalPort(name, port))
            encoded = encode_component(spec.typ, spec.param_dict())
            bases.append(exprlow.Base(encoded, PortMap(in_map), PortMap(out_map)))

        connections = [
            (InternalPort(src.node, src.port), InternalPort(dst.node, dst.port))
            for dst, src in self.sorted_connections()
        ]
        return exprlow.build(bases, connections)


def lift(expr: exprlow.ExprLow, specs: Mapping[str, NodeSpec] | None = None) -> ExprHigh:
    """Reconstruct an ExprHigh from a well-formed ExprLow expression.

    Instance names are recovered from internal port names; purely I/O ports
    keep their indices.  When *specs* is given it supplies port naming and
    parameters for each instance (keyed by instance name); otherwise ports
    are named ``in0..``/``out0..`` positionally.
    """
    exprlow.check_well_formed(expr)
    graph = ExprHigh()
    port_owner: dict[Port, Endpoint] = {}

    for index, base in enumerate(expr.bases()):
        name = _instance_name(base, index)
        typ, params = decode_component(base.typ)
        spec = specs.get(name) if specs else None
        if spec is None:
            spec = NodeSpec.make(
                typ,
                [f"in{i}" for i in range(len(base.inputs))],
                [f"out{i}" for i in range(len(base.outputs))],
                params,
            )
        else:
            spec = NodeSpec.make(typ, spec.in_ports, spec.out_ports, params)
        graph.add_node(name, spec)
        for idx in range(len(base.inputs)):
            target = base.inputs[IOPort(idx)]
            port_owner[target] = Endpoint(name, spec.in_ports[idx])
        for idx in range(len(base.outputs)):
            target = base.outputs[IOPort(idx)]
            # Outputs and inputs live in separate namespaces in a PortMap, so
            # tag the key with direction to avoid collisions on IOPort names.
            port_owner[("out", target)] = Endpoint(name, spec.out_ports[idx])  # type: ignore[index]

    connected_inputs: set[Port] = set()
    connected_outputs: set[Port] = set()
    for output, input_ in expr.connections():
        src = port_owner.get(("out", output))  # type: ignore[arg-type]
        dst = port_owner.get(input_)
        if src is None or dst is None:
            raise GraphError(f"connection {output} ⇝ {input_} references unknown ports")
        graph.connect(src.node, src.port, dst.node, dst.port)
        connected_inputs.add(input_)
        connected_outputs.add(output)

    for port, endpoint in port_owner.items():
        if isinstance(port, tuple):
            direction, name = port
            if isinstance(name, IOPort) and name not in connected_outputs:
                graph.mark_output(name.index, endpoint.node, endpoint.port)
        elif isinstance(port, IOPort) and port not in connected_inputs:
            graph.mark_input(port.index, endpoint.node, endpoint.port)
    return graph


def _instance_name(base: exprlow.Base, index: int) -> str:
    for target in list(base.inputs.targets()) + list(base.outputs.targets()):
        if isinstance(target, InternalPort):
            return target.instance
    return f"_anon{index}"
