"""Picklable worker functions used by the executor tests.

These live in a real module (not a test file) so the executor can resolve
them by name in pool workers as well as in-process.
"""

from __future__ import annotations

import os


def double(*, x: int) -> dict:
    return {"value": 2 * x}


def fail_always(*, message: str = "boom") -> dict:
    raise ValueError(message)


def crash_unless_parent(*, parent_pid: int, x: int) -> dict:
    """Hard-kill the process when run in a pool worker; succeed in-process.

    ``os._exit`` skips all cleanup, so inside a ProcessPoolExecutor worker
    this reliably produces a BrokenProcessPool — the worker-crash scenario
    the executor must survive via its serial fallback.
    """
    if os.getpid() != parent_pid:
        os._exit(13)
    return {"value": x}


def fail_in_worker_only(*, parent_pid: int, x: int) -> dict:
    """Raise (cleanly) in a pool worker; succeed when retried in-process."""
    if os.getpid() != parent_pid:
        raise RuntimeError("transient worker failure")
    return {"value": x}
