"""The mini imperative IR consumed by the HLS front ends.

The IR models exactly the program class the paper's benchmarks live in: a
kernel is an *inner do-while loop* (the unit the out-of-order transform
targets) driven by an affine outer iteration space.  All values used inside
the loop body are loop-carried state variables — outer-loop values a body
needs (row indices, bounds) are carried as constant state, which is also
what lets independent loop instances overlap once the loop runs out of
order.

Conditionals inside bodies are if-converted to :class:`Select` expressions
(both sides computed, one chosen), as dynamic HLS front ends do for small
branches; memory reads are pure array loads; memory *writes* inside a body
(:attr:`DoWhile.stores`) are the effectful case that makes a loop
non-transformable — the bicg situation of section 6.2.

:func:`run_program` is the reference interpreter: the sequential-C ground
truth that circuit simulations are checked against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..errors import FrontendError

# -- expressions --------------------------------------------------------------


class Expr:
    """Base class for IR expressions (immutable)."""

    def variables(self) -> frozenset[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class Const(Expr):
    value: object

    def variables(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # add, sub, mul, fadd, fsub, fmul, mod, lt, le, ne, eq, and, or
    left: Expr
    right: Expr

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # ne0, eq0, not
    operand: Expr

    def variables(self) -> frozenset[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class Load(Expr):
    """A pure array read; *index* must evaluate to a flat integer index."""

    array: str
    index: Expr

    def variables(self) -> frozenset[str]:
        return self.index.variables()


@dataclass(frozen=True)
class Select(Expr):
    """If-converted conditional: both sides evaluated, one selected."""

    cond: Expr
    if_true: Expr
    if_false: Expr

    def variables(self) -> frozenset[str]:
        return self.cond.variables() | self.if_true.variables() | self.if_false.variables()


_BINOPS: dict[str, Callable] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "mod": lambda a, b: a % b if b else 0,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "ne": lambda a, b: a != b,
    "eq": lambda a, b: a == b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}

_UNOPS: dict[str, Callable] = {
    "ne0": lambda a: a != 0,
    "eq0": lambda a: a == 0,
    "not": lambda a: not a,
}


def eval_expr(expr: Expr, env: Mapping[str, object], arrays: Mapping[str, np.ndarray]) -> object:
    """Evaluate *expr* under variable bindings *env* and memory *arrays*."""
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise FrontendError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, BinOp):
        fn = _BINOPS.get(expr.op)
        if fn is None:
            raise FrontendError(f"unknown binary op {expr.op!r}")
        return fn(eval_expr(expr.left, env, arrays), eval_expr(expr.right, env, arrays))
    if isinstance(expr, UnOp):
        fn = _UNOPS.get(expr.op)
        if fn is None:
            raise FrontendError(f"unknown unary op {expr.op!r}")
        return fn(eval_expr(expr.operand, env, arrays))
    if isinstance(expr, Load):
        index = int(eval_expr(expr.index, env, arrays))
        try:
            return arrays[expr.array].flat[index]
        except (KeyError, IndexError) as exc:
            raise FrontendError(f"bad load {expr.array}[{index}]") from exc
    if isinstance(expr, Select):
        if eval_expr(expr.cond, env, arrays):
            return eval_expr(expr.if_true, env, arrays)
        return eval_expr(expr.if_false, env, arrays)
    raise FrontendError(f"cannot evaluate expression {expr!r}")


def var_occurrences(expr: Expr, counts: dict[str, int] | None = None) -> dict[str, int]:
    """Count variable *occurrences* (with multiplicity) in an expression.

    Distinct from :meth:`Expr.variables`, which returns the set: circuit
    generation forks one wire per occurrence, so repeated subexpressions
    need every occurrence accounted for.
    """
    counts = {} if counts is None else counts
    if isinstance(expr, Var):
        counts[expr.name] = counts.get(expr.name, 0) + 1
    elif isinstance(expr, BinOp):
        var_occurrences(expr.left, counts)
        var_occurrences(expr.right, counts)
    elif isinstance(expr, UnOp):
        var_occurrences(expr.operand, counts)
    elif isinstance(expr, Load):
        var_occurrences(expr.index, counts)
    elif isinstance(expr, Select):
        var_occurrences(expr.cond, counts)
        var_occurrences(expr.if_true, counts)
        var_occurrences(expr.if_false, counts)
    return counts


def binop_count(expr: Expr) -> int:
    """Number of operator nodes in an expression (used by area/scheduling)."""
    if isinstance(expr, (Var, Const)):
        return 0
    if isinstance(expr, BinOp):
        return 1 + binop_count(expr.left) + binop_count(expr.right)
    if isinstance(expr, UnOp):
        return 1 + binop_count(expr.operand)
    if isinstance(expr, Load):
        return 1 + binop_count(expr.index)
    if isinstance(expr, Select):
        return 1 + binop_count(expr.cond) + binop_count(expr.if_true) + binop_count(expr.if_false)
    raise FrontendError(f"unknown expression {expr!r}")


# -- statements / structure -----------------------------------------------------


@dataclass(frozen=True)
class StoreOp:
    """A memory write: ``array[index] = value``."""

    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class DoWhile:
    """The inner do-while loop.

    * ``state``: loop-carried variable names; the loop's value type T is the
      tuple of these, in order.
    * ``body``: the new value of each state variable, evaluated on the *old*
      state (a parallel update).
    * ``condition``: continue-iterating predicate over the *new* state.
    * ``stores``: memory writes performed each iteration, evaluated on the
      new state — a non-empty list makes the loop body effectful and blocks
      the out-of-order transform (section 6.2's bicg).
    * ``result_vars``: state variables exported when the loop exits.
    """

    name: str
    state: tuple[str, ...]
    body: Mapping[str, Expr]
    condition: Expr
    result_vars: tuple[str, ...]
    stores: tuple[StoreOp, ...] = ()

    def __post_init__(self) -> None:
        missing = [v for v in self.state if v not in self.body]
        if missing:
            raise FrontendError(f"loop {self.name!r}: state vars {missing} have no body update")
        used = frozenset().union(*(e.variables() for e in self.body.values()))
        unknown = used - set(self.state)
        if unknown:
            raise FrontendError(
                f"loop {self.name!r}: body reads non-state variables {sorted(unknown)}; "
                "carry them as constant state instead"
            )
        bad = [v for v in self.result_vars if v not in self.state]
        if bad:
            raise FrontendError(f"loop {self.name!r}: result vars {bad} are not state vars")

    def is_effectful(self) -> bool:
        return bool(self.stores)

    def step(self, state: Mapping[str, object], arrays) -> tuple[dict[str, object], bool]:
        """One body execution: returns (new state, continue?); applies stores."""
        new_state = {
            var: eval_expr(self.body[var], state, arrays) for var in self.state
        }
        for store in self.stores:
            index = int(eval_expr(store.index, new_state, arrays))
            arrays[store.array].flat[index] = eval_expr(store.value, new_state, arrays)
        cont = bool(eval_expr(self.condition, new_state, arrays))
        return new_state, cont


@dataclass(frozen=True)
class OuterLoop:
    """One affine outer dimension: ``for var in range(start, end)``."""

    var: str
    count: int


@dataclass(frozen=True)
class Kernel:
    """An inner loop driven by an outer iteration space.

    * ``outer``: iteration dimensions, outermost first.
    * ``init``: initial state per outer point, over the outer variables.
    * ``epilogue``: stores performed per outer point from the loop's exit
      values (bound under the result variable names).
    * ``tags``: the tag count the out-of-order transform uses for this loop
      (the per-benchmark numbers of Elakhras et al.).
    * ``sequential_outer``: when True the outer iterations are dependent
      (the next initial state reads values the previous iteration stored),
      so instances must be issued one at a time even when tagged — the
      gsum-single situation.
    """

    name: str
    loop: DoWhile
    outer: tuple[OuterLoop, ...]
    init: Mapping[str, Expr]
    epilogue: tuple[StoreOp, ...] = ()
    tags: int = 4
    sequential_outer: bool = False

    def __post_init__(self) -> None:
        missing = [v for v in self.loop.state if v not in self.init]
        if missing:
            raise FrontendError(f"kernel {self.name!r}: no init for state vars {missing}")

    def outer_points(self):
        """Iterate over the outer index environments, row-major."""
        def recurse(dims, env):
            if not dims:
                yield dict(env)
                return
            head, *rest = dims
            for value in range(head.count):
                env[head.var] = value
                yield from recurse(rest, env)
            env.pop(head.var, None)

        yield from recurse(list(self.outer), {})

    def trip_counts(self, arrays) -> list[int]:
        """Iteration count of each loop instance (reference execution)."""
        counts = []
        for outer_env in self.outer_points():
            state = {v: eval_expr(self.init[v], outer_env, arrays) for v in self.loop.state}
            iterations = 0
            cont = True
            while cont:
                state, cont = self.loop.step(state, arrays)
                iterations += 1
            counts.append(iterations)
        return counts


@dataclass
class Program:
    """A benchmark: named arrays plus a list of kernels run in sequence."""

    name: str
    arrays: dict[str, np.ndarray]
    kernels: list[Kernel] = field(default_factory=list)

    def copy_arrays(self) -> dict[str, np.ndarray]:
        return {name: array.copy() for name, array in self.arrays.items()}


@dataclass
class ExecutionTrace:
    """Reference execution results: final memory plus per-store history."""

    arrays: dict[str, np.ndarray]
    store_history: list[tuple[str, int, object]]
    inner_iterations: int


def run_program(program: Program, arrays: dict[str, np.ndarray] | None = None) -> ExecutionTrace:
    """Execute *program* sequentially — the C semantics ground truth."""
    memory = arrays if arrays is not None else program.copy_arrays()
    history: list[tuple[str, int, object]] = []
    total_iterations = 0

    recording = _RecordingArrays(memory, history)
    for kernel in program.kernels:
        for outer_env in kernel.outer_points():
            state = {
                v: eval_expr(kernel.init[v], outer_env, recording) for v in kernel.loop.state
            }
            cont = True
            while cont:
                state, cont = kernel.loop.step(state, recording)
                total_iterations += 1
            result_env = {v: state[v] for v in kernel.loop.result_vars}
            result_env.update(outer_env)
            for store in kernel.epilogue:
                index = int(eval_expr(store.index, result_env, recording))
                value = eval_expr(store.value, result_env, recording)
                recording[store.array].flat[index] = value
    return ExecutionTrace(arrays=memory, store_history=history, inner_iterations=total_iterations)


class _RecordingArrays(dict):
    """Array mapping that records writes through ``.flat`` assignment."""

    def __init__(self, arrays: dict[str, np.ndarray], history: list):
        super().__init__()
        self._history = history
        for name, array in arrays.items():
            self[name] = _RecordingArray(name, array, history)


class _RecordingArray:
    def __init__(self, name: str, array: np.ndarray, history: list):
        self._name = name
        self._array = array
        self._history = history
        self.flat = _RecordingFlat(name, array, history)

    def __getattr__(self, item):
        return getattr(self._array, item)


class _RecordingFlat:
    def __init__(self, name: str, array: np.ndarray, history: list):
        self._name = name
        self._array = array
        self._history = history

    def __getitem__(self, index):
        return self._array.flat[index]

    def __setitem__(self, index, value):
        self._history.append((self._name, int(index), value))
        self._array.flat[index] = value
