"""Phase-1 normalization rewrites: combining steering components (fig. 3a).

``mux-combine`` merges two Muxes that share a forked condition into one Mux
over joined data with a Split after it; ``branch-combine`` does the dual for
Branches.  These are the rewrites responsible for the extra synchronisation
the paper discusses in section 6.2 (Graphiti circuits synchronise the data
paths of combined Muxes/Branches, costing a little performance relative to
DF-OoO's uncombined steering).
"""

from __future__ import annotations

from ...components import branch, fork, join, merge, mux, split
from ..rewrite import Match, Rewrite
from .common import graph_of, io_values, obligation_env


def _mux_combine_lhs():
    return graph_of(
        nodes={"fk": fork(2), "ma": mux(), "mb": mux()},
        connections=[("fk.out0", "ma.cond"), ("fk.out1", "mb.cond")],
        inputs={0: "fk.in0", 1: "ma.in0", 2: "ma.in1", 3: "mb.in0", 4: "mb.in1"},
        outputs={0: "ma.out0", 1: "mb.out0"},
    )


def _mux_combine_rhs(match: Match):
    return graph_of(
        nodes={"jt": join(), "jf": join(), "mx": mux(), "sp": split()},
        connections=[("jt.out0", "mx.in0"), ("jf.out0", "mx.in1"), ("mx.out0", "sp.in0")],
        inputs={0: "mx.cond", 1: "jt.in0", 2: "jf.in0", 3: "jt.in1", 4: "jf.in1"},
        outputs={0: "sp.out0", 1: "sp.out1"},
    )


def _mux_combine_obligation():
    env = obligation_env(capacity=1)
    stimuli = io_values({0: (True, False), 1: ("a0",), 2: ("a1",), 3: ("b0",), 4: ("b1",)})
    yield _mux_combine_lhs(), _mux_combine_rhs(None), env, stimuli


def mux_combine() -> Rewrite:
    """Two Muxes with a common (forked) condition become one Mux."""
    return Rewrite(
        name="mux-combine",
        lhs=_mux_combine_lhs(),
        rhs=_mux_combine_rhs,
        verified=True,
        obligation=_mux_combine_obligation,
        description="Combine two Muxes sharing a forked condition (fig. 3a)",
    )


def _branch_combine_lhs():
    return graph_of(
        nodes={"fk": fork(2), "ba": branch(), "bb": branch()},
        connections=[("fk.out0", "ba.cond"), ("fk.out1", "bb.cond")],
        inputs={0: "fk.in0", 1: "ba.in0", 2: "bb.in0"},
        outputs={0: "ba.out0", 1: "ba.out1", 2: "bb.out0", 3: "bb.out1"},
    )


def _branch_combine_rhs(match: Match):
    return graph_of(
        nodes={"jn": join(), "br": branch(), "st": split(), "sf": split()},
        connections=[("jn.out0", "br.in0"), ("br.out0", "st.in0"), ("br.out1", "sf.in0")],
        inputs={0: "br.cond", 1: "jn.in0", 2: "jn.in1"},
        outputs={0: "st.out0", 1: "sf.out0", 2: "st.out1", 3: "sf.out1"},
    )


def _branch_combine_obligation():
    env = obligation_env(capacity=1)
    stimuli = io_values({0: (True, False), 1: ("a",), 2: ("b",)})
    yield _branch_combine_lhs(), _branch_combine_rhs(None), env, stimuli


def branch_combine() -> Rewrite:
    """Two Branches with a common (forked) condition become one Branch.

    This rewrite is **unverified**, mirroring the paper's limitation note
    ("we have not provided a proof of refinement for most of the minor
    rewrites, like those shown in figures 3a to 3c").  And indeed the naive
    compositional obligation genuinely fails: the Splits buffering the
    combined Branch's results let tokens reach the true-side interface
    outputs before older false-side tokens have drained, an output
    reordering across ports the uncombined circuit cannot perform.  The
    bounded checker finds that counterexample; see
    ``tests/rewriting/test_combine.py``.  The rewrite is nonetheless sound
    in the loop context where the pipeline applies it, because there the
    true-side outputs loop back into the single Mux that consumes them in
    condition order.
    """
    return Rewrite(
        name="branch-combine",
        lhs=_branch_combine_lhs(),
        rhs=_branch_combine_rhs,
        verified=False,
        obligation=_branch_combine_obligation,
        description="Combine two Branches sharing a forked condition (fig. 3a, unverified)",
    )


def _merge_combine_lhs():
    return graph_of(
        nodes={"ma": merge(), "mb": merge()},
        connections=[],
        inputs={0: "ma.in0", 1: "ma.in1", 2: "mb.in0", 3: "mb.in1"},
        outputs={0: "ma.out0", 1: "mb.out0"},
    )


def _merge_combine_rhs(match: Match):
    return graph_of(
        nodes={"jt": join(), "jf": join(), "mg": merge(), "sp": split()},
        connections=[("jt.out0", "mg.in0"), ("jf.out0", "mg.in1"), ("mg.out0", "sp.in0")],
        inputs={0: "jt.in0", 1: "jf.in0", 2: "jt.in1", 3: "jf.in1"},
        outputs={0: "sp.out0", 1: "sp.out1"},
    )


def _merge_combine_obligation():
    env = obligation_env(capacity=1)
    stimuli = io_values({0: ("a0",), 1: ("a1",), 2: ("b0",), 3: ("b1",)})
    yield _merge_combine_lhs(), _merge_combine_rhs(None), env, stimuli


def merge_combine() -> Rewrite:
    """Two side-by-side Merges become one Merge over joined pairs."""
    return Rewrite(
        name="merge-combine",
        lhs=_merge_combine_lhs(),
        rhs=_merge_combine_rhs,
        verified=True,
        obligation=_merge_combine_obligation,
        description="Combine two parallel Merges into one over pairs",
    )
