"""``repro.service`` — verification as a service.

An asyncio HTTP job server exposing the :class:`repro.api.Session` facade
over the wire: transforms, obligation discharges, simulations and
benchmark runs become *jobs* submitted to ``POST /v1/jobs``, executed on a
pool of worker Sessions, and returned in the versioned wire format of
:mod:`repro.results`.  Everything is standard library — ``asyncio`` plus a
minimal hand-rolled HTTP/1.1 layer — so the service adds no dependencies.

Pieces:

* :mod:`repro.service.ops` — the job-kind registry: each kind names a
  pure function ``(session, params) -> wire dict``, with canonical
  parameter normalisation so equivalent requests share one cache key;
* :mod:`repro.service.jobs` — :class:`Job` and the priority
  :class:`JobQueue` (bounded concurrency, per-job timeouts, cancellation);
* :mod:`repro.service.store` — the content-addressed
  :class:`ResultStore` deduplicating identical requests across clients
  and indexing simulation certificates by content hash;
* :mod:`repro.service.server` — :class:`ServiceServer`, the asyncio HTTP
  front end (``repro serve`` on the CLI);
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin blocking
  client used by the load test and the CI smoke check.

Quick tour::

    from repro.service import ServiceServer, ServiceClient

    # in one process (or: python -m repro.cli serve --port 8750)
    server = ServiceServer(port=8750, workers=4)
    server.run()          # blocks; POST /v1/admin/shutdown stops it

    # in another
    client = ServiceClient(port=8750)
    job = client.submit("bench", {"name": "matvec"})
    for status in client.watch(job["id"]):   # NDJSON status stream
        print(status["state"])
    result = client.result(job["id"])        # versioned wire dict
"""

from .client import ServiceClient
from .jobs import JOB_STATES, Job, JobQueue
from .ops import JOB_KINDS, canonical_params, run_op
from .server import ServiceServer
from .store import ResultStore

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "ResultStore",
    "ServiceClient",
    "ServiceServer",
    "canonical_params",
    "run_op",
]
