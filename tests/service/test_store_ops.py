"""ResultStore keys/dedupe/certificate index and the job-kind registry."""

import json

import pytest

from repro.errors import ServiceError
from repro.exec.cache import ResultCache
from repro.service.ops import JOB_KINDS, canonical_params
from repro.service.store import ResultStore, job_key


# -- canonical parameters -----------------------------------------------------


def test_kind_catalogue():
    assert JOB_KINDS == (
        "transform",
        "verify",
        "check_obligations",
        "sat_check",
        "simulate",
        "bench",
        "fuzz",
    )


def test_unknown_kind_rejected():
    with pytest.raises(ServiceError, match="unknown job kind"):
        canonical_params("explode", {})


def test_defaults_are_spelled_out_for_stable_keys():
    # omitting a default and spelling it must fingerprint identically
    short = canonical_params("transform", {"kernel": "matvec"})
    long = canonical_params("transform", {"kernel": "matvec", "strategy": "fixpoint"})
    assert short == long
    assert job_key("transform", short) == job_key("transform", long)

    sim_a = canonical_params("simulate", {"kernel": "mvt"})
    sim_b = canonical_params(
        "simulate", {"kernel": "mvt", "flow": "DF-OoO", "backend": "compiled"}
    )
    assert job_key("simulate", sim_a) == job_key("simulate", sim_b)


def test_different_params_different_keys():
    a = canonical_params("simulate", {"kernel": "mvt"})
    b = canonical_params("simulate", {"kernel": "mvt", "flow": "DF-IO"})
    assert job_key("simulate", a) != job_key("simulate", b)
    assert job_key("simulate", a) != job_key("bench", {"name": "mvt"})


@pytest.mark.parametrize(
    ("kind", "params", "match"),
    [
        ("transform", {}, "kernel|dot"),
        ("transform", {"kernel": "nope"}, "unknown benchmark"),
        ("transform", {"kernel": "matvec", "strategy": "magic"}, "strategy"),
        ("transform", {"kernel": "matvec", "dot": "x", "mark": {}}, "not both"),
        ("transform", {"dot": "digraph {}"}, "mark"),
        ("simulate", {"kernel": "matvec", "flow": "sideways"}, "flow"),
        ("simulate", {"kernel": "matvec", "backend": "quantum"}, "backend"),
        ("simulate", {"kernel": "matvec", "jobs": 4}, "unknown parameter"),
        ("bench", {}, "name"),
        ("bench", {"name": "matvec", "extra": 1}, "unknown parameter"),
        ("verify", {"rules": ["made_up_rule"]}, "unknown rule"),
        ("verify", {"rules": "mux_combine"}, "list"),
        ("check_obligations", {"rules": [42]}, "list"),
    ],
)
def test_invalid_params_rejected(kind, params, match):
    with pytest.raises(ServiceError, match=match):
        canonical_params(kind, params)


def test_verify_rules_are_sorted_and_deduped():
    params = canonical_params("verify", {"rules": ["ooo_loop", "mux_combine", "ooo_loop"]})
    assert params == {"rules": ["mux_combine", "ooo_loop"]}


def test_mark_normalisation_sorts_node_lists():
    base = {
        "dot": "digraph {}",
        "mark": {
            "mux_nodes": ["m2", "m1"],
            "branch_nodes": ["b1"],
            "init_node": "i",
            "cond_fork": "cf",
        },
    }
    swapped = json.loads(json.dumps(base))
    swapped["mark"]["mux_nodes"] = ["m1", "m2"]
    assert canonical_params("transform", base) == canonical_params("transform", swapped)


# -- the store ----------------------------------------------------------------


def test_store_round_trip_and_stats(tmp_path):
    store = ResultStore(cache_dir=tmp_path)
    key = store.key_for("bench", {"name": "matvec"})
    assert store.get(key) is None
    store.put(key, {"kind": "BenchmarkResult", "schema_version": 1})
    assert store.get(key) == {"kind": "BenchmarkResult", "schema_version": 1}
    stats = store.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1 and stats["writes"] == 1


def test_null_store_never_hits(tmp_path):
    store = ResultStore(use_cache=False)
    key = store.key_for("bench", {"name": "matvec"})
    store.put(key, {"x": 1})
    assert store.get(key) is None
    assert store.refresh_certificates() == 0


def test_certificate_index_finds_and_validates(tmp_path):
    from repro.refinement.checker import check_rewrite_obligation
    from repro.rewriting.rules import build_rewrite

    cache = ResultCache(tmp_path)
    rewrite = build_rewrite("repro.rewriting.rules.combine", "mux_combine", {})
    lhs, rhs, env, stimuli = next(iter(rewrite.obligation()))
    report = check_rewrite_obligation(lhs, rhs, env, stimuli, cache=cache)
    content_hash = report.certificate.content_hash()

    store = ResultStore(cache_dir=tmp_path)
    payload = store.certificate(content_hash)
    assert payload is not None
    assert payload["hash"] == content_hash
    assert store.certificate("0" * 64) is None


def test_certificate_tamper_rejected(tmp_path):
    from repro.refinement.checker import check_rewrite_obligation
    from repro.rewriting.rules import build_rewrite

    cache = ResultCache(tmp_path)
    rewrite = build_rewrite("repro.rewriting.rules.combine", "mux_combine", {})
    lhs, rhs, env, stimuli = next(iter(rewrite.obligation()))
    report = check_rewrite_obligation(lhs, rhs, env, stimuli, cache=cache)
    content_hash = report.certificate.content_hash()

    # flip payload bytes inside the stored binary container
    [path] = [p for p in tmp_path.glob("*/*.bin")]
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))

    store = ResultStore(cache_dir=tmp_path)
    assert store.certificate(content_hash) is None  # recheck-validation fails


def test_legacy_json_certificate_served_and_tamper_rejected(tmp_path):
    from repro.refinement.checker import check_rewrite_obligation
    from repro.rewriting.rules import build_rewrite

    cache = ResultCache(tmp_path)
    rewrite = build_rewrite("repro.rewriting.rules.combine", "mux_combine", {})
    lhs, rhs, env, stimuli = next(iter(rewrite.obligation()))
    report = check_rewrite_obligation(lhs, rhs, env, stimuli, cache=cache)
    content_hash = report.certificate.content_hash()

    # re-store as a legacy JSON entry (pre-format-2 stores wrote these)
    [bin_path] = [p for p in tmp_path.glob("*/*.bin")]
    key = bin_path.stem
    bin_path.unlink()
    cache.put(key, report.certificate.to_dict())

    store = ResultStore(cache_dir=tmp_path)
    payload = store.certificate(content_hash)
    assert payload is not None and payload["hash"] == content_hash
    # and its binary transcoding round-trips to the same hash
    from repro.refinement.codec import content_hash_of

    assert content_hash_of(store.certificate_bytes(content_hash)) == content_hash

    # flip a relation entry inside the stored entry, keeping valid JSON
    [path] = [p for p in tmp_path.glob("*/*.json") if key in p.name]
    entry = json.loads(path.read_text())
    entry["payload"]["relation"][0] = [999999, 999999]
    path.write_text(json.dumps(entry))

    fresh = ResultStore(cache_dir=tmp_path)
    assert fresh.certificate(content_hash) is None  # recheck-validation fails
