"""End-to-end property: random loops compile, transform, and still compute
the sequential semantics.

This is the fuzzing counterpart of the paper's correctness theorem: for
randomly generated (terminating) loop bodies, the DF-IO circuit, the
Graphiti-transformed circuit, and the DF-OoO circuit must all produce the
reference interpreter's results.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.components import default_environment
from repro.eval.runner import run_benchmark
from repro.hls.ir import (
    BinOp,
    Const,
    DoWhile,
    Expr,
    Kernel,
    OuterLoop,
    Program,
    Select,
    StoreOp,
    UnOp,
    Var,
)


@st.composite
def int_exprs(draw, depth=2):
    """Random integer expressions over the state variables a and n."""
    if depth == 0:
        return draw(
            st.sampled_from([Var("a"), Var("n"), Const(1), Const(2), Const(-1)])
        )
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return draw(int_exprs(depth=0))
    if choice == 1:
        op = draw(st.sampled_from(["add", "sub", "mul"]))
        return BinOp(op, draw(int_exprs(depth - 1)), draw(int_exprs(depth - 1)))
    if choice == 2:
        cond = BinOp("lt", draw(int_exprs(depth=0)), draw(int_exprs(depth=0)))
        return Select(cond, draw(int_exprs(depth - 1)), draw(int_exprs(depth - 1)))
    return BinOp("add", draw(int_exprs(depth - 1)), Const(draw(st.integers(-3, 3))))


def build_program(body_expr: Expr, points: int, start: int) -> Program:
    """A countdown loop with a fuzzed accumulator update."""
    loop = DoWhile(
        "fuzz",
        ("n", "a", "i"),
        {
            "n": BinOp("sub", Var("n"), Const(1)),
            "a": body_expr,
            "i": Var("i"),
        },
        BinOp("lt", Const(0), Var("n")),
        ("a", "i"),
    )
    kernel = Kernel(
        "fuzz",
        loop,
        (OuterLoop("i", points),),
        {"n": BinOp("add", Var("i"), Const(start)), "a": Var("i"), "i": Var("i")},
        (StoreOp("out", Var("i"), Var("a")),),
        tags=3,
    )
    return Program("fuzz", {"out": np.zeros(points, dtype=np.int64)}, [kernel])


class TestRandomLoops:
    @given(int_exprs(), st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_all_flows_compute_reference(self, body, points, start):
        program = build_program(body, points, start)
        result = run_benchmark("fuzz", program)
        for flow in ("DF-IO", "GRAPHITI", "DF-OoO"):
            assert result[flow].correct, f"{flow} diverged from the reference"

    @given(int_exprs(), st.integers(2, 3))
    @settings(max_examples=6, deadline=None)
    def test_graphiti_never_slower_than_sequential_by_much(self, body, points):
        """Tagging overhead is bounded: the transformed loop is within a
        constant factor of the in-order circuit even when it cannot win."""
        program = build_program(body, points, 2)
        result = run_benchmark("fuzz", program)
        assert result["GRAPHITI"].cycles <= 6 * result["DF-IO"].cycles
