"""Executable artifacts of the section 5 proof of the loop rewrite.

The paper proves 𝓘 ⊑ 𝓢 (the out-of-order loop refines the sequential loop)
through three pieces, each of which is made executable here on bounded
instances:

* **Lemma 5.1 (flushing)** — :func:`check_flushing_lemma`: from any state
  satisfying ω (everything empty except the input queue and the Init
  token), the sequential loop can run internal steps and then emit exactly
  ``fⁿ(i)`` for the next terminating input *i*.
* **Lemma 5.2 (state invariant)** — :func:`check_state_invariant`: the ψ
  predicate (*no-duplication* of tags, *in-order* tag allocation, and the
  *iterate* property that every in-flight value lies on the f-orbit of some
  accepted input) is preserved by every internal transition of the
  out-of-order loop.
* **Theorem 5.3 (refinement)** — :func:`check_loop_refinement`: the weak
  simulation 𝓘 ⊑ 𝓢 itself, decided by the simulation game.

The state of a denoted graph is a right-nested tuple following the
canonical lowering order; :func:`state_accessors` recovers a per-component
view, which is what lets ω and ψ be written as honest state predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.environment import Environment
from ..core.exprhigh import ExprHigh
from ..core.module import Module, State, Value
from ..core.ports import IOPort
from ..core.semantics import denote
from ..errors import RefinementError
from ..rewriting.rules.loop_rewrite import ooo_loop_rhs, sequential_loop_concrete
from .simulation import find_weak_simulation


def state_accessors(graph: ExprHigh) -> dict[str, Callable[[State], State]]:
    """Per-node component-state accessors for a denoted graph.

    ``graph.lower()`` folds nodes in sorted order into a right-nested
    product, so the module state is ``(s₀, (s₁, (s₂, ...)))``; connects do
    not change the state shape.
    """
    order = sorted(graph.nodes)

    def make(index: int, last: bool) -> Callable[[State], State]:
        def access(state: State) -> State:
            current = state
            for _ in range(index):
                current = current[1]  # type: ignore[index]
            if not last:
                current = current[0]  # type: ignore[index]
            return current

        return access

    return {
        name: make(index, index == len(order) - 1)
        for index, name in enumerate(order)
    }


def orbit(fn: Callable, value: Value, bound: int = 64) -> list[Value]:
    """The f-orbit of *value*: every loop value, including the final output.

    ``orbit(f, i) = [i, f(i), f²(i), ..., o]`` where ``fⁿ(i) = (o, false)``.
    """
    values = [value]
    current = value
    for _ in range(bound):
        result, cont = fn(current)
        values.append(result)
        if not cont:
            return values
        current = result
    raise RefinementError(f"loop input {value!r} did not terminate within {bound} steps")


# -- the sequential loop: ω and lemma 5.1 -------------------------------------


@dataclass
class SequentialLoop:
    """The concrete sequential loop (lhs of fig. 3d) with its accessors."""

    graph: ExprHigh
    module: Module
    accessors: dict[str, Callable[[State], State]]

    @staticmethod
    def build(fn_name: str, env: Environment) -> "SequentialLoop":
        graph = sequential_loop_concrete(fn_name)
        module = denote(graph.lower(), env)
        return SequentialLoop(graph, module, state_accessors(graph))

    def omega(self, state: State) -> bool:
        """ω: every queue empty except the input queue and the Init token.

        The single ``false`` token steering the Mux to its external input
        may rest anywhere along the condition path — the Fork's init-side
        queue, the Init queue, or the Mux's condition queue — because the
        connect transitions are free to fire eagerly.  ω accepts any of the
        quiescent placements.
        """
        mux = self.accessors["mx"](state)
        cond_q, true_q, false_q = mux  # false_q is the external-input queue
        if true_q:
            return False
        if self.accessors["body"](state) != ((),):
            return False
        if self.accessors["sp"](state) != ((), ()):
            return False
        fork_branch_q, fork_init_q = self.accessors["fk"](state)
        if fork_branch_q:
            return False
        if self.accessors["br"](state) != ((), ()):
            return False
        (init_q,) = self.accessors["ini"](state)
        steering_tokens = tuple(fork_init_q) + tuple(init_q) + tuple(cond_q)
        return steering_tokens == (False,)

    def input_queue(self, state: State) -> tuple:
        return self.accessors["mx"](state)[2]


def check_flushing_lemma(
    fn_name: str,
    env: Environment,
    inputs: Iterable[Value],
    max_steps: int = 10_000,
) -> int:
    """Lemma 5.1, executed: returns the number of inputs checked.

    For each terminating input *i*: enqueue it into an ω state, run internal
    transitions, and confirm the loop emits exactly ``fⁿ(i)`` and returns to
    an ω state.  Raises :class:`RefinementError` otherwise.
    """
    loop = SequentialLoop.build(fn_name, env)
    fn = env.function(fn_name)
    checked = 0
    for value in inputs:
        final = orbit(fn.fn, value)[-1]

        (start,) = loop.module.init
        if not loop.omega(start):
            raise RefinementError("initial state does not satisfy ω")
        states = list(loop.module.inputs[IOPort(0)].fire(start, value))
        if len(states) != 1:
            raise RefinementError("input transition was not deterministic")
        current = {states[0]}
        emitted: set[Value] = set()
        out = loop.module.outputs[IOPort(0)]
        seen: set[State] = set()
        frontier = list(current)
        while frontier:
            state = frontier.pop()
            if state in seen:
                continue
            seen.add(state)
            if len(seen) > max_steps:
                raise RefinementError("flushing exploration exceeded the step bound")
            for out_value, after in out.fire(state):
                emitted.add(out_value)
                if not loop.omega(after):
                    raise RefinementError(
                        f"after emitting {out_value!r}, ω does not hold: {after!r}"
                    )
            frontier.extend(loop.module.internal_steps(state))
        if emitted != {final}:
            raise RefinementError(
                f"flushing input {value!r}: expected output {{{final!r}}}, got {emitted!r}"
            )
        checked += 1
    return checked


# -- the out-of-order loop: ψ and lemma 5.2 ------------------------------------


@dataclass
class OutOfOrderLoop:
    """The concrete tagged loop (rhs of fig. 3d) with its accessors."""

    graph: ExprHigh
    module: Module
    accessors: dict[str, Callable[[State], State]]
    fn: Callable
    inputs: tuple[Value, ...]

    @staticmethod
    def build(fn_name: str, env: Environment, tags: int, inputs: Iterable[Value]) -> "OutOfOrderLoop":
        graph = ooo_loop_rhs(fn_name, tags)
        module = denote(graph.lower(), env)
        return OutOfOrderLoop(
            graph, module, state_accessors(graph), env.function(fn_name).fn, tuple(inputs)
        )

    def tagged_values(self, state: State) -> list[tuple[int, Value]]:
        """Every (tag, value) pair in flight inside the tagged region."""
        pairs: list[tuple[int, Value]] = []
        tagger = self.accessors["tg"](state)
        _, out_q, done = tagger
        pairs.extend(out_q)
        pairs.extend(done)
        merge = self.accessors["mg"](state)
        pairs.extend(merge[0])
        pairs.extend(merge[1])
        pairs.extend(self.accessors["body"](state)[0])
        branch = self.accessors["br"](state)
        pairs.extend(branch[1])  # data queue holds (tag, value)
        # The split and branch condition queues carry (tag, (v, bool)) or
        # (tag, bool); normalise to (tag, payload) for tag accounting.
        split = self.accessors["sp"](state)
        pairs.extend(split[0])
        pairs.extend(split[1])
        pairs.extend(branch[0])
        return [p for p in pairs if isinstance(p, tuple) and len(p) == 2]

    def psi(self, state: State) -> bool:
        """ψ: no-duplication + in-order + iterate (section 5.2)."""
        tagger = self.accessors["tg"](state)
        order, out_q, done = tagger
        # In-order: the allocation queue holds distinct, allocated tags.
        if len(set(order)) != len(order):
            return False
        pairs = self.tagged_values(state)
        # No-duplication, refined: a tag may appear several times while its
        # token is mid-flight through a Split (value and condition travel
        # separately), but never twice in the same queue with conflicting
        # payloads, and only for allocated tags.
        for tag, _ in pairs:
            if tag not in order:
                return False
        # Iterate: every in-flight data value lies on the orbit of some input.
        orbits = []
        for value in self.inputs:
            orbits.extend(orbit(self.fn, value))
        allowed = set(orbits)
        for tag, payload in pairs:
            candidate = payload
            if isinstance(candidate, tuple) and len(candidate) == 2 and isinstance(candidate[1], bool):
                candidate = candidate[0]  # (value, continue?) pair after the body
            if isinstance(candidate, bool):
                continue  # a condition token
            if candidate not in allowed:
                return False
        return True


def check_state_invariant(
    fn_name: str,
    env: Environment,
    inputs: Iterable[Value],
    tags: int = 2,
    limit: int = 200_000,
) -> int:
    """Lemma 5.2, executed: ψ is preserved by every internal transition.

    Explores every reachable state of the out-of-order loop under the given
    inputs and checks ψ on each internal successor.  Returns the number of
    states visited.
    """
    loop = OutOfOrderLoop.build(fn_name, env, tags, inputs)
    stimuli = {IOPort(0): tuple(inputs)}

    seen: set[State] = set()
    frontier = list(loop.module.init)
    for state in frontier:
        if not loop.psi(state):
            raise RefinementError("ψ fails on an initial state")
    seen.update(frontier)
    while frontier:
        state = frontier.pop()
        successors: list[State] = []
        for value in stimuli[IOPort(0)]:
            successors.extend(loop.module.inputs[IOPort(0)].fire(state, value))
        for _, nxt in loop.module.outputs[IOPort(0)].fire(state):
            successors.append(nxt)
        internal_successors = list(loop.module.internal_steps(state))
        for nxt in internal_successors:
            if not loop.psi(nxt):
                raise RefinementError(
                    f"ψ violated by an internal step from {state!r} to {nxt!r}"
                )
        successors.extend(internal_successors)
        for nxt in successors:
            if nxt not in seen:
                seen.add(nxt)
                if len(seen) > limit:
                    raise RefinementError("state invariant exploration exceeded the limit")
                frontier.append(nxt)
    return len(seen)


# -- theorem 5.3 ----------------------------------------------------------------


def check_loop_refinement(
    fn_name: str,
    env: Environment,
    inputs: Iterable[Value],
    tags: int = 2,
):
    """Theorem 5.3, decided on the bounded instance: 𝓘 ⊑ 𝓢."""
    impl = denote(ooo_loop_rhs(fn_name, tags).lower(), env)
    spec = denote(sequential_loop_concrete(fn_name).lower(), env.with_capacity(4))
    stimuli = {IOPort(0): tuple(inputs)}
    result = find_weak_simulation(impl, spec, stimuli)
    return result.raise_on_failure()
