"""The common result protocol.

Every user-facing result object — :class:`~repro.rewriting.pipeline.TransformResult`,
:class:`~repro.refinement.checker.RefinementReport`,
:class:`~repro.eval.runner.FlowResult` (and its aggregate
:class:`~repro.eval.runner.BenchmarkResult`) — implements the same two
methods, so the CLI, the cache serialiser and the report generators handle
them uniformly instead of special-casing each type:

* ``to_dict()`` — a JSON-serialisable dict, always carrying a ``"kind"``
  discriminator;
* ``summary()`` — a one-line human-readable digest.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .errors import GraphitiError


@runtime_checkable
class Result(Protocol):
    """Anything with a dict form and a one-line summary."""

    def to_dict(self) -> dict: ...

    def summary(self) -> str: ...


def as_dict(result: object) -> dict:
    """``result.to_dict()``, with a clear error for non-conforming objects."""
    if not isinstance(result, Result):
        raise GraphitiError(
            f"{type(result).__name__} does not implement the result protocol "
            "(to_dict/summary)"
        )
    return result.to_dict()


def summarize(result: object) -> str:
    """``result.summary()``, with a clear error for non-conforming objects."""
    if not isinstance(result, Result):
        raise GraphitiError(
            f"{type(result).__name__} does not implement the result protocol "
            "(to_dict/summary)"
        )
    return result.summary()
