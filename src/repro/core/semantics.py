"""Denotation of ExprLow expressions into modules (section 4.5).

The denotation ⟦e⟧ε is a structural fold:

* a base component looks its module up in the environment and renames its
  canonical ports through the component's port maps;
* a product denotes to the ⊎ of the two sub-denotations;
* a connect denotes to the ``[o ⇝ i]`` combinator.
"""

from __future__ import annotations

from ..errors import SemanticsError
from .environment import Environment
from .exprlow import Base, Connect, ExprLow, Product
from .module import Module, connect_ports, product, rename


def denote(expr: ExprLow, env: Environment) -> Module:
    """Compute ⟦expr⟧env."""
    if isinstance(expr, Base):
        module = env.lookup(expr.typ)
        if set(module.inputs) != set(expr.inputs):
            raise SemanticsError(
                f"component {expr.typ!r}: port map covers {sorted(map(str, expr.inputs))} "
                f"but the module has inputs {sorted(map(str, module.inputs))}"
            )
        if set(module.outputs) != set(expr.outputs):
            raise SemanticsError(
                f"component {expr.typ!r}: port map covers {sorted(map(str, expr.outputs))} "
                f"but the module has outputs {sorted(map(str, module.outputs))}"
            )
        return rename(module, expr.inputs, expr.outputs)
    if isinstance(expr, Product):
        return product(denote(expr.left, env), denote(expr.right, env))
    if isinstance(expr, Connect):
        return connect_ports(denote(expr.expr, env), expr.output, expr.input)
    raise SemanticsError(f"cannot denote expression of type {type(expr).__name__}")
