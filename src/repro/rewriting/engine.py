"""The rewriting engine: obligation checking, application, fixpoints.

The engine drives rewrites the way figure 1 of the paper describes: pick a
rewrite, run its matcher on the ExprHigh graph, apply it through ExprLow,
lift the result back, repeat.  Every application is logged; rewrites whose
refinement obligation has been discharged are tagged ``verified`` in the
log, so a pipeline's output carries the same guarantee structure as the
paper's (a verified core rewrite within a partially-unverified pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Sequence

from ..core.exprhigh import ExprHigh
from ..errors import RefinementError, RewriteError
from ..refinement.checker import check_rewrite_obligation
from .apply import Application, apply_rewrite
from .matcher import find_matches, first_match
from .rewrite import Match, Rewrite


@dataclass
class EngineStats:
    """Counters describing a rewriting run (cf. section 6.3)."""

    rewrites_applied: int = 0
    matches_tried: int = 0
    seconds: float = 0.0
    per_rewrite: dict[str, int] = field(default_factory=dict)


class RewriteEngine:
    """Applies rewrites and tracks provenance and statistics."""

    def __init__(self, check_obligations: bool = False, cache=None):
        self.check_obligations = check_obligations
        self.cache = cache  # a repro.exec cache (ResultCache/NullCache), or None
        self.log: list[Application] = []
        self.stats = EngineStats()
        self._discharged: set[str] = set()

    # -- obligation discharge -------------------------------------------------

    def verify_rewrite(self, rewrite: Rewrite) -> bool:
        """Discharge the rewrite's refinement obligation on its instances.

        Returns True when every bounded instance of ``rhs ⊑ lhs`` holds;
        raises :class:`RefinementError` on a counterexample.  Results are
        cached per rewrite name within this engine, and — when the engine
        was given a result cache — across processes keyed by the content of
        the obligation instances, so an already-discharged obligation is
        never re-simulated.
        """
        if rewrite.name in self._discharged:
            return True
        if rewrite.obligation is None:
            raise RefinementError(
                f"rewrite {rewrite.name!r} has no obligation instances to check"
            )
        instances = list(rewrite.obligation())
        key = None
        if self.cache is not None:
            from ..exec.hashing import obligation_fingerprint

            key = obligation_fingerprint(rewrite.name, instances)
            entry = self.cache.get(key)
            if isinstance(entry, dict) and entry.get("holds"):
                self._discharged.add(rewrite.name)
                return True
        for lhs, rhs, env, stimuli in instances:
            check_rewrite_obligation(lhs, rhs, env, stimuli)
        if key is not None:
            self.cache.put(key, {"holds": True, "rewrite": rewrite.name})
        self._discharged.add(rewrite.name)
        return True

    # -- application ----------------------------------------------------------

    def apply_once(self, graph: ExprHigh, rewrite: Rewrite) -> ExprHigh | None:
        """Apply *rewrite* at its first match; None when it does not match."""
        start = perf_counter()
        try:
            if self.check_obligations and rewrite.verified and rewrite.obligation is not None:
                self.verify_rewrite(rewrite)
            match = first_match(graph, rewrite)
            self.stats.matches_tried += 1
            if match is None:
                return None
            new_graph, application = apply_rewrite(graph, rewrite, match)
            self.log.append(application)
            self.stats.rewrites_applied += 1
            self.stats.per_rewrite[rewrite.name] = self.stats.per_rewrite.get(rewrite.name, 0) + 1
            return new_graph
        finally:
            self.stats.seconds += perf_counter() - start

    def apply_at(self, graph: ExprHigh, rewrite: Rewrite, match: Match) -> ExprHigh:
        """Apply *rewrite* at a specific, externally chosen match."""
        start = perf_counter()
        try:
            if self.check_obligations and rewrite.verified and rewrite.obligation is not None:
                self.verify_rewrite(rewrite)
            new_graph, application = apply_rewrite(graph, rewrite, match)
            self.log.append(application)
            self.stats.rewrites_applied += 1
            self.stats.per_rewrite[rewrite.name] = self.stats.per_rewrite.get(rewrite.name, 0) + 1
            return new_graph
        finally:
            self.stats.seconds += perf_counter() - start

    def apply_exhaustively(
        self,
        graph: ExprHigh,
        rewrites: Sequence[Rewrite],
        max_steps: int = 10_000,
    ) -> ExprHigh:
        """Apply the given rewrites to fixpoint, first-match-first order.

        This is the "exhaustively apply the applicable rewrites in that
        phase" strategy of section 3.1.  Raises :class:`RewriteError` when
        *max_steps* applications do not reach a fixpoint (a diverging rule
        set).
        """
        for _ in range(max_steps):
            for rewrite in rewrites:
                new_graph = self.apply_once(graph, rewrite)
                if new_graph is not None:
                    graph = new_graph
                    break
            else:
                return graph
        raise RewriteError(
            f"no fixpoint after {max_steps} rewrite applications; "
            f"rule set {[r.name for r in rewrites]} may diverge"
        )

    def matches(self, graph: ExprHigh, rewrite: Rewrite) -> Iterable[Match]:
        return find_matches(graph, rewrite)

    def verified_fraction(self) -> float:
        """Fraction of logged applications that used verified rewrites."""
        if not self.log:
            return 1.0
        return sum(1 for a in self.log if a.verified) / len(self.log)
