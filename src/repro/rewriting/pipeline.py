"""The five-phase Graphiti transformation pipeline (section 3.1).

Given a compiled kernel and its loop mark (the oracle information), the
pipeline applies:

1. **Normalize** — exhaustively combine Muxes and Branches sharing forked
   conditions (fig. 3a).
2. **Eliminate** — exhaustively cancel Split/Join pairs and sunk Forks
   introduced by phase 1 (fig. 3b), then drop identity wires.
3. **Purify** — compose the loop body into a single Pure component using
   the e-graph oracle (fig. 5, section 3.2); *refuses effectful bodies*,
   which is what catches the bicg bug of section 6.2.
4. **Reorder** — apply the main out-of-order loop rewrite (fig. 3d).
5. **Expand** — splice the saved body back in tagged form, undoing the
   Pure generation.

The engine log records which applications were backed by a discharged
refinement obligation, mirroring the paper's verified-core/unverified-minor
split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..core.environment import Environment
from ..core.exprhigh import Endpoint, ExprHigh, NodeSpec
from ..errors import GraphitiError, RewriteError
from ..hls.area import CircuitCost, circuit_cost
from .engine import RewriteEngine
from .purify import PurityError, discover_region, purify_rewrite
from .rewrite import Match, Rewrite
from .rules import combine, loop_rewrite, reduction
from .saturate import (
    STRATEGIES,
    ParetoPoint,
    SaturationBudget,
    SaturationStats,
    extract_pareto,
    saturate_graph,
    saturation_rewrites,
)
from ..components import split as split_spec


@dataclass
class TransformResult:
    """Outcome of running the pipeline on one kernel graph.

    Under ``strategy="saturate"`` the result additionally carries the
    extracted Pareto frontier: ``graph`` is the best-cost point, ``pareto``
    lists every non-dominated variant, and ``fixpoint_cost`` is the
    destructive baseline's cost for comparison.
    """

    graph: ExprHigh
    transformed: bool
    refusal: str | None = None
    rewrites_applied: int = 0
    composition_steps: int = 0
    verified_applications: int = 0
    strategy: str = "fixpoint"
    pareto: list[ParetoPoint] = field(default_factory=list)
    best_cost: CircuitCost | None = None
    fixpoint_cost: CircuitCost | None = None
    saturation: dict | None = None

    @property
    def total_steps(self) -> int:
        return self.rewrites_applied + self.composition_steps

    # -- result protocol / wire format (repro.results) -----------------------

    def to_dict(self) -> dict:
        """Versioned wire form: the full graph travels as canonical dot text.

        ``graph_dot`` makes the dict a complete round-trippable record —
        :meth:`from_dict` rebuilds the circuit — which is what lets the
        verification service return transform results over HTTP.
        """
        from ..dot import print_dot
        from ..results import SCHEMA_VERSION

        data = {
            "kind": "TransformResult",
            "schema_version": SCHEMA_VERSION,
            "strategy": self.strategy,
            "transformed": bool(self.transformed),
            "refusal": self.refusal,
            "rewrites_applied": int(self.rewrites_applied),
            "composition_steps": int(self.composition_steps),
            "verified_applications": int(self.verified_applications),
            "nodes": len(self.graph.nodes),
            "graph_dot": print_dot(self.graph),
        }
        if self.pareto:
            data["pareto"] = [point.to_dict() for point in self.pareto]
        if self.best_cost is not None:
            data["best_cost"] = self.best_cost.to_dict()
        if self.fixpoint_cost is not None:
            data["fixpoint_cost"] = self.fixpoint_cost.to_dict()
        if self.saturation is not None:
            data["saturation"] = self.saturation
        return data

    @staticmethod
    def from_dict(data: dict) -> "TransformResult":
        """Rebuild a result (graph included) from its wire dict.

        Raises :class:`~repro.errors.ResultSchemaError` on a missing or
        unknown ``schema_version`` or the wrong ``kind``.
        """
        from ..dot import parse_dot
        from ..errors import ResultSchemaError
        from ..results import check_schema
        from .saturate import ParetoPoint

        entry = check_schema(data, "TransformResult")
        try:
            graph = parse_dot(entry["graph_dot"])
            return TransformResult(
                graph=graph,
                transformed=bool(entry["transformed"]),
                refusal=entry.get("refusal"),
                rewrites_applied=int(entry["rewrites_applied"]),
                composition_steps=int(entry["composition_steps"]),
                verified_applications=int(entry["verified_applications"]),
                strategy=str(entry["strategy"]),
                pareto=[ParetoPoint.from_dict(p) for p in entry.get("pareto", [])],
                best_cost=(
                    CircuitCost.from_dict(entry["best_cost"])
                    if "best_cost" in entry else None
                ),
                fixpoint_cost=(
                    CircuitCost.from_dict(entry["fixpoint_cost"])
                    if "fixpoint_cost" in entry else None
                ),
                saturation=entry.get("saturation"),
            )
        except (KeyError, TypeError, ValueError, GraphitiError) as exc:
            if isinstance(exc, ResultSchemaError):
                raise
            raise ResultSchemaError(
                f"malformed TransformResult wire dict: {exc}"
            ) from exc

    def summary(self) -> str:
        if self.strategy == "saturate" and self.pareto:
            base = (
                f"saturated to a {len(self.pareto)}-point pareto frontier, "
                f"best (area={self.best_cost.area}, cycles={self.best_cost.cycles})"
            )
            if not self.transformed:
                base += f"; ooo reorder refused: {self.refusal}"
            return base
        if not self.transformed:
            return f"refused: {self.refusal}"
        return (
            f"applied {self.rewrites_applied} rewrites "
            f"(+{self.composition_steps} composition steps), "
            f"{self.verified_applications} verified applications"
        )


@dataclass
class GraphitiPipeline:
    """Drives the verified rewriting flow of figure 1 over kernel graphs.

    With *check_obligations* every verified rewrite's refinement obligation
    is discharged (once, cached) before its first application; with
    *check_types* the output graph must be well-typed in the section 6.3
    sense (every connection joins ports of one deducible type).
    """

    env: Environment
    check_obligations: bool = False
    check_types: bool = False
    cache: object | None = None  # a repro.exec result cache for obligation discharges
    use_worklist: bool = True  # dirty-region fixpoints; False forces whole-graph scans
    strategy: str = "fixpoint"
    budget: SaturationBudget | None = None  # saturate-strategy exploration limits
    engine: RewriteEngine = field(init=False)
    saturation_stats: SaturationStats = field(init=False)

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise RewriteError(
                f"unknown strategy {self.strategy!r}; expected one of "
                f"{', '.join(STRATEGIES)}"
            )
        self.engine = RewriteEngine(check_obligations=self.check_obligations, cache=self.cache)
        self.saturation_stats = SaturationStats()

    # -- public API ---------------------------------------------------------

    def transform_kernel(self, graph: ExprHigh, mark) -> TransformResult:
        """Transform the marked loop per the configured strategy.

        ``"fixpoint"`` runs the destructive five-phase flow; ``"saturate"``
        additionally explores the rewrite closure of the kernel (seeded
        with both the input and the fixpoint output) and extracts the
        (area, cycles) Pareto frontier — see :meth:`_transform_saturate`.
        """
        if self.strategy == "saturate":
            return self._transform_saturate(graph, mark)
        return self._transform_fixpoint(graph, mark)

    def _transform_fixpoint(self, graph: ExprHigh, mark) -> TransformResult:
        """Make the marked loop out-of-order; refuse when unsound."""
        if mark.effectful:
            obs.count("pipeline.refusals")
            return TransformResult(
                graph=graph,
                transformed=False,
                refusal=(
                    "loop body performs stores; reordering iterations would "
                    "permute the memory write order (the bicg case)"
                ),
            )
        with obs.span("pipeline:transform", kernel=mark.kernel, nodes=len(graph.nodes)) as root:
            working = graph.copy()
            start_count = self.engine.stats.rewrites_applied

            # Phase 1: combine steering.
            with obs.span("phase:normalize"):
                working = self.engine.apply_exhaustively(
                    working,
                    [combine.mux_combine(), combine.branch_combine()],
                    use_worklist=self.use_worklist,
                )
            # Phase 2: eliminate leftovers.  Identity-wire removal exposes new
            # Split/Join adjacencies, so the two interleave to a fixpoint.
            cleanup = [
                reduction.split_join_elim(),
                reduction.fork_sink_elim(),
                reduction.pure_id_elim(),
            ]
            with obs.span("phase:eliminate"):
                while True:
                    applied_before = self.engine.stats.rewrites_applied
                    working = self.engine.apply_exhaustively(
                        working, cleanup, use_worklist=self.use_worklist
                    )
                    nodes_before = len(working.nodes)
                    working = remove_identity_wires(working)
                    if (
                        self.engine.stats.rewrites_applied == applied_before
                        and len(working.nodes) == nodes_before
                    ):
                        break

            # Phase 3: purify the loop body.
            with obs.span("phase:purify") as purify_span:
                mux = _single_node(working, "Mux")
                branch = _single_node(working, "Branch")
                init_node = _single_node(working, "Init")
                cond_fork_src = working.source_of(init_node, "in0")
                if cond_fork_src is None:
                    raise RewriteError("loop Init is not fed by a condition fork")
                cond_fork = cond_fork_src.node
                try:
                    region = discover_region(working, mux, branch, cond_fork)
                    rewrite, match, steps = purify_rewrite(working, region, self.env)
                except PurityError as exc:
                    obs.count("pipeline.refusals")
                    purify_span.set(refused=True)
                    return TransformResult(graph=graph, transformed=False, refusal=str(exc))
                purify_span.set(composition_steps=steps)
                saved_body = rewrite.lhs  # the region subgraph, kept for phase 5
                working = self.engine.apply_at(working, rewrite, match)

            # Phase 4: the main out-of-order rewrite.
            with obs.span("phase:reorder"):
                ooo = loop_rewrite.ooo_loop(tags=mark.tags)
                transformed = self.engine.apply_once(working, ooo)
                if transformed is None:
                    raise RewriteError("normalized loop did not match the ooo-loop pattern")
                working = transformed

            # Phase 5: expand the Pure body back into tagged components.
            with obs.span("phase:expand"):
                working = self._expand_body(working, saved_body)

            if self.check_types:
                from ..core.typecheck import typecheck

                typecheck(working)

            applied = self.engine.stats.rewrites_applied - start_count
            verified = sum(1 for a in self.engine.log if a.verified)
            obs.count("pipeline.transforms")
            root.set(rewrites_applied=applied)
            return TransformResult(
                graph=working,
                transformed=True,
                rewrites_applied=applied,
                composition_steps=steps,
                verified_applications=verified,
            )

    # -- the saturate strategy -------------------------------------------------

    def _transform_saturate(self, graph: ExprHigh, mark) -> TransformResult:
        """Equality saturation around the fixpoint baseline.

        The destructive pipeline runs first: its output (when it does not
        refuse) seeds the exploration alongside the input graph, so the
        extracted best point costs no more than the fixpoint circuit *by
        construction* — saturation can only add cheaper variants.  On a
        refusal (the bicg case) exploration proceeds over the input alone
        with the structural rule set, which never reorders iterations, so
        the frontier stays sound for effectful loops too.
        """
        with obs.span(
            "pipeline:saturate", kernel=mark.kernel, nodes=len(graph.nodes)
        ) as root:
            fix = self._transform_fixpoint(graph, mark)
            fixpoint_cost = circuit_cost(fix.graph)
            stats = SaturationStats()
            seeds = [fix.graph] if fix.transformed else []
            with obs.span("phase:saturate"):
                states, _, stats = saturate_graph(
                    graph,
                    saturation_rewrites(tags=mark.tags),
                    budget=self.budget,
                    stats=stats,
                    extra_seeds=seeds,
                )
            with obs.span("phase:extract"):
                points = extract_pareto(states, stats)
            if self.check_obligations:
                with obs.span("phase:certify", points=len(points)):
                    self._certify_points(points, stats)
            best = min(points, key=lambda p: (p.cost.time, p.cost.area, p.order))
            self.saturation_stats.merge(stats)
            obs.count("pipeline.saturations")
            root.set(frontier=len(points), states=stats.states)
            return TransformResult(
                graph=best.graph,
                transformed=fix.transformed,
                refusal=fix.refusal,
                rewrites_applied=fix.rewrites_applied,
                composition_steps=fix.composition_steps,
                verified_applications=fix.verified_applications,
                strategy="saturate",
                pareto=points,
                best_cost=best.cost,
                fixpoint_cost=fixpoint_cost,
                saturation=stats.to_dict(),
            )

    def _certify_points(self, points: list[ParetoPoint], stats: SaturationStats) -> None:
        """Discharge every obligation behind each extracted circuit.

        Each Pareto point is a replayed rewrite sequence; its guarantee is
        the conjunction of the per-rewrite refinement obligations along the
        derivation.  Obligations route through
        :func:`~repro.refinement.checker.check_rewrite_obligation` with the
        pipeline's result cache, so warm runs re-validate stored
        certificates (``mode="recheck"``) instead of re-solving the
        simulation games.  Mirroring the engine, only ``verified`` rewrites
        carry a dischargeable obligation — the unverified minor rewrites
        (the paper's figures 3a-3c limitation note) participate without
        blocking certification, exactly as on the fixpoint path.
        Derivation steps of the fixpoint-seeded points were already
        discharged by the engine during the fixpoint run.
        """
        from time import perf_counter

        from ..refinement.checker import RefinementError, check_rewrite_obligation

        start = perf_counter()
        discharged: dict[str, bool] = {}
        by_name = {r.name: r for r in saturation_rewrites()}
        for point in points:
            certified = True
            for name in set(point.derivation):
                holds = discharged.get(name)
                if holds is None:
                    rewrite = by_name[name]
                    holds = True
                    if rewrite.verified and rewrite.obligation is not None:
                        for lhs, rhs, env, stimuli in rewrite.obligation():
                            try:
                                report = check_rewrite_obligation(
                                    lhs, rhs, env, stimuli, cache=self.cache
                                )
                            except RefinementError:
                                # A failed obligation poisons every point
                                # using this rewrite, not the whole run.
                                holds = False
                                obs.count("saturation.certify_failed")
                                break
                            obs.count(f"saturation.certify_{report.mode}")
                    discharged[name] = holds
                certified = certified and holds
            point.certified = certified
            if certified:
                stats.certified_points += 1
        stats.certify_seconds += perf_counter() - start

    # -- phase 5 ---------------------------------------------------------------

    def _expand_body(self, graph: ExprHigh, saved_body: ExprHigh) -> ExprHigh:
        """Replace the tagged ``Pure; Split`` pair with the saved tagged body.

        *saved_body* is the purify rewrite's lhs: the original region with
        its internal connections and interface marks.  Expansion re-creates
        it with ``tagged=true`` on every value-transforming component, the
        reverse of Pure generation (phase 5 of section 3.1).
        """
        pure_nodes = [
            name
            for name in graph.nodes_of_type("Pure")
            if graph.nodes[name].param("tagged") is True
        ]
        if len(pure_nodes) != 1:
            raise RewriteError(f"expected one tagged Pure body, found {pure_nodes}")
        body = pure_nodes[0]
        fn = str(graph.nodes[body].param("fn"))
        split_sinks = graph.sinks_of(body, "out0")
        if len(split_sinks) != 1 or graph.nodes[split_sinks[0].node].typ != "Split":
            raise RewriteError("tagged Pure body is not followed by the loop Split")
        split_name = split_sinks[0].node

        lhs = ExprHigh()
        lhs.add_node("body", NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": fn, "tagged": True}))
        lhs.add_node("sp", split_spec(tagged=True))
        lhs.connect("body", "out0", "sp", "in0")
        lhs.mark_input(0, "body", "in0")
        lhs.mark_output(0, "sp", "out0")
        lhs.mark_output(1, "sp", "out1")

        def rhs(match: Match) -> ExprHigh:
            replacement = ExprHigh()
            for name, spec in saved_body.nodes.items():
                replacement.add_node(name, _tagged_spec(spec))
            for dst, src in saved_body.connections.items():
                replacement.connect(src.node, src.port, dst.node, dst.port)
            for index, endpoint in saved_body.inputs.items():
                replacement.mark_input(index, endpoint.node, endpoint.port)
            for index, endpoint in saved_body.outputs.items():
                replacement.mark_output(index, endpoint.node, endpoint.port)
            return replacement

        expand = Rewrite(
            name="expand-body",
            lhs=lhs,
            rhs=rhs,
            verified=False,
            description="Pure body expanded back into tagged components (phase 5)",
        )
        match = Match(
            nodes={"body": body, "sp": split_name},
            params={},
            inputs={0: Endpoint(body, "in0")},
            outputs={0: Endpoint(split_name, "out0"), 1: Endpoint(split_name, "out1")},
            host_specs={body: graph.nodes[body], split_name: graph.nodes[split_name]},
        )
        return self.engine.apply_at(graph, expand, match)


def _tagged_spec(spec: NodeSpec) -> NodeSpec:
    if spec.typ in ("Operator", "Pure", "Join", "Split"):
        return spec.with_params(tagged=True)
    return spec


def _single_node(graph: ExprHigh, typ: str) -> str:
    nodes = graph.nodes_of_type(typ)
    if len(nodes) != 1:
        raise RewriteError(f"expected exactly one {typ} after normalization, found {nodes}")
    return nodes[0]


def remove_identity_wires(graph: ExprHigh) -> ExprHigh:
    """Drop untagged ``Pure{fn=id}`` nodes, fusing their connections.

    A pure identity over an elastic channel is a wire; removing it deletes
    one queue, which only removes behaviours.  This is an (unverified)
    hygiene pass, the analogue of Dynamatic's wire cleanups.
    """
    result = graph.copy()
    for name in list(result.nodes_of_type("Pure")):
        spec = result.nodes.get(name)
        if spec is None or spec.param("fn") != "id":
            continue
        if spec.param("tagged") is True:
            continue
        source = result.source_of(name, "in0")
        sinks = result.sinks_of(name, "out0")
        if source is None or len(sinks) != 1:
            continue
        sink = sinks[0]
        result.remove_node(name)
        result.connect(source.node, source.port, sink.node, sink.port)
    return result
