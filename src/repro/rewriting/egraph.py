"""An e-graph with equality saturation over the function algebra.

Section 3.2 of the paper uses egg as an oracle to find the order in which
Split/Join associativity, commutativity and elimination rewrites collapse
the residual Split–Join network.  This module plays the same role over the
combinator terms of :mod:`repro.rewriting.algebra`: the region purifier
composes a (possibly clumsy) term for the loop body and asks
:func:`simplify` for the smallest equivalent term under the pairing laws.

The implementation is a classic e-graph: hash-consed e-nodes over e-class
ids with union-find and congruence closure, rule application by e-matching,
and smallest-term extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import GraphitiError
from .algebra import _parse_call  # canonical combinator-call syntax

# Terms are nested tuples: ("sym", name) for atoms (including base function
# names), or (op, child, ...) with op in {"comp", "par", "first", "second",
# "tup"}; "tup" children are atoms.

Term = tuple


def parse_term(text: str) -> Term:
    """Parse the combinator syntax of :mod:`repro.rewriting.algebra`."""
    head, args = _parse_call(text)
    if head is None:
        return ("sym", text.strip())
    return (head,) + tuple(parse_term(arg) for arg in args)


def render_term(term: Term) -> str:
    """Render a term back into canonical combinator syntax."""
    if term[0] == "sym":
        return term[1]
    head = term[0]
    return f"{head}({','.join(render_term(child) for child in term[1:])})"


def term_size(term: Term) -> int:
    if term[0] == "sym":
        return 1
    return 1 + sum(term_size(child) for child in term[1:])


@dataclass(frozen=True)
class _ENode:
    op: str
    children: tuple[int, ...]
    payload: str = ""  # symbol name for atoms


class EGraph:
    """A small e-graph over function-algebra terms."""

    def __init__(self):
        self._parent: list[int] = []
        self._nodes: dict[_ENode, int] = {}
        self._classes: dict[int, set[_ENode]] = {}

    # -- union-find -----------------------------------------------------------

    def find(self, cls: int) -> int:
        while self._parent[cls] != cls:
            self._parent[cls] = self._parent[self._parent[cls]]
            cls = self._parent[cls]
        return cls

    def _new_class(self) -> int:
        cls = len(self._parent)
        self._parent.append(cls)
        self._classes[cls] = set()
        return cls

    # -- construction ---------------------------------------------------------

    def add_term(self, term: Term) -> int:
        if term[0] == "sym":
            return self._add(_ENode("sym", (), term[1]))
        children = tuple(self.add_term(child) for child in term[1:])
        return self._add(_ENode(term[0], children))

    def _add(self, node: _ENode) -> int:
        node = self._canonical(node)
        existing = self._nodes.get(node)
        if existing is not None:
            return self.find(existing)
        cls = self._new_class()
        self._nodes[node] = cls
        self._classes[cls].add(node)
        return cls

    def _canonical(self, node: _ENode) -> _ENode:
        return _ENode(node.op, tuple(self.find(c) for c in node.children), node.payload)

    def union(self, a: int, b: int) -> int:
        a, b = self.find(a), self.find(b)
        if a == b:
            return a
        self._parent[b] = a
        merged = self._classes.get(a, set()) | self._classes.pop(b, set())
        self._classes[a] = merged
        return a

    def rebuild(self) -> None:
        """Restore congruence closure after unions (full-sweep to fixpoint)."""
        changed = True
        while changed:
            changed = False
            canonical_nodes: dict[_ENode, int] = {}
            for node, cls in self._nodes.items():
                canonical = self._canonical(node)
                owner = self.find(cls)
                existing = canonical_nodes.get(canonical)
                if existing is not None:
                    if self.find(existing) != owner:
                        self.union(existing, owner)
                        changed = True
                    canonical_nodes[canonical] = self.find(existing)
                else:
                    canonical_nodes[canonical] = owner
            self._nodes = {n: self.find(c) for n, c in canonical_nodes.items()}
        self._classes = {}
        for node, cls in self._nodes.items():
            self._classes.setdefault(self.find(cls), set()).add(node)

    # -- e-matching ------------------------------------------------------------

    def match(self, pattern: Term, cls: int, bindings: dict[str, int]) -> Iterable[dict[str, int]]:
        """Yield variable bindings for *pattern* rooted at e-class *cls*.

        Pattern variables are ("var", name) nodes.
        """
        cls = self.find(cls)
        if pattern[0] == "var":
            bound = bindings.get(pattern[1])
            if bound is None:
                extended = dict(bindings)
                extended[pattern[1]] = cls
                yield extended
            elif self.find(bound) == cls:
                yield bindings
            return
        for node in list(self._classes.get(cls, ())):
            if pattern[0] == "sym":
                if node.op == "sym" and node.payload == pattern[1]:
                    yield bindings
                continue
            if node.op != pattern[0] or len(node.children) != len(pattern) - 1:
                continue
            stack = [bindings]
            for child_pattern, child_cls in zip(pattern[1:], node.children):
                next_stack = []
                for b in stack:
                    next_stack.extend(self.match(child_pattern, child_cls, b))
                stack = next_stack
                if not stack:
                    break
            yield from stack

    def instantiate(self, pattern: Term, bindings: Mapping[str, int]) -> int:
        if pattern[0] == "var":
            return self.find(bindings[pattern[1]])
        if pattern[0] == "sym":
            return self._add(_ENode("sym", (), pattern[1]))
        children = tuple(self.instantiate(child, bindings) for child in pattern[1:])
        return self._add(_ENode(pattern[0], children))

    def classes(self) -> list[int]:
        return sorted({self.find(c) for c in range(len(self._parent))})

    # -- extraction -------------------------------------------------------------

    def extract(self, cls: int) -> Term:
        """Smallest term (by node count) representing e-class *cls*."""
        costs: dict[int, tuple[int, Term]] = {}
        changed = True
        while changed:
            changed = False
            for node, owner in self._nodes.items():
                owner = self.find(owner)
                if any(self.find(c) not in costs for c in node.children):
                    continue
                if node.op == "sym":
                    candidate = (1, ("sym", node.payload))
                else:
                    child_costs = [costs[self.find(c)] for c in node.children]
                    total = 1 + sum(c for c, _ in child_costs)
                    candidate = (total, (node.op,) + tuple(t for _, t in child_costs))
                best = costs.get(owner)
                if best is None or candidate[0] < best[0]:
                    costs[owner] = candidate
                    changed = True
        result = costs.get(self.find(cls))
        if result is None:
            raise GraphitiError("extraction failed: class has no finite-cost term")
        return result[1]


def _v(name: str) -> Term:
    return ("var", name)


#: Equational rules of the pairing algebra: (name, lhs, rhs) triples.
#: Genuine two-way laws are also applied in reverse during saturation.
RULES: list[tuple[str, Term, Term]] = [
    # comp is associative with identity `id`
    ("comp-assoc",
     ("comp", ("comp", _v("a"), _v("b")), _v("c")), ("comp", _v("a"), ("comp", _v("b"), _v("c")))),
    ("comp-id-left", ("comp", ("sym", "id"), _v("a")), _v("a")),
    ("comp-id-right", ("comp", _v("a"), ("sym", "id")), _v("a")),
    # par laws
    ("par-id", ("par", ("sym", "id"), ("sym", "id")), ("sym", "id")),
    ("par-fusion",
     ("comp", ("par", _v("a"), _v("b")), ("par", _v("c"), _v("d"))),
     ("par", ("comp", _v("a"), _v("c")), ("comp", _v("b"), _v("d")))),
    # first/second are par with id
    ("first-as-par", ("first", _v("a")), ("par", _v("a"), ("sym", "id"))),
    ("second-as-par", ("second", _v("a")), ("par", ("sym", "id"), _v("a"))),
    # projections: par(a,b);fst = fst;a   (split past parallel maps)
    ("proj-par-left",
     ("comp", ("par", _v("a"), _v("b")), ("sym", "fst")), ("comp", ("sym", "fst"), _v("a"))),
    ("proj-par-right",
     ("comp", ("par", _v("a"), _v("b")), ("sym", "snd")), ("comp", ("sym", "snd"), _v("b"))),
    # dup then project is the identity (Split of a Join)
    ("split-of-join-left", ("comp", ("sym", "dup"), ("sym", "fst")), ("sym", "id")),
    ("split-of-join-right", ("comp", ("sym", "dup"), ("sym", "snd")), ("sym", "id")),
    # re-pairing the projections is the identity (Join of a Split)
    ("join-of-split",
     ("comp", ("sym", "dup"), ("par", ("sym", "fst"), ("sym", "snd"))), ("sym", "id")),
    # swap is an involution, and implementable with dup and projections
    ("swap-involution", ("comp", ("sym", "swap"), ("sym", "swap")), ("sym", "id")),
    ("swap-as-dup",
     ("comp", ("sym", "dup"), ("par", ("sym", "snd"), ("sym", "fst"))), ("sym", "swap")),
    # dup duplicates through any following map on one side:
    # dup;par(f,g) ; fst = f  etc. follow from the laws above.
]


def _pattern_vars(pattern: Term) -> frozenset[str]:
    if pattern[0] == "var":
        return frozenset({pattern[1]})
    if pattern[0] == "sym":
        return frozenset()
    return frozenset().union(*(_pattern_vars(child) for child in pattern[1:]))


def saturate(
    egraph: EGraph,
    iterations: int = 8,
    node_limit: int = 20_000,
    log: list[str] | None = None,
) -> None:
    """Run equality saturation with :data:`RULES`.

    Rules run forward; the reverse direction is also applied when it is a
    genuine two-way law (same non-empty variable set on both sides).
    Ground identities are never reversed — expanding ``id`` into
    ``comp(swap, swap)`` or ``par(id, id)`` only inflates the e-graph,
    feeding combinatorial cross-products through the par-fusion law.

    When *log* is given, every rule application that merged two previously
    distinct e-classes appends its rule name — the reproduction's analogue
    of egg handing back a replayable rewrite sequence (section 3.2).
    """
    for _ in range(iterations):
        if len(egraph._nodes) > node_limit:
            break  # saturated past budget: matching itself would be O(n²)
        matches: list[tuple[str, Term, dict[str, int], int]] = []
        for name, lhs, rhs in RULES:
            directions = [(name, lhs, rhs)]
            lhs_vars, rhs_vars = _pattern_vars(lhs), _pattern_vars(rhs)
            if rhs[0] != "var" and lhs_vars and lhs_vars == rhs_vars:
                directions.append((f"{name}-rev", rhs, lhs))
            for rule_name, direction_lhs, direction_rhs in directions:
                for cls in egraph.classes():
                    for bindings in egraph.match(direction_lhs, cls, {}):
                        matches.append((rule_name, direction_rhs, bindings, cls))
        changed = False
        for rule_name, rhs_pattern, bindings, root in matches:
            if len(egraph._nodes) > node_limit:
                break
            new_cls = egraph.instantiate(rhs_pattern, bindings)
            if egraph.find(new_cls) != egraph.find(root):
                egraph.union(new_cls, root)
                if log is not None:
                    log.append(rule_name)
                changed = True
        egraph.rebuild()
        if not changed or len(egraph._nodes) > node_limit:
            break


def simplify(text: str, iterations: int = 8, node_limit: int = 20_000) -> str:
    """Simplify a combinator term using equality saturation.

    This is the oracle entry point used by the region purifier: the result
    is an equivalent term, usually much smaller, e.g.::

        >>> simplify("comp(dup,par(fst,snd))")
        'id'

    *node_limit* bounds the e-graph: matching is quadratic in the node
    count, so callers with large composed terms pass a tighter budget.
    """
    egraph = EGraph()
    root = egraph.add_term(parse_term(text))
    saturate(egraph, iterations, node_limit)
    return render_term(egraph.extract(root))


def simplify_with_log(
    text: str, iterations: int = 8, node_limit: int = 20_000
) -> tuple[str, list[str]]:
    """Like :func:`simplify`, also returning the applied-rule sequence."""
    egraph = EGraph()
    root = egraph.add_term(parse_term(text))
    log: list[str] = []
    saturate(egraph, iterations, node_limit, log)
    return render_term(egraph.extract(root)), log
