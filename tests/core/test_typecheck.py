"""Tests for well-typed graph deduction (section 6.3)."""

import pytest

from repro.components import branch, fork, init, join, merge, mux, pure, split, tagger
from repro.core.exprhigh import Endpoint, ExprHigh
from repro.core.typecheck import typecheck
from repro.core.types import BOOL, I32, TaggedType, TupleType, TypeVar
from repro.errors import TypeCheckError


def sequential_loop():
    from repro.rewriting.rules.loop_rewrite import sequential_loop_concrete

    return sequential_loop_concrete("gcd_step")


class TestDeduction:
    def test_fork_propagates_one_type(self):
        g = ExprHigh()
        g.add_node("f", fork(2))
        g.mark_input(0, "f", "in0")
        g.mark_output(0, "f", "out0")
        g.mark_output(1, "f", "out1")
        types = typecheck(g, {0: I32}, require_concrete=True)
        assert types[Endpoint("f", "out0")] == I32
        assert types[Endpoint("f", "out1")] == I32

    def test_join_builds_tuples(self):
        g = ExprHigh()
        g.add_node("j", join())
        g.add_node("s", split())
        g.connect("j", "out0", "s", "in0")
        g.mark_input(0, "j", "in0")
        g.mark_input(1, "j", "in1")
        g.mark_output(0, "s", "out0")
        g.mark_output(1, "s", "out1")
        types = typecheck(g, {0: I32, 1: BOOL}, require_concrete=True)
        assert types[Endpoint("j", "out0")] == TupleType(I32, BOOL)
        assert types[Endpoint("s", "out0")] == I32
        assert types[Endpoint("s", "out1")] == BOOL

    def test_mux_condition_is_bool(self):
        g = ExprHigh()
        g.add_node("m", mux())
        for i, p in enumerate(["cond", "in0", "in1"]):
            g.mark_input(i, "m", p)
        g.mark_output(0, "m", "out0")
        types = typecheck(g, {1: I32})
        assert types[Endpoint("m", "cond")] == BOOL
        assert types[Endpoint("m", "in1")] == I32  # unified with in0

    def test_tagger_wraps_and_unwraps(self):
        g = ExprHigh()
        g.add_node("t", tagger(tags=4))
        g.mark_input(0, "t", "in0")
        g.mark_input(1, "t", "in1")
        g.mark_output(0, "t", "out0")
        g.mark_output(1, "t", "out1")
        types = typecheck(g, {0: I32})
        assert types[Endpoint("t", "out0")] == TaggedType(I32)

    def test_loop_rewrite_lhs_types_deduce(self):
        g = sequential_loop()
        types = typecheck(g, {0: TupleType(I32, I32)})
        # The Split separates the body's (T, bool) result.
        split_nodes = [n for n, s in g.nodes.items() if s.typ == "Split"]
        (sp,) = split_nodes
        assert types[Endpoint(sp, "out1")] == BOOL

    def test_polymorphic_without_inputs(self):
        g = ExprHigh()
        g.add_node("f", fork(2))
        g.mark_input(0, "f", "in0")
        g.mark_output(0, "f", "out0")
        g.mark_output(1, "f", "out1")
        types = typecheck(g)
        assert isinstance(types[Endpoint("f", "out0")], TypeVar)


class TestErrors:
    def test_type_clash_reported(self):
        g = ExprHigh()
        g.add_node("i", init(value=False))  # bool in, bool out
        g.add_node("j", join())
        g.add_node("s", split())
        g.connect("j", "out0", "s", "in0")
        g.connect("s", "out0", "i", "in0")  # fine: left half must be bool
        g.mark_input(0, "j", "in0")
        g.mark_input(1, "j", "in1")
        g.mark_output(0, "i", "out0")
        g.mark_output(1, "s", "out1")
        with pytest.raises(TypeCheckError):
            typecheck(g, {0: I32})  # clashes with Init's bool input

    def test_require_concrete_rejects_loose_ports(self):
        g = ExprHigh()
        g.add_node("m", merge())
        g.mark_input(0, "m", "in0")
        g.mark_input(1, "m", "in1")
        g.mark_output(0, "m", "out0")
        with pytest.raises(TypeCheckError):
            typecheck(g, require_concrete=True)

    def test_unknown_input_index_rejected(self):
        g = ExprHigh()
        g.add_node("b", branch())
        g.mark_input(0, "b", "cond")
        g.mark_input(1, "b", "in0")
        g.mark_output(0, "b", "out0")
        g.mark_output(1, "b", "out1")
        with pytest.raises(TypeCheckError):
            typecheck(g, {7: I32})

    def test_unknown_component_rejected(self):
        from repro.core.exprhigh import NodeSpec

        g = ExprHigh()
        g.add_node("x", NodeSpec.make("Alien", ["in0"], ["out0"]))
        g.mark_input(0, "x", "in0")
        g.mark_output(0, "x", "out0")
        with pytest.raises(TypeCheckError):
            typecheck(g)


class TestWholePipelineGraphs:
    def test_compiled_kernel_typechecks(self):
        import numpy as np

        from repro.components import default_environment
        from repro.hls.frontend import compile_program
        from repro.hls.ir import BinOp, Const, DoWhile, Kernel, OuterLoop, Program, StoreOp, Var

        loop = DoWhile(
            "count",
            ("n", "i"),
            {"n": BinOp("sub", Var("n"), Const(1)), "i": Var("i")},
            BinOp("lt", Const(0), Var("n")),
            ("n", "i"),
        )
        kernel = Kernel(
            "count",
            loop,
            (OuterLoop("i", 2),),
            {"n": Const(3), "i": Var("i")},
            (StoreOp("out", Var("i"), Var("n")),),
        )
        program = Program("count", {"out": np.zeros(2)}, [kernel])
        compiled = compile_program(program, default_environment())
        types = typecheck(compiled.kernels[0].graph)
        assert types  # deduction succeeds on the full DF-IO circuit
