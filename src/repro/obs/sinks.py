"""Span sinks: in-memory capture, JSONL export, human-readable trees.

A sink is anything with ``emit(span)``; tracers call it once per closed
*root* span with the whole subtree attached.  Three are provided:

* :class:`InMemorySink` — keeps the span objects (tests, ``--profile``);
* :class:`JsonlSink` — appends one JSON line per span, parent-linked by
  id, to a file (the CLI's ``--trace FILE``);
* :func:`render_tree` — formats captured roots as an indented tree with
  cumulative and self times (the CLI's ``--profile`` output).
"""

from __future__ import annotations

import json
from pathlib import Path

from .core import Span


class InMemorySink:
    """Collects emitted root spans in order; the test/profile sink."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def emit(self, span: Span) -> None:
        self.spans.append(span)

    def clear(self) -> None:
        self.spans.clear()


class JsonlSink:
    """Writes one JSON object per span (depth-first) to a file.

    Each line carries ``id``, ``parent`` (None for roots), ``name``,
    ``seconds``, ``self_seconds`` and ``attrs``; ids are unique within the
    sink and parents always appear before their children, so a stream
    consumer can rebuild every tree single-pass.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file = self.path.open("w", encoding="utf-8")
        self._next_id = 0

    def emit(self, span: Span) -> None:
        self._write(span, parent=None)
        self._file.flush()

    def _write(self, span: Span, parent: int | None) -> None:
        span_id = self._next_id
        self._next_id += 1
        record = {
            "id": span_id,
            "parent": parent,
            "name": span.name,
            "seconds": round(span.seconds, 9),
            "self_seconds": round(span.self_seconds, 9),
            "attrs": span.attrs,
        }
        self._file.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        for child in span.children:
            self._write(child, parent=span_id)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def render_tree(spans: list[Span], *, min_seconds: float = 0.0) -> str:
    """Format root spans as an indented tree with cumulative/self times.

    Sibling spans of the same name are *not* merged — the tree shows the
    actual execution structure.  Spans faster than *min_seconds* are
    pruned (their time still shows up in the parent's cumulative figure).
    """
    lines: list[str] = []
    width = max(
        (2 * depth + len(span.name) for root in spans for span, depth in _walk_depth(root)),
        default=0,
    )
    width = max(width, len("span"))
    lines.append(f"{'span':<{width}}  {'total':>10}  {'self':>10}  attrs")
    for root in spans:
        for span, depth in _walk_depth(root):
            if depth and span.seconds < min_seconds:
                continue
            label = f"{'  ' * depth}{span.name}"
            attrs = _format_attrs(span.attrs)
            lines.append(
                f"{label:<{width}}  {_fmt(span.seconds):>10}  {_fmt(span.self_seconds):>10}  {attrs}"
            )
    return "\n".join(lines)


def _walk_depth(span: Span, depth: int = 0):
    yield span, depth
    for child in span.children:
        yield from _walk_depth(child, depth + 1)


def _fmt(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.2f}ms"


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = [f"{key}={value}" for key, value in attrs.items()]
    return " ".join(parts)
