"""Persistent simulation certificates: round-trip, integrity, fallback.

The contract under test (docs/verification.md): a certificate serialises
losslessly with a stable content hash, ``recheck_certificate`` accepts
exactly the evidence a search emits, and a corrupted certificate is
*rejected* — the obligation falls back to a full search and never yields
a wrong "holds" through the fast path.
"""

import copy

import pytest

from repro import obs
from repro.components import buffer, default_environment, fork, pure
from repro.core import ExprHigh, denote
from repro.errors import CertificateError, RefinementError
from repro.exec.cache import ResultCache
from repro.exec.hashing import certificate_key
from repro.refinement import (
    SimulationCertificate,
    check_rewrite_obligation,
    decode_state,
    encode_state,
    find_weak_simulation,
    recheck_certificate,
    uniform_stimuli,
)


@pytest.fixture
def env():
    return default_environment(capacity=2)


def chain_graph(length=2):
    g = ExprHigh()
    for i in range(length):
        g.add_node(f"b{i}", buffer(slots=1))
    for i in range(length - 1):
        g.connect(f"b{i}", "out0", f"b{i+1}", "in0")
    g.mark_input(0, "b0", "in0")
    g.mark_output(0, f"b{length-1}", "out0")
    return g


def wide_graph(slots=2):
    g = ExprHigh()
    g.add_node("b", buffer(slots=slots))
    g.mark_input(0, "b", "in0")
    g.mark_output(0, "b", "out0")
    return g


def searched_certificate(env):
    """A real certificate: the 2-chain refines the 2-slot buffer."""
    impl = denote(chain_graph(2).lower(), env)
    spec = denote(wide_graph(2).lower(), env)
    stimuli = uniform_stimuli(impl, (0, 1))
    result = find_weak_simulation(impl, spec, stimuli)
    assert result.holds
    return impl, spec, stimuli, result.certificate


class TestStateCodec:
    @pytest.mark.parametrize(
        "state",
        [
            None,
            True,
            False,
            0,
            -3,
            2.5,
            "token",
            (),
            ((), ("a", 1)),
            frozenset({1, 2, 3}),
            (frozenset({(1, "x"), (2, "y")}), (None, (True,))),
        ],
    )
    def test_roundtrip_identity(self, state):
        assert decode_state(encode_state(state)) == state

    def test_bool_and_int_not_conflated(self):
        assert decode_state(encode_state(True)) is True
        assert decode_state(encode_state(1)) == 1
        assert encode_state(True) != encode_state(1)

    def test_unencodable_state_rejected(self):
        with pytest.raises(CertificateError):
            encode_state(object())

    @pytest.mark.parametrize("junk", [["x", 1], ["t"], [], 7, ["i", "notint"]])
    def test_junk_rejected(self, junk):
        with pytest.raises(CertificateError):
            decode_state(junk)


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self, env):
        _, _, _, certificate = searched_certificate(env)
        restored = SimulationCertificate.from_dict(certificate.to_dict())
        assert restored.relation == certificate.relation
        assert restored.stimuli == certificate.stimuli
        assert restored.impl_states == certificate.impl_states
        assert restored.content_hash() == certificate.content_hash()

    def test_hash_is_stable_across_construction_order(self, env):
        _, _, _, certificate = searched_certificate(env)
        reordered = SimulationCertificate(
            relation=frozenset(sorted(certificate.relation, key=repr, reverse=True)),
            impl_states=certificate.impl_states,
            spec_states=certificate.spec_states,
            iterations=certificate.iterations,
            stimuli=dict(reversed(list(certificate.stimuli.items()))),
        )
        assert reordered.content_hash() == certificate.content_hash()

    def test_payload_is_json_serialisable(self, env):
        import json

        _, _, _, certificate = searched_certificate(env)
        payload = json.loads(json.dumps(certificate.to_dict()))
        restored = SimulationCertificate.from_dict(payload)
        assert restored.relation == certificate.relation

    def test_semantic_change_changes_hash(self, env):
        _, _, _, certificate = searched_certificate(env)
        smaller = SimulationCertificate(
            relation=frozenset(list(certificate.relation)[1:]),
            impl_states=certificate.impl_states,
            spec_states=certificate.spec_states,
            iterations=certificate.iterations,
            stimuli=certificate.stimuli,
        )
        assert smaller.content_hash() != certificate.content_hash()


class TestFromDictRejects:
    def test_non_dict(self):
        with pytest.raises(CertificateError):
            SimulationCertificate.from_dict([1, 2, 3])

    def test_wrong_format_version(self, env):
        _, _, _, certificate = searched_certificate(env)
        payload = certificate.to_dict()
        payload["format"] = 99
        with pytest.raises(CertificateError):
            SimulationCertificate.from_dict(payload)

    def test_missing_field(self, env):
        _, _, _, certificate = searched_certificate(env)
        payload = certificate.to_dict()
        del payload["relation"]
        with pytest.raises(CertificateError):
            SimulationCertificate.from_dict(payload)

    @pytest.mark.parametrize(
        "tamper",
        [
            lambda p: p["relation"].pop(),
            lambda p: p["relation"].append([0, 0]),
            lambda p: p["impl_table"].pop(),
            lambda p: p.__setitem__("impl_states", p["impl_states"] + 1),
            lambda p: p.__setitem__("stimuli", []),
            lambda p: p.__setitem__("hash", "0" * 64),
        ],
    )
    def test_tampered_payload_fails_hash(self, env, tamper):
        _, _, _, certificate = searched_certificate(env)
        payload = copy.deepcopy(certificate.to_dict())
        tamper(payload)
        with pytest.raises(CertificateError, match="hash mismatch"):
            SimulationCertificate.from_dict(payload)


class TestRecheck:
    def test_recheck_accepts_what_search_emits(self, env):
        impl, spec, stimuli, certificate = searched_certificate(env)
        restored = SimulationCertificate.from_dict(certificate.to_dict())
        result = recheck_certificate(impl, spec, restored, stimuli)
        assert result.holds

    def test_bogus_pair_fails_a_diagram(self, env):
        # A hash-consistent corruption: rebuild the certificate with a
        # *losing* pair added (a chain holding tokens, related to the empty
        # buffer — which can respond to nothing), so from_dict would accept
        # it; the diagram replay is what must catch it.
        impl, spec, stimuli, certificate = searched_certificate(env)
        t0 = next(iter(spec.init))
        s_bad = next(
            s
            for (s, _t) in certificate.relation
            if s not in impl.init and (s, t0) not in certificate.relation
        )
        doctored = SimulationCertificate(
            relation=certificate.relation | {(s_bad, t0)},
            impl_states=certificate.impl_states,
            spec_states=certificate.spec_states,
            iterations=certificate.iterations,
            stimuli=certificate.stimuli,
        )
        result = recheck_certificate(impl, spec, doctored, stimuli)
        assert not result.holds

    def test_missing_init_pair_fails(self, env):
        impl, spec, stimuli, certificate = searched_certificate(env)
        init_pairs = {(s0, t0) for s0 in impl.init for t0 in spec.init}
        stripped = SimulationCertificate(
            relation=certificate.relation - init_pairs,
            impl_states=certificate.impl_states,
            spec_states=certificate.spec_states,
            iterations=certificate.iterations,
            stimuli=certificate.stimuli,
        )
        result = recheck_certificate(impl, spec, stripped, stimuli)
        assert not result.holds
        assert result.violation.kind == "init"

    def test_stimuli_mismatch_refused(self, env):
        impl, spec, stimuli, certificate = searched_certificate(env)
        other = {port: (0, 1, 2) for port in stimuli}
        result = recheck_certificate(impl, spec, certificate, other)
        assert not result.holds

    def test_wrong_modules_rejected(self, env):
        impl, spec, stimuli, certificate = searched_certificate(env)
        other = denote(wide_graph(2).lower(), env)
        # wide ⊑ chain does not hold, so chain's certificate must not pass
        # as evidence for it.
        result = recheck_certificate(other, impl, certificate, None)
        assert not result.holds

    def test_interface_mismatch_rejected(self, env):
        impl, spec, stimuli, certificate = searched_certificate(env)
        forked = ExprHigh()
        forked.add_node("f", fork(2))
        forked.mark_input(0, "f", "in0")
        forked.mark_output(0, "f", "out0")
        forked.mark_output(1, "f", "out1")
        other = denote(forked.lower(), env)
        result = recheck_certificate(other, spec, certificate, None)
        assert not result.holds
        assert result.violation.kind == "interface"


def obligation_key(lhs, rhs, env):
    """The key check_rewrite_obligation uses for its default stimuli."""
    rhs_module = denote(rhs.lower(), env)
    stimuli = uniform_stimuli(rhs_module, (0, 1))
    return certificate_key(rhs, lhs, env, stimuli, spec_capacity=4)


class TestCacheFallback:
    """The obligation-level guarantee: corruption costs time, not soundness."""

    def counters(self):
        return dict(obs.get_tracer().counters)

    def test_cold_search_then_warm_recheck(self, env, tmp_path):
        cache = ResultCache(tmp_path)
        lhs, rhs = wide_graph(2), chain_graph(2)
        cold = check_rewrite_obligation(lhs, rhs, env, cache=cache)
        assert cold.mode == "search"
        warm = check_rewrite_obligation(lhs, rhs, env, cache=cache)
        assert warm.mode == "recheck"
        assert warm.certificate.content_hash() == cold.certificate.content_hash()

    def test_serialized_tampering_falls_back_to_search(self, env, tmp_path):
        cache = ResultCache(tmp_path)
        lhs, rhs = wide_graph(2), chain_graph(2)
        check_rewrite_obligation(lhs, rhs, env, cache=cache)
        key = obligation_key(lhs, rhs, env)
        blob = cache.get_bytes(key)
        assert blob is not None  # fresh certificates persist in binary form
        # Zero out the tail: the container's integrity hash must reject it.
        cache.put_bytes(key, blob[:-24] + bytes(24))
        before = self.counters()
        report = check_rewrite_obligation(lhs, rhs, env, cache=cache)
        after = self.counters()
        assert report.mode == "search-fallback"  # fell back, did not trust the entry
        assert after.get("refinement.cert_recheck_failures", 0) > before.get(
            "refinement.cert_recheck_failures", 0
        )
        # ...and the fallback repaired the cache with a fresh certificate.
        assert check_rewrite_obligation(lhs, rhs, env, cache=cache).mode == "recheck"

    def test_json_entry_tampering_falls_back_to_search(self, env, tmp_path):
        """The interop path: a tampered JSON entry is equally rejected."""
        cache = ResultCache(tmp_path)
        lhs, rhs = wide_graph(2), chain_graph(2)
        good = check_rewrite_obligation(lhs, rhs, env, cache=cache)
        key = obligation_key(lhs, rhs, env)
        cache.bin_path_for(key).unlink()  # leave only the JSON entry
        payload = good.certificate.to_dict()
        payload["relation"] = payload["relation"][1:]  # hash now mismatches
        cache.put(key, payload)
        report = check_rewrite_obligation(lhs, rhs, env, cache=cache)
        assert report.mode == "search-fallback"

    def test_hash_consistent_corruption_never_yields_wrong_holds(self, env, tmp_path):
        """The strongest tamper case: a certificate for a NON-refinement,
        re-serialised with a self-consistent hash, planted under the key of
        the failing obligation.  The recheck must fail a diagram and the
        obligation must still raise, not report holds."""
        cache = ResultCache(tmp_path)
        # wide ⊑ chain genuinely fails...
        lhs, rhs = chain_graph(2), wide_graph(2)
        with pytest.raises(RefinementError):
            check_rewrite_obligation(lhs, rhs, env, cache=cache)
        # ...now plant valid-looking evidence (the cert of the *converse*,
        # which serialises with a perfectly consistent hash) under its key.
        good = check_rewrite_obligation(wide_graph(2), chain_graph(2), env)
        key = obligation_key(lhs, rhs, env)
        cache.put(key, good.certificate.to_dict())
        with pytest.raises(RefinementError):
            check_rewrite_obligation(lhs, rhs, env, cache=cache)

    def test_pure_mismatch_not_rescued_by_planted_cert(self, env, tmp_path):
        cache = ResultCache(tmp_path)
        lhs, rhs = ExprHigh(), ExprHigh()
        lhs.add_node("p", pure("id"))
        rhs.add_node("p", pure("incr"))
        for g in (lhs, rhs):
            g.mark_input(0, "p", "in0")
            g.mark_output(0, "p", "out0")
        good = check_rewrite_obligation(lhs, lhs, env)  # id ⊑ id holds
        key = obligation_key(lhs, rhs, env)
        cache.put(key, good.certificate.to_dict())
        with pytest.raises(RefinementError):
            check_rewrite_obligation(lhs, rhs, env, cache=cache)
