"""Sharded frontier expansion is a pure parallelisation of the search.

The sharded solver partitions each BFS level of the weak-simulation game
across the executor pool, but the game itself — position interning order,
move sets, backward propagation, relation extraction — is resolved by the
parent, so the resulting certificate must be byte-identical (same content
hash) to the serial solver's.  These tests pin that determinism contract
and the degradation paths (jobs=1, no ref) back to local expansion.
"""

import pytest

from repro.core.semantics import denote
from repro.exec.executor import Executor
from repro.refinement import (
    find_weak_simulation,
    find_weak_simulation_sharded,
    obligation_ref,
    uniform_stimuli,
)
from repro.rewriting.rules import build_rewrite

_SPEC = ("repro.rewriting.rules.combine", "mux_combine", {})


def _instance():
    module, factory, kwargs = _SPEC
    rewrite = build_rewrite(module, factory, kwargs)
    lhs, rhs, env, stimuli = next(iter(rewrite.obligation()))
    impl = denote(rhs.lower(), env)
    spec = denote(lhs.lower(), env.with_capacity(4))
    if stimuli is None:
        stimuli = uniform_stimuli(impl, (0, 1))
    return impl, spec, stimuli


@pytest.fixture(scope="module")
def serial_result():
    impl, spec, stimuli = _instance()
    return find_weak_simulation(impl, spec, stimuli)


def test_sharded_certificate_is_hash_identical_to_serial(serial_result):
    impl, spec, stimuli = _instance()
    module, factory, kwargs = _SPEC
    ref = obligation_ref(module, factory, kwargs, 0)
    with Executor(jobs=4) as executor:
        sharded = find_weak_simulation_sharded(
            impl, spec, stimuli, executor=executor, ref=ref, min_frontier=8
        )
    assert sharded.holds and serial_result.holds
    assert (
        sharded.certificate.content_hash()
        == serial_result.certificate.content_hash()
    )
    assert sharded.certificate.relation == serial_result.certificate.relation
    assert sharded.certificate.witnesses is not None


def test_single_job_pool_degrades_to_local_expansion(serial_result):
    impl, spec, stimuli = _instance()
    module, factory, kwargs = _SPEC
    ref = obligation_ref(module, factory, kwargs, 0)
    with Executor(jobs=1) as executor:
        result = find_weak_simulation_sharded(
            impl, spec, stimuli, executor=executor, ref=ref
        )
    assert result.holds
    assert (
        result.certificate.content_hash()
        == serial_result.certificate.content_hash()
    )


def test_refutation_counterexample_matches_serial():
    module, factory = "repro.rewriting.rules.combine", "branch_combine"
    rewrite = build_rewrite(module, factory, {})
    lhs, rhs, env, stimuli = next(iter(rewrite.obligation()))
    impl = denote(rhs.lower(), env)
    spec = denote(lhs.lower(), env.with_capacity(4))
    if stimuli is None:
        stimuli = uniform_stimuli(impl, (0, 1))
    serial = find_weak_simulation(impl, spec, stimuli)
    assert not serial.holds
    ref = obligation_ref(module, factory, {}, 0)
    with Executor(jobs=4) as executor:
        sharded = find_weak_simulation_sharded(
            impl, spec, stimuli, executor=executor, ref=ref, min_frontier=8
        )
    assert not sharded.holds
    assert sharded.violation.detail == serial.violation.detail


def test_missing_ref_degrades_to_local_expansion(serial_result):
    impl, spec, stimuli = _instance()
    with Executor(jobs=2) as executor:
        result = find_weak_simulation_sharded(
            impl, spec, stimuli, executor=executor, ref=None
        )
    assert result.holds
    assert (
        result.certificate.content_hash()
        == serial_result.certificate.content_hash()
    )
