"""Property: exhaustively rewriting a random graph preserves refinement.

This fuzzes theorem 4.6 end to end: generate a random elastic graph,
normalize it with a set of *verified* rewrites, and check that the result
refines the original (bounded weak simulation).  Any unsound rewrite or
any bug in matching/application/lifting shows up as a counterexample.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.components import buffer, default_environment, fork, pure, sink
from repro.core import ExprHigh
from repro.core.semantics import denote
from repro.refinement import refines, uniform_stimuli
from repro.rewriting.engine import RewriteEngine
from repro.rewriting.rules.extra import buffer_elim
from repro.rewriting.rules.pure_gen import fork_lift_pure, pure_compose
from repro.rewriting.rules.reduction import fork_sink_elim, pure_id_elim


@st.composite
def elastic_graphs(draw):
    """A random closed graph of Pures, Buffers, Forks and Sinks over ints."""
    graph = ExprHigh()
    graph.add_node("src", pure(draw(st.sampled_from(["id", "incr"]))))
    open_outputs = [("src", "out0")]
    counter = [0]

    def fresh(prefix):
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    for _ in range(draw(st.integers(1, 5))):
        if not open_outputs:
            break
        kind = draw(st.sampled_from(["pure", "buffer", "fork", "sink"]))
        index = draw(st.integers(0, len(open_outputs) - 1))
        src_node, src_port = open_outputs.pop(index)
        if kind == "pure":
            name = fresh("p")
            graph.add_node(name, pure(draw(st.sampled_from(["id", "incr"]))))
            graph.connect(src_node, src_port, name, "in0")
            open_outputs.append((name, "out0"))
        elif kind == "buffer":
            name = fresh("b")
            graph.add_node(name, buffer(slots=draw(st.integers(1, 2))))
            graph.connect(src_node, src_port, name, "in0")
            open_outputs.append((name, "out0"))
        elif kind == "fork":
            name = fresh("f")
            graph.add_node(name, fork(2))
            graph.connect(src_node, src_port, name, "in0")
            open_outputs.append((name, "out0"))
            open_outputs.append((name, "out1"))
        else:
            name = fresh("s")
            graph.add_node(name, sink())
            graph.connect(src_node, src_port, name, "in0")
    # Close the graph: one external input, every open output marked.
    graph.mark_input(0, "src", "in0")
    for index, (node, port) in enumerate(open_outputs):
        graph.mark_output(index, node, port)
    if not open_outputs:
        # Everything was sunk; add an independent pass-through so the graph
        # still has an observable output.
        graph.add_node("tail", pure("id"))
        graph.mark_input(1, "tail", "in0")
        graph.mark_output(0, "tail", "out0")
    graph.validate()
    return graph


NORMALIZERS = [pure_compose, fork_sink_elim, pure_id_elim, buffer_elim, fork_lift_pure]


class TestTheorem46Fuzz:
    @given(elastic_graphs(), st.lists(st.sampled_from(range(len(NORMALIZERS))), max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_rewriting_preserves_refinement(self, graph, rule_choice):
        env = default_environment(capacity=1)
        engine = RewriteEngine()
        rules = [NORMALIZERS[i]() for i in sorted(set(rule_choice))]
        if not rules:
            rules = [pure_compose()]
        rewritten = engine.apply_exhaustively(graph, rules, max_steps=64)

        impl = denote(rewritten.lower(), env)
        # The spec's capacity margin must scale with the graph: lifting a
        # chain of n Pures across a Fork (fork-lift-pure, applied n times)
        # re-buffers the chain downstream of the fork, and the bounded
        # check only relates the two with about n+2 slots of slack on the
        # spec side.  A fixed margin flakes on deep generated chains.
        spec = denote(graph.lower(), env.with_capacity(len(graph.nodes) + 2))
        if impl.input_ports() != spec.input_ports() or impl.output_ports() != spec.output_ports():
            raise AssertionError("rewriting changed the graph interface")
        # One stimulus value keeps the product game small even for graphs
        # with wide fork fan-out; the structural properties under test do
        # not depend on value diversity (incr distinguishes the paths).
        stimuli = uniform_stimuli(impl, (0,))
        assert refines(impl, spec, stimuli), (
            f"rewritten graph does not refine the original after "
            f"{[a.rewrite for a in engine.log]}"
        )

    @given(elastic_graphs())
    @settings(max_examples=25, deadline=None)
    def test_normalization_reaches_fixpoint(self, graph):
        engine = RewriteEngine()
        rules = [pure_compose(), fork_sink_elim(), pure_id_elim(), buffer_elim()]
        result = engine.apply_exhaustively(graph, rules, max_steps=128)
        # Fixpoint: no rule matches the result any more.
        for rule in rules:
            assert engine.apply_once(result, rule) is None
