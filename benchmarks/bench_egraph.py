"""The equality-saturation backend: frontier quality and exploration cost.

Run standalone (``python benchmarks/bench_egraph.py``) to measure, for every
built-in benchmark kernel,

* the **fixpoint baseline** — modeled (area, cycles) cost of the
  destructive pipeline's output,
* the **saturate strategy** — the extracted Pareto frontier, its best-cost
  point, and the e-graph exploration counters (states, e-nodes, e-classes,
  rule firings, wall time),
* **certification** — a cold run with obligation checking populates the
  certificate cache; a warm rerun must re-validate every extracted
  circuit's obligations through the certificate recheck path,

and append an entry to ``benchmarks/BENCH_egraph.json``.

``--guard`` is the CI mode; it exits 1 unless

* the best extracted point costs no more (modeled time) than the fixpoint
  circuit on **every** kernel,
* the frontier has >= 2 points on >= 2 kernels,
* every extracted circuit is certified on both the cold and the warm run,
* ``repro transform --strategy saturate`` exits 0 on a generated GCD
  kernel and ``--strategy bogus`` exits 2 with a named error.
"""


def _budget():
    from repro.rewriting.saturate import SaturationBudget

    return SaturationBudget(max_states=128, max_iterations=256)


def _kernels(session):
    from repro.benchmarks import BENCHMARKS, load_benchmark
    from repro.hls.frontend import compile_program

    for name in BENCHMARKS:
        yield name, compile_program(load_benchmark(name), session.env).kernels[0]


def collect_measurements(cache_dir: str) -> dict:
    """Cold certified saturate run per kernel, then a warm recheck pass."""
    from time import perf_counter

    from repro.api import Session

    results: dict[str, dict] = {}
    for phase in ("cold", "warm"):
        session = Session(cache_dir=cache_dir, check_obligations=True)
        for name, ck in _kernels(session):
            start = perf_counter()
            outcome = session.transform(
                graph=ck.graph, mark=ck.mark, strategy="saturate", budget=_budget()
            )
            seconds = perf_counter() - start
            entry = results.setdefault(
                name,
                {
                    "fixpoint": outcome.fixpoint_cost.to_dict(),
                    "best": outcome.best_cost.to_dict(),
                    "frontier": len(outcome.pareto),
                    "refused": not outcome.transformed,
                    "derived_points": sum(1 for p in outcome.pareto if p.derivation),
                    "saturation": {
                        key: outcome.saturation[key]
                        for key in (
                            "states",
                            "enodes",
                            "eclasses",
                            "rules_fired",
                            "iterations",
                            "budget_exhausted",
                        )
                    },
                },
            )
            entry[f"{phase}_seconds"] = round(seconds, 3)
            entry[f"{phase}_certified"] = [p.certified for p in outcome.pareto]
            if phase == "warm":
                # Determinism regression: the warm frontier must be
                # byte-identical to the cold one (same costs, same order).
                assert entry["frontier"] == len(outcome.pareto), name
                assert entry["best"] == outcome.best_cost.to_dict(), name
    return results


def measure_cli(tmp_dir: str) -> dict:
    """Subprocess checks: saturate exits 0, an unknown strategy exits 2."""
    import os
    import subprocess
    import sys
    from pathlib import Path

    import numpy as np

    from repro.components import default_environment
    from repro.dot import print_dot
    from repro.hls.frontend import compile_program
    from repro.hls.ir import BinOp, DoWhile, Kernel, Load, OuterLoop, Program, StoreOp, UnOp, Var

    loop = DoWhile(
        "gcd",
        ("a", "b"),
        {"a": Var("b"), "b": BinOp("mod", Var("a"), Var("b"))},
        UnOp("ne0", Var("b")),
        ("a",),
    )
    kernel = Kernel(
        "gcd",
        loop,
        (OuterLoop("i", 2),),
        {"a": Load("x", Var("i")), "b": Load("y", Var("i"))},
        (StoreOp("out", Var("i"), Var("a")),),
        tags=2,
    )
    program = Program(
        "gcd",
        {"x": np.array([12, 9]), "y": np.array([8, 6]), "out": np.zeros(2)},
        [kernel],
    )
    ck = compile_program(program, default_environment()).kernels[0]
    dot = Path(tmp_dir) / "gcd.dot"
    dot.write_text(print_dot(ck.graph))
    mark = ck.mark
    base = [
        sys.executable, "-m", "repro.cli", "transform", str(dot),
        "--mux", mark.mux_nodes[0], "--mux", mark.mux_nodes[1],
        "--branch", mark.branch_nodes[0], "--branch", mark.branch_nodes[1],
        "--init", mark.init_node, "--cond-fork", mark.cond_fork,
        "--driver", mark.driver, "--collector", mark.collector,
        "--tags", "2", "--no-cache",
        "-o", str(Path(tmp_dir) / "out.dot"),
    ]
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep * bool(env.get("PYTHONPATH", "")) + env.get("PYTHONPATH", "")
    saturate = subprocess.run(
        base + ["--strategy", "saturate", "--pareto"],
        capture_output=True, text=True, env=env,
    )
    bogus = subprocess.run(
        base + ["--strategy", "bogus"], capture_output=True, text=True, env=env
    )
    return {
        "saturate_exit": saturate.returncode,
        "bogus_exit": bogus.returncode,
        "bogus_names_error": "--strategy must be one of" in bogus.stderr,
    }


def _append_history(entry: dict) -> None:
    import json
    from pathlib import Path

    out = Path(__file__).with_name("BENCH_egraph.json")
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(entry, indent=2))


def main(argv=None) -> int:
    import argparse
    import tempfile

    from repro._version import __version__

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--guard",
        action="store_true",
        help="exit 1 unless the frontier and cost acceptance criteria hold",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp_dir:
        measurements = collect_measurements(tmp_dir)
        cli = measure_cli(tmp_dir)
    _append_history(
        {"tool_version": __version__, "kernels": measurements, "cli": cli}
    )

    if args.guard:
        failures = []
        for name, row in measurements.items():
            if row["best"]["time"] > row["fixpoint"]["time"]:
                failures.append(
                    f"{name}: best time {row['best']['time']} exceeds "
                    f"fixpoint {row['fixpoint']['time']}"
                )
            for phase in ("cold", "warm"):
                flags = row[f"{phase}_certified"]
                if not flags or not all(flags):
                    failures.append(f"{name}: {phase} run has uncertified points {flags}")
        rich = [name for name, row in measurements.items() if row["frontier"] >= 2]
        if len(rich) < 2:
            failures.append(f"frontier >= 2 on only {rich} (need two kernels)")
        if cli["saturate_exit"] != 0:
            failures.append(f"CLI --strategy saturate exited {cli['saturate_exit']}")
        if cli["bogus_exit"] != 2 or not cli["bogus_names_error"]:
            failures.append(f"CLI --strategy bogus validation wrong: {cli}")
        if failures:
            print("FAIL:\n  " + "\n  ".join(failures))
            return 1
        print(
            "OK: best<=fixpoint on all kernels; frontier>=2 on "
            + ", ".join(sorted(rich))
            + "; all points certified; CLI exits validated"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
