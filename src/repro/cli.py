"""Command-line interface, the analogue of the paper's extracted tool.

Section 6.3: "As the rewriting algorithm is written in Lean 4, it can be
extracted to C, producing a command-line program that interfaces with the
Dynamatic dot graph format."  This module is that program for the Python
reproduction::

    python -m repro.cli transform circuit.dot --mux mux_a --mux mux_b \
        --branch br_a --branch br_b --init init0 --cond-fork cf0 --tags 8
    python -m repro.cli verify            # discharge every rewrite obligation
    python -m repro.cli refine            # certified: recheck stored certificates
    python -m repro.cli refine --sharded --jobs 4    # shard cold searches
    python -m repro.cli refine --dump-certs certs/   # export certificate files
    python -m repro.cli refine --dump-certs certs/ --cert-format binary  # .grc
    python -m repro.cli refine --load-certs certs/   # independently re-validate
    python -m repro.cli bench matvec      # one benchmark, all four flows
    python -m repro.cli sim matvec --flow DF-OoO --backend compiled
    python -m repro.cli report            # the full Tables 2-3 + Figure 8 run
    python -m repro.cli export matvec -o matvec.v    # netlist export (.json/.v/.dot)
    python -m repro.cli import matvec.v -o matvec.json   # parse + transcode
    python -m repro.cli fuzz --cases 25 --seed 0     # differential fuzz corpus
    python -m repro.cli sat-check         # SAT oracle vs simulation game

``transform`` reads a dot graph, runs the five-phase out-of-order pipeline
on the marked loop, and writes the rewritten dot graph (or reports the
refusal, e.g. for effectful loop bodies).  ``--strategy saturate`` switches
to the equality-saturation backend: the kernel's rewrite closure is
explored, the (area, cycles) Pareto frontier extracted (``--pareto`` prints
it), and the best-cost circuit written.

Every subcommand goes through the :class:`repro.api.Session` facade and
accepts the executor flags: ``--jobs N`` fans independent work units
(benchmark × flow runs, rewrite obligations) over a process pool;
``--cache-dir`` points the content-addressed result cache somewhere
specific; ``--no-cache`` disables it.  Output is deterministic: a parallel
or warm-cache run prints the same bytes as a cold serial one.

Two observability flags (see :mod:`repro.obs`) are accepted everywhere:
``--trace FILE`` streams every closed span tree as JSON lines to *FILE*
(one span per line: ``id``, ``parent``, ``name``, ``seconds``,
``self_seconds``, ``attrs``), and ``--profile`` prints the span tree with
cumulative/self times to stderr after the command finishes.  Spans
recorded inside pool workers are re-parented into the parent process's
tree and marked ``reparented``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path


def _session(args: argparse.Namespace, **kwargs):
    from .api import Session

    return Session(
        jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_cache", False),
        **kwargs,
    )


@contextlib.contextmanager
def _observe(args: argparse.Namespace):
    """Attach the ``--trace``/``--profile`` sinks around one command."""
    from . import obs
    from .obs import InMemorySink, JsonlSink, render_tree

    tracer = obs.get_tracer()
    jsonl = None
    memory = None
    if getattr(args, "trace", None):
        jsonl = tracer.attach(JsonlSink(args.trace))
    if getattr(args, "profile", False):
        memory = tracer.attach(InMemorySink())
    try:
        yield
    finally:
        if jsonl is not None:
            tracer.detach(jsonl)
            jsonl.close()
            print(f"trace written to {args.trace}", file=sys.stderr)
        if memory is not None:
            tracer.detach(memory)
            if memory.spans:
                print(render_tree(memory.spans), file=sys.stderr)


def _cmd_transform(args: argparse.Namespace) -> int:
    from .dot import parse_dot, print_dot
    from .errors import GraphitiError
    from .hls.frontend import LoopMark

    graph = parse_dot(Path(args.input).read_text())
    try:
        mark = LoopMark.from_graph(
            graph,
            kernel=args.kernel,
            mux_nodes=args.mux,
            branch_nodes=args.branch,
            init_node=args.init,
            cond_fork=args.cond_fork,
            driver=args.driver or "",
            collector=args.collector or "",
            tags=args.tags,
        )
    except GraphitiError as exc:
        print(f"invalid loop mark: {exc}", file=sys.stderr)
        return 2
    session = _session(args, check_obligations=args.check)
    with _observe(args):
        result = session.transform(graph=graph, mark=mark, strategy=args.strategy)
    if not result.transformed and result.strategy != "saturate":
        print(f"refused: {result.refusal}", file=sys.stderr)
        return 2
    if args.pareto and result.pareto:
        print(f"{'area':>8s} {'cycles':>8s} {'CP(ns)':>8s} {'time(ns)':>10s} {'steps':>6s} certified", file=sys.stderr)
        for point in result.pareto:
            cost = point.cost
            print(
                f"{cost.area:>8d} {cost.cycles:>8d} {cost.clock_period:>8.2f} "
                f"{cost.time:>10.1f} {len(point.derivation):>6d} {point.certified}",
                file=sys.stderr,
            )
    output = print_dot(result.graph)
    if args.output:
        Path(args.output).write_text(output)
    else:
        print(output)
    print(result.summary(), file=sys.stderr)
    print(session.metrics().summary(), file=sys.stderr)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    session = _session(args)
    failures = 0
    with _observe(args):
        outcomes = session.verify()
    for outcome in outcomes:
        if outcome["holds"]:
            status = "verified"
        elif outcome["verified_flag"]:
            status = f"FAILED ({outcome['detail']})"
            failures += 1
        else:
            status = f"REFUTED ({outcome['detail']})"
        print(f"{outcome['rewrite']:20s} {status}  [{outcome['seconds']:.2f}s]")
    print(session.metrics().summary(), file=sys.stderr)
    if failures:
        print(f"{failures} verified-marked rewrites failed", file=sys.stderr)
        return 1
    print("all verified rewrites discharged; unverified ones refuted as documented")
    return 0


def _refine_specs(args: argparse.Namespace):
    """Resolve ``--rule`` filters against the verified-rewrite registry.

    Raises :class:`~repro.errors.GraphitiError` on an unknown rule name so
    callers report it as an invalid-argument failure (exit code 2, like
    every other bad flag — see the exit-code table in ``docs/api.md``).
    """
    from .errors import GraphitiError
    from .rewriting.rules import VERIFY_FACTORY_SPECS

    specs = list(VERIFY_FACTORY_SPECS)
    if args.rule:
        wanted = set(args.rule)
        specs = [spec for spec in specs if spec[1] in wanted]
        unknown = wanted - {factory for _, factory, _ in specs}
        if unknown:
            known = sorted({factory for _, factory, _ in VERIFY_FACTORY_SPECS})
            raise GraphitiError(f"unknown rule(s) {sorted(unknown)}; known: {known}")
    return specs


def _refine_dump(args: argparse.Namespace) -> int:
    """Discharge obligations serially, writing one certificate file each."""
    import json

    from .errors import GraphitiError, RefinementError
    from .refinement.checker import check_rewrite_obligation
    from .rewriting.rules import build_rewrite

    try:
        specs = _refine_specs(args)
    except GraphitiError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_dir = Path(args.dump_certs).expanduser()
    out_dir.mkdir(parents=True, exist_ok=True)
    binary = args.cert_format == "binary"
    if binary:
        from .refinement.codec import to_bytes as certificate_to_bytes
    session = _session(args)
    failures = written = 0
    with _observe(args):
        for module, factory, kwargs in specs:
            rewrite = build_rewrite(module, factory, kwargs)
            if rewrite.obligation is None:
                continue
            for index, (lhs, rhs, env, stimuli) in enumerate(rewrite.obligation()):
                try:
                    report = check_rewrite_obligation(
                        lhs, rhs, env, stimuli, cache=session.cache
                    )
                except RefinementError as exc:
                    print(f"{rewrite.name}[{index}] FAILED: {exc}", file=sys.stderr)
                    failures += 1
                    continue
                meta = {
                    "kind": "ObligationCertificate",
                    "rewrite": rewrite.name,
                    "module": module,
                    "factory": factory,
                    "kwargs": kwargs,
                    "instance": index,
                    "mode": report.mode,
                }
                if binary:
                    # .grc layout: one-line JSON metadata header, then the
                    # raw binary certificate container (see refinement.codec).
                    path = out_dir / f"{factory}-{index}.grc"
                    path.write_bytes(
                        json.dumps(meta).encode("utf-8")
                        + b"\n"
                        + certificate_to_bytes(report.certificate)
                    )
                else:
                    path = out_dir / f"{factory}-{index}.json"
                    meta["certificate"] = report.certificate.to_dict()
                    path.write_text(json.dumps(meta))
                written += 1
                print(f"{rewrite.name}[{index}] {report.summary()} -> {path}")
    print(f"{written} certificates written to {out_dir}", file=sys.stderr)
    return 1 if failures else 0


def _refine_load(args: argparse.Namespace) -> int:
    """Re-validate dumped certificate files against fresh obligations."""
    import json

    from .errors import GraphitiError
    from .refinement.checker import recheck_obligation_certificate
    from .refinement.simulation import SimulationCertificate
    from .rewriting.rules import build_rewrite

    cert_dir = Path(args.load_certs).expanduser()
    files = sorted(list(cert_dir.glob("*.json")) + list(cert_dir.glob("*.grc")))
    if not files:
        print(f"error: no certificate files in {cert_dir}", file=sys.stderr)
        return 2
    failures = 0
    with _observe(args):
        for path in files:
            try:
                if path.suffix == ".grc":
                    from .refinement.codec import from_bytes as certificate_from_bytes

                    header, _, blob = path.read_bytes().partition(b"\n")
                    data = json.loads(header.decode("utf-8"))
                    certificate = certificate_from_bytes(blob)
                else:
                    data = json.loads(path.read_text())
                    certificate = SimulationCertificate.from_dict(data["certificate"])
                rewrite = build_rewrite(
                    data["module"], data["factory"], data.get("kwargs") or {}
                )
                instances = list(rewrite.obligation() or [])
                lhs, rhs, env, stimuli = instances[int(data["instance"])]
                report = recheck_obligation_certificate(
                    lhs, rhs, env, certificate, stimuli
                )
            except (GraphitiError, KeyError, IndexError, ValueError) as exc:
                print(f"{path.name:30s} FAILED: {exc}")
                failures += 1
                continue
            print(f"{path.name:30s} {report.summary()}")
    if failures:
        print(f"{failures} certificates failed re-validation", file=sys.stderr)
        return 1
    print(f"all {len(files)} certificates re-validated", file=sys.stderr)
    return 0


def _cmd_refine(args: argparse.Namespace) -> int:
    if args.dump_certs and args.load_certs:
        print("error: --dump-certs and --load-certs are mutually exclusive", file=sys.stderr)
        return 2
    if args.dump_certs:
        return _refine_dump(args)
    if args.load_certs:
        return _refine_load(args)
    from .errors import GraphitiError

    try:
        specs = _refine_specs(args)
    except GraphitiError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = _session(args)
    failures = 0
    with _observe(args):
        outcomes = session.check_obligations(specs, sharded=args.sharded)
    for outcome in outcomes:
        if outcome["holds"]:
            status = (
                f"holds [{outcome['mode']}] "
                f"({outcome['instances']} instance"
                f"{'s' if outcome['instances'] != 1 else ''})"
            )
        elif outcome["verified_flag"]:
            status = f"FAILED ({outcome['detail']})"
            failures += 1
        else:
            status = f"REFUTED ({outcome['detail']})"
        print(f"{outcome['rewrite']:20s} {status}  [{outcome['seconds']:.2f}s]")
    print(session.metrics().summary(), file=sys.stderr)
    if failures:
        print(f"{failures} verified-marked rewrites failed", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    session = _session(args)
    try:
        with _observe(args):
            result = session.bench(name=args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"{'flow':10s} {'cycles':>9s} {'CP(ns)':>8s} {'exec(ns)':>11s} {'LUT':>6s} {'FF':>6s} {'DSP':>4s} ok")
    for flow in ("DF-IO", "DF-OoO", "GRAPHITI", "Vericert"):
        fr = result[flow]
        print(
            f"{flow:10s} {fr.cycles:>9d} {fr.area.clock_period:>8.2f} "
            f"{fr.execution_time:>11.0f} {fr.area.luts:>6d} {fr.area.ffs:>6d} "
            f"{fr.area.dsps:>4d} {fr.correct}"
        )
    print(session.metrics().summary(), file=sys.stderr)
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    from .hls.frontend import compile_program
    from .hls.ooo import transform_out_of_order
    from .rewriting.pipeline import GraphitiPipeline

    try:
        from .benchmarks import load_benchmark

        program = load_benchmark(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.stimuli:
        import numpy as np

        try:
            data = np.load(args.stimuli)
        except (OSError, ValueError) as exc:
            print(f"error: --stimuli file {args.stimuli}: {exc}", file=sys.stderr)
            return 2
        if not hasattr(data, "files"):
            print(
                f"error: --stimuli file {args.stimuli} is not an .npz archive",
                file=sys.stderr,
            )
            return 2
        for key in data.files:
            if key not in program.arrays:
                print(
                    f"error: --stimuli array {key!r} is not an array of "
                    f"benchmark {args.name!r} (has: {', '.join(sorted(program.arrays))})",
                    file=sys.stderr,
                )
                return 2
            try:
                program.arrays[key][...] = data[key]
            except ValueError as exc:
                print(f"error: --stimuli array {key!r}: {exc}", file=sys.stderr)
                return 2
    session = _session(args)
    ck = compile_program(program, session.env).kernels[0]
    if args.flow == "DF-IO":
        graph, tags = ck.graph, None
    elif args.flow == "DF-OoO":
        graph, tags = transform_out_of_order(ck.graph, ck.mark), ck.mark.tags
    elif args.flow == "GRAPHITI":
        outcome = GraphitiPipeline(session.env).transform_kernel(ck.graph, ck.mark)
        if outcome.transformed:
            graph, tags = outcome.graph, ck.mark.tags
        else:
            print(f"refused: {outcome.refusal}; simulating in-order", file=sys.stderr)
            graph, tags = ck.graph, None
    else:
        print(
            f"error: --flow must be one of DF-IO, DF-OoO, GRAPHITI (got {args.flow})",
            file=sys.stderr,
        )
        return 2
    with _observe(args):
        stats = session.simulate(
            graph_or_kernel=graph,
            kernel=ck.kernel,
            stimuli=program.arrays,
            backend=args.backend,
            tags=tags,
        )
    print(f"{args.name} [{args.flow}] backend={args.backend}")
    print(f"cycles            {stats.cycles}")
    print(f"tokens fired      {stats.tokens_fired}")
    print(f"results collected {stats.results_collected}")
    print(f"peak in flight    {stats.peak_in_flight}")
    hottest = sorted(
        stats.channel_peaks.items(), key=lambda item: (-item[1], str(item[0][0]))
    )[:5]
    for (src, dst), peak in hottest:
        print(f"  peak {peak:>3d}  {src} -> {dst}")
    print(session.metrics().summary(), file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .eval.paper_data import BENCHMARKS

    names = args.benchmarks or list(BENCHMARKS)
    print(f"running {', '.join(names)} (jobs={args.jobs})...", file=sys.stderr)
    session = _session(args)
    try:
        with _observe(args):
            report = session.report(names)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(report)
    print(session.metrics().summary(), file=sys.stderr)
    return 0



def _cmd_export(args: argparse.Namespace) -> int:
    from .errors import NetlistError
    from .hls.frontend import compile_program
    from .hls.ooo import transform_out_of_order
    from .rewriting.pipeline import GraphitiPipeline

    try:
        from .benchmarks import load_benchmark

        program = load_benchmark(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    session = _session(args)
    ck = compile_program(program, session.env).kernels[0]
    if args.flow == "DF-IO":
        graph = ck.graph
    elif args.flow == "DF-OoO":
        graph = transform_out_of_order(ck.graph, ck.mark)
    elif args.flow == "GRAPHITI":
        outcome = GraphitiPipeline(session.env).transform_kernel(ck.graph, ck.mark)
        if not outcome.transformed:
            print(f"refused: {outcome.refusal}; exporting in-order", file=sys.stderr)
        graph = outcome.graph
    else:
        print(
            f"error: --flow must be one of DF-IO, DF-OoO, GRAPHITI (got {args.flow})",
            file=sys.stderr,
        )
        return 2
    try:
        with _observe(args):
            fmt = session.export_graph(
                graph, args.output, fmt=args.format, name=program.name
            )
    except NetlistError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"{program.name} [{args.flow}] -> {args.output} "
        f"({fmt}, {len(graph.nodes)} nodes, {len(graph.connections)} connections)"
    )
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    from .errors import NetlistError

    session = _session(args)
    try:
        with _observe(args):
            graph = session.load_graph(args.input, fmt=args.format)
            graph.validate()
            if args.output:
                fmt = session.export_graph(
                    graph, args.output, fmt=args.to, name=Path(args.input).stem
                )
    except NetlistError as exc:
        print(f"error: {args.input}: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"{args.input}: {len(graph.nodes)} nodes, "
        f"{len(graph.connections)} connections, "
        f"{len(graph.inputs)} inputs, {len(graph.outputs)} outputs"
    )
    if args.output:
        print(f"transcoded to {args.output} ({fmt})")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    session = _session(args)
    with _observe(args):
        manifest = session.fuzz(
            cases=args.cases, seed=args.seed, backend=args.backend
        )
    for entry in manifest["cases"]:
        flags = []
        if entry["effectful"]:
            flags.append("effectful")
        if entry["ooo_divergence"]:
            flags.append("ooo-divergence")
        status = "ok" if entry["ok"] else "FAILED: " + "; ".join(entry["failures"])
        print(
            f"seed {entry['seed']:>10d}  {entry['nodes']:>3d} nodes  "
            f"{status}{('  [' + ', '.join(flags) + ']') if flags else ''}"
        )
    print(
        f"{manifest['count']} cases, "
        f"{manifest['ooo_divergences']} DF-OoO divergences, "
        f"{manifest['effectful_cases']} effectful, "
        f"manifest {manifest['content_hash'][:12]}",
        file=sys.stderr,
    )
    if args.manifest:
        Path(args.manifest).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        print(f"manifest written to {args.manifest}", file=sys.stderr)
    print(session.metrics().summary(), file=sys.stderr)
    return 0 if manifest["ok"] else 1


def _cmd_sat_check(args: argparse.Namespace) -> int:
    from .errors import GraphitiError

    try:
        specs = _refine_specs(args)
    except GraphitiError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = _session(args)
    with _observe(args):
        outcomes = session.sat_check(specs, bound=args.bound)
    disagreements = 0
    for outcome in outcomes:
        if outcome["agreed"]:
            pairs = sum(entry["pairs"] for entry in outcome["instances"])
            verdict = "holds" if outcome["holds"] else "refuted"
            status = f"agreed ({verdict}, {pairs} pairs)"
        else:
            status = f"DISAGREEMENT ({outcome['detail']})"
            disagreements += 1
        print(f"{outcome['rewrite']:20s} {status}  [{outcome['seconds']:.2f}s]")
    print(session.metrics().summary(), file=sys.stderr)
    if disagreements:
        print(f"{disagreements} oracle disagreements", file=sys.stderr)
        return 1
    print("SAT oracle and weak-simulation game agree on every obligation")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import serve

    return serve(args)


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent work units over N worker processes (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
        "$XDG_CACHE_HOME/graphiti-repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write every span tree as JSON lines to FILE",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the span tree with self/cumulative times to stderr",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    transform = sub.add_parser("transform", help="make a dot graph's loop out-of-order")
    transform.add_argument("input", help="input dot file")
    transform.add_argument("-o", "--output", help="output dot file (default: stdout)")
    transform.add_argument("--kernel", default="loop", help="loop name for diagnostics")
    transform.add_argument("--mux", action="append", required=True, help="loop Mux node (repeat)")
    transform.add_argument("--branch", action="append", required=True, help="loop Branch node (repeat)")
    transform.add_argument("--init", required=True, help="the loop's Init node")
    transform.add_argument("--cond-fork", required=True, help="the condition fork node")
    transform.add_argument("--driver", help="driver pseudo-node, if present")
    transform.add_argument("--collector", help="collector pseudo-node, if present")
    transform.add_argument("--tags", type=int, default=4, help="tag budget")
    transform.add_argument("--check", action="store_true", help="discharge obligations before applying")
    transform.add_argument(
        "--strategy", default="fixpoint", metavar="NAME",
        help="optimization strategy: fixpoint | saturate (default: fixpoint)",
    )
    transform.add_argument(
        "--pareto", action="store_true",
        help="with --strategy saturate: print the extracted pareto frontier to stderr",
    )
    _add_exec_flags(transform)
    transform.set_defaults(fn=_cmd_transform)

    verify = sub.add_parser("verify", help="discharge every rewrite obligation")
    _add_exec_flags(verify)
    verify.set_defaults(fn=_cmd_verify)

    refine = sub.add_parser(
        "refine",
        help="certified obligation checking with persistent simulation certificates",
    )
    refine.add_argument(
        "--rule", action="append", metavar="FACTORY",
        help="restrict to these rewrite factories (repeatable; default: all)",
    )
    refine.add_argument(
        "--dump-certs", default=None, metavar="DIR",
        help="write one certificate JSON file per obligation instance to DIR",
    )
    refine.add_argument(
        "--load-certs", default=None, metavar="DIR",
        help="re-validate certificate files from DIR against fresh obligations",
    )
    refine.add_argument(
        "--cert-format", default="json", choices=("json", "binary"),
        help="with --dump-certs: certificate file encoding — json writes "
        "one .json document per instance, binary writes the compact .grc "
        "container (default: json)",
    )
    refine.add_argument(
        "--sharded", action="store_true",
        help="partition each cold search's frontier across the --jobs "
        "worker pool (certificates stay byte-identical to serial runs)",
    )
    _add_exec_flags(refine)
    refine.set_defaults(fn=_cmd_refine)

    bench = sub.add_parser("bench", help="run one benchmark through all four flows")
    bench.add_argument("name", help="bicg | gemm | gsum-many | gsum-single | matvec | mvt")
    _add_exec_flags(bench)
    bench.set_defaults(fn=_cmd_bench)

    sim = sub.add_parser("sim", help="cycle-simulate one benchmark kernel under one flow")
    sim.add_argument("name", help="bicg | gemm | gsum-many | gsum-single | matvec | mvt")
    sim.add_argument(
        "--flow", default="DF-OoO", metavar="FLOW",
        help="dataflow flow: DF-IO | DF-OoO | GRAPHITI (default: DF-OoO)",
    )
    sim.add_argument(
        "--backend", default="compiled", metavar="NAME",
        help="simulation backend: compiled | interp (default: compiled)",
    )
    sim.add_argument(
        "--stimuli", default=None, metavar="FILE",
        help=".npz file whose arrays override the benchmark's input arrays",
    )
    _add_exec_flags(sim)
    sim.set_defaults(fn=_cmd_sim)

    report = sub.add_parser("report", help="regenerate Tables 2-3 and Figure 8")
    report.add_argument("benchmarks", nargs="*", help="subset of benchmarks (default: all)")
    _add_exec_flags(report)
    report.set_defaults(fn=_cmd_report)

    export = sub.add_parser(
        "export", help="export a benchmark kernel's graph as a netlist file"
    )
    export.add_argument("name", help="bicg | gemm | gsum-many | gsum-single | matvec | mvt")
    export.add_argument("-o", "--output", required=True, help="output netlist file")
    export.add_argument(
        "--format", default=None, choices=("json", "verilog", "dot"),
        help="netlist format (default: inferred from the output extension)",
    )
    export.add_argument(
        "--flow", default="DF-IO", metavar="FLOW",
        help="export the circuit of this flow: DF-IO | DF-OoO | GRAPHITI (default: DF-IO)",
    )
    _add_exec_flags(export)
    export.set_defaults(fn=_cmd_export)

    import_ = sub.add_parser(
        "import", help="parse and validate a netlist file (optionally transcode)"
    )
    import_.add_argument("input", help="input netlist file (.json / .v / .dot)")
    import_.add_argument(
        "--format", default=None, choices=("json", "verilog", "dot"),
        help="input format (default: inferred from the extension)",
    )
    import_.add_argument(
        "-o", "--output", default=None, help="transcode to this file"
    )
    import_.add_argument(
        "--to", default=None, choices=("json", "verilog", "dot"),
        help="output format (default: inferred from the -o extension)",
    )
    _add_exec_flags(import_)
    import_.set_defaults(fn=_cmd_import)

    fuzz = sub.add_parser(
        "fuzz", help="run a seeded differential fuzz corpus over the whole flow"
    )
    fuzz.add_argument(
        "--cases", type=int, default=25, metavar="N",
        help="number of generated programs (default: 25)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="corpus seed; equal (seed, cases) replays identically (default: 0)",
    )
    fuzz.add_argument(
        "--backend", default="compiled", metavar="NAME",
        help="simulation backend: compiled | interp (default: compiled)",
    )
    fuzz.add_argument(
        "--manifest", default=None, metavar="FILE",
        help="write the canonical corpus manifest JSON to FILE",
    )
    _add_exec_flags(fuzz)
    fuzz.set_defaults(fn=_cmd_fuzz)

    sat_check = sub.add_parser(
        "sat-check",
        help="cross-check rewrite obligations: SAT oracle vs simulation game",
    )
    sat_check.add_argument(
        "--rule", action="append", metavar="FACTORY",
        help="restrict to these rewrite factories (repeatable; default: all)",
    )
    sat_check.add_argument(
        "--bound", type=int, default=None, metavar="N",
        help="SAT encoder pair-exploration bound (default: 200000)",
    )
    _add_exec_flags(sat_check)
    sat_check.set_defaults(fn=_cmd_sat_check)

    serve = sub.add_parser(
        "serve", help="run the verification service (async HTTP job server)"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8750,
        help="bind port; 0 picks a free one (default: 8750)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent job slots: worker threads + pooled Sessions (default: 2)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=256, metavar="N",
        help="queued-job backpressure bound (default: 256)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=600.0, metavar="SECONDS",
        help="default per-job timeout (default: 600)",
    )
    _add_exec_flags(serve)
    serve.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 1:
        print(f"error: --jobs must be >= 1 (got {args.jobs})", file=sys.stderr)
        return 2
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        print(f"error: --workers must be >= 1 (got {workers})", file=sys.stderr)
        return 2
    port = getattr(args, "port", None)
    if port is not None and not 0 <= port <= 65535:
        print(f"error: --port must be in 0..65535 (got {port})", file=sys.stderr)
        return 2
    max_pending = getattr(args, "max_pending", None)
    if max_pending is not None and max_pending < 1:
        print(f"error: --max-pending must be >= 1 (got {max_pending})", file=sys.stderr)
        return 2
    job_timeout = getattr(args, "job_timeout", None)
    if job_timeout is not None and job_timeout <= 0:
        print(f"error: --job-timeout must be > 0 (got {job_timeout})", file=sys.stderr)
        return 2
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        parent = Path(cache_dir).expanduser().parent
        if not parent.is_dir():
            print(
                f"error: --cache-dir parent directory {parent} does not exist",
                file=sys.stderr,
            )
            return 2
    trace = getattr(args, "trace", None)
    if trace is not None:
        parent = Path(trace).expanduser().parent
        if not parent.is_dir():
            print(
                f"error: --trace parent directory {parent} does not exist",
                file=sys.stderr,
            )
            return 2
    backend = getattr(args, "backend", None)
    if backend is not None:
        from .sim.dispatch import BACKENDS

        if backend not in BACKENDS:
            print(
                f"error: --backend must be one of {', '.join(BACKENDS)} (got {backend})",
                file=sys.stderr,
            )
            return 2
    stimuli = getattr(args, "stimuli", None)
    if stimuli is not None and not Path(stimuli).expanduser().is_file():
        print(f"error: --stimuli file {stimuli} does not exist", file=sys.stderr)
        return 2
    cases = getattr(args, "cases", None)
    if cases is not None and cases < 1:
        print(f"error: --cases must be >= 1 (got {cases})", file=sys.stderr)
        return 2
    bound = getattr(args, "bound", None)
    if bound is not None and bound < 1:
        print(f"error: --bound must be >= 1 (got {bound})", file=sys.stderr)
        return 2
    strategy = getattr(args, "strategy", None)
    if strategy is not None:
        from .rewriting.saturate import STRATEGIES

        if strategy not in STRATEGIES:
            print(
                f"error: --strategy must be one of {', '.join(STRATEGIES)} (got {strategy})",
                file=sys.stderr,
            )
            return 2
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
