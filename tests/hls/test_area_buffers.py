"""Tests for the technology model and buffer placement."""

import pytest

from repro.components import branch, default_environment, fork, merge, mux, operator, tagger
from repro.core.exprhigh import ExprHigh
from repro.hls.area import (
    COMPONENT_PROFILES,
    OP_PROFILES,
    analyze,
    base_op,
    latency_of,
    op_profile,
)
from repro.hls.buffers import place_buffers


def loop_graph(tagged=False):
    g = ExprHigh()
    g.add_node("m", merge() if tagged else mux())
    g.add_node("op", operator("fadd", 2, tagged=tagged))
    g.add_node("br", branch(tagged=tagged))
    g.add_node("f", fork(2))
    if tagged:
        g.add_node("tg", tagger(tags=8))
        g.connect("tg", "out0", "m", "in1")
        g.connect("br", "out1", "tg", "in1")
        g.mark_input(0, "tg", "in0")
        g.mark_output(1, "tg", "out1")
    else:
        g.mark_input(0, "m", "in1" if not tagged else "in1")
        g.mark_output(1, "br", "out1")
    g.connect("m", "out0", "op", "in0")
    g.connect("op", "out0", "f", "in0")
    g.connect("f", "out0", "br", "in0")
    g.connect("f", "out1", "br", "cond")
    g.connect("br", "out0", "m", "in0")
    if tagged:
        g.mark_input(1, "op", "in1")
        g.mark_input(2, "m", "cond") if not tagged else None
        g.mark_output(0, "tg", "out0") if False else None
    # Close remaining ports generically.
    index = 10
    for endpoint in list(g.unconnected_inputs()):
        g.mark_input(index, endpoint.node, endpoint.port)
        index += 1
    for endpoint in list(g.unconnected_outputs()):
        g.mark_output(index, endpoint.node, endpoint.port)
        index += 1
    return g


class TestBaseOp:
    def test_plain_ops(self):
        assert base_op("fadd") == "fadd"

    def test_partial_ops_keep_base(self):
        assert base_op("sub.k1.1") == "sub"
        assert base_op("select.k2.0.0") == "select"

    def test_array_reads_are_loads(self):
        assert base_op("read.A") == "load"

    def test_unknown_op_gets_default_profile(self):
        profile = op_profile("mystery")
        assert profile.latency >= 1


class TestLatency:
    def test_operator_latency_from_op(self):
        assert latency_of("Operator", {"op": "fadd"}) == OP_PROFILES["fadd"].latency

    def test_steering_is_combinational(self):
        assert latency_of("Fork", {}) == 0
        assert latency_of("Join", {}) == 0
        assert latency_of("Init", {}) == 0

    def test_sequencing_points_are_registered(self):
        assert latency_of("Mux", {}) == 1
        assert latency_of("Branch", {}) == 1
        assert latency_of("Merge", {}) == 1


class TestAnalyze:
    def test_dsp_counting(self):
        g = ExprHigh()
        g.add_node("m1", operator("fmul", 2))
        g.add_node("m2", operator("mul", 2))
        for index, (node, port) in enumerate(
            [("m1", "in0"), ("m1", "in1"), ("m2", "in0"), ("m2", "in1")]
        ):
            g.mark_input(index, node, port)
        g.mark_output(0, "m1", "out0")
        g.mark_output(1, "m2", "out0")
        report = analyze(g)
        assert report.dsps == 6  # 5 (fmul) + 1 (int mul)

    def test_tagger_ffs_grow_with_tags(self):
        def tagger_graph(tags):
            g = ExprHigh()
            g.add_node("tg", tagger(tags=tags))
            g.mark_input(0, "tg", "in0")
            g.mark_input(1, "tg", "in1")
            g.mark_output(0, "tg", "out0")
            g.mark_output(1, "tg", "out1")
            return g

        small = analyze(tagger_graph(4))
        large = analyze(tagger_graph(50))
        assert large.ffs > small.ffs + 2000  # the Table 3 matvec effect

    def test_tagged_components_worsen_clock(self):
        plain = analyze(loop_graph(tagged=False))
        tagged = analyze(loop_graph(tagged=True))
        assert tagged.clock_period > plain.clock_period

    def test_buffer_slots_cost_ffs(self):
        g = loop_graph()
        assert analyze(g, extra_buffer_slots=10).ffs == analyze(g).ffs + 340

    def test_execution_time(self):
        report = analyze(loop_graph())
        assert report.execution_time(100) == pytest.approx(100 * report.clock_period)


class TestBufferPlacement:
    def test_every_edge_gets_a_capacity(self):
        g = loop_graph()
        placement = place_buffers(g)
        assert set(placement.capacities) == {
            (src, dst) for dst, src in g.connections.items()
        }

    def test_default_two_slots(self):
        g = loop_graph()
        placement = place_buffers(g)
        assert all(slots >= 2 for slots in placement.capacities.values())

    def test_loop_back_edge_gets_extra_slack(self):
        g = loop_graph()
        placement = place_buffers(g)
        assert max(placement.capacities.values()) >= 3

    def test_tagged_region_widened_to_tag_budget(self):
        g = loop_graph(tagged=True)
        placement = place_buffers(g, tags=8)
        assert max(placement.capacities.values()) >= 8

    def test_extra_slots_accounted(self):
        g = loop_graph(tagged=True)
        assert place_buffers(g, tags=8).extra_slots > place_buffers(g).extra_slots
