"""Tests for the graph-compiled simulation engine (repro.sim.compiled)."""

import numpy as np
import pytest

from repro.components import default_environment, join
from repro.errors import DeadlockError, SimulationError
from repro.hls.area import latency_of
from repro.hls.buffers import place_buffers
from repro.hls.frontend import compile_program
from repro.hls.ooo import transform_out_of_order
from repro.sim.compiled import BatchRun, CompiledCircuit, compile_circuit
from repro.sim.cycle import CycleSimulator
from repro.sim.dispatch import BACKENDS, simulate_graph

from .test_cycle import countdown_program


def compile_countdown(transform=None, n_points=4):
    """(program, env, ck, graph, capacities) for the countdown benchmark."""
    program = countdown_program(n_points)
    env = default_environment()
    compiled = compile_program(program, env)
    ck = compiled.kernels[0]
    if transform == "ooo":
        graph, tags = transform_out_of_order(ck.graph, ck.mark), ck.mark.tags
    else:
        graph, tags = ck.graph, None
    return program, env, ck, graph, place_buffers(graph, tags).capacities


def stats_tuple(stats):
    return (
        stats.cycles,
        stats.tokens_fired,
        stats.results_collected,
        stats.peak_in_flight,
        stats.channel_peaks,
        [(a, int(i), float(v)) for a, i, v in stats.store_history],
    )


class TestCompileOnceRunMany:
    def test_repeated_runs_are_identical(self):
        program, env, ck, graph, caps = compile_countdown("ooo")
        pristine = {k: v.copy() for k, v in program.arrays.items()}
        circuit = compile_circuit(
            graph, env, ck.kernel, capacities=caps, latency_of=latency_of
        )
        seen = []
        for _ in range(3):
            for k, v in pristine.items():
                program.arrays[k][...] = v
            stats = circuit.run(program.arrays)
            seen.append((stats_tuple(stats), {k: v.copy() for k, v in program.arrays.items()}))
        first_stats, first_arrays = seen[0]
        assert first_stats[2] == 4  # all outer points collected
        for other_stats, other_arrays in seen[1:]:
            assert other_stats == first_stats
            for key in first_arrays:
                assert np.array_equal(other_arrays[key], first_arrays[key])

    def test_matches_interpreter(self):
        program, env, ck, graph, caps = compile_countdown("ooo")
        pristine = {k: v.copy() for k, v in program.arrays.items()}
        compiled_stats = simulate_graph(
            graph, env, ck.kernel, program.arrays,
            capacities=caps, latency_of=latency_of, backend="compiled",
        )
        compiled_out = program.arrays["out"].copy()
        for k, v in pristine.items():
            program.arrays[k][...] = v
        interp_stats = simulate_graph(
            graph, env, ck.kernel, program.arrays,
            capacities=caps, latency_of=latency_of, backend="interp",
        )
        assert stats_tuple(compiled_stats) == stats_tuple(interp_stats)
        assert np.array_equal(compiled_out, program.arrays["out"])


class TestRunBatch:
    def test_batch_with_per_run_capacities(self):
        program, env, ck, graph, caps = compile_countdown("ooo")
        pristine = {k: v.copy() for k, v in program.arrays.items()}
        narrowed = {edge: 1 for edge in caps}
        circuit = compile_circuit(
            graph, env, ck.kernel, capacities=caps, latency_of=latency_of
        )

        def fresh():
            return {k: v.copy() for k, v in pristine.items()}

        results = circuit.run_batch(
            [
                BatchRun(arrays=fresh()),
                BatchRun(arrays=fresh(), capacities=narrowed),
                BatchRun(arrays=fresh(), capacities=caps),
            ]
        )
        assert len(results) == 3
        # Starving the buffers can only slow the circuit down.
        assert results[1].cycles >= results[0].cycles
        # Returning to the compile-time placement restores the measurement.
        assert stats_tuple(results[2]) == stats_tuple(results[0])

    def test_mapping_configs_are_coerced(self):
        program, env, ck, graph, caps = compile_countdown()
        circuit = compile_circuit(
            graph, env, ck.kernel, capacities=caps, latency_of=latency_of
        )
        arrays = {k: v.copy() for k, v in program.arrays.items()}
        [from_mapping] = circuit.run_batch([{"arrays": arrays}])
        arrays = {k: v.copy() for k, v in program.arrays.items()}
        [from_dataclass] = circuit.run_batch([BatchRun(arrays=arrays)])
        assert stats_tuple(from_mapping) == stats_tuple(from_dataclass)


class TestRetarget:
    def test_retarget_counts_changed_channels(self):
        program, env, ck, graph, caps = compile_countdown("ooo")
        circuit = compile_circuit(
            graph, env, ck.kernel, capacities=caps, latency_of=latency_of
        )
        narrowed = {edge: 1 for edge in caps}
        changed = circuit.retarget(narrowed)
        assert changed == sum(1 for edge, cap in caps.items() if cap != 1)
        # Retargeting to the capacities already in force is a no-op.
        assert circuit.retarget(narrowed) == 0

    def test_retarget_matches_fresh_compile(self):
        program, env, ck, graph, caps = compile_countdown("ooo")
        pristine = {k: v.copy() for k, v in program.arrays.items()}
        narrowed = {edge: 1 for edge in caps}

        circuit = compile_circuit(
            graph, env, ck.kernel, capacities=caps, latency_of=latency_of
        )
        retargeted = circuit.run(
            {k: v.copy() for k, v in pristine.items()}, capacities=narrowed
        )
        fresh = compile_circuit(
            graph, env, ck.kernel, capacities=narrowed, latency_of=latency_of
        ).run({k: v.copy() for k, v in pristine.items()})
        assert stats_tuple(retargeted) == stats_tuple(fresh)


class TestDeadlockParity:
    def make_starved(self):
        # Same construction as TestDeadlockDetection in test_cycle.py: cut
        # the mux_n loop-back and route it through a Join whose second
        # input dangles, so the circuit starves.
        program = countdown_program(2)
        env = default_environment()
        compiled = compile_program(program, env)
        ck = compiled.kernels[0]
        graph = ck.graph.copy()
        src = graph.disconnect("mux_n", "in0")
        graph.add_node("stray", join())
        graph.connect(src.node, src.port, "stray", "in0")
        graph.connect("stray", "out0", "mux_n", "in0")
        return program, env, ck, graph

    def test_both_backends_raise_identical_deadlock(self):
        program, env, ck, graph = self.make_starved()
        pristine = {k: v.copy() for k, v in program.arrays.items()}

        with pytest.raises(DeadlockError) as interp_err:
            CycleSimulator(
                graph, env, ck.kernel, program.arrays, {}, latency_of,
                deadlock_window=200,
            ).run()
        for k, v in pristine.items():
            program.arrays[k][...] = v
        circuit = compile_circuit(graph, env, ck.kernel, latency_of=latency_of)
        with pytest.raises(DeadlockError) as compiled_err:
            circuit.run(program.arrays, deadlock_window=200)

        assert str(compiled_err.value) == str(interp_err.value)
        assert compiled_err.value.cycle == interp_err.value.cycle


class TestFullChannelDiagnostic:
    def test_overflow_names_the_edge_and_occupancy(self):
        program, env, ck, graph, caps = compile_countdown()
        circuit = compile_circuit(
            graph, env, ck.kernel, capacities=caps, latency_of=latency_of
        )
        ring = circuit._channels[0]
        for _ in range(ring.cap):
            ring.push(0)
        with pytest.raises(SimulationError) as err:
            ring.push(0)
        message = str(err.value)
        assert f"{ring.src} -> {ring.dst}" in message
        assert f"({ring.cap}/{ring.cap} occupied)" in message


class TestDispatch:
    def test_backends_tuple(self):
        assert BACKENDS == ("compiled", "interp")

    def test_unknown_backend_raises_value_error(self):
        program, env, ck, graph, caps = compile_countdown()
        with pytest.raises(ValueError, match="unknown simulation backend"):
            simulate_graph(
                graph, env, ck.kernel, program.arrays,
                capacities=caps, latency_of=latency_of, backend="bogus",
            )

    def test_unknown_component_type_rejected_at_compile(self):
        from repro.core import ExprHigh, NodeSpec

        program, env, ck, _, _ = compile_countdown()
        graph = ExprHigh()
        graph.add_node("mystery", NodeSpec("Frobnicator", ("in0",), ("out0",)))
        with pytest.raises(SimulationError, match="no cycle model"):
            CompiledCircuit(graph, env, ck.kernel)
