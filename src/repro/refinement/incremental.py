"""Incremental certificate re-validation after a graph rewrite.

A rewrite usually touches a few nodes of a large graph, yet the certified
obligation pipeline re-validates (or re-searches) the whole simulation
relation.  The key observation is that the product semantics is *leaf
local*: a lowered graph's module state is the right-fold nest of one leaf
state per node (in sorted node order), and every transition reads and
writes only its own node's leaf — input/output transitions one leaf,
fused-connection internals the two endpoint leaves.  A move of an
*untouched* node therefore fires identically before and after the rewrite,
and its recorded evidence in the old certificate transports verbatim.

So after a rewrite ``old → new`` of the implementation graph, a valid old
certificate can be upgraded by checking **only the touched moves**:

1. :func:`diff_graphs` computes the touched region — nodes whose spec
   changed, plus added/removed nodes and connection changes;
2. :func:`transport_certificate` maps every old relation state to the new
   state shape (untouched leaves copied, added nodes seeded with their
   component's initial states, removed leaves projected away);
3. :func:`incremental_recheck` replays the three simulation diagrams for
   touched input/output ports and touched internal transitions only, plus
   the (cheap, full) init and interface checks.

Soundness does **not** rest on the diff being right in subtle cases — it
rests on the eligibility guards being conservative: any shape mismatch,
I/O remap, layout-count disagreement or failed check makes the obligation
fall back to a full recheck and then a full search (see
:func:`repro.refinement.checker.recheck_obligation_incremental`).  The
baseline certificate must itself be valid evidence for the *old* graph's
obligation — callers obtain it from a prior checked run; a corrupted or
mismatched baseline costs a fallback, never a wrong verdict, because the
untouched-move transport argument only ever *re-uses* checks the baseline
actually passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.encoding import encode_component
from ..core.environment import Environment
from ..core.exprhigh import ExprHigh
from ..core.module import Module, State
from ..core.ports import IOPort, Port
from .simulation import (
    SimulationCertificate,
    SimulationResult,
    Violation,
    _GameCache,
    _interface_violation,
)

#: Transporting a pair across added nodes with multiple initial states
#: expands it into the product of those inits; beyond this many expansions
#: per pair the transport is refused (fallback, not failure).
MAX_INIT_EXPANSION = 16


@dataclass(frozen=True)
class GraphDiff:
    """The touched region between two ExprHigh graphs.

    *touched* holds nodes present in both graphs whose spec changed;
    connection changes are tracked separately (a rewired connection touches
    its fused internal transition, not the endpoint nodes' own moves).
    """

    touched: frozenset[str]
    added: frozenset[str]
    removed: frozenset[str]
    io_changed: bool
    changed_connections: frozenset[tuple]

    @property
    def touched_or_added(self) -> frozenset[str]:
        return self.touched | self.added

    def is_empty(self) -> bool:
        return not (
            self.touched
            or self.added
            or self.removed
            or self.io_changed
            or self.changed_connections
        )


def diff_graphs(old: ExprHigh, new: ExprHigh) -> GraphDiff:
    """Structural diff of two graphs at node/connection/IO granularity."""
    old_nodes, new_nodes = set(old.nodes), set(new.nodes)
    added = frozenset(new_nodes - old_nodes)
    removed = frozenset(old_nodes - new_nodes)
    touched = frozenset(
        name for name in old_nodes & new_nodes if old.nodes[name] != new.nodes[name]
    )
    io_changed = old.inputs != new.inputs or old.outputs != new.outputs
    changed = set()
    for dst, src in new.connections.items():
        if old.connections.get(dst) != src:
            changed.add((dst, src))
    for dst, src in old.connections.items():
        if new.connections.get(dst) != src:
            changed.add((dst, src))
    return GraphDiff(
        touched=touched,
        added=added,
        removed=removed,
        io_changed=io_changed,
        changed_connections=frozenset(changed),
    )


def graphs_equal(a: ExprHigh, b: ExprHigh) -> bool:
    """Structural equality (nodes, connections, external I/O)."""
    return (
        a.nodes == b.nodes
        and a.connections == b.connections
        and a.inputs == b.inputs
        and a.outputs == b.outputs
    )


# -- state transport ----------------------------------------------------------


def _unpack_leaves(state: State, count: int) -> list:
    """Invert the right-fold product nesting into per-node leaf states."""
    if count == 1:
        return [state]
    leaves = []
    current = state
    for _ in range(count - 1):
        if not isinstance(current, tuple) or len(current) != 2:
            raise ValueError("state does not match the graph's product shape")
        leaves.append(current[0])
        current = current[1]
    leaves.append(current)
    return leaves


def _pack_leaves(leaves: list) -> State:
    state = leaves[-1]
    for leaf in reversed(leaves[:-1]):
        state = (leaf, state)
    return state


def transport_certificate(
    old: ExprHigh,
    new: ExprHigh,
    certificate: SimulationCertificate,
    env: Environment,
) -> frozenset[tuple[State, State]] | None:
    """Map the certificate's relation onto the new graph's state shape.

    Untouched and touched nodes keep their leaf states (a touched node's
    moves will be re-validated anyway), removed leaves are projected away,
    and each added node contributes its component module's initial states
    (expanding the pair when there are several).  Returns None whenever
    the transport is not defined — old states that do not destructure to
    the old graph's shape, or an init expansion past
    :data:`MAX_INIT_EXPANSION` — in which case the caller falls back.
    """
    old_order = sorted(old.nodes)
    new_order = sorted(new.nodes)
    inits: dict[str, tuple] = {}
    for name in new_order:
        if name not in old.nodes:
            spec = new.nodes[name]
            try:
                component = env.lookup(encode_component(spec.typ, spec.param_dict()))
            except Exception:
                return None
            inits[name] = tuple(component.init)
            if not inits[name]:
                return None
    relation_new = set()
    for s_old, t in certificate.relation:
        try:
            leaves = _unpack_leaves(s_old, len(old_order))
        except ValueError:
            return None
        by_node = dict(zip(old_order, leaves))
        options: list[tuple] = []
        for name in new_order:
            if name in by_node:
                options.append((by_node[name],))
            else:
                options.append(inits[name])
        combos = 1
        for opt in options:
            combos *= len(opt)
        if combos > MAX_INIT_EXPANSION:
            return None
        stack = [[]]
        for opt in options:
            stack = [prefix + [leaf] for prefix in stack for leaf in opt]
        for leaves_new in stack:
            relation_new.add((_pack_leaves(leaves_new), t))
    return frozenset(relation_new)


# -- touched-move layout ------------------------------------------------------


def internal_layout(graph: ExprHigh, env: Environment) -> list[tuple] | None:
    """The provenance of each internal transition of the lowered module.

    Lowering folds nodes in sorted order (each contributing its component
    module's internals, in order) and then fuses connections in
    ``sorted_connections()`` order, appending one internal per connection —
    so the product module's ``internals`` tuple is exactly this layout.
    Returns ``[("node", name), ...,  ("conn", dst, src), ...]`` or None if
    a component cannot be looked up (caller falls back).  Callers must
    still guard ``len(layout) == len(module.internals)`` — if lowering
    conventions ever drift, incremental mode silently disables itself
    rather than mislabel a transition.
    """
    layout: list[tuple] = []
    for name in sorted(graph.nodes):
        spec = graph.nodes[name]
        try:
            component = env.lookup(encode_component(spec.typ, spec.param_dict()))
        except Exception:
            return None
        layout.extend(("node", name) for _ in component.internals)
    for dst, src in graph.sorted_connections():
        layout.append(("conn", dst, src))
    return layout


@dataclass
class IncrementalOutcome:
    """What the incremental pass decided, with enough detail for fallbacks.

    *eligible* False means the incremental argument did not apply (shape
    change, layout mismatch, transport failure) — *result* is None and the
    caller should run a full recheck/search.  When eligible, *result*
    carries the verdict; *entries_validated* counts relation entries where
    at least one touched move actually fired (the strict subset the pass
    re-checked), and *moves_checked* the individual diagram checks run.
    """

    eligible: bool
    reason: str = ""
    result: SimulationResult | None = None
    relation: frozenset | None = None
    entries_validated: int = 0
    moves_checked: int = 0


def incremental_recheck(
    old_graph: ExprHigh,
    new_graph: ExprHigh,
    env: Environment,
    impl: Module,
    spec: Module,
    certificate: SimulationCertificate,
    stimuli: Mapping[Port, tuple],
) -> IncrementalOutcome:
    """Validate the transported relation by re-checking touched moves only.

    *impl* must be the new graph's denotation in *env* and *spec* the
    unchanged specification module; *stimuli* must equal the certificate's
    recorded domain (the caller normalises and compares).  The touched
    moves are: input/output ports whose external endpoint lies on a
    touched or added node, per-node internals of touched/added nodes, and
    fused connections that changed or touch a changed node.  Everything
    else transports from the baseline certificate by leaf-locality.
    """
    diff = diff_graphs(old_graph, new_graph)
    if diff.io_changed:
        return IncrementalOutcome(False, reason="external I/O map changed")
    interface = _interface_violation(impl, spec)
    if interface is not None:
        return IncrementalOutcome(
            True, result=SimulationResult(False, violation=interface)
        )
    layout = internal_layout(new_graph, env)
    if layout is None or len(layout) != len(impl.internals):
        return IncrementalOutcome(False, reason="internal layout mismatch")
    relation = transport_certificate(old_graph, new_graph, certificate, env)
    if relation is None:
        return IncrementalOutcome(False, reason="state transport failed")

    touched_nodes = diff.touched_or_added
    changed_conn_nodes = touched_nodes | diff.removed
    touched_inputs = [
        IOPort(i)
        for i, endpoint in sorted(new_graph.inputs.items())
        if endpoint.node in touched_nodes
    ]
    touched_outputs = [
        IOPort(i)
        for i, endpoint in sorted(new_graph.outputs.items())
        if endpoint.node in touched_nodes
    ]
    changed_connections = {
        (dst, src) for dst, src in diff.changed_connections
    }
    touched_internal_idxs = []
    for idx, entry in enumerate(layout):
        if entry[0] == "node":
            if entry[1] in touched_nodes:
                touched_internal_idxs.append(idx)
        else:
            _, dst, src = entry
            if (
                (dst, src) in changed_connections
                or dst.node in changed_conn_nodes
                or src.node in changed_conn_nodes
            ):
                touched_internal_idxs.append(idx)

    succ = _GameCache(impl, spec, dict(stimuli))
    try:
        id_pairs = [(succ.impl_id(s), succ.spec_id(t)) for s, t in relation]
    except TypeError:
        return IncrementalOutcome(False, reason="transported states not hashable")
    related = {(sid << 32) | tid for sid, tid in id_pairs}

    # Init containment is global, not leaf-local: always re-checked in full.
    for s0 in impl.init:
        sid = succ.impl_id(s0)
        if not any(((sid << 32) | succ.spec_id(t0)) in related for t0 in spec.init):
            return IncrementalOutcome(
                True,
                result=SimulationResult(
                    False,
                    violation=Violation(
                        "init", s0, None,
                        f"initial state {s0!r} has no related spec initial state",
                    ),
                    method="incremental",
                ),
                relation=relation,
            )

    entries_validated = 0
    moves_checked = 0
    impl_states = succ.impl_states
    internals = impl.internals
    for sid, tid in id_pairs:
        state = impl_states[sid]
        fired = False
        for port in touched_inputs:
            fire = impl.inputs[port].fire
            for value in stimuli[port]:
                for s_next in fire(state, value):
                    fired = True
                    moves_checked += 1
                    base = succ.impl_id(s_next) << 32
                    if not any(
                        (base | t_next) in related
                        for t_next in succ.spec_input_responses(tid, port, value)
                    ):
                        return IncrementalOutcome(
                            True,
                            result=SimulationResult(
                                False,
                                violation=Violation(
                                    "input", state, succ.spec_states[tid],
                                    f"input {port}={value!r} has no response inside the relation",
                                ),
                                method="incremental",
                            ),
                            relation=relation,
                            entries_validated=entries_validated,
                            moves_checked=moves_checked,
                        )
        for port in touched_outputs:
            for value, s_next in impl.outputs[port].fire(state):
                fired = True
                moves_checked += 1
                base = succ.impl_id(s_next) << 32
                if not any(
                    (base | t_next) in related
                    for t_next in succ.spec_output_responses(tid, port, value)
                ):
                    return IncrementalOutcome(
                        True,
                        result=SimulationResult(
                            False,
                            violation=Violation(
                                "output", state, succ.spec_states[tid],
                                f"output {port} emits {value!r} with no response inside the relation",
                            ),
                            method="incremental",
                        ),
                        relation=relation,
                        entries_validated=entries_validated,
                        moves_checked=moves_checked,
                    )
        for idx in touched_internal_idxs:
            for s_next in internals[idx].fire(state):
                fired = True
                moves_checked += 1
                base = succ.impl_id(s_next) << 32
                if not any((base | t_next) in related for t_next in succ.closure(tid)):
                    return IncrementalOutcome(
                        True,
                        result=SimulationResult(
                            False,
                            violation=Violation(
                                "internal", state, succ.spec_states[tid],
                                "internal step has no response inside the relation",
                            ),
                            method="incremental",
                        ),
                        relation=relation,
                        entries_validated=entries_validated,
                        moves_checked=moves_checked,
                    )
        if fired:
            entries_validated += 1

    upgraded = SimulationCertificate(
        relation=relation,
        impl_states=len({sid for sid, _ in id_pairs}),
        spec_states=len({tid for _, tid in id_pairs}),
        iterations=0,
        stimuli=dict(certificate.stimuli),
    )
    return IncrementalOutcome(
        True,
        result=SimulationResult(True, certificate=upgraded, method="incremental"),
        relation=relation,
        entries_validated=entries_validated,
        moves_checked=moves_checked,
    )
