"""Tests for the evaluation report builders (tables, figure, checks)."""

import pytest

from repro.eval import paper_data
from repro.eval.report import (
    build_table,
    cycle_table,
    figure8_series,
    render_figure8,
    shape_checks,
)
from repro.eval.runner import BenchmarkResult, FlowResult
from repro.hls.area import AreaReport


def fake_flow(flow, cycles, cp=5.0, luts=1000, ffs=1000, dsps=5, correct=True, in_order=True, refused=0):
    area = AreaReport(luts=luts, ffs=ffs, dsps=dsps, clock_period=cp)
    return FlowResult(
        flow=flow,
        cycles=cycles,
        area=area,
        correct=correct,
        stores_in_order=in_order,
        refused_loops=refused,
    )


def fake_results():
    results = {}
    for name in paper_data.BENCHMARKS:
        result = BenchmarkResult(name)
        is_bicg = name == "bicg"
        is_single = name == "gsum-single"
        io_cycles = 10000
        result.flows["DF-IO"] = fake_flow("DF-IO", io_cycles, cp=6.0, luts=2000, ffs=2000)
        result.flows["DF-OoO"] = fake_flow(
            "DF-OoO",
            1500 if not is_single else 12000,
            cp=8.5,
            luts=4000,
            ffs=4000,
            correct=not is_bicg,
            in_order=not is_bicg,
        )
        graphiti_cycles = io_cycles if is_bicg else (13000 if is_single else 1600)
        result.flows["GRAPHITI"] = fake_flow(
            "GRAPHITI",
            graphiti_cycles,
            cp=6.0 if is_bicg else 8.0,
            luts=2000 if is_bicg else 4200,
            ffs=2000 if is_bicg else 4500,
            refused=1 if is_bicg else 0,
        )
        result.flows["Vericert"] = fake_flow("Vericert", 50000, cp=4.9, luts=900, ffs=1200)
        results[name] = result
    return results


class TestTables:
    def test_cycle_table_contains_all_rows(self):
        table = cycle_table(fake_results())
        assert len(table.rows) == len(paper_data.BENCHMARKS)
        rendered = table.render()
        for name in paper_data.BENCHMARKS:
            assert name in rendered
        assert "geomean" in rendered

    def test_geomean_row(self):
        table = cycle_table(fake_results())
        row = table.geomean_row()
        assert row.values["Vericert"] == pytest.approx(50000)

    def test_build_table_skips_missing_benchmarks(self):
        results = fake_results()
        del results["gemm"]
        table = build_table("t", results, lambda fr: fr.cycles, paper_data.PAPER_CYCLES)
        assert len(table.rows) == len(paper_data.BENCHMARKS) - 1


class TestFigure8:
    def test_series_normalised_to_df_ooo(self):
        series = figure8_series(fake_results())
        for name, row in series.items():
            assert row["DF-OoO"] == pytest.approx(1.0)

    def test_render_contains_all_benchmarks(self):
        rendered = render_figure8(fake_results())
        for name in paper_data.BENCHMARKS:
            assert name in rendered


class TestShapeChecks:
    def test_all_checks_pass_on_paper_shaped_data(self):
        checks = shape_checks(fake_results())
        failing = [c for c in checks if not c.holds]
        assert failing == []

    def test_bicg_check_fails_if_not_refused(self):
        results = fake_results()
        results["bicg"].flows["GRAPHITI"] = fake_flow("GRAPHITI", 1600, refused=0)
        checks = {c.description: c for c in shape_checks(results)}
        key = "bicg: Graphiti refuses the rewrite and matches DF-IO"
        assert not checks[key].holds


class TestPaperData:
    def test_geomean(self):
        assert paper_data.geomean([1, 100]) == pytest.approx(10.0)
        assert paper_data.geomean([]) == 0.0
        assert paper_data.geomean([0, 5]) == 0.0

    def test_tables_cover_all_benchmarks_and_flows(self):
        for table in (
            paper_data.PAPER_CYCLES,
            paper_data.PAPER_CLOCK_PERIOD,
            paper_data.PAPER_EXEC_TIME,
            paper_data.PAPER_LUTS,
            paper_data.PAPER_FFS,
            paper_data.PAPER_DSPS,
        ):
            assert set(table) == set(paper_data.BENCHMARKS)
            for row in table.values():
                assert set(row) == set(paper_data.FLOWS)

    def test_paper_numbers_consistent(self):
        # exec time = cycles x clock period (up to rounding in the paper)
        for name in paper_data.BENCHMARKS:
            for flow in paper_data.FLOWS:
                cycles = paper_data.PAPER_CYCLES[name][flow]
                period = paper_data.PAPER_CLOCK_PERIOD[name][flow]
                exec_time = paper_data.PAPER_EXEC_TIME[name][flow]
                assert exec_time == pytest.approx(cycles * period, rel=0.05)
