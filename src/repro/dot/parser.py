"""Parser for the Dynamatic-style dot dialect into ExprHigh graphs.

The accepted dialect is the subset Dynamatic emits, with two conventions:

* every node carries a ``type`` attribute naming the component; ``in`` and
  ``out`` attributes give space-separated port names (defaulted positionally
  from the component's arity when omitted);
* external I/O appears as pseudo-nodes of type ``Input`` / ``Output`` with
  an ``index`` attribute, each wired to the port it exposes.

All other node attributes become component parameters (decoded with the
conventions of :mod:`repro.core.encoding`).
"""

from __future__ import annotations

from typing import Iterator

from ..core.encoding import TYPE_KEYS
from ..core.exprhigh import ExprHigh, NodeSpec
from ..core.types import parse_type
from ..errors import DotParseError
from .lexer import Token, tokenize


class _TokenStream:
    def __init__(self, tokens: Iterator[Token]):
        self._tokens = list(tokens)
        self._pos = 0

    def peek(self) -> Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise DotParseError("unexpected end of input")
        self._pos += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.next()
        if token.text != text:
            raise DotParseError(f"expected {text!r}, found {token.text!r}", token.line)
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.text == text:
            self._pos += 1
            return True
        return False


def parse_dot(source: str) -> ExprHigh:
    """Parse dot text into an ExprHigh graph."""
    stream = _TokenStream(tokenize(source))
    header = stream.next()
    if header.text.lower() != "digraph":
        raise DotParseError(f"expected 'Digraph', found {header.text!r}", header.line)
    token = stream.next()  # graph name (optional brace)
    if token.text != "{":
        stream.expect("{")

    graph = ExprHigh()
    io_nodes: dict[str, tuple[str, int]] = {}  # pseudo node -> (kind, index)
    pending_edges: list[tuple[str, str, dict[str, str], int]] = []

    while True:
        token = stream.peek()
        if token is None:
            raise DotParseError("missing closing '}'")
        if token.text == "}":
            stream.next()
            break
        name_token = stream.next()
        if name_token.kind not in ("name", "string"):
            raise DotParseError(f"expected node name, found {name_token.text!r}", name_token.line)
        name = name_token.text
        nxt = stream.peek()
        if nxt is not None and nxt.text == "->":
            stream.next()
            target = stream.next()
            attrs = _parse_attrs(stream)
            pending_edges.append((name, target.text, attrs, name_token.line))
        else:
            attrs = _parse_attrs(stream)
            _add_node(graph, io_nodes, name, attrs, name_token.line)
        stream.accept(";")

    for src, dst, attrs, line in pending_edges:
        _add_edge(graph, io_nodes, src, dst, attrs, line)
    return graph


def _parse_attrs(stream: _TokenStream) -> dict[str, str]:
    attrs: dict[str, str] = {}
    if not stream.accept("["):
        return attrs
    while not stream.accept("]"):
        key = stream.next()
        stream.expect("=")
        value = stream.next()
        attrs[key.text] = value.text
        stream.accept(",")
    return attrs


def _decode_param(key: str, raw: str) -> object:
    if key in TYPE_KEYS:
        return parse_type(raw)
    if raw == "true":
        return True
    if raw == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


_DEFAULT_PORTS = {
    "Fork": (["in0"], None),  # out ports depend on the 'n' parameter
    "Join": (["in0", "in1"], ["out0"]),
    "Split": (["in0"], ["out0", "out1"]),
    "Buffer": (["in0"], ["out0"]),
    "Sink": (["in0"], []),
    "Source": ([], ["out0"]),
    "Mux": (["cond", "in0", "in1"], ["out0"]),
    "Branch": (["cond", "in0"], ["out0", "out1"]),
    "Merge": (["in0", "in1"], ["out0"]),
    "CMerge": (["in0", "in1"], ["out0", "index"]),
    "Init": (["in0"], ["out0"]),
    "Pure": (["in0"], ["out0"]),
    "Reorg": (["in0"], ["out0"]),
    "Constant": (["ctrl"], ["out0"]),
    "Tagger": (["in0", "in1"], ["out0", "out1"]),
    "Store": (["addr", "data"], ["done"]),
}


def _add_node(
    graph: ExprHigh,
    io_nodes: dict[str, tuple[str, int]],
    name: str,
    attrs: dict[str, str],
    line: int,
) -> None:
    typ = attrs.pop("type", None)
    if typ is None:
        raise DotParseError(f"node {name!r} has no 'type' attribute", line)
    if typ in ("Input", "Output"):
        index = attrs.get("index")
        if index is None:
            raise DotParseError(f"I/O pseudo-node {name!r} needs an 'index' attribute", line)
        io_nodes[name] = (typ, int(index))
        return

    in_attr = attrs.pop("in", None)
    out_attr = attrs.pop("out", None)
    # 'dtype' in dot is the wire-type parameter ('type' names the component).
    params = {
        ("type" if key == "dtype" else key): _decode_param("type" if key == "dtype" else key, raw)
        for key, raw in attrs.items()
    }

    if in_attr is not None:
        in_ports = in_attr.split()
    elif typ == "Operator":
        arity = int(params.get("arity", 2))
        in_ports = [f"in{i}" for i in range(arity)]
    elif typ in _DEFAULT_PORTS:
        in_ports = list(_DEFAULT_PORTS[typ][0])
    else:
        raise DotParseError(f"node {name!r}: unknown type {typ!r} and no 'in' attribute", line)

    if out_attr is not None:
        out_ports = out_attr.split()
    elif typ == "Fork":
        out_ports = [f"out{i}" for i in range(int(params.get("n", 2)))]
    elif typ == "Operator":
        out_ports = ["out0"]
    elif typ in _DEFAULT_PORTS and _DEFAULT_PORTS[typ][1] is not None:
        out_ports = list(_DEFAULT_PORTS[typ][1])
    else:
        raise DotParseError(f"node {name!r}: cannot infer output ports", line)

    graph.add_node(name, NodeSpec.make(typ, in_ports, out_ports, params))


def _add_edge(
    graph: ExprHigh,
    io_nodes: dict[str, tuple[str, int]],
    src: str,
    dst: str,
    attrs: dict[str, str],
    line: int,
) -> None:
    if src in io_nodes:
        kind, index = io_nodes[src]
        if kind != "Input":
            raise DotParseError(f"edge from Output pseudo-node {src!r}", line)
        port = attrs.get("to")
        if port is None:
            raise DotParseError(f"edge {src}->{dst} needs a 'to' attribute", line)
        graph.mark_input(index, dst, port)
        return
    if dst in io_nodes:
        kind, index = io_nodes[dst]
        if kind != "Output":
            raise DotParseError(f"edge into Input pseudo-node {dst!r}", line)
        port = attrs.get("from")
        if port is None:
            raise DotParseError(f"edge {src}->{dst} needs a 'from' attribute", line)
        graph.mark_output(index, src, port)
        return
    from_port = attrs.get("from")
    to_port = attrs.get("to")
    if from_port is None or to_port is None:
        raise DotParseError(f"edge {src}->{dst} needs 'from' and 'to' attributes", line)
    graph.connect(src, from_port, dst, to_port)
