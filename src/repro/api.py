"""The public facade: one Session owning environment, executor and cache.

Everything the scattered entry points did — ``GraphitiPipeline`` for
transforms, ``RewriteEngine.verify_rewrite`` for obligations,
``run_benchmark`` for evaluation, the hand-rolled loops in ``cli.py`` —
is reachable through one object::

    from repro import Session

    session = Session(jobs=4)                 # parallel, cached
    session.transform(graph, mark)            # the five-phase OoO pipeline
    session.verify()                          # discharge every obligation
    session.check_obligations()               # certified: recheck stored certificates
    session.bench("matvec")                   # one benchmark, four flows
    session.simulate(ck, stimuli=arrays)      # one kernel, one stimulus
    print(session.report())                   # Tables 2-3 + Figure 8
    print(session.metrics().summary())        # one unified MetricsSnapshot

A Session owns:

* the component :class:`~repro.core.environment.Environment` (built once,
  shared by every transform);
* the result cache — content-addressed, on disk, keyed by graph/environment/
  stimuli/tool-version fingerprints (see :mod:`repro.exec.hashing`), so a
  warm rerun recomputes nothing;
* the :class:`~repro.exec.executor.Executor` that fans independent work
  units — (benchmark × flow) runs, obligation discharges, weak-simulation
  checks — over a process pool, with deterministic result ordering (output
  is byte-identical to a serial run) and serial fallback on worker failure;
* the unified statistics surface: :meth:`Session.metrics` returns one
  :class:`~repro.obs.MetricsSnapshot` rolling up the executor accounting,
  the rewriting-engine counters accumulated across every ``transform``,
  and the observability tracer's counters/gauges.  (The pre-v1.3
  attribute facade — ``session.metrics.executed`` … — was removed in
  v1.5; see the migration table in ``docs/api.md``.)

Every public method runs under a :mod:`repro.obs` span (``transform``,
``verify``, ``bench``, ``report``), so attaching a sink — or passing
``--trace``/``--profile`` on the CLI — captures the whole hierarchy down
to per-rewrite matching and pool-worker subtrees.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from . import obs
from .components import default_environment
from .core.environment import Environment
from .core.exprhigh import ExprHigh
from .errors import GraphitiError
from .exec.cache import NullCache, ResultCache, default_cache_dir
from .exec.executor import Executor, WorkUnit
from .exec.hashing import eval_unit_key, obligation_fingerprint, weak_sim_key
from .exec.metrics import ExecutorMetrics
from .obs import MetricsSnapshot
from .rewriting.engine import EngineStats
from .rewriting.pipeline import GraphitiPipeline, TransformResult
from .rewriting.rules import VERIFY_FACTORY_SPECS, build_rewrite
from .rewriting.saturate import SaturationBudget, SaturationStats


def _positional_shim(method: str, args: tuple, names: Sequence[str], values: dict) -> None:
    """Map deprecated positional arguments onto their keyword slots.

    ``Session.transform/simulate/bench`` went keyword-only in v1.7 so that
    call sites — the verification service's worker pool above all — are
    unambiguous.  Positional use keeps working for one release with a
    :class:`DeprecationWarning`; mixing a positional argument with its
    keyword form is an error, exactly as Python itself would report it.
    """
    if not args:
        return
    if len(args) > len(names):
        raise TypeError(
            f"Session.{method}() takes at most {len(names)} positional "
            f"argument{'s' if len(names) != 1 else ''} ({len(args)} given)"
        )
    warnings.warn(
        f"positional arguments to Session.{method}() are deprecated and will "
        f"be removed in the next release; pass "
        f"{', '.join(f'{name}=...' for name in names[: len(args)])} as keywords",
        DeprecationWarning,
        stacklevel=3,
    )
    for name, value in zip(names, args):
        if values.get(name) is not None:
            raise TypeError(
                f"Session.{method}() got multiple values for argument {name!r}"
            )
        values[name] = value


class Session:
    """The façade over transformation, verification and evaluation.

    Parameters
    ----------
    env:
        Component environment; defaults to :func:`default_environment`.
    jobs:
        Process-pool width for independent work units; ``1`` runs serially.
    cache_dir:
        Result-cache directory; defaults to
        :func:`repro.exec.cache.default_cache_dir`.
    use_cache:
        ``False`` disables the on-disk cache entirely (the ``--no-cache``
        CLI flag).
    check_obligations:
        Passed through to :class:`GraphitiPipeline`: discharge each
        verified rewrite's obligation (cached) before its first use.
    """

    def __init__(
        self,
        env: Environment | None = None,
        *,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        check_obligations: bool = False,
    ):
        self.env = env if env is not None else default_environment()
        if use_cache:
            self.cache = ResultCache(Path(cache_dir) if cache_dir else default_cache_dir())
        else:
            self.cache = NullCache()
        self._metrics = ExecutorMetrics()
        self._engine_stats = EngineStats()
        self._saturation_stats = SaturationStats()
        self.executor = Executor(jobs=jobs, cache=self.cache, metrics=self._metrics)
        self._check_obligations = check_obligations
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; a closed session refuses work."""
        return self._closed

    def close(self) -> None:
        """Release the session's resources: drain the executor worker pool.

        Idempotent.  After closing, every work-dispatching method raises,
        so a pool manager (the verification service owns one ``Session``
        per concurrent worker slot) can prove no stray work unit outlives
        the session.  ``Session`` is also a context manager::

            with Session(jobs=4) as session:
                session.bench(name="matvec")
            # pool drained here
        """
        self._closed = True
        self.executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _require_open(self, method: str) -> None:
        if self._closed:
            raise GraphitiError(
                f"Session.{method}() called on a closed session "
                "(close() already drained the executor pool)"
            )

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> MetricsSnapshot:
        """The unified stats surface: one :class:`MetricsSnapshot`.

        Rolls up the executor accounting, the rewriting-engine counters
        accumulated across every :meth:`transform`, and the observability
        tracer's counters and gauges.  (Until v1.5 this was a property
        returning an attribute-compatible facade; the deprecated attribute
        forms — ``session.metrics.executed`` … — are gone.)
        """
        tracer = obs.get_tracer()
        return MetricsSnapshot(
            executor=self._metrics.to_dict(),
            rewriting=self._engine_stats.to_dict(),
            counters=dict(tracer.counters),
            gauges=dict(tracer.gauges),
            saturation=self._saturation_stats.to_dict(),
        )

    # -- transformation ------------------------------------------------------

    def transform(
        self,
        *args,
        graph: ExprHigh | None = None,
        mark=None,
        strategy: str = "fixpoint",
        budget: SaturationBudget | None = None,
    ) -> TransformResult:
        """Transform a marked loop: destructive fixpoint or saturation.

        All arguments are keyword-only since v1.7 (positional *graph* and
        *mark* still work for one release with a ``DeprecationWarning``).

        ``strategy="fixpoint"`` (the default) runs the five-phase
        out-of-order pipeline; ``strategy="saturate"`` runs the fixpoint
        baseline and then equality-saturates the kernel under the
        structural rewrite set, returning the (area, cycles) Pareto
        frontier in ``result.pareto`` with the best-cost circuit as
        ``result.graph``.  *budget* bounds the exploration (see
        :class:`~repro.rewriting.saturate.SaturationBudget`).
        """
        shim = {"graph": graph, "mark": mark}
        _positional_shim("transform", args, ("graph", "mark"), shim)
        graph, mark = shim["graph"], shim["mark"]
        if graph is None or mark is None:
            raise TypeError("Session.transform() requires graph= and mark=")
        self._require_open("transform")
        pipeline = GraphitiPipeline(
            self.env,
            check_obligations=self._check_obligations,
            cache=self.cache,
            strategy=strategy,
            budget=budget,
        )
        with obs.span(
            "transform", kernel=getattr(mark, "kernel", "?"), strategy=strategy
        ):
            try:
                return pipeline.transform_kernel(graph, mark)
            finally:
                # Whatever happened — success, refusal, or an exception —
                # the engine's counters roll up into session.metrics().
                self._engine_stats.merge(pipeline.engine.stats)
                self._saturation_stats.merge(pipeline.saturation_stats)

    # -- verification --------------------------------------------------------

    def verify(self, specs: Sequence[tuple[str, str, dict]] | None = None) -> list[dict]:
        """Discharge every rewrite obligation, fanned out and cached.

        Returns one dict per spec, in spec order: ``rewrite``, ``holds``,
        ``verified_flag`` (was the rewrite *claimed* verified), ``detail``
        (the counterexample message when it does not hold) and ``seconds``.
        """
        self._require_open("verify")
        specs = list(specs if specs is not None else VERIFY_FACTORY_SPECS)
        units = []
        for module, factory, kwargs in specs:
            rewrite = build_rewrite(module, factory, kwargs)
            key = None
            if rewrite.obligation is not None:
                key = obligation_fingerprint(rewrite.name, list(rewrite.obligation()))
            units.append(
                WorkUnit(
                    uid=f"verify:{rewrite.name}",
                    fn="repro.exec.workers:discharge_rewrite",
                    payload={"module": module, "factory": factory, "kwargs": kwargs},
                    cache_key=key,
                )
            )
        with obs.span("verify", obligations=len(units)):
            return self.executor.run(units)

    def check_obligations(
        self,
        specs: Sequence[tuple[str, str, dict]] | None = None,
        *,
        sharded: bool = False,
    ) -> list[dict]:
        """Discharge rewrite obligations through the certificate fast path.

        Like :meth:`verify`, independent obligations fan out over the
        executor pool — but instead of caching bare verdicts, each
        obligation persists its :class:`~repro.refinement.simulation.\
SimulationCertificate` in the content-addressed result cache (compact
        binary encoding), and a warm run *re-validates* the stored
        relation — by witness replay when witnesses are present, else the
        exhaustive diagram pass — rather than re-solving the simulation
        game (see :func:`repro.refinement.recheck_certificate`).
        Re-validation is a real check: a stale or tampered certificate
        falls back to a full search, never to a trusted verdict.

        With ``sharded=True`` the parallelism moves *inside* each
        obligation: obligations run one at a time in this process, and a
        cold search's frontier expansion is partitioned across the worker
        pool (:func:`repro.refinement.find_weak_simulation_sharded`).
        Verdicts and certificate hashes are identical either way; sharding
        pays off when a few large obligations dominate.

        Returns one dict per spec, in spec order: ``rewrite``, ``holds``,
        ``verified_flag``, ``mode`` (``"search"`` / ``"recheck"`` /
        ``"recheck-incremental"`` / ``"search-fallback"`` / ``"mixed"``),
        ``instances``, ``certificate_hashes``, ``detail`` and ``seconds``.
        """
        self._require_open("check_obligations")
        specs = list(specs if specs is not None else VERIFY_FACTORY_SPECS)
        cache_dir = str(self.cache.root) if isinstance(self.cache, ResultCache) else None
        if sharded:
            from .exec.workers import check_obligation_certified

            with obs.span("check-obligations", obligations=len(specs), sharded=True):
                return [
                    check_obligation_certified(
                        module=module,
                        factory=factory,
                        kwargs=kwargs,
                        cache_dir=cache_dir,
                        executor=self.executor,
                    )
                    for module, factory, kwargs in specs
                ]
        units = [
            WorkUnit(
                uid=f"obligation:{factory}",
                fn="repro.exec.workers:check_obligation_certified",
                payload={
                    "module": module,
                    "factory": factory,
                    "kwargs": kwargs,
                    "cache_dir": cache_dir,
                },
            )
            for module, factory, kwargs in specs
        ]
        with obs.span("check-obligations", obligations=len(units)):
            return self.executor.run(units)

    def check_refinements(
        self,
        pairs: Sequence[tuple[ExprHigh, ExprHigh]],
        *,
        values: tuple = (0, 1),
        spec_capacity: int | None = 4,
    ) -> list[dict]:
        """Fan out weak-simulation checks ``rhs ⊑ lhs`` over graph pairs.

        Each pair is ``(lhs, rhs)`` — specification first, like
        :func:`repro.refinement.checker.check_rewrite_obligation`.
        """
        self._require_open("check_refinements")
        units = []
        for index, (lhs, rhs) in enumerate(pairs):
            key = weak_sim_key(
                rhs, lhs, self.env, None, values=values, spec_capacity=spec_capacity
            )
            units.append(
                WorkUnit(
                    uid=f"weak-sim:{index}",
                    fn="repro.exec.workers:check_graph_pair",
                    payload={
                        "lhs": lhs,
                        "rhs": rhs,
                        "capacity": self.env.capacity,
                        "values": tuple(values),
                        "spec_capacity": spec_capacity,
                    },
                    cache_key=key,
                )
            )
        with obs.span("check-refinements", pairs=len(units)):
            return self.executor.run(units)

    def sat_check(
        self,
        specs: Sequence[tuple[str, str, dict]] | None = None,
        *,
        bound: int | None = None,
    ) -> list[dict]:
        """Cross-check rewrite obligations: SAT oracle vs simulation game.

        Every obligation instance is decided twice — by the
        weak-simulation game solver and by the independent CNF encoding
        plus DPLL solver (:mod:`repro.refinement.sat`) — and the verdicts
        compared.  Returns one dict per spec, in spec order: ``rewrite``,
        ``agreed``, ``holds`` (the game verdict), per-instance SAT
        statistics and ``detail`` (the disagreement message, when the two
        oracles definitively contradict).  *bound* caps the SAT encoder's
        pair exploration; verdicts truncated by the bound are indefinite
        and never count as disagreement.
        """
        self._require_open("sat_check")
        from .exec.hashing import sat_cross_check_key
        from .refinement.sat import DEFAULT_BOUND

        specs = list(specs if specs is not None else VERIFY_FACTORY_SPECS)
        bound = DEFAULT_BOUND if bound is None else int(bound)
        units = []
        for module, factory, kwargs in specs:
            rewrite = build_rewrite(module, factory, kwargs)
            key = None
            if rewrite.obligation is not None:
                key = sat_cross_check_key(
                    rewrite.name, list(rewrite.obligation()), bound
                )
            units.append(
                WorkUnit(
                    uid=f"sat-check:{rewrite.name}",
                    fn="repro.exec.workers:cross_check_rewrite",
                    payload={
                        "module": module,
                        "factory": factory,
                        "kwargs": kwargs,
                        "bound": bound,
                    },
                    cache_key=key,
                )
            )
        with obs.span("sat-check", obligations=len(units), bound=bound):
            return self.executor.run(units)

    # -- netlist interop -----------------------------------------------------

    def load_graph(self, path: str | Path, fmt: str | None = None) -> ExprHigh:
        """Import a dataflow graph from a netlist file.

        The format — ``"json"`` (the ``graphiti-netlist`` schema),
        ``"verilog"`` (the structural subset) or ``"dot"`` — is inferred
        from the file extension unless *fmt* is given.  See
        :mod:`repro.interop` and ``docs/interop.md``.
        """
        self._require_open("load_graph")
        from .interop import infer_format, load_graph

        fmt = fmt or infer_format(path)
        with obs.span("interop:load", path=str(path), format=fmt):
            graph = load_graph(path, fmt=fmt)
        obs.count("interop.imports")
        return graph

    def export_graph(
        self,
        graph: ExprHigh,
        path: str | Path,
        fmt: str | None = None,
        name: str = "graph",
    ) -> str:
        """Export a dataflow graph to a netlist file; returns the format used.

        Serialisation is canonical: equal graphs produce byte-identical
        files, and both the JSON netlist and the structural-Verilog writer
        round-trip through :meth:`load_graph` with ``import(export(g)) ==
        g``.
        """
        self._require_open("export_graph")
        from .interop import save_graph

        with obs.span("interop:export", path=str(path)):
            fmt = save_graph(graph, path, fmt=fmt, name=name)
        obs.count("interop.exports")
        return fmt

    def fuzz(
        self,
        *,
        cases: int = 25,
        seed: int = 0,
        backend: str = "compiled",
    ) -> dict:
        """Run a seeded differential fuzz corpus over the whole flow.

        Generates *cases* random loop-nest programs
        (:mod:`repro.interop.corpus`), and runs each through the full
        differential check: byte-identical netlist round-trips, the
        DF-IO / DF-OoO / GRAPHITI flows against the sequential reference,
        and the pipeline's effectful-loop refusal contract.  Cases fan out
        over the executor pool and cache individually (a case is a pure
        function of ``(seed, backend)`` and the tool version), so a warm
        rerun replays the corpus from the result cache.

        Returns the corpus manifest — a canonical dict whose serialisation
        is byte-identical for equal ``(seed, cases, backend)``; see
        :func:`repro.interop.corpus.corpus_manifest`.
        """
        self._require_open("fuzz")
        from .exec.hashing import fuzz_case_key
        from .interop.corpus import case_seeds, corpus_manifest

        if cases < 1:
            raise ValueError(f"fuzz() needs at least one case, got {cases}")
        seeds = case_seeds(seed, cases)
        units = [
            WorkUnit(
                uid=f"fuzz:{case_seed}",
                fn="repro.exec.workers:run_fuzz_case",
                payload={"seed": case_seed, "backend": backend},
                cache_key=fuzz_case_key(case_seed, backend),
            )
            for case_seed in seeds
        ]
        with obs.span("fuzz", cases=cases, seed=seed, backend=backend) as sp:
            entries = self.executor.run(units)
            manifest = corpus_manifest(entries, seed=seed, backend=backend)
            sp.set(ok=manifest["ok"], divergences=manifest["ooo_divergences"])
        return manifest

    # -- evaluation ----------------------------------------------------------

    def simulate(
        self,
        *args,
        graph_or_kernel=None,
        stimuli=None,
        backend: str = "compiled",
        kernel=None,
        tags: int | None = None,
        capacities: Mapping | None = None,
        latency_of=None,
        trace=None,
        max_cycles: int = 5_000_000,
        deadlock_window: int = 10_000,
    ):
        """Cycle-simulate a circuit: the single simulation entry point.

        All arguments are keyword-only since v1.7 (a positional
        *graph_or_kernel* still works for one release with a
        ``DeprecationWarning``).

        Parameters
        ----------
        graph_or_kernel:
            Either a :class:`~repro.hls.frontend.CompiledKernel` (carries
            its own mini-IR kernel) or a bare
            :class:`~repro.core.exprhigh.ExprHigh` graph, in which case
            *kernel* must supply the matching
            :class:`~repro.hls.ir.Kernel`.
        stimuli:
            One arrays dict — returns a single
            :class:`~repro.sim.cycle.SimStats` — or a sequence of
            stimuli (arrays dicts, or :class:`~repro.sim.compiled.BatchRun`
            configs / equivalent mappings with per-run ``capacities``) —
            returns a list of stats, one per stimulus.  Batches on the
            compiled backend lower the graph once and reuse it across runs.
        backend:
            ``"compiled"`` (default) or ``"interp"`` — see
            :func:`repro.sim.dispatch.simulate_graph`.
        tags:
            Widens tagged-region channels when deriving the default buffer
            placement (pass the transform's tag budget); ignored when
            *capacities* is given.
        capacities:
            Per-edge channel capacities; defaults to
            :func:`repro.hls.buffers.place_buffers` on the graph.
        """
        from .hls.area import latency_of as default_latency_of
        from .hls.buffers import place_buffers
        from .sim.compiled import BatchRun, compile_circuit
        from .sim.dispatch import BACKENDS, simulate_graph

        shim = {"graph_or_kernel": graph_or_kernel}
        _positional_shim("simulate", args, ("graph_or_kernel",), shim)
        graph_or_kernel = shim["graph_or_kernel"]
        if graph_or_kernel is None:
            raise TypeError("Session.simulate() requires graph_or_kernel=")
        if stimuli is None:
            raise TypeError("Session.simulate() requires stimuli=")
        self._require_open("simulate")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown simulation backend {backend!r}; expected one of {BACKENDS}"
            )
        graph = getattr(graph_or_kernel, "graph", graph_or_kernel)
        kernel = kernel if kernel is not None else getattr(graph_or_kernel, "kernel", None)
        if kernel is None:
            raise ValueError(
                "simulate() needs the mini-IR kernel: pass a CompiledKernel "
                "or supply kernel= alongside the graph"
            )
        latency_of = latency_of or default_latency_of
        if capacities is None:
            capacities = place_buffers(graph, tags).capacities

        single = isinstance(stimuli, Mapping)
        runs: list[BatchRun] = []
        for entry in [stimuli] if single else list(stimuli):
            if isinstance(entry, BatchRun):
                run = entry
            elif isinstance(entry, Mapping) and "arrays" in entry:
                run = BatchRun(**entry)
            else:
                run = BatchRun(
                    arrays=entry,
                    max_cycles=max_cycles,
                    deadlock_window=deadlock_window,
                )
            if run.capacities is None:
                run = BatchRun(
                    arrays=run.arrays,
                    capacities=capacities,
                    max_cycles=run.max_cycles,
                    deadlock_window=run.deadlock_window,
                    trace=run.trace if run.trace is not None else trace,
                )
            runs.append(run)

        with obs.span(
            "simulate", kernel=kernel.name, backend=backend, runs=len(runs)
        ):
            if backend == "compiled":
                circuit = compile_circuit(
                    graph, self.env, kernel,
                    capacities=capacities, latency_of=latency_of,
                )
                results = circuit.run_batch(runs)
            else:
                results = [
                    simulate_graph(
                        graph, self.env, kernel, run.arrays,
                        capacities=run.capacities,
                        latency_of=latency_of,
                        backend=backend,
                        max_cycles=run.max_cycles,
                        deadlock_window=run.deadlock_window,
                        trace=run.trace,
                    )
                    for run in runs
                ]
        return results[0] if single else results

    def bench(
        self,
        *args,
        name: str | None = None,
        program=None,
        backend: str = "compiled",
    ) -> "BenchmarkResult":
        """Run one benchmark through all four flows.

        All arguments are keyword-only since v1.7 (positional *name* and
        *program* still work for one release with a ``DeprecationWarning``).
        """
        shim = {"name": name, "program": program}
        _positional_shim("bench", args, ("name", "program"), shim)
        name, program = shim["name"], shim["program"]
        if name is None:
            raise TypeError("Session.bench() requires name=")
        return self.bench_many(
            [name],
            {name: program} if program is not None else None,
            backend=backend,
        )[name]

    def bench_many(
        self,
        names: Iterable[str],
        programs: Mapping[str, object] | None = None,
        backend: str = "compiled",
    ) -> dict[str, "BenchmarkResult"]:
        """Run the (benchmark × flow) matrix as independent work units."""
        from .eval.runner import FLOWS, BenchmarkResult, FlowResult
        from .hls.frontend import compile_program

        self._require_open("bench_many")
        names = list(names)
        with obs.span("bench", benchmarks=len(names), backend=backend):
            units = []
            for name in names:
                program = (programs or {}).get(name)
                if program is None:
                    from .benchmarks import load_benchmark

                    program = load_benchmark(name)
                # Compile once per benchmark, in-process, purely to derive the
                # content-addressed keys; workers recompile deterministically.
                key_env = default_environment()
                compiled = compile_program(program, key_env)
                for flow in FLOWS:
                    units.append(
                        WorkUnit(
                            uid=f"{name}:{flow}",
                            fn="repro.exec.workers:eval_flow",
                            payload={
                                "name": name,
                                "flow": flow,
                                "program": program,
                                "backend": backend,
                            },
                            cache_key=eval_unit_key(
                                flow, program, compiled, key_env, backend
                            ),
                        )
                    )
            raw = self.executor.run(units)
            results: dict[str, BenchmarkResult] = {}
            cursor = 0
            for name in names:
                result = BenchmarkResult(name)
                for flow in FLOWS:
                    result.flows[flow] = FlowResult.from_dict(raw[cursor])
                    cursor += 1
                results[name] = result
            return results

    def report(
        self,
        names: Iterable[str] | None = None,
        programs: Mapping[str, object] | None = None,
    ) -> str:
        """Regenerate Tables 2-3 and Figure 8 (plus the shape checks)."""
        from .eval.paper_data import BENCHMARKS
        from .eval.report import full_report

        with obs.span("report"):
            results = self.bench_many(list(names) if names else list(BENCHMARKS), programs)
            return full_report(results)
