"""Tests for module combinators (product ⊎, connect ⇝, rename)."""

import pytest

from repro.components import default_environment
from repro.core.module import (
    connect_ports,
    deq,
    enq,
    first,
    product,
    reachable_states,
    rename,
)
from repro.core.ports import InternalPort, IOPort, PortMap
from repro.errors import SemanticsError


@pytest.fixture
def env():
    return default_environment(capacity=2)


class TestQueueHelpers:
    def test_enq_adds_to_front(self):
        assert enq((1, 2), 0) == (0, 1, 2)

    def test_enq_respects_capacity(self):
        assert enq((1, 2), 0, capacity=2) is None

    def test_deq_removes_from_end(self):
        assert deq((3, 2, 1)) == (1, (3, 2))

    def test_deq_empty(self):
        assert deq(()) is None

    def test_first_is_oldest(self):
        assert first((3, 2, 1)) == 1
        assert first(()) is None

    def test_fifo_order(self):
        queue = ()
        for v in [10, 20, 30]:
            queue = enq(queue, v)
        out = []
        while deq(queue):
            v, queue = deq(queue)
            out.append(v)
        assert out == [10, 20, 30]


class TestRename:
    def test_ports_renamed(self, env):
        fork = env.lookup("Fork{n=2}")
        renamed = rename(
            fork,
            PortMap({IOPort(0): InternalPort("f", "in0")}),
            PortMap({IOPort(0): InternalPort("f", "out0"), IOPort(1): InternalPort("f", "out1")}),
        )
        assert renamed.input_ports() == {InternalPort("f", "in0")}
        assert InternalPort("f", "out1") in renamed.output_ports()

    def test_collapsing_rename_rejected(self, env):
        # Injectivity is enforced at PortMap construction time already.
        from repro.errors import PortError

        with pytest.raises(PortError):
            PortMap({IOPort(0): InternalPort("f", "x"), IOPort(1): InternalPort("f", "x")})

    def test_partial_rename_collision_rejected(self, env):
        # A rename that maps one port onto another *unmapped* port's name
        # slips past PortMap injectivity and must be caught by rename().
        fork = env.lookup("Fork{n=2}")
        with pytest.raises(SemanticsError):
            rename(fork, PortMap(), PortMap({IOPort(0): IOPort(1)}))


class TestProduct:
    def test_state_is_paired(self, env):
        fork = env.lookup("Fork{n=2}")
        init = env.lookup("Init{value=false}")
        init_renamed = rename(
            init,
            PortMap({IOPort(0): InternalPort("i", "in0")}),
            PortMap({IOPort(0): InternalPort("i", "out0")}),
        )
        combined = product(fork, init_renamed)
        (state,) = combined.init
        assert len(state) == 2

    def test_overlapping_ports_rejected(self, env):
        fork = env.lookup("Fork{n=2}")
        with pytest.raises(SemanticsError):
            product(fork, fork)

    def test_left_transition_leaves_right_untouched(self, env):
        fork = env.lookup("Fork{n=2}")
        init = rename(
            env.lookup("Init{value=false}"),
            PortMap({IOPort(0): InternalPort("i", "in0")}),
            PortMap({IOPort(0): InternalPort("i", "out0")}),
        )
        combined = product(fork, init)
        (state,) = combined.init
        (next_state,) = combined.inputs[IOPort(0)].fire(state, 7)
        assert next_state[1] == state[1]
        assert next_state[0] != state[0]


class TestConnect:
    def test_connect_removes_ports_and_adds_internal(self, env):
        fork = env.lookup("Fork{n=2}")
        init = rename(
            env.lookup("Init{value=false}"),
            PortMap({IOPort(0): InternalPort("i", "in0")}),
            PortMap({IOPort(0): InternalPort("i", "out0")}),
        )
        combined = product(fork, init)
        connected = connect_ports(combined, IOPort(0), InternalPort("i", "in0"))
        assert IOPort(0) not in connected.outputs
        assert InternalPort("i", "in0") not in connected.inputs
        assert len(connected.internals) == len(combined.internals) + 1

    def test_connect_transfers_values(self, env):
        fork = env.lookup("Fork{n=2}")
        init = rename(
            env.lookup("Init{value=false}"),
            PortMap({IOPort(0): InternalPort("i", "in0")}),
            PortMap({IOPort(0): InternalPort("i", "out0")}),
        )
        combined = product(fork, init)
        connected = connect_ports(combined, IOPort(0), InternalPort("i", "in0"))
        (state,) = connected.init
        (after_input,) = connected.inputs[IOPort(0)].fire(state, True)
        # Run the connection internal transition: value moves fork -> init.
        moved = list(connected.internal_steps(after_input))
        assert moved, "connection transition should fire"
        fork_state, init_state = moved[0]
        assert True in init_state[0]

    def test_connect_missing_port_rejected(self, env):
        fork = env.lookup("Fork{n=2}")
        with pytest.raises(SemanticsError):
            connect_ports(fork, IOPort(9), IOPort(0))


class TestReachableStates:
    def test_bounded_exploration_terminates(self, env):
        fork = env.lookup("Fork{n=2}")
        states = reachable_states(fork, {IOPort(0): (0, 1)})
        # Queues bounded at 2 with two possible values: finite, non-trivial.
        assert 1 < len(states) < 200

    def test_limit_enforced(self):
        env_unbounded = default_environment(capacity=None)
        fork = env_unbounded.lookup("Fork{n=2}")
        with pytest.raises(SemanticsError):
            reachable_states(fork, {IOPort(0): (0, 1)}, limit=50)

    def test_unknown_stimulus_port_rejected(self, env):
        fork = env.lookup("Fork{n=2}")
        with pytest.raises(SemanticsError):
            reachable_states(fork, {IOPort(7): (0,)})
