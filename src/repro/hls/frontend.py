"""The dynamic-HLS front end: mini-IR kernels → elastic dataflow circuits.

This is the stand-in for Dynamatic's fast-token-delivery flow (DF-IO in the
paper's evaluation).  Each kernel's inner do-while loop compiles to the
classic circuit of figure 2b:

* one Mux per loop-carried variable, guarded by a shared Init'd condition
  distributed through a binary fork tree;
* the body expression DAG as Operator nodes (loads are pure array-read
  operators; constants are folded into partially-applied operators so no
  separate constant-trigger network is needed);
* one Branch per variable steering loop-back vs exit;
* a Driver pseudo-component emitting one initial-state token per outer
  iteration, and a Collector consuming exit values and running the
  epilogue stores.

Stores *inside* the body become Store components — the effectful case the
rewrite pipeline must refuse to make out-of-order.

The returned :class:`LoopMark` per kernel is the oracle information the
paper takes from Elakhras et al.: which nodes form the loop that should be
made out-of-order, and with how many tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..components import branch, fork, init, mux, operator, sink, store
from ..core.environment import Environment
from ..core.exprhigh import Endpoint, ExprHigh, NodeSpec
from ..errors import FrontendError
from .ir import (
    BinOp,
    Const,
    Expr,
    Kernel,
    Load,
    Program,
    Select,
    UnOp,
    Var,
    var_occurrences,
)


@dataclass
class LoopMark:
    """Oracle metadata naming the loop structure inside a compiled kernel."""

    kernel: str
    mux_nodes: list[str]
    branch_nodes: list[str]
    init_node: str
    cond_fork: str  # the fork distributing the condition to branches + init
    driver: str
    collector: str
    tags: int
    effectful: bool  # body contains stores: must NOT be made out-of-order
    sequential_outer: bool

    @classmethod
    def from_graph(
        cls,
        graph: ExprHigh,
        *,
        kernel: str = "loop",
        mux_nodes: Iterable[str],
        branch_nodes: Iterable[str],
        init_node: str,
        cond_fork: str,
        driver: str = "",
        collector: str = "",
        tags: int = 4,
        effectful: bool | None = None,
        sequential_outer: bool = False,
    ) -> "LoopMark":
        """Build a mark validated against *graph*.

        Every referenced node must exist and have the component type its
        role requires; violations raise :class:`FrontendError` (a
        :class:`~repro.errors.GraphitiError`) naming the offending node,
        instead of failing deep inside the rewrite matcher.  When
        *effectful* is omitted it is derived from the graph (any Store
        component marks the loop effectful).
        """

        def require(name: str, role: str, expected: str | None) -> None:
            spec = graph.nodes.get(name)
            if spec is None:
                known = ", ".join(sorted(graph.nodes))
                raise FrontendError(
                    f"{role} node {name!r} is not in the graph (known nodes: {known})"
                )
            if expected is not None and spec.typ != expected:
                raise FrontendError(
                    f"{role} node {name!r} has component type {spec.typ!r}, "
                    f"expected {expected!r}"
                )

        mux_nodes = list(mux_nodes)
        branch_nodes = list(branch_nodes)
        if not mux_nodes:
            raise FrontendError("a loop mark needs at least one Mux node")
        if not branch_nodes:
            raise FrontendError("a loop mark needs at least one Branch node")
        if tags < 1:
            raise FrontendError(f"tag budget must be at least 1, got {tags}")
        for name in mux_nodes:
            require(name, "Mux", "Mux")
        for name in branch_nodes:
            require(name, "Branch", "Branch")
        require(init_node, "Init", "Init")
        require(cond_fork, "condition-fork", "Fork")
        if driver:
            require(driver, "driver", "Driver")
        if collector:
            require(collector, "collector", "Collector")
        if effectful is None:
            effectful = any(spec.typ == "Store" for spec in graph.nodes.values())
        return cls(
            kernel=kernel,
            mux_nodes=mux_nodes,
            branch_nodes=branch_nodes,
            init_node=init_node,
            cond_fork=cond_fork,
            driver=driver,
            collector=collector,
            tags=tags,
            effectful=effectful,
            sequential_outer=sequential_outer,
        )


@dataclass
class CompiledKernel:
    graph: ExprHigh
    mark: LoopMark
    kernel: Kernel


@dataclass
class CompiledProgram:
    name: str
    kernels: list[CompiledKernel] = field(default_factory=list)

    def total_nodes(self) -> int:
        return sum(len(ck.graph.nodes) for ck in self.kernels)


def compile_program(program: Program, env: Environment) -> CompiledProgram:
    """Compile every kernel of *program*, registering functions in *env*."""
    compiled = CompiledProgram(program.name)
    for kernel in program.kernels:
        compiled.kernels.append(compile_kernel(kernel, program, env))
    return compiled


def compile_kernel(kernel: Kernel, program: Program, env: Environment) -> CompiledKernel:
    builder = _KernelBuilder(kernel, program, env)
    return builder.build()


class _KernelBuilder:
    def __init__(self, kernel: Kernel, program: Program, env: Environment):
        self.kernel = kernel
        self.program = program
        self.env = env
        self.graph = ExprHigh()
        self.counter = 0

    # -- naming ----------------------------------------------------------------

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -- main ------------------------------------------------------------------

    def build(self) -> CompiledKernel:
        kernel, graph = self.kernel, self.graph
        loop = kernel.loop
        state = loop.state

        driver_name = f"driver_{kernel.name}"
        graph.add_node(
            driver_name,
            NodeSpec.make(
                "Driver",
                [],
                [f"out{i}" for i in range(len(state))],
                {"kernel": kernel.name},
            ),
        )

        mux_names: dict[str, str] = {}
        for index, var in enumerate(state):
            name = f"mux_{var}"
            graph.add_node(name, mux())
            graph.connect(driver_name, f"out{index}", name, "in1")
            mux_names[var] = name

        # Old-state wires, forked per number of *occurrences* in the body
        # (each occurrence of a variable consumes one forked wire).  A body
        # expression that folds to a constant still needs one token per
        # iteration; it is compiled as a constant-producing operator
        # triggered by that variable's own old token.
        folded_body = {var: _fold_constants(loop.body[var]) for var in state}
        uses: dict[str, int] = {var: 0 for var in state}
        for var, expr in folded_body.items():
            if isinstance(expr, Const):
                uses[var] += 1
                continue
            for used, count in var_occurrences(expr).items():
                uses[used] += count
        old_wires: dict[str, list[Endpoint]] = {}
        for var in state:
            source = Endpoint(mux_names[var], "out0")
            count = uses[var]
            if count == 0:
                sink_name = self.fresh("sink_unused_")
                graph.add_node(sink_name, sink())
                graph.connect(source.node, source.port, sink_name, "in0")
                old_wires[var] = []
            else:
                old_wires[var] = self._fan_out(source, count)

        # Body: one expression DAG per state variable (parallel update).
        cursor = {var: 0 for var in state}

        def take(var: str) -> Endpoint:
            wires = old_wires[var]
            endpoint = wires[cursor[var]]
            cursor[var] += 1
            return endpoint

        new_value: dict[str, Endpoint] = {}
        for var in state:
            expr = folded_body[var]
            if isinstance(expr, Const):
                trigger = take(var)
                fn_name = f"konst.{_value_token(expr.value)}"
                self.env.register_function(fn_name, lambda _t, _v=expr.value: _v, 1)
                name = self.fresh("const_")
                graph.add_node(name, operator(fn_name, 1))
                graph.connect(trigger.node, trigger.port, name, "in0")
                new_value[var] = Endpoint(name, "out0")
            else:
                new_value[var] = self._compile_expr(expr, take)

        # New-state wires: used by condition, branch data, and body stores.
        new_uses: dict[str, int] = {var: 1 for var in state}  # branch data
        for var, count in var_occurrences(_fold_constants(loop.condition)).items():
            new_uses[var] += count
        for op in loop.stores:
            for var, count in var_occurrences(_fold_constants(op.index)).items():
                new_uses[var] += count
            for var, count in var_occurrences(_fold_constants(op.value)).items():
                new_uses[var] += count
        new_wires: dict[str, list[Endpoint]] = {}
        for var in state:
            new_wires[var] = self._fan_out(new_value[var], new_uses[var])
        new_cursor = {var: 0 for var in state}

        def take_new(var: str) -> Endpoint:
            endpoint = new_wires[var][new_cursor[var]]
            new_cursor[var] += 1
            return endpoint

        cond_wire = self._compile_expr(loop.condition, take_new)

        # Body stores (the effectful case).
        for op in loop.stores:
            addr = self._compile_expr(op.index, take_new)
            data = self._compile_expr(op.value, take_new)
            store_name = self.fresh("store_")
            graph.add_node(store_name, store())
            graph.connect(addr.node, addr.port, store_name, "addr")
            graph.connect(data.node, data.port, store_name, "data")
            done_sink = self.fresh("sink_done_")
            graph.add_node(done_sink, sink())
            graph.connect(store_name, "done", done_sink, "in0")

        # Condition distribution: fork to (branch tree, init), init to muxes.
        cond_fork = f"condfork_{kernel.name}"
        graph.add_node(cond_fork, fork(2))
        graph.connect(cond_wire.node, cond_wire.port, cond_fork, "in0")

        init_name = f"init_{kernel.name}"
        graph.add_node(init_name, init(value=False))
        graph.connect(cond_fork, "out1", init_name, "in0")
        mux_cond_wires = self._fan_out(Endpoint(init_name, "out0"), len(state))
        for var, wire in zip(state, mux_cond_wires):
            graph.connect(wire.node, wire.port, mux_names[var], "cond")

        branch_cond_wires = self._fan_out(Endpoint(cond_fork, "out0"), len(state))

        collector_name = f"collector_{kernel.name}"
        graph.add_node(
            collector_name,
            NodeSpec.make(
                "Collector",
                [f"in{i}" for i in range(len(kernel.loop.result_vars))],
                [],
                {"kernel": kernel.name},
            ),
        )

        branch_names: dict[str, str] = {}
        for var, cond_ep in zip(state, branch_cond_wires):
            name = f"branch_{var}"
            graph.add_node(name, branch())
            branch_names[var] = name
            graph.connect(cond_ep.node, cond_ep.port, name, "cond")
            data = take_new(var)
            graph.connect(data.node, data.port, name, "in0")
            graph.connect(name, "out0", mux_names[var], "in0")  # loop back
            if var in loop.result_vars:
                slot = loop.result_vars.index(var)
                graph.connect(name, "out1", collector_name, f"in{slot}")
            else:
                exit_sink = self.fresh("sink_exit_")
                graph.add_node(exit_sink, sink())
                graph.connect(name, "out1", exit_sink, "in0")

        graph.validate()
        mark = LoopMark(
            kernel=kernel.name,
            mux_nodes=[mux_names[v] for v in state],
            branch_nodes=[branch_names[v] for v in state],
            init_node=init_name,
            cond_fork=cond_fork,
            driver=driver_name,
            collector=collector_name,
            tags=kernel.tags,
            effectful=loop.is_effectful(),
            sequential_outer=kernel.sequential_outer,
        )
        return CompiledKernel(graph=graph, mark=mark, kernel=self.kernel)

    # -- fan-out ----------------------------------------------------------------

    def _fan_out(self, source: Endpoint, count: int) -> list[Endpoint]:
        """Return *count* endpoints carrying the value at *source*.

        Builds a left-leaning comb of binary Forks, the shape the phase-1
        combine rewrites expect.
        """
        if count <= 0:
            raise FrontendError("fan_out of zero uses should be handled by the caller")
        if count == 1:
            return [source]
        name = self.fresh("fork_")
        self.graph.add_node(name, fork(2))
        self.graph.connect(source.node, source.port, name, "in0")
        rest = self._fan_out(Endpoint(name, "out0"), count - 1)
        return rest + [Endpoint(name, "out1")]

    # -- expressions --------------------------------------------------------------

    def _compile_expr(self, expr: Expr, take) -> Endpoint:
        """Compile an expression tree; *take* supplies variable wires."""
        expr = _fold_constants(expr)
        return self._emit(expr, take)

    def _emit(self, expr: Expr, take) -> Endpoint:
        graph = self.graph
        if isinstance(expr, Var):
            return take(expr.name)
        if isinstance(expr, Const):
            raise FrontendError(
                f"free-standing constant {expr.value!r}: constants must appear "
                "as operator operands (they are folded into the operator)"
            )
        if isinstance(expr, Load):
            fn_name = self._array_reader(expr.array)
            index = self._emit(expr.index, take)
            name = self.fresh("load_")
            graph.add_node(name, operator(fn_name, 1, memop="load", array=expr.array))
            graph.connect(index.node, index.port, name, "in0")
            return Endpoint(name, "out0")
        if isinstance(expr, UnOp):
            inner = self._emit(expr.operand, take)
            name = self.fresh("op_")
            graph.add_node(name, operator(self._ensure_op(expr.op), 1))
            graph.connect(inner.node, inner.port, name, "in0")
            return Endpoint(name, "out0")
        if isinstance(expr, BinOp):
            return self._emit_binop(expr, take)
        if isinstance(expr, Select):
            return self._emit_select(expr, take)
        raise FrontendError(f"cannot compile expression {expr!r}")

    def _emit_select(self, expr: Select, take) -> Endpoint:
        """If-converted conditional; constant arms fold into the selector,
        the same treatment constants get as operator operands."""
        graph = self.graph
        true_const = isinstance(expr.if_true, Const)
        false_const = isinstance(expr.if_false, Const)
        cond = self._emit(expr.cond, take)
        name = self.fresh("select_")
        if true_const and false_const:
            a, b = expr.if_true.value, expr.if_false.value
            fn_name = f"select.k12.{_value_token(a)}.{_value_token(b)}"
            self.env.register_function(fn_name, lambda c, _a=a, _b=b: _a if c else _b, 1)
            graph.add_node(name, operator(fn_name, 1, base_op="select"))
            graph.connect(cond.node, cond.port, name, "in0")
            return Endpoint(name, "out0")
        if false_const:
            value = expr.if_false.value
            fn_name = f"select.k2.{_value_token(value)}"
            self.env.register_function(fn_name, lambda c, t, _v=value: t if c else _v, 2)
            arm = self._emit(expr.if_true, take)
        elif true_const:
            value = expr.if_true.value
            fn_name = f"select.k1.{_value_token(value)}"
            self.env.register_function(fn_name, lambda c, f, _v=value: _v if c else f, 2)
            arm = self._emit(expr.if_false, take)
        else:
            if_true = self._emit(expr.if_true, take)
            if_false = self._emit(expr.if_false, take)
            graph.add_node(name, operator(self._ensure_select(), 3))
            graph.connect(cond.node, cond.port, name, "in0")
            graph.connect(if_true.node, if_true.port, name, "in1")
            graph.connect(if_false.node, if_false.port, name, "in2")
            return Endpoint(name, "out0")
        graph.add_node(name, operator(fn_name, 2, base_op="select"))
        graph.connect(cond.node, cond.port, name, "in0")
        graph.connect(arm.node, arm.port, name, "in1")
        return Endpoint(name, "out0")

    def _emit_binop(self, expr: BinOp, take) -> Endpoint:
        graph = self.graph
        if isinstance(expr.right, Const):
            fn_name = self._partial_op(expr.op, expr.right.value, position=1)
            left = self._emit(expr.left, take)
            name = self.fresh("op_")
            graph.add_node(name, operator(fn_name, 1, base_op=expr.op))
            graph.connect(left.node, left.port, name, "in0")
            return Endpoint(name, "out0")
        if isinstance(expr.left, Const):
            fn_name = self._partial_op(expr.op, expr.left.value, position=0)
            right = self._emit(expr.right, take)
            name = self.fresh("op_")
            graph.add_node(name, operator(fn_name, 1, base_op=expr.op))
            graph.connect(right.node, right.port, name, "in0")
            return Endpoint(name, "out0")
        left = self._emit(expr.left, take)
        right = self._emit(expr.right, take)
        name = self.fresh("op_")
        graph.add_node(name, operator(self._ensure_op(expr.op), 2))
        graph.connect(left.node, left.port, name, "in0")
        graph.connect(right.node, right.port, name, "in1")
        return Endpoint(name, "out0")

    # -- function registration -----------------------------------------------------

    def _ensure_op(self, op: str) -> str:
        from .ir import _BINOPS, _UNOPS  # registered op tables

        if op in _BINOPS:
            self.env.register_function(op, _BINOPS[op], 2)
            return op
        if op in _UNOPS:
            self.env.register_function(op, _UNOPS[op], 1)
            return op
        raise FrontendError(f"unknown operator {op!r}")

    def _ensure_select(self) -> str:
        self.env.register_function("select", lambda c, a, b: a if c else b, 3)
        return "select"

    def _partial_op(self, op: str, value, position: int) -> str:
        from .ir import _BINOPS

        base = _BINOPS.get(op)
        if base is None:
            raise FrontendError(f"unknown operator {op!r}")
        text = _value_token(value)
        name = f"{op}.k{position}.{text}"
        if position == 1:
            self.env.register_function(name, lambda a, _f=base, _v=value: _f(a, _v), 1)
        else:
            self.env.register_function(name, lambda b, _f=base, _v=value: _f(value, b), 1)
        return name

    def _array_reader(self, array: str) -> str:
        name = f"read.{array}"
        arrays = self.program.arrays

        def read(index, _arrays=arrays, _array=array):
            return _arrays[_array].flat[int(index)]

        self.env.register_function(name, read, 1)
        return name


def _value_token(value) -> str:
    text = repr(value)
    for ch in "{};= ,()<>*":
        text = text.replace(ch, "_")
    return text


def _fold_constants(expr: Expr) -> Expr:
    """Fold constant subtrees so only leaf constants remain as operands."""
    from .ir import eval_expr

    if isinstance(expr, (Var, Const)):
        return expr
    if isinstance(expr, UnOp):
        inner = _fold_constants(expr.operand)
        if isinstance(inner, Const):
            return Const(eval_expr(UnOp(expr.op, inner), {}, {}))
        return UnOp(expr.op, inner)
    if isinstance(expr, BinOp):
        left, right = _fold_constants(expr.left), _fold_constants(expr.right)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(eval_expr(BinOp(expr.op, left, right), {}, {}))
        return BinOp(expr.op, left, right)
    if isinstance(expr, Load):
        return Load(expr.array, _fold_constants(expr.index))
    if isinstance(expr, Select):
        cond = _fold_constants(expr.cond)
        if_true = _fold_constants(expr.if_true)
        if_false = _fold_constants(expr.if_false)
        if isinstance(cond, Const):
            return if_true if cond.value else if_false
        return Select(cond, if_true, if_false)
    raise FrontendError(f"cannot fold expression {expr!r}")
