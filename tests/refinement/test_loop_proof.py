"""Executable section 5: flushing lemma, state invariant, refinement.

These tests replay the paper's proof decomposition on bounded instances:
lemma 5.1 (the sequential loop flushes each terminating input to fⁿ(i)),
lemma 5.2 (ψ is preserved by internal transitions of the tagged loop), and
theorem 5.3 (𝓘 ⊑ 𝓢), for two different loop bodies.
"""

import pytest

from repro.components import default_environment
from repro.errors import RefinementError
from repro.refinement.loop_proof import (
    OutOfOrderLoop,
    SequentialLoop,
    check_flushing_lemma,
    check_loop_refinement,
    check_state_invariant,
    orbit,
    state_accessors,
)


def dec_step(n):
    return n - 1, n - 1 > 0


def collatz_step(n):
    nxt = n // 2 if n % 2 == 0 else 3 * n + 1
    return nxt, nxt != 1


@pytest.fixture
def env():
    env = default_environment(capacity=1)
    env.register_function("dec_step", dec_step, 1)
    env.register_function("collatz_step", collatz_step, 1)
    return env


class TestOrbit:
    def test_terminating_orbit_includes_final_output(self):
        assert orbit(dec_step, 3) == [3, 2, 1, 0]

    def test_divergent_orbit_detected(self):
        with pytest.raises(RefinementError):
            orbit(lambda n: (n, True), 1, bound=8)

    def test_collatz_orbit(self):
        # 3 -> 10 -> 5 -> 16 -> 8 -> 4 -> 2 -> 1 (loop exits emitting 1)
        assert orbit(collatz_step, 3)[-1] == 1


class TestStateAccessors:
    def test_accessors_partition_the_state(self, env):
        loop = SequentialLoop.build("dec_step", env)
        (state,) = loop.module.init
        pieces = [loop.accessors[name](state) for name in sorted(loop.graph.nodes)]
        # Re-nesting the pieces right-associatively rebuilds the state.
        rebuilt = pieces[-1]
        for piece in reversed(pieces[:-1]):
            rebuilt = (piece, rebuilt)
        assert rebuilt == state


class TestFlushingLemma:
    def test_dec_loop_flushes(self, env):
        assert check_flushing_lemma("dec_step", env, [1, 2, 3]) == 3

    def test_collatz_loop_flushes(self, env):
        assert check_flushing_lemma("collatz_step", env, [3, 5]) == 2

    def test_omega_holds_initially(self, env):
        loop = SequentialLoop.build("dec_step", env)
        (state,) = loop.module.init
        assert loop.omega(state)


class TestStateInvariant:
    def test_psi_preserved_dec(self, env):
        visited = check_state_invariant("dec_step", env, inputs=(1, 2), tags=2)
        assert visited > 50  # a real exploration, not a vacuous pass

    def test_psi_preserved_single_tag(self, env):
        assert check_state_invariant("dec_step", env, inputs=(2,), tags=1) > 10

    def test_psi_initially(self, env):
        loop = OutOfOrderLoop.build("dec_step", env, tags=2, inputs=(1, 2))
        (state,) = loop.module.init
        assert loop.psi(state)
        assert loop.tagged_values(state) == []


class TestLoopRefinement:
    def test_theorem_5_3_dec(self, env):
        certificate = check_loop_refinement("dec_step", env, inputs=(1, 2), tags=2)
        assert certificate.relation

    def test_theorem_5_3_single_tag(self, env):
        assert check_loop_refinement("dec_step", env, inputs=(1,), tags=1).relation

    def test_broken_body_fails(self, env):
        """A body that mangles values is caught by the refinement check."""
        env.register_function("bad_step", lambda n: (n - 2, n - 2 > 0), 1)

        from repro.core.ports import IOPort
        from repro.core.semantics import denote
        from repro.refinement.simulation import find_weak_simulation
        from repro.rewriting.rules.loop_rewrite import ooo_loop_rhs, sequential_loop_concrete

        # Input 3: bad_step yields -1 on exit, dec_step yields 0 — an
        # observable output mismatch (iteration counts alone would not be).
        impl = denote(ooo_loop_rhs("bad_step", 2).lower(), env)
        spec = denote(sequential_loop_concrete("dec_step").lower(), env.with_capacity(4))
        result = find_weak_simulation(impl, spec, {IOPort(0): (3,)})
        assert not result.holds
