"""Table 2: cycle count, clock period, and execution time.

``python -m repro.eval.table2 --strategy`` additionally renders the
saturation-vs-fixpoint delta table (modeled best-point cost of the
equality-saturation backend against the destructive pipeline).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from . import paper_data
from .ablation import StrategyDelta
from .report import clock_table, cycle_table, exec_time_table
from .runner import BenchmarkResult


def collect(benchmarks: Iterable[str] = paper_data.BENCHMARKS) -> dict[str, BenchmarkResult]:
    """Run the listed benchmarks through all four flows."""
    from ..api import Session

    return Session(use_cache=False).bench_many(list(benchmarks))


def render(results: Mapping[str, BenchmarkResult]) -> str:
    """Render the three Table 2 sub-tables."""
    return "\n\n".join(
        table.render()
        for table in (cycle_table(results), clock_table(results), exec_time_table(results))
    )


def render_strategy_deltas(deltas: Sequence[StrategyDelta]) -> str:
    """The saturation-vs-fixpoint companion table."""
    title = "Saturation vs fixpoint — modeled (area, cycles) of the best extracted point"
    lines = [title, "=" * len(title)]
    lines.append(
        f"{'benchmark':14s}{'fix area':>10s}{'fix cyc':>9s}{'best area':>11s}"
        f"{'best cyc':>10s}{'t-ratio':>9s}{'frontier':>10s}  note"
    )
    for delta in deltas:
        note = "ooo refused; structural rules only" if delta.refused else ""
        lines.append(
            f"{delta.benchmark:14s}{delta.fixpoint_area:>10d}{delta.fixpoint_cycles:>9d}"
            f"{delta.best_area:>11d}{delta.best_cycles:>10d}{delta.time_ratio:>9.3f}"
            f"{delta.frontier:>10d}  {note}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> None:
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    print(render(collect()))
    if "--strategy" in argv:
        from .ablation import strategy_deltas

        print()
        print(render_strategy_deltas(strategy_deltas()))


if __name__ == "__main__":
    main()
