"""Cycle-level simulation of elastic circuits (the ModelSim substitute).

Two backends, one dispatch seam: :func:`simulate_graph` routes to either
the graph-compiled engine (:mod:`repro.sim.compiled`, the default) or the
per-component interpreter (:mod:`repro.sim.cycle`, the differential
oracle).
"""

from .compiled import BatchRun, CompiledCircuit, compile_circuit
from .cycle import Channel, CycleSimulator, SimStats, evaluation_order
from .dispatch import BACKENDS, simulate_graph
from .trace import FiringEvent, FiringTrace, render_timeline

__all__ = [
    "BACKENDS",
    "BatchRun",
    "Channel",
    "CompiledCircuit",
    "CycleSimulator",
    "SimStats",
    "compile_circuit",
    "evaluation_order",
    "simulate_graph",
    "FiringEvent",
    "FiringTrace",
    "render_timeline",
]
