"""Rewrite objects: a left-hand-side pattern, a right-hand-side builder.

A rewrite (section 3 of the paper) is specified by a pair of graphs.  The
lhs is an ExprHigh *pattern*: a small graph whose node names are pattern
variables, whose parameters may be :class:`Var` metavariables, and whose
marked external inputs/outputs define the *interface* — the boundary ports
that the surrounding graph keeps connecting to after the rewrite.  The rhs
is a builder function from a :class:`Match` to a replacement graph exposing
the same interface indices.

Each rewrite carries a ``verified`` flag and an optional *obligation*: a
callable producing bounded (lhs, rhs, environment, stimuli) instances on
which ``rhs ⊑ lhs`` is checked by the refinement engine.  This mirrors the
paper's division: the rewriting function is correctness-preserving given the
per-rewrite refinement (theorem 4.6); rewrites without a discharged
obligation are applied as *unverified*, like the paper's 19 minor rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..core.environment import Environment
from ..core.exprhigh import Endpoint, ExprHigh, NodeSpec


@dataclass(frozen=True)
class Var:
    """A metavariable usable as a parameter value in a pattern NodeSpec."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass
class Match:
    """A located occurrence of a pattern in a host graph."""

    nodes: dict[str, str]  # pattern node name -> host node name
    params: dict[str, object]  # metavariable bindings
    inputs: dict[int, Endpoint]  # interface input index -> host endpoint
    outputs: dict[int, Endpoint]  # interface output index -> host endpoint
    host_specs: dict[str, NodeSpec] = field(default_factory=dict)

    def host_nodes(self) -> frozenset[str]:
        return frozenset(self.nodes.values())

    def bind(self, value: object) -> object:
        """Resolve *value* if it is a metavariable, else return it as is."""
        if isinstance(value, Var):
            return self.params[value.name]
        return value


#: An obligation instance: (lhs graph, rhs graph, environment, stimuli).
ObligationInstance = tuple[ExprHigh, ExprHigh, Environment, Mapping]


@dataclass
class Rewrite:
    """A named rewrite with its pattern, builder, and proof status."""

    name: str
    lhs: ExprHigh
    rhs: Callable[[Match], ExprHigh]
    verified: bool = False
    obligation: Callable[[], Iterable[ObligationInstance]] | None = None
    description: str = ""

    def interface_arity(self) -> tuple[int, int]:
        """Number of boundary inputs and outputs of the pattern."""
        return len(self.lhs.inputs), len(self.lhs.outputs)


def pattern(build: Callable[[ExprHigh], None]) -> ExprHigh:
    """Small helper: run *build* on a fresh graph and return it."""
    graph = ExprHigh()
    build(graph)
    return graph
