"""Tests for rewrite application through ExprLow."""

import pytest

from repro.components import default_environment, fork, join, mux, pure, split
from repro.core import denote
from repro.core.exprhigh import Endpoint, ExprHigh
from repro.errors import RewriteError
from repro.refinement import refines, uniform_stimuli
from repro.rewriting.apply import apply_rewrite
from repro.rewriting.matcher import first_match
from repro.rewriting.rewrite import Match, Rewrite
from repro.rewriting.rules.combine import mux_combine
from repro.rewriting.rules.common import graph_of
from repro.rewriting.rules.reduction import split_join_elim

from .test_matcher import host_two_mux_loop


class TestApplyMuxCombine:
    def _apply(self):
        host = host_two_mux_loop()
        rewrite = mux_combine()
        match = first_match(host, rewrite)
        return host, apply_rewrite(host, rewrite, match)

    def test_removes_matched_and_adds_replacement(self):
        host, (result, record) = self._apply()
        assert "cfork" not in result.nodes
        assert "m_a" not in result.nodes
        types = sorted(spec.typ for spec in result.nodes.values())
        assert types.count("Mux") == 1
        assert types.count("Join") == 3  # two new joins + host's own join
        assert record.matched_nodes == frozenset({"cfork", "m_a", "m_b"})

    def test_crossing_edges_rewired(self):
        host, (result, _) = self._apply()
        # The host's join must now be fed by the replacement Split.
        src = result.source_of("jn", "in0")
        assert result.nodes[src.node].typ == "Split"

    def test_host_external_inputs_remarked(self):
        host, (result, _) = self._apply()
        assert set(result.inputs) == set(host.inputs)
        cond_target = result.inputs[0]
        assert result.nodes[cond_target.node].typ == "Mux"
        assert cond_target.port == "cond"

    def test_result_validates(self):
        _, (result, _) = self._apply()
        result.validate()

    def test_application_marks_verified(self):
        _, (_, record) = self._apply()
        assert record.verified
        assert record.rewrite == "mux-combine"


class TestInterfaceChecks:
    def test_rhs_interface_mismatch_rejected(self):
        host = host_two_mux_loop()
        rewrite = mux_combine()
        match = first_match(host, rewrite)

        def bad_rhs(m: Match) -> ExprHigh:
            return graph_of({"p": pure("id")}, [], {0: "p.in0"}, {0: "p.out0"})

        broken = Rewrite(name="broken", lhs=rewrite.lhs, rhs=bad_rhs)
        with pytest.raises(RewriteError):
            apply_rewrite(host, broken, match)


class TestSemanticPreservation:
    """Theorem 4.6, observed: applying a verified rewrite to a concrete
    graph produces a graph refining the original."""

    def _small_host(self):
        g = ExprHigh()
        g.add_node("sp", split())
        g.add_node("jn", join())
        g.add_node("post", pure("id"))
        g.connect("sp", "out0", "jn", "in0")
        g.connect("sp", "out1", "jn", "in1")
        g.connect("jn", "out0", "post", "in0")
        g.mark_input(0, "sp", "in0")
        g.mark_output(0, "post", "out0")
        return g

    def test_split_join_elim_preserves_refinement(self):
        env = default_environment(capacity=1)
        host = self._small_host()
        rewrite = split_join_elim()
        match = first_match(host, rewrite)
        result, _ = apply_rewrite(host, rewrite, match)
        impl = denote(result.lower(), env)
        spec = denote(host.lower(), env.with_capacity(4))
        stimuli = uniform_stimuli(impl, ((1, 2),))
        assert refines(impl, spec, stimuli)

    def test_rewritten_graph_still_computes(self):
        env = default_environment(capacity=2)
        host = self._small_host()
        rewrite = split_join_elim()
        result, _ = apply_rewrite(host, rewrite, first_match(host, rewrite))
        module = denote(result.lower(), env)
        from repro.core.ports import IOPort

        (state,) = module.init
        (state,) = module.inputs[IOPort(0)].fire(state, (7, 8))
        # run internal transitions until the output appears
        emitted = set()
        frontier = [state]
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            for value, _ in module.outputs[IOPort(0)].fire(current):
                emitted.add(value)
            for nxt in module.internal_steps(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert emitted == {(7, 8)}


class TestFreshNaming:
    def test_replacement_names_do_not_collide(self):
        host = host_two_mux_loop()
        # Pre-claim the replacement's natural names.
        host.rename_node("jn", "jt")
        rewrite = mux_combine()
        match = first_match(host, rewrite)
        result, record = apply_rewrite(host, rewrite, match)
        assert "jt" in result.nodes  # the host's node keeps its name
        assert len(record.new_nodes) == 4
        result.validate()
