"""Cycle-level simulation of elastic dataflow circuits.

This is the ModelSim substitute: it executes an ExprHigh graph with a
synchronous, two-phase model and reports the cycle count the paper's Table 2
measures.

Model:

* every connection is a FIFO *channel*; its capacity comes from buffer
  placement (default one slot), and a token pushed in cycle *t* becomes
  visible to the consumer in cycle *t+1* — every hop is registered, as in a
  fully elastic implementation;
* every component has a latency (from the technology model) and initiation
  interval 1: it accepts one firing per cycle when its inputs are available
  and its internal pipeline and output channels have room — which is what
  lets a pipelined floating-point unit fill with tokens from overlapping
  loop instances;
* Driver/Collector pseudo-components bridge to the mini-IR: the Driver
  emits one initial-state token bundle per outer iteration, the Collector
  consumes exit bundles and performs the epilogue stores.

Functional values flow with the tokens, so a simulation also *computes* the
kernel — results are checked against the sequential reference interpreter,
which is how the bicg memory-reordering bug becomes observable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping

from .. import obs
from ..core.environment import Environment
from ..core.exprhigh import Endpoint, ExprHigh
from ..errors import DeadlockError, SimulationError
from ..hls.ir import Kernel, eval_expr

Edge = tuple[Endpoint, Endpoint]  # (source, destination)


def full_channel_message(
    src: Endpoint | None, dst: Endpoint | None, occupancy: int, capacity: int
) -> str:
    """Diagnostic for a push into a full channel, naming the edge.

    Both simulation backends raise this exact message, so deadlock triage
    can locate the offending edge without re-running under ``--trace``.
    """
    if src is None and dst is None:
        return f"push into a full channel ({occupancy}/{capacity} occupied)"
    return (
        f"push into full channel {src} -> {dst} "
        f"({occupancy}/{capacity} occupied)"
    )


@dataclass
class Channel:
    capacity: int
    queue: deque = field(default_factory=deque)
    staged: list = field(default_factory=list)  # pushed this cycle
    src: Endpoint | None = None  # producing endpoint, for diagnostics
    dst: Endpoint | None = None  # consuming endpoint, for diagnostics
    peak: int = 0  # highest occupancy ever reached

    def can_push(self) -> bool:
        return len(self.queue) + len(self.staged) < self.capacity

    def push(self, value) -> None:
        if not self.can_push():
            raise SimulationError(full_channel_message(self.src, self.dst, self.occupancy(), self.capacity))
        self.staged.append(value)
        occupancy = len(self.queue) + len(self.staged)
        if occupancy > self.peak:
            self.peak = occupancy

    def push_now(self, value) -> None:
        """Combinational push: visible to consumers within this cycle."""
        if not self.can_push():
            raise SimulationError(full_channel_message(self.src, self.dst, self.occupancy(), self.capacity))
        self.queue.append(value)
        occupancy = len(self.queue) + len(self.staged)
        if occupancy > self.peak:
            self.peak = occupancy

    def can_pop(self) -> bool:
        return bool(self.queue)

    def head(self):
        return self.queue[0]

    def pop(self):
        return self.queue.popleft()

    def commit(self) -> None:
        self.queue.extend(self.staged)
        self.staged.clear()

    def occupancy(self) -> int:
        return len(self.queue) + len(self.staged)


@dataclass
class SimStats:
    cycles: int = 0
    tokens_fired: int = 0
    store_history: list = field(default_factory=list)
    results_collected: int = 0
    peak_in_flight: int = 0
    #: per-edge occupancy high-water marks, keyed by (src, dst) endpoints;
    #: populated when a run completes successfully.
    channel_peaks: dict = field(default_factory=dict)

    # -- result protocol / wire format (repro.results) ------------------------

    def to_dict(self) -> dict:
        """Versioned wire form.

        Endpoint-keyed ``channel_peaks`` flatten to sorted
        ``[src_node, src_port, dst_node, dst_port, peak]`` rows, and
        ``store_history`` values coerce to plain ``float`` — both are what
        keep the dict JSON-serialisable and byte-stable across runs.
        """
        from ..results import SCHEMA_VERSION

        peaks = sorted(
            [src.node, src.port, dst.node, dst.port, int(peak)]
            for (src, dst), peak in self.channel_peaks.items()
        )
        return {
            "kind": "SimStats",
            "schema_version": SCHEMA_VERSION,
            "cycles": int(self.cycles),
            "tokens_fired": int(self.tokens_fired),
            "results_collected": int(self.results_collected),
            "peak_in_flight": int(self.peak_in_flight),
            "store_history": [
                [str(array), int(index), float(value)]
                for array, index, value in self.store_history
            ],
            "channel_peaks": peaks,
        }

    @staticmethod
    def from_dict(data: dict) -> "SimStats":
        from ..errors import ResultSchemaError
        from ..results import check_schema

        entry = check_schema(data, "SimStats")
        try:
            return SimStats(
                cycles=int(entry["cycles"]),
                tokens_fired=int(entry["tokens_fired"]),
                results_collected=int(entry["results_collected"]),
                peak_in_flight=int(entry["peak_in_flight"]),
                store_history=[
                    (str(array), int(index), float(value))
                    for array, index, value in entry["store_history"]
                ],
                channel_peaks={
                    (Endpoint(sn, sp), Endpoint(dn, dp)): int(peak)
                    for sn, sp, dn, dp, peak in entry["channel_peaks"]
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ResultSchemaError(f"malformed SimStats wire dict: {exc}") from exc

    def summary(self) -> str:
        return (
            f"{self.cycles} cycles, {self.tokens_fired} tokens fired, "
            f"{self.results_collected} results, peak {self.peak_in_flight} in flight"
        )


def evaluation_order(graph: ExprHigh, latency: Callable[[str], int]) -> list[str]:
    """Topological sweep order for same-cycle combinational propagation.

    Only edges *out of* zero-latency components constrain the order: a
    combinational producer must tick before its consumers so its tokens
    are visible within the cycle.  Every circuit cycle contains at least
    one registered component (Mux/Branch/Merge or an operator), so this
    sub-relation is acyclic; a malformed purely-combinational loop falls
    back to name order for its members (and will deadlock visibly).

    Shared by both backends — the compiled engine's flat op arrays are laid
    out in exactly this order, which is one precondition for cycle-identical
    behaviour.  *latency* maps a node name to its cycle latency.
    """
    comb = {name for name in graph.nodes if latency(name) == 0}
    successors: dict[str, set[str]] = {name: set() for name in graph.nodes}
    indegree: dict[str, int] = {name: 0 for name in graph.nodes}
    for name in comb:
        for succ, _, _ in graph.successors(name):
            if succ != name and succ not in successors[name]:
                successors[name].add(succ)
                indegree[succ] += 1
    import heapq

    ready = [name for name, degree in indegree.items() if degree == 0]
    heapq.heapify(ready)
    order: list[str] = []
    while ready:
        name = heapq.heappop(ready)
        order.append(name)
        for succ in successors[name]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, succ)
    leftovers = sorted(set(graph.nodes) - set(order))
    return order + leftovers


class CycleSimulator:
    """Simulates one kernel graph cycle by cycle."""

    def __init__(
        self,
        graph: ExprHigh,
        env: Environment,
        kernel: Kernel,
        arrays: dict,
        capacities: Mapping[Edge, int] | None = None,
        latency_of: Callable[[str, dict], int] | None = None,
        max_cycles: int = 5_000_000,
        deadlock_window: int = 10_000,
        trace=None,
    ):
        self.graph = graph
        self.env = env
        self.kernel = kernel
        self.arrays = arrays
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window
        self.latency_of = latency_of or (lambda typ, params: 1)
        self.stats = SimStats()
        self.trace = trace  # optional FiringTrace (see repro.sim.trace)
        self.cycle = 0

        capacities = dict(capacities or {})
        self.in_channels: dict[Endpoint, Channel] = {}
        self.out_channels: dict[Endpoint, Channel] = {}
        for dst, src in graph.connections.items():
            cap = capacities.get((src, dst), 1)
            channel = Channel(capacity=cap, src=src, dst=dst)
            self.in_channels[dst] = channel
            self.out_channels[src] = channel

        self.node_state: dict[str, dict] = {}
        self.outer_points = list(kernel.outer_points())
        self._setup_nodes()

    # -- node setup ---------------------------------------------------------

    def _setup_nodes(self) -> None:
        for name, spec in self.graph.nodes.items():
            state: dict = {"pipeline": deque()}
            if spec.typ == "Init":
                state["initial_pending"] = True
            if spec.typ == "Driver":
                state["next_point"] = 0
            if spec.typ == "Collector":
                state["received"] = 0
            if spec.typ == "Tagger":
                tags = int(spec.param("tags", 4))
                state["free"] = list(range(tags))
                state["order"] = deque()
                state["done"] = {}
                if len(spec.in_ports) > 2 or len(spec.out_ports) > 2:
                    state["returns"] = {}
            if spec.typ == "Merge":
                state["rr"] = 0
            self.node_state[name] = state

    # -- helpers ---------------------------------------------------------------

    def _in(self, node: str, port: str) -> Channel | None:
        return self.in_channels.get(Endpoint(node, port))

    def _out(self, node: str, port: str) -> Channel | None:
        return self.out_channels.get(Endpoint(node, port))

    def _latency(self, name: str) -> int:
        spec = self.graph.nodes[name]
        return max(0, self.latency_of(spec.typ, spec.param_dict()))

    # -- main loop ----------------------------------------------------------------

    def run(self) -> SimStats:
        """Run the step loop to completion (all outer results collected)."""
        with obs.span(
            "sim:run", kernel=self.kernel.name, nodes=len(self.graph.nodes)
        ) as sp:
            stats = self._run_loop()
            sp.set(cycles=stats.cycles, tokens_fired=stats.tokens_fired)
        obs.count("sim.runs")
        obs.count("sim.cycles", stats.cycles)
        return stats

    def _run_loop(self) -> SimStats:
        expected_results = len(self.outer_points)
        idle = 0
        cycle = 0
        completed = None
        order = self._evaluation_order()
        while cycle < self.max_cycles:
            self.cycle = cycle
            fired = 0
            for name in order:
                fired += self._tick(name, cycle)
            for channel in self.in_channels.values():
                channel.commit()
            cycle += 1
            if completed is not None:
                # Drain phase: every result is collected, but effectful
                # tokens (in-body stores) may still sit in operator
                # pipelines.  Keep stepping for their side effects until the
                # circuit quiesces (nothing fired and no pipeline is still
                # aging a token); the reported measurements stay frozen at
                # the completion cycle.
                if fired == 0 and not any(
                    state["pipeline"] for state in self.node_state.values()
                ):
                    return self.stats
                continue
            self.stats.peak_in_flight = max(
                self.stats.peak_in_flight,
                sum(c.occupancy() for c in self.in_channels.values()),
            )
            if self.stats.results_collected >= expected_results:
                completed = cycle
                self.stats.cycles = cycle
                self.stats.channel_peaks = {
                    (channel.src, channel.dst): channel.peak
                    for channel in self.in_channels.values()
                }
                continue
            if fired == 0:
                idle += 1
                if idle > self.deadlock_window:
                    raise DeadlockError(
                        f"no activity for {self.deadlock_window} cycles "
                        f"({self.stats.results_collected}/{expected_results} results)",
                        cycle=cycle,
                    )
            else:
                idle = 0
                self.stats.tokens_fired += fired
        raise SimulationError(f"simulation exceeded {self.max_cycles} cycles")

    def _evaluation_order(self) -> list[str]:
        return evaluation_order(self.graph, self._latency)

    # -- per-node behaviour ----------------------------------------------------------

    def _tick(self, name: str, cycle: int) -> int:
        spec = self.graph.nodes[name]
        state = self.node_state[name]
        fired = 0

        # Drain the internal pipeline into output channels first.
        fired += self._drain_pipeline(name, spec, state)

        handler = getattr(self, f"_fire_{spec.typ.lower()}", None)
        if handler is None:
            raise SimulationError(f"no cycle model for component type {spec.typ!r}")
        fired += handler(name, spec, state, cycle)
        return fired

    def _drain_pipeline(self, name: str, spec, state) -> int:
        pipeline: deque = state["pipeline"]
        if not pipeline:
            return 0
        # Every in-flight firing ages each cycle — the unit is pipelined
        # with initiation interval 1, not a serial multi-cycle resource.
        for index, (remaining, outputs) in enumerate(pipeline):
            if remaining > 0:
                pipeline[index] = (remaining - 1, outputs)
        remaining, outputs = pipeline[0]
        if remaining > 0:
            return 0
        # Ready: needs space on every destination channel.
        for port, value in outputs:
            channel = self._out(name, port)
            if channel is not None and not channel.can_push():
                return 0
        for port, value in outputs:
            channel = self._out(name, port)
            if channel is not None:
                channel.push(value)
        pipeline.popleft()
        return 1

    def _start(self, name: str, state, outputs: list) -> None:
        latency = self._latency(name)
        if self.trace is not None:
            self.trace.record(name, self.cycle, latency)
        if latency == 0:
            # Combinational component: deliver within this cycle if every
            # destination has room, else hold the result as a ready entry.
            channels = [self._out(name, port) for port, _ in outputs]
            if all(c is None or c.can_push() for c in channels):
                for (port, value), channel in zip(outputs, channels):
                    if channel is not None:
                        channel.push_now(value)
                return
            state["pipeline"].append((0, outputs))
            return
        state["pipeline"].append((latency - 1, outputs))

    def _pipeline_free(self, name: str, state) -> bool:
        return len(state["pipeline"]) < max(1, self._latency(name))

    # Individual component models ------------------------------------------------

    def _fire_fork(self, name, spec, state, cycle) -> int:
        channel = self._in(name, "in0")
        if channel is None or not channel.can_pop() or not self._pipeline_free(name, state):
            return 0
        value = channel.pop()
        self._start(name, state, [(port, value) for port in spec.out_ports])
        return 1

    def _pop_aligned(self, channels: list[Channel]) -> list | None:
        """Pop one token per channel such that all tags match (an *aligner*).

        Multi-input components inside a tagged region must pair tokens of
        the same loop instance; with independent Merges per variable path
        (the DF-OoO construction) tokens arrive interleaved, so the aligner
        searches each channel's queue for a common tag.  Returns the popped
        values, or None when no common tag is present yet.
        """
        if any(not c.can_pop() for c in channels):
            return None
        tag_sets = []
        for channel in channels:
            tags = {}
            for position, value in enumerate(channel.queue):
                tag = value[0]
                if tag not in tags:
                    tags[tag] = position
            tag_sets.append(tags)
        # Prefer the tag at the head of the first channel, then any common
        # tag in arrival order — oldest-first keeps the region fair.
        common = set(tag_sets[0])
        for tags in tag_sets[1:]:
            common &= set(tags)
        if not common:
            return None
        head = channels[0].queue[0][0]
        chosen = head if head in common else min(common, key=lambda t: tag_sets[0][t])
        values = []
        for channel, tags in zip(channels, tag_sets):
            position = tags[chosen]
            value = channel.queue[position]
            del channel.queue[position]
            values.append(value)
        return values

    def _fire_join(self, name, spec, state, cycle) -> int:
        a, b = self._in(name, "in0"), self._in(name, "in1")
        if a is None or b is None or not self._pipeline_free(name, state):
            return 0
        if spec.param("tagged"):
            popped = self._pop_aligned([a, b])
            if popped is None:
                return 0
            (tag, val_l), (_, val_r) = popped
            value = (tag, (val_l, val_r))
        else:
            if not (a.can_pop() and b.can_pop()):
                return 0
            value = (a.pop(), b.pop())
        self._start(name, state, [("out0", value)])
        return 1

    def _fire_split(self, name, spec, state, cycle) -> int:
        channel = self._in(name, "in0")
        if channel is None or not channel.can_pop() or not self._pipeline_free(name, state):
            return 0
        value = channel.pop()
        if spec.param("tagged"):
            tag, (a, b) = value
            outs = [("out0", (tag, a)), ("out1", (tag, b))]
        else:
            a, b = value
            outs = [("out0", a), ("out1", b)]
        self._start(name, state, outs)
        return 1

    def _fire_buffer(self, name, spec, state, cycle) -> int:
        channel = self._in(name, "in0")
        if channel is None or not channel.can_pop() or not self._pipeline_free(name, state):
            return 0
        self._start(name, state, [("out0", channel.pop())])
        return 1

    def _fire_sink(self, name, spec, state, cycle) -> int:
        channel = self._in(name, "in0")
        if channel is not None and channel.can_pop():
            channel.pop()
            return 1
        return 0

    def _fire_mux(self, name, spec, state, cycle) -> int:
        cond = self._in(name, "cond")
        if not (cond and cond.can_pop() and self._pipeline_free(name, state)):
            return 0
        selected = "in0" if cond.head() else "in1"
        data = self._in(name, selected)
        if not (data and data.can_pop()):
            return 0
        cond.pop()
        self._start(name, state, [("out0", data.pop())])
        return 1

    def _fire_branch(self, name, spec, state, cycle) -> int:
        cond = self._in(name, "cond")
        data = self._in(name, "in0")
        if cond is None or data is None or not self._pipeline_free(name, state):
            return 0
        if spec.param("tagged"):
            popped = self._pop_aligned([cond, data])
            if popped is None:
                return 0
            cond_value, value = popped
            truth = bool(cond_value[1])
        else:
            if not (cond.can_pop() and data.can_pop()):
                return 0
            truth = bool(cond.pop())
            value = data.pop()
        self._start(name, state, [("out0" if truth else "out1", value)])
        return 1

    def _fire_merge(self, name, spec, state, cycle) -> int:
        if not self._pipeline_free(name, state):
            return 0
        ports = ["in0", "in1"]
        start = state["rr"] % 2
        for offset in range(2):
            port = ports[(start + offset) % 2]
            channel = self._in(name, port)
            if channel is not None and channel.can_pop():
                state["rr"] += 1
                self._start(name, state, [("out0", channel.pop())])
                return 1
        return 0

    def _fire_cmerge(self, name, spec, state, cycle) -> int:
        if not self._pipeline_free(name, state):
            return 0
        index_channel = self._out(name, "index")
        ports = ["in0", "in1"]
        start = state.setdefault("rr", 0) % 2
        for offset in range(2):
            port = ports[(start + offset) % 2]
            channel = self._in(name, port)
            if channel is not None and channel.can_pop():
                if index_channel is not None and not index_channel.can_push():
                    return 0
                state["rr"] += 1
                value = channel.pop()
                self._start(name, state, [("out0", value), ("index", port == "in0")])
                return 1
        return 0

    def _fire_reorg(self, name, spec, state, cycle) -> int:
        return self._fire_pure(name, spec, state, cycle)

    def _fire_init(self, name, spec, state, cycle) -> int:
        if state.get("initial_pending"):
            if self._pipeline_free(name, state):
                state["initial_pending"] = False
                self._start(name, state, [("out0", bool(spec.param("value", False)))])
                return 1
            return 0
        channel = self._in(name, "in0")
        if channel is None or not channel.can_pop() or not self._pipeline_free(name, state):
            return 0
        self._start(name, state, [("out0", bool(channel.pop()))])
        return 1

    def _fire_operator(self, name, spec, state, cycle) -> int:
        channels = [self._in(name, port) for port in spec.in_ports]
        if any(c is None for c in channels) or not self._pipeline_free(name, state):
            return 0
        fn = self.env.function(str(spec.param("op")))
        if spec.param("tagged"):
            popped = self._pop_aligned(channels)  # type: ignore[arg-type]
            if popped is None:
                return 0
            tag = popped[0][0]
            result = (tag, fn(*[v[1] for v in popped]))
        else:
            if any(not c.can_pop() for c in channels):  # type: ignore[union-attr]
                return 0
            result = fn(*[c.pop() for c in channels])  # type: ignore[union-attr]
        self._start(name, state, [("out0", result)])
        return 1

    def _fire_pure(self, name, spec, state, cycle) -> int:
        channel = self._in(name, "in0")
        if channel is None or not channel.can_pop() or not self._pipeline_free(name, state):
            return 0
        value = channel.pop()
        fn = self.env.function(str(spec.param("fn")))
        if spec.param("tagged"):
            tag, inner = value
            result = (tag, fn(inner))
        else:
            result = fn(value)
        self._start(name, state, [("out0", result)])
        return 1

    def _fire_constant(self, name, spec, state, cycle) -> int:
        channel = self._in(name, "ctrl")
        if channel is None or not channel.can_pop() or not self._pipeline_free(name, state):
            return 0
        channel.pop()
        self._start(name, state, [("out0", spec.param("value", 0))])
        return 1

    def _fire_store(self, name, spec, state, cycle) -> int:
        addr = self._in(name, "addr")
        data = self._in(name, "data")
        if addr is None or data is None or not self._pipeline_free(name, state):
            return 0
        if spec.param("tagged"):  # tagged region store (DF-OoO's unsound case)
            popped = self._pop_aligned([addr, data])
            if popped is None:
                return 0
            (_, addr_v), (_, data_v) = popped
        else:
            if not (addr.can_pop() and data.can_pop()):
                return 0
            addr_v, data_v = addr.pop(), data.pop()
        array = str(spec.param("array", "")) or self._infer_store_array()
        self.arrays[array].flat[int(addr_v)] = data_v
        self.stats.store_history.append((array, int(addr_v), data_v))
        self._start(name, state, [("done", ())])
        return 1

    def _infer_store_array(self) -> str:
        stores = self.kernel.loop.stores
        if len(stores) == 1:
            return stores[0].array
        raise SimulationError("store component without an 'array' parameter")

    # -- Tagger: both the 1-in/1-out verified shape and DF-OoO's k/r shape ---

    def _fire_tagger(self, name, spec, state, cycle) -> int:
        fired = 0
        enter_ports = [p for p in spec.in_ports if p.startswith("enter")] or ["in0"]
        return_ports = [p for p in spec.in_ports if p.startswith("ret")] or ["in1"]
        tag_outs = [p for p in spec.out_ports if p.startswith("tag")] or ["out0"]
        exit_outs = [p for p in spec.out_ports if p.startswith("exit")] or ["out1"]

        # Entry: allocate one tag for the whole input bundle.
        enters = [self._in(name, p) for p in enter_ports]
        outs = [self._out(name, p) for p in tag_outs]
        if (
            state["free"]
            and all(c is not None and c.can_pop() for c in enters)
            and all(c is not None and c.can_push() for c in outs)
        ):
            tag = state["free"].pop(0)
            state["order"].append(tag)
            for channel, out in zip(enters, outs):
                out.push((tag, channel.pop()))  # type: ignore[union-attr]
            fired += 1

        # Returns: collect completed values per tag.
        returns = state.setdefault("returns", {})
        for index, port in enumerate(return_ports):
            channel = self._in(name, port)
            if channel is not None and channel.can_pop():
                tag, value = channel.pop()
                returns.setdefault(tag, {})[index] = value
                fired += 1

        # Release: oldest tag, once all its return slots arrived.
        if state["order"]:
            oldest = state["order"][0]
            slots = returns.get(oldest, {})
            exits = [self._out(name, p) for p in exit_outs]
            if len(slots) == len(return_ports) and all(
                c is not None and c.can_push() for c in exits
            ):
                for index, out in enumerate(exits):
                    out.push(slots[index])  # type: ignore[union-attr]
                state["order"].popleft()
                state["free"].append(oldest)
                del returns[oldest]
                fired += 1
        return fired

    # -- Driver / Collector ----------------------------------------------------

    def _fire_driver(self, name, spec, state, cycle) -> int:
        index = state["next_point"]
        if index >= len(self.outer_points):
            return 0
        if self.kernel.sequential_outer:
            collector_state = self._collector_state()
            if collector_state is not None and collector_state["received"] < index:
                return 0
        outs = [self._out(name, port) for port in spec.out_ports]
        if any(c is None or not c.can_push() for c in outs):
            return 0
        outer_env = self.outer_points[index]
        for var, channel in zip(self.kernel.loop.state, outs):
            value = eval_expr(self.kernel.init[var], outer_env, self.arrays)
            channel.push(value)  # type: ignore[union-attr]
        state["next_point"] = index + 1
        return 1

    def _collector_state(self) -> dict | None:
        for node in self.graph.nodes_of_type("Collector"):
            return self.node_state[node]
        return None

    def _fire_collector(self, name, spec, state, cycle) -> int:
        channels = [self._in(name, port) for port in spec.in_ports]
        if any(c is None or not c.can_pop() for c in channels):
            return 0
        values = [c.pop() for c in channels]  # type: ignore[union-attr]
        index = state["received"]
        outer_env = dict(self.outer_points[index])
        for var, value in zip(self.kernel.loop.result_vars, values):
            outer_env[var] = value
        for store in self.kernel.epilogue:
            addr = int(eval_expr(store.index, outer_env, self.arrays))
            value = eval_expr(store.value, outer_env, self.arrays)
            self.arrays[store.array].flat[addr] = value
            self.stats.store_history.append((store.array, addr, value))
        state["received"] = index + 1
        self.stats.results_collected = state["received"]
        return 1
