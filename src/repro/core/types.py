"""A small type language for dataflow wires.

Section 6.3 of the paper introduces *well-typed graphs* — graphs where every
connection joins an output and an input of the same type — to bridge the
parametric environment used when proving the loop rewrite and the concrete
environment of a particular input graph.  We mirror that with a small type
language: concrete wire types plus type variables for parametric rewrites,
with one-sided unification (pattern types against concrete types).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import TypeCheckError


class Type:
    """Base class for wire types.  Types are immutable and hashable."""

    def substitute(self, assignment: Mapping[str, "Type"]) -> "Type":
        """Replace type variables according to *assignment*."""
        return self

    def free_vars(self) -> frozenset[str]:
        return frozenset()

    def is_concrete(self) -> bool:
        return not self.free_vars()


@dataclass(frozen=True)
class UnitType(Type):
    """The control-token type: carries no data, only a handshake event."""

    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True)
class BoolType(Type):
    """A single-bit condition wire."""

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class IntType(Type):
    """A two's-complement integer wire of the given bit width."""

    width: int = 32

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise TypeCheckError(f"integer width must be positive, got {self.width}")

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class FloatType(Type):
    """An IEEE-754 floating point wire (single or double precision)."""

    width: int = 32

    def __post_init__(self) -> None:
        if self.width not in (32, 64):
            raise TypeCheckError(f"float width must be 32 or 64, got {self.width}")

    def __str__(self) -> str:
        return f"f{self.width}"


@dataclass(frozen=True)
class TupleType(Type):
    """A product of wire types, created by Join and consumed by Split."""

    left: Type
    right: Type

    def __str__(self) -> str:
        return f"({self.left} * {self.right})"

    def substitute(self, assignment: Mapping[str, Type]) -> Type:
        return TupleType(self.left.substitute(assignment), self.right.substitute(assignment))

    def free_vars(self) -> frozenset[str]:
        return self.left.free_vars() | self.right.free_vars()


@dataclass(frozen=True)
class TaggedType(Type):
    """A wire carrying a (tag, value) pair inside a Tagger/Untagger region."""

    inner: Type
    tag_bits: int = 8

    def __str__(self) -> str:
        return f"tagged<{self.inner}, {self.tag_bits}>"

    def substitute(self, assignment: Mapping[str, Type]) -> Type:
        return TaggedType(self.inner.substitute(assignment), self.tag_bits)

    def free_vars(self) -> frozenset[str]:
        return self.inner.free_vars()


@dataclass(frozen=True)
class TypeVar(Type):
    """A type variable, used in the parametric environment of rewrites."""

    name: str

    def __str__(self) -> str:
        return f"'{self.name}"

    def substitute(self, assignment: Mapping[str, Type]) -> Type:
        return assignment.get(self.name, self)

    def free_vars(self) -> frozenset[str]:
        return frozenset({self.name})


UNIT = UnitType()
BOOL = BoolType()
I32 = IntType(32)
F32 = FloatType(32)


def unify(pattern: Type, concrete: Type, assignment: dict[str, Type] | None = None) -> dict[str, Type]:
    """One-sided unification of a *pattern* type against a *concrete* type.

    Returns the (possibly extended) assignment mapping type-variable names to
    concrete types, or raises :class:`TypeCheckError` when no assignment
    exists.  Only the pattern may contain variables.
    """
    assignment = {} if assignment is None else assignment
    if isinstance(pattern, TypeVar):
        bound = assignment.get(pattern.name)
        if bound is None:
            assignment[pattern.name] = concrete
            return assignment
        if bound != concrete:
            raise TypeCheckError(
                f"type variable {pattern} bound to both {bound} and {concrete}"
            )
        return assignment
    if isinstance(pattern, TupleType) and isinstance(concrete, TupleType):
        unify(pattern.left, concrete.left, assignment)
        unify(pattern.right, concrete.right, assignment)
        return assignment
    if isinstance(pattern, TaggedType) and isinstance(concrete, TaggedType):
        if pattern.tag_bits != concrete.tag_bits:
            raise TypeCheckError(
                f"tag width mismatch: {pattern} vs {concrete}"
            )
        unify(pattern.inner, concrete.inner, assignment)
        return assignment
    if pattern == concrete:
        return assignment
    raise TypeCheckError(f"cannot unify {pattern} with {concrete}")


def parse_type(text: str) -> Type:
    """Parse the textual form produced by ``str(type)``."""
    text = text.strip()
    if text == "unit":
        return UNIT
    if text == "bool":
        return BOOL
    if text.startswith("i") and text[1:].isdigit():
        return IntType(int(text[1:]))
    if text.startswith("f") and text[1:].isdigit():
        return FloatType(int(text[1:]))
    if text.startswith("'"):
        return TypeVar(text[1:])
    if text.startswith("tagged<") and text.endswith(">"):
        inner, _, bits = text[7:-1].rpartition(",")
        return TaggedType(parse_type(inner), int(bits.strip()))
    if text.startswith("(") and text.endswith(")"):
        depth = 0
        for i, ch in enumerate(text):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "*" and depth == 1:
                return TupleType(parse_type(text[1:i]), parse_type(text[i + 1:-1]))
    raise TypeCheckError(f"cannot parse type {text!r}")
