"""Core graph languages and semantics of the Graphiti reproduction.

The layering follows the paper: :mod:`~repro.core.exprhigh` is the dot-like
graph language rewrites are matched on, :mod:`~repro.core.exprlow` is the
inductive language semantics and substitution are defined on,
:mod:`~repro.core.module` holds the semantic objects and their combinators,
and :mod:`~repro.core.semantics` is the denotation ⟦·⟧ε between them.
"""

from .encoding import decode_component, encode_component
from .environment import Environment, FunctionDef
from .exprhigh import Endpoint, ExprHigh, NodeSpec, lift
from .exprlow import Base, Connect, ExprLow, Product, build, product_fold
from .module import Module, connect_ports, product, rename
from .ports import InternalPort, IOPort, Port, PortMap
from .semantics import denote
from .types import (
    BOOL,
    F32,
    I32,
    UNIT,
    BoolType,
    FloatType,
    IntType,
    TaggedType,
    TupleType,
    Type,
    TypeVar,
    UnitType,
    parse_type,
    unify,
)

__all__ = [
    "decode_component",
    "encode_component",
    "Environment",
    "FunctionDef",
    "Endpoint",
    "ExprHigh",
    "NodeSpec",
    "lift",
    "Base",
    "Connect",
    "ExprLow",
    "Product",
    "build",
    "product_fold",
    "Module",
    "connect_ports",
    "product",
    "rename",
    "InternalPort",
    "IOPort",
    "Port",
    "PortMap",
    "denote",
    "BOOL",
    "F32",
    "I32",
    "UNIT",
    "BoolType",
    "FloatType",
    "IntType",
    "TaggedType",
    "TupleType",
    "Type",
    "TypeVar",
    "UnitType",
    "parse_type",
    "unify",
]
