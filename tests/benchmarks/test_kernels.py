"""Tests for the benchmark kernel definitions."""

import numpy as np
import pytest

from repro.benchmarks import BENCHMARKS, bicg, gemm, gsum_many, gsum_single, load_benchmark, matvec, mvt
from repro.hls.ir import run_program


class TestLoadBenchmark:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_all_benchmarks_construct(self, name):
        program = load_benchmark(name)
        assert program.kernels

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_benchmark("img-avg")  # omitted, as in the paper


class TestReferenceSemantics:
    def test_matvec_matches_numpy(self):
        program = matvec(8)
        trace = run_program(program)
        A = program.arrays["A"].reshape(8, 8)
        np.testing.assert_allclose(trace.arrays["y"], A @ program.arrays["x"], atol=1e-9)

    def test_mvt_matches_numpy(self):
        program = mvt(6)
        x1 = program.arrays["x1"].copy()
        x2 = program.arrays["x2"].copy()
        trace = run_program(program)
        A = program.arrays["A"].reshape(6, 6)
        np.testing.assert_allclose(trace.arrays["x1"], x1 + A @ program.arrays["y1"], atol=1e-9)
        np.testing.assert_allclose(trace.arrays["x2"], x2 + A.T @ program.arrays["y2"], atol=1e-9)

    def test_bicg_matches_numpy(self):
        program = bicg(6)
        trace = run_program(program)
        A = program.arrays["A"].reshape(6, 6)
        np.testing.assert_allclose(trace.arrays["q"], A @ program.arrays["p"], atol=1e-9)
        np.testing.assert_allclose(trace.arrays["s"], A.T @ program.arrays["r"], atol=1e-9)

    def test_gemm_matches_numpy(self):
        program = gemm(5)
        trace = run_program(program)
        A = program.arrays["A"].reshape(5, 5)
        B = program.arrays["B"].reshape(5, 5)
        np.testing.assert_allclose(
            trace.arrays["C"].reshape(5, 5), 1.5 * (A @ B), atol=1e-9
        )

    def test_gsum_single_matches_numpy(self):
        program = gsum_single(32)
        trace = run_program(program)
        d = program.arrays["d"][: 2 * 32 : 2]
        expected = np.where(d >= 0, (d * d) * (d * 0.5) + d * 2.0, 0.0).sum()
        np.testing.assert_allclose(trace.arrays["out"][0], expected, atol=1e-9)

    def test_gsum_many_matches_numpy(self):
        program = gsum_many(3, 16)
        trace = run_program(program)
        for inst in range(3):
            base = inst * 32
            d = program.arrays["d"][base : base + 32 : 2]
            expected = np.where(d >= 0, (d * d) * (d * 0.5) + d * 2.0, 0.0).sum()
            np.testing.assert_allclose(trace.arrays["out"][inst], expected, atol=1e-9)


class TestPaperProperties:
    def test_bicg_is_the_effectful_benchmark(self):
        assert bicg(4).kernels[0].loop.is_effectful()
        for factory in (gemm, matvec, mvt):
            program = factory(4)
            assert not any(k.loop.is_effectful() for k in program.kernels)

    def test_matvec_has_the_large_tag_budget(self):
        assert matvec().kernels[0].tags == 50

    def test_gsum_single_is_sequential(self):
        program = gsum_single(16)
        assert program.kernels[0].sequential_outer
        assert len(list(program.kernels[0].outer_points())) == 1

    def test_mvt_has_two_sweeps(self):
        assert len(mvt(4).kernels) == 2

    def test_gemm_outer_space_is_two_dimensional(self):
        assert len(gemm(4).kernels[0].outer) == 2
