"""Tests for subgraph pattern matching."""

import pytest

from repro.components import branch, fork, init, join, mux, pure, split
from repro.core.exprhigh import Endpoint, ExprHigh, NodeSpec
from repro.errors import MatchError
from repro.rewriting.matcher import find_matches, first_match
from repro.rewriting.rewrite import Rewrite, Var
from repro.rewriting.rules.combine import mux_combine
from repro.rewriting.rules.common import graph_of


def host_two_mux_loop():
    """A host graph containing the mux-combine lhs plus surroundings."""
    g = ExprHigh()
    g.add_node("cfork", fork(2))
    g.add_node("m_a", mux())
    g.add_node("m_b", mux())
    g.add_node("body", pure("id"))
    g.add_node("jn", join())
    g.connect("cfork", "out0", "m_a", "cond")
    g.connect("cfork", "out1", "m_b", "cond")
    g.connect("m_a", "out0", "jn", "in0")
    g.connect("m_b", "out0", "jn", "in1")
    g.connect("jn", "out0", "body", "in0")
    g.mark_input(0, "cfork", "in0")
    g.mark_input(1, "m_a", "in0")
    g.mark_input(2, "m_a", "in1")
    g.mark_input(3, "m_b", "in0")
    g.mark_input(4, "m_b", "in1")
    g.mark_output(0, "body", "out0")
    return g


class TestBasicMatching:
    def test_finds_the_combine_site(self):
        match = first_match(host_two_mux_loop(), mux_combine())
        assert match is not None
        assert match.nodes["fk"] == "cfork"
        assert {match.nodes["ma"], match.nodes["mb"]} == {"m_a", "m_b"}

    def test_interface_endpoints_point_at_host(self):
        match = first_match(host_two_mux_loop(), mux_combine())
        assert match.inputs[0] == Endpoint("cfork", "in0")
        assert match.outputs[0].port == "out0"

    def test_no_match_in_unrelated_graph(self):
        g = ExprHigh()
        g.add_node("p", pure("id"))
        g.mark_input(0, "p", "in0")
        g.mark_output(0, "p", "out0")
        assert first_match(g, mux_combine()) is None

    def test_matches_are_deterministic(self):
        first_run = [m.nodes for m in find_matches(host_two_mux_loop(), mux_combine())]
        second_run = [m.nodes for m in find_matches(host_two_mux_loop(), mux_combine())]
        assert first_run == second_run

    def test_empty_pattern_rejected(self):
        bad = Rewrite(name="empty", lhs=ExprHigh(), rhs=lambda m: ExprHigh())
        with pytest.raises(MatchError):
            list(find_matches(host_two_mux_loop(), bad))


class TestParameterBinding:
    def _pure_chain(self, first_fn, second_fn):
        g = ExprHigh()
        g.add_node("p", pure(first_fn))
        g.add_node("q", pure(second_fn))
        g.connect("p", "out0", "q", "in0")
        g.mark_input(0, "p", "in0")
        g.mark_output(0, "q", "out0")
        return g

    def _var_pattern(self):
        spec = NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": Var("F")})
        other = NodeSpec.make("Pure", ["in0"], ["out0"], {"fn": Var("F")})
        return graph_of(
            {"a": spec, "b": other},
            [("a.out0", "b.in0")],
            {0: "a.in0"},
            {0: "b.out0"},
        )

    def test_same_var_must_bind_same_value(self):
        pattern = Rewrite(name="same-fn", lhs=self._var_pattern(), rhs=lambda m: None)
        assert first_match(self._pure_chain("incr", "incr"), pattern) is not None
        assert first_match(self._pure_chain("incr", "id"), pattern) is None

    def test_bound_value_is_exposed(self):
        pattern = Rewrite(name="same-fn", lhs=self._var_pattern(), rhs=lambda m: None)
        match = first_match(self._pure_chain("incr", "incr"), pattern)
        assert match.params["F"] == "incr"

    def test_concrete_param_must_equal(self):
        lhs = graph_of({"a": pure("incr")}, [], {0: "a.in0"}, {0: "a.out0"})
        pattern = Rewrite(name="incr-only", lhs=lhs, rhs=lambda m: None)
        host_match = graph_of({"x": pure("incr")}, [], {0: "x.in0"}, {0: "x.out0"})
        host_miss = graph_of({"x": pure("id")}, [], {0: "x.in0"}, {0: "x.out0"})
        assert first_match(host_match, pattern) is not None
        assert first_match(host_miss, pattern) is None

    def test_missing_host_param_rejected_for_var(self):
        spec = NodeSpec.make("Pure", ["in0"], ["out0"], {"nonexistent": Var("X")})
        lhs = graph_of({"a": spec}, [], {0: "a.in0"}, {0: "a.out0"})
        pattern = Rewrite(name="missing", lhs=lhs, rhs=lambda m: None)
        host = graph_of({"x": pure("id")}, [], {0: "x.in0"}, {0: "x.out0"})
        assert first_match(host, pattern) is None


class TestBoundaryConditions:
    def test_extra_internal_edge_blocks_match(self):
        """A host edge inside the candidate region that the pattern does not
        mention must block the match."""
        g = host_two_mux_loop()
        # Rewire m_a's data input from the fork's region: connect cfork
        # cannot be reused (ports single-use), so craft a different host.
        h = ExprHigh()
        h.add_node("cfork", fork(3))
        h.add_node("m_a", mux())
        h.add_node("m_b", mux())
        h.connect("cfork", "out0", "m_a", "cond")
        h.connect("cfork", "out1", "m_b", "cond")
        h.connect("cfork", "out2", "m_a", "in0")  # fork n=3 does not match fork(2)
        h.mark_input(0, "cfork", "in0")
        h.mark_input(1, "m_a", "in1")
        h.mark_input(2, "m_b", "in0")
        h.mark_input(3, "m_b", "in1")
        h.mark_output(0, "m_a", "out0")
        h.mark_output(1, "m_b", "out0")
        assert first_match(h, mux_combine()) is None

    def test_boundary_output_feeding_region_blocks_match(self):
        """If a pattern-boundary output loops straight back into the matched
        region, the region is not replaceable."""
        g = ExprHigh()
        g.add_node("cfork", fork(2))
        g.add_node("m_a", mux())
        g.add_node("m_b", mux())
        g.connect("cfork", "out0", "m_a", "cond")
        g.connect("cfork", "out1", "m_b", "cond")
        g.connect("m_a", "out0", "m_b", "in0")  # boundary output feeds region
        g.mark_input(0, "cfork", "in0")
        g.mark_input(1, "m_a", "in0")
        g.mark_input(2, "m_a", "in1")
        g.mark_input(3, "m_b", "in1")
        g.mark_output(0, "m_b", "out0")
        assert first_match(g, mux_combine()) is None

    def test_injective_node_mapping(self):
        """One host node cannot play two pattern roles."""
        lhs = graph_of(
            {"a": pure("id"), "b": pure("id")},
            [("a.out0", "b.in0")],
            {0: "a.in0"},
            {0: "b.out0"},
        )
        pattern = Rewrite(name="two-distinct", lhs=lhs, rhs=lambda m: None)
        host = graph_of({"only": pure("id")}, [], {0: "only.in0"}, {0: "only.out0"})
        assert first_match(host, pattern) is None
