#!/usr/bin/env python3
"""Execute every fenced ``python`` block in the project's documentation.

The docs are part of the tested surface: a code example that drifts from
the real API is worse than no example, so CI runs this tool over README.md
and docs/*.md and fails when any block raises.

Rules:

* only fences whose info string starts with ``python`` run; other
  languages (``console``, ``text``, dot snippets …) are ignored;
* a fence tagged ``python no-run`` is extracted but not executed — for
  illustrative fragments that are deliberately incomplete;
* all blocks in one file share a namespace, in order, so later examples
  can build on earlier ones (like a reader following the page top to
  bottom);
* ``<repo>/src`` is prepended to ``sys.path``, so examples ``import
  repro`` exactly as the README tells users to;
* failures are reported as ``file:line`` of the opening fence, with the
  traceback pointing at real line numbers inside the markdown file.

Usage::

    python tools/run_doc_examples.py                 # README.md + docs/*.md
    python tools/run_doc_examples.py docs/api.md     # one file
"""

from __future__ import annotations

import argparse
import sys
import traceback
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass
class Block:
    """One fenced code block: where it opened, its info string, its source."""

    line: int  # 1-based line number of the opening ``` fence
    info: str  # the fence info string, e.g. "python" or "python no-run"
    source: str

    @property
    def is_python(self) -> bool:
        return self.info.split()[:1] == ["python"]

    @property
    def runnable(self) -> bool:
        return self.is_python and "no-run" not in self.info.split()


def extract_blocks(text: str) -> list[Block]:
    """All fenced code blocks of a markdown document, any language.

    Handles indented fences (inside list items) by stripping the opening
    fence's indentation from every line of the block.
    """
    blocks: list[Block] = []
    open_line = 0
    info = ""
    indent = ""
    lines: list[str] = []
    in_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not in_block:
            if stripped.startswith("```"):
                in_block = True
                open_line = lineno
                info = stripped.lstrip("`").strip()
                indent = line[: len(line) - len(line.lstrip())]
                lines = []
        else:
            if stripped == "```":
                blocks.append(Block(open_line, info, "\n".join(lines) + "\n"))
                in_block = False
            else:
                lines.append(line[len(indent):] if line.startswith(indent) else line)
    return blocks


def run_file(path: Path, verbose: bool = True) -> tuple[int, int, list[str]]:
    """Execute a file's runnable blocks; ``(ran, skipped, failures)``."""
    text = path.read_text()
    namespace: dict = {"__name__": "__main__", "__file__": str(path)}
    ran = skipped = 0
    failures: list[str] = []
    for block in extract_blocks(text):
        if not block.is_python:
            continue
        if not block.runnable:
            skipped += 1
            continue
        location = f"{path}:{block.line}"
        # Pad so tracebacks report line numbers within the markdown file
        # (the code starts on the line after the opening fence).
        padded = "\n" * block.line + block.source
        try:
            code = compile(padded, str(path), "exec")
            exec(code, namespace)
        except Exception:
            failures.append(location)
            print(f"FAIL {location}", file=sys.stderr)
            traceback.print_exc()
        else:
            ran += 1
            if verbose:
                print(f"ok   {location}")
    return ran, skipped, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="markdown files to execute (default: README.md and docs/*.md)",
    )
    parser.add_argument("-q", "--quiet", action="store_true", help="only report failures")
    args = parser.parse_args(argv)

    paths = args.paths or [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)

    total_ran = total_skipped = 0
    all_failures: list[str] = []
    for path in paths:
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
        ran, skipped, failures = run_file(path, verbose=not args.quiet)
        total_ran += ran
        total_skipped += skipped
        all_failures.extend(failures)

    summary = (
        f"{total_ran} blocks executed from {len(paths)} files"
        f" ({total_skipped} tagged no-run)"
    )
    if all_failures:
        print(f"{summary}; {len(all_failures)} FAILED: {', '.join(all_failures)}")
        return 1
    print(summary)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
