"""Property-based tests on the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.components import default_environment
from repro.core.encoding import decode_component, encode_component
from repro.core.module import deq, enq, first
from repro.core.ports import InternalPort, IOPort, PortMap
from repro.core.types import BOOL, I32, UNIT, FloatType, IntType, TaggedType, TupleType

names = st.text(alphabet="abcdefgh", min_size=1, max_size=4)


@st.composite
def port_maps(draw):
    n = draw(st.integers(0, 5))
    targets = draw(
        st.lists(
            st.tuples(names, names).map(lambda t: InternalPort(*t)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return PortMap({IOPort(i): t for i, t in enumerate(targets)})


class TestPortMapLaws:
    @given(port_maps())
    def test_inverse_is_involutive(self, pm):
        assert pm.inverse().inverse() == pm

    @given(port_maps())
    def test_inverse_round_trips_every_entry(self, pm):
        inv = pm.inverse()
        for src in pm:
            assert inv[pm[src]] == src

    @given(port_maps())
    def test_compose_with_identity(self, pm):
        assert pm.compose(PortMap()) == pm


@st.composite
def wire_types(draw, depth=2):
    if depth == 0:
        return draw(st.sampled_from([UNIT, BOOL, I32, IntType(8), FloatType(64)]))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return draw(wire_types(depth=0))
    if choice == 1:
        return TupleType(draw(wire_types(depth - 1)), draw(wire_types(depth - 1)))
    if choice == 2:
        return TaggedType(draw(wire_types(depth - 1)), draw(st.sampled_from([4, 8])))
    return draw(wire_types(depth=0))


class TestEncodingRoundTrip:
    @given(
        st.dictionaries(
            st.sampled_from(["n", "slots", "tags", "fn", "op", "value", "tagged"]),
            st.one_of(
                st.integers(-100, 100),
                st.booleans(),
                st.text(alphabet="abcdefg.()_", min_size=1, max_size=8),
            ),
            max_size=4,
        )
    )
    def test_params_round_trip(self, params):
        encoded = encode_component("X", params)
        name, decoded = decode_component(encoded)
        assert name == "X"
        assert decoded == params

    @given(wire_types())
    def test_type_params_round_trip(self, typ):
        encoded = encode_component("X", {"type": typ})
        _, decoded = decode_component(encoded)
        assert decoded["type"] == typ


class TestQueueLaws:
    @given(st.lists(st.integers(), max_size=12))
    def test_fifo_order(self, values):
        queue = ()
        for value in values:
            queue = enq(queue, value)
        drained = []
        while True:
            popped = deq(queue)
            if popped is None:
                break
            value, queue = popped
            drained.append(value)
        assert drained == values

    @given(st.lists(st.integers(), min_size=1, max_size=12))
    def test_first_is_oldest(self, values):
        queue = ()
        for value in values:
            queue = enq(queue, value)
        assert first(queue) == values[0]

    @given(st.lists(st.integers(), max_size=6), st.integers(1, 4))
    def test_capacity_never_exceeded(self, values, capacity):
        queue = ()
        for value in values:
            result = enq(queue, value, capacity)
            if result is not None:
                queue = result
            assert len(queue) <= capacity


class TestEGraphSemantics:
    @st.composite
    @staticmethod
    def terms(draw, depth=3):
        if depth == 0:
            return draw(st.sampled_from(["id", "incr", "ne0"]))
        choice = draw(st.integers(0, 4))
        if choice == 0:
            return draw(TestEGraphSemantics.terms(depth=0))
        if choice == 1:
            return f"comp({draw(TestEGraphSemantics.terms(depth - 1))},{draw(TestEGraphSemantics.terms(depth - 1))})"
        if choice == 2:
            return f"comp(dup,par({draw(TestEGraphSemantics.terms(depth - 1))},{draw(TestEGraphSemantics.terms(depth - 1))}))"
        if choice == 3:
            return f"comp({draw(TestEGraphSemantics.terms(depth - 1))},id)"
        return "comp(dup,fst)"

    @given(terms())
    @settings(max_examples=25, deadline=None)
    def test_simplification_preserves_function(self, term):
        from repro.rewriting import algebra
        from repro.rewriting.egraph import simplify

        env = default_environment()
        original = algebra.ensure(env, term)
        # Few iterations: deep random terms can saturate large e-graphs,
        # and soundness (not minimality) is the property under test.
        reduced = algebra.ensure(env, simplify(term, iterations=4))
        for value in (0, 1, 5):
            try:
                expected = original(value)
            except (TypeError, IndexError):
                continue  # ill-typed sample (e.g. projecting a scalar)
            assert reduced(value) == expected
