"""The job-kind registry: what the service knows how to run.

Each kind maps a JSON parameter dict onto one :class:`repro.api.Session`
call and returns the result in the versioned wire format of
:mod:`repro.results`.  Two layers per kind:

* :func:`canonical_params` validates and *normalises* the parameters —
  defaults filled in, keys sorted, unknown keys rejected with
  :class:`~repro.errors.ServiceError` — so that equivalent requests
  (``{"kernel": "matvec"}`` versus ``{"kernel": "matvec", "strategy":
  "fixpoint"}``) fingerprint to the same result-store key;
* :func:`run_op` executes the kind on a checked-out Session.  It runs in
  a worker thread, never on the event loop.

The kinds mirror the CLI subcommands so the service and the command line
stay behaviourally identical: ``transform`` accepts either a built-in
benchmark kernel name or an explicit dot graph plus loop mark, ``simulate``
reuses the ``repro sim`` flow selection (DF-IO / DF-OoO / GRAPHITI),
``bench`` runs one benchmark through all four flows, and ``verify`` /
``check_obligations`` discharge the rewrite obligations (the latter through
the persistent-certificate fast path, which is what populates the
``/v1/certificates/{hash}`` store).  ``sat_check`` cross-checks obligations
against the independent SAT oracle (``repro sat-check``), and ``fuzz`` runs
a seeded differential corpus (``repro fuzz``) returning its canonical
manifest.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..errors import GraphitiError, ServiceError

#: Every job kind the service accepts, in documentation order.
JOB_KINDS = (
    "transform",
    "verify",
    "check_obligations",
    "sat_check",
    "simulate",
    "bench",
    "fuzz",
)

_SIM_FLOWS = ("DF-IO", "DF-OoO", "GRAPHITI")
_BACKENDS = ("compiled", "interp")


def _require_str(params: Mapping, key: str, kind: str) -> str:
    value = params.get(key)
    if not isinstance(value, str) or not value:
        raise ServiceError(f"{kind} job requires a non-empty string {key!r} parameter")
    return value


def _reject_unknown(params: Mapping, allowed: tuple, kind: str) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ServiceError(
            f"{kind} job got unknown parameter(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _check_choice(value: str, choices: tuple, name: str, kind: str) -> str:
    if value not in choices:
        raise ServiceError(
            f"{kind} job parameter {name!r} must be one of {list(choices)} (got {value!r})"
        )
    return value


def _check_rules(params: Mapping, kind: str) -> list[str] | None:
    rules = params.get("rules")
    if rules is None:
        return None
    if not isinstance(rules, (list, tuple)) or not all(
        isinstance(rule, str) for rule in rules
    ):
        raise ServiceError(f"{kind} job parameter 'rules' must be a list of factory names")
    from ..rewriting.rules import VERIFY_FACTORY_SPECS

    known = {factory for _, factory, _ in VERIFY_FACTORY_SPECS}
    unknown = sorted(set(rules) - known)
    if unknown:
        raise ServiceError(
            f"{kind} job names unknown rule(s) {unknown}; known: {sorted(known)}"
        )
    return sorted(set(rules))


def canonical_params(kind: str, params: Mapping | None) -> dict:
    """Validate *params* for *kind* and return the canonical, defaulted form.

    The canonical form is what the result store fingerprints, so every
    optional parameter is written out explicitly — a request that spells a
    default and one that omits it dedupe to the same entry.  Raises
    :class:`ServiceError` on an unknown kind, unknown keys, or invalid
    values (mirroring the CLI's exit-code-2 argument validation).
    """
    if kind not in JOB_KINDS:
        raise ServiceError(f"unknown job kind {kind!r}; expected one of {list(JOB_KINDS)}")
    params = dict(params or {})

    if kind == "transform":
        _reject_unknown(params, ("kernel", "dot", "mark", "strategy"), kind)
        from ..rewriting.saturate import STRATEGIES

        strategy = _check_choice(
            str(params.get("strategy", "fixpoint")), STRATEGIES, "strategy", kind
        )
        if "kernel" in params:
            if "dot" in params or "mark" in params:
                raise ServiceError(
                    "transform job takes either 'kernel' or 'dot'+'mark', not both"
                )
            kernel = _require_str(params, "kernel", kind)
            _known_benchmark(kernel, kind)
            return {"kernel": kernel, "strategy": strategy}
        dot = _require_str(params, "dot", kind)
        mark = params.get("mark")
        if not isinstance(mark, Mapping):
            raise ServiceError("transform job with 'dot' requires a 'mark' mapping")
        return {"dot": dot, "mark": _canonical_mark(mark), "strategy": strategy}

    if kind == "simulate":
        _reject_unknown(params, ("kernel", "flow", "backend"), kind)
        kernel = _require_str(params, "kernel", kind)
        _known_benchmark(kernel, kind)
        flow = _check_choice(str(params.get("flow", "DF-OoO")), _SIM_FLOWS, "flow", kind)
        backend = _check_choice(
            str(params.get("backend", "compiled")), _BACKENDS, "backend", kind
        )
        return {"backend": backend, "flow": flow, "kernel": kernel}

    if kind == "bench":
        _reject_unknown(params, ("name",), kind)
        name = _require_str(params, "name", kind)
        _known_benchmark(name, kind)
        return {"name": name}

    if kind == "fuzz":
        _reject_unknown(params, ("cases", "seed", "backend"), kind)
        try:
            cases = int(params.get("cases", 25))
            seed = int(params.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"fuzz job parameters must be integers: {exc}") from exc
        if cases < 1:
            raise ServiceError(f"fuzz job requires cases >= 1 (got {cases})")
        backend = _check_choice(
            str(params.get("backend", "compiled")), _BACKENDS, "backend", kind
        )
        return {"backend": backend, "cases": cases, "seed": seed}

    if kind == "sat_check":
        _reject_unknown(params, ("rules", "bound"), kind)
        bound = params.get("bound")
        if bound is not None:
            try:
                bound = int(bound)
            except (TypeError, ValueError) as exc:
                raise ServiceError(f"sat_check job 'bound' must be an integer: {exc}") from exc
            if bound < 1:
                raise ServiceError(f"sat_check job requires bound >= 1 (got {bound})")
        return {"bound": bound, "rules": _check_rules(params, kind)}

    # verify / check_obligations
    _reject_unknown(params, ("rules",), kind)
    return {"rules": _check_rules(params, kind)}


def _known_benchmark(name: str, kind: str) -> None:
    from ..benchmarks import BENCHMARKS

    if name not in BENCHMARKS:
        raise ServiceError(
            f"{kind} job names unknown benchmark {name!r}; "
            f"choose from {list(BENCHMARKS)}"
        )


def _canonical_mark(mark: Mapping) -> dict:
    """Normalise a transform job's loop-mark mapping (sorted, defaulted)."""
    allowed = (
        "kernel", "mux_nodes", "branch_nodes", "init_node",
        "cond_fork", "driver", "collector", "tags",
    )
    _reject_unknown(mark, allowed, "transform")
    out: dict[str, Any] = {
        "kernel": str(mark.get("kernel", "loop")),
        "mux_nodes": sorted(str(node) for node in mark.get("mux_nodes", ())),
        "branch_nodes": sorted(str(node) for node in mark.get("branch_nodes", ())),
        "init_node": str(mark.get("init_node", "")),
        "cond_fork": str(mark.get("cond_fork", "")),
        "driver": str(mark.get("driver", "")),
        "collector": str(mark.get("collector", "")),
        "tags": int(mark.get("tags", 4)),
    }
    if not out["mux_nodes"] or not out["branch_nodes"]:
        raise ServiceError("transform job mark requires mux_nodes and branch_nodes")
    if not out["init_node"] or not out["cond_fork"]:
        raise ServiceError("transform job mark requires init_node and cond_fork")
    return out


def _specs_for(rules: list[str] | None):
    from ..rewriting.rules import VERIFY_FACTORY_SPECS

    specs = list(VERIFY_FACTORY_SPECS)
    if rules is not None:
        wanted = set(rules)
        specs = [spec for spec in specs if spec[1] in wanted]
    return specs


def _compiled_kernel(session, name: str):
    from ..benchmarks import load_benchmark
    from ..hls.frontend import compile_program

    program = load_benchmark(name)
    return program, compile_program(program, session.env).kernels[0]


def run_op(session, kind: str, params: Mapping) -> dict:
    """Execute one job kind on *session*; returns the wire-format result.

    *params* must already be canonical (see :func:`canonical_params`).
    Runs synchronously — the server calls this from a worker thread, with
    a request-scoped tracer installed, so heavy work never blocks the
    event loop and per-job counters never bleed across jobs.
    """
    if kind == "transform":
        return _op_transform(session, params)
    if kind == "simulate":
        return _op_simulate(session, params)
    if kind == "bench":
        return session.bench(name=params["name"]).to_dict()
    if kind == "verify":
        outcomes = session.verify(_specs_for(params.get("rules")))
        return {"kind": "VerifyOutcomes", "outcomes": outcomes}
    if kind == "check_obligations":
        outcomes = session.check_obligations(_specs_for(params.get("rules")))
        return {"kind": "ObligationOutcomes", "outcomes": outcomes}
    if kind == "sat_check":
        outcomes = session.sat_check(
            _specs_for(params.get("rules")), bound=params.get("bound")
        )
        return {"kind": "SatCheckOutcomes", "outcomes": outcomes}
    if kind == "fuzz":
        manifest = session.fuzz(
            cases=params["cases"], seed=params["seed"], backend=params["backend"]
        )
        return {"kind": "FuzzManifest", "manifest": manifest}
    raise ServiceError(f"unknown job kind {kind!r}")


def _op_transform(session, params: Mapping) -> dict:
    from ..dot import parse_dot
    from ..hls.frontend import LoopMark

    if "kernel" in params:
        _, ck = _compiled_kernel(session, params["kernel"])
        graph, mark = ck.graph, ck.mark
    else:
        graph = parse_dot(params["dot"])
        spec = params["mark"]
        try:
            mark = LoopMark.from_graph(
                graph,
                kernel=spec["kernel"],
                mux_nodes=spec["mux_nodes"],
                branch_nodes=spec["branch_nodes"],
                init_node=spec["init_node"],
                cond_fork=spec["cond_fork"],
                driver=spec["driver"],
                collector=spec["collector"],
                tags=spec["tags"],
            )
        except GraphitiError as exc:
            raise ServiceError(f"invalid loop mark: {exc}") from exc
    result = session.transform(graph=graph, mark=mark, strategy=params["strategy"])
    return result.to_dict()


def _op_simulate(session, params: Mapping) -> dict:
    from ..hls.ooo import transform_out_of_order
    from ..rewriting.pipeline import GraphitiPipeline

    program, ck = _compiled_kernel(session, params["kernel"])
    flow = params["flow"]
    if flow == "DF-IO":
        graph, tags = ck.graph, None
    elif flow == "DF-OoO":
        graph, tags = transform_out_of_order(ck.graph, ck.mark), ck.mark.tags
    else:  # GRAPHITI
        outcome = GraphitiPipeline(session.env).transform_kernel(ck.graph, ck.mark)
        if outcome.transformed:
            graph, tags = outcome.graph, ck.mark.tags
        else:
            graph, tags = ck.graph, None
    stats = session.simulate(
        graph_or_kernel=graph,
        kernel=ck.kernel,
        stimuli=program.arrays,
        backend=params["backend"],
        tags=tags,
    )
    return stats.to_dict()
