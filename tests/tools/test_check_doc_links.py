"""The doc-link checker: slugs, anchors, and the broken-link verdicts."""

import importlib.util
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_doc_links.py"


@pytest.fixture(scope="module")
def tool():
    spec = importlib.util.spec_from_file_location("check_doc_links", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_doc_links"] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop("check_doc_links", None)


class TestSlugify:
    def test_github_slugs(self, tool):
        assert tool.slugify("Quick tour") == "quick-tour"
        assert tool.slugify("The SAT oracle (`repro.refinement.sat`)") == (
            "the-sat-oracle-reprorefinementsat"
        )
        assert tool.slugify("Recipe 1 — cold run, warm rerun") == (
            "recipe-1--cold-run-warm-rerun"
        )

    def test_duplicate_headings_get_suffixes(self, tool, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("# Setup\n\n## Setup\n\ntext\n")
        assert tool.anchors_of(doc) == {"setup", "setup-1"}

    def test_headings_inside_fences_ignored(self, tool, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("# Real\n\n```text\n# not a heading\n```\n")
        assert tool.anchors_of(doc) == {"real"}


class TestChecking:
    def run(self, tool, tmp_path, capsys=None, paths=None):
        return tool.main([str(p) for p in (paths or sorted(tmp_path.glob("*.md")))])

    def test_valid_links_pass(self, tool, tmp_path):
        (tmp_path / "a.md").write_text("# Alpha\n\nsee [b](b.md#beta) and [me](#alpha)\n")
        (tmp_path / "b.md").write_text("# Beta\n")
        assert self.run(tool, tmp_path) == 0

    def test_missing_file_fails(self, tool, tmp_path, capsys):
        (tmp_path / "a.md").write_text("[gone](missing.md)\n")
        assert self.run(tool, tmp_path) == 1
        assert "missing.md" in capsys.readouterr().err

    def test_missing_anchor_fails(self, tool, tmp_path, capsys):
        (tmp_path / "a.md").write_text("# Alpha\n\n[bad](a.md#nope)\n")
        assert self.run(tool, tmp_path) == 1
        assert "nope" in capsys.readouterr().err

    def test_external_urls_and_code_spans_ignored(self, tool, tmp_path):
        (tmp_path / "a.md").write_text(
            "[x](https://example.com/nope.md)\n"
            "links look like `[text](file.md#anchor)` in markdown\n"
            "```md\n[also ignored](gone.md)\n```\n"
        )
        assert self.run(tool, tmp_path) == 0

    def test_images_ignored(self, tool, tmp_path):
        (tmp_path / "a.md").write_text("![diagram](missing.png)\n")
        assert self.run(tool, tmp_path) == 0

    def test_nonexistent_input_exits_2(self, tool, tmp_path):
        assert tool.main([str(tmp_path / "ghost.md")]) == 2


def test_repository_docs_have_no_broken_links(tool):
    # the actual contract CI enforces
    assert tool.main([]) == 0
