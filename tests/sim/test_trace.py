"""Tests for firing traces and the figure 2d/2e timeline rendering."""

import numpy as np
import pytest

from repro.eval.runner import simulate_flow
from repro.hls.ir import (
    BinOp,
    Const,
    DoWhile,
    Kernel,
    Load,
    OuterLoop,
    Program,
    StoreOp,
    UnOp,
    Var,
)
from repro.sim.trace import FiringTrace, render_timeline


def gcd_program(n=6):
    rng = np.random.default_rng(5)
    loop = DoWhile(
        "gcd",
        ("a", "b", "i"),
        {"a": Var("b"), "b": BinOp("mod", Var("a"), Var("b")), "i": Var("i")},
        UnOp("ne0", Var("b")),
        ("a", "i"),
    )
    kernel = Kernel(
        "gcd",
        loop,
        (OuterLoop("i", n),),
        {"a": Load("x", Var("i")), "b": Load("y", Var("i")), "i": Var("i")},
        (StoreOp("out", Var("i"), Var("a")),),
        tags=4,
    )
    return Program(
        "gcd",
        {
            "x": rng.integers(20, 500, n),
            "y": rng.integers(20, 500, n),
            "out": np.zeros(n, dtype=np.int64),
        },
        [kernel],
    )


class TestFiringTrace:
    def test_busy_cycles_cover_latency(self):
        trace = FiringTrace()
        trace.record("mod", cycle=10, latency=3)
        assert trace.busy_cycles("mod") == {10, 11, 12}

    def test_utilization(self):
        trace = FiringTrace()
        trace.record("u", 0, 2)
        trace.record("u", 5, 2)
        assert trace.utilization("u", 10) == pytest.approx(0.4)
        assert trace.utilization("u", 0) == 0.0

    def test_initiation_intervals(self):
        trace = FiringTrace()
        for cycle in (3, 10, 17):
            trace.record("u", cycle, 1)
        assert trace.initiation_intervals("u") == [7, 7]

    def test_render_marks_busy_columns(self):
        trace = FiringTrace()
        trace.record("u", 0, 1)
        trace.record("u", 4, 1)
        art = render_timeline(trace, ["u"], end=8, width=8)
        row = art.splitlines()[1]
        assert "█" in row and "·" in row


class TestFigure2Story:
    """Figure 2d vs 2e, measured: the modulo unit's initiation interval."""

    @pytest.fixture(scope="class")
    def traces(self):
        result = {}
        for flow in ("DF-IO", "GRAPHITI"):
            stats, trace, graph = simulate_flow(gcd_program(), flow)
            mod = next(
                name
                for name, spec in graph.nodes.items()
                if spec.typ == "Operator" and str(spec.param("op")).startswith("mod")
            )
            result[flow] = (stats, trace, mod)
        return result

    def test_in_order_cannot_pipeline_the_modulo(self, traces):
        stats, trace, mod = traces["DF-IO"]
        intervals = trace.initiation_intervals(mod)
        # One initiation per full loop iteration: gaps at least the loop
        # latency, far beyond the unit's II of 1.
        assert min(intervals) > 10

    def test_out_of_order_fills_the_pipeline(self, traces):
        stats, trace, mod = traces["GRAPHITI"]
        intervals = trace.initiation_intervals(mod)
        assert min(intervals) <= 2  # back-to-back initiations appear

    def test_out_of_order_has_higher_utilization(self, traces):
        io_stats, io_trace, io_mod = traces["DF-IO"]
        g_stats, g_trace, g_mod = traces["GRAPHITI"]
        io_util = io_trace.utilization(io_mod, io_stats.cycles)
        g_util = g_trace.utilization(g_mod, g_stats.cycles)
        assert g_util > io_util

    def test_timeline_renders_both_flows(self, traces):
        for flow in ("DF-IO", "GRAPHITI"):
            stats, trace, mod = traces[flow]
            art = render_timeline(trace, [mod], end=min(stats.cycles, 100), initiations_only=True)
            assert "█" in art
