"""Executor behaviour: ordering, caching, crash fallback, retries."""

import os

import pytest

from repro.exec.cache import ResultCache
from repro.exec.executor import Executor, ExecutorError, WorkUnit, resolve_worker
from repro.exec.hashing import fingerprint
from repro.exec.metrics import ExecutorMetrics

DOUBLE = "tests.exec.workertasks:double"


def double_units(count, cached=False):
    return [
        WorkUnit(
            uid=f"double:{i}",
            fn=DOUBLE,
            payload={"x": i},
            cache_key=fingerprint("double", str(i)) if cached else None,
        )
        for i in range(count)
    ]


class TestResolve:
    def test_resolves_module_function(self):
        assert resolve_worker(DOUBLE)(x=3) == {"value": 6}

    def test_bad_specs_raise(self):
        with pytest.raises(ExecutorError):
            resolve_worker("no-colon")
        with pytest.raises(ExecutorError):
            resolve_worker("tests.exec.workertasks:missing")
        with pytest.raises(ExecutorError):
            resolve_worker("not.a.module:fn")


class TestSerial:
    def test_results_in_submission_order(self):
        results = Executor(jobs=1).run(double_units(5))
        assert results == [{"value": 2 * i} for i in range(5)]

    def test_metrics_record_every_unit(self):
        metrics = ExecutorMetrics()
        Executor(jobs=1, metrics=metrics).run(double_units(3))
        assert metrics.executed == 3 and metrics.hits == 0


class TestParallel:
    def test_matches_serial_results_and_order(self):
        serial = Executor(jobs=1).run(double_units(8))
        parallel = Executor(jobs=2).run(double_units(8))
        assert parallel == serial

    def test_worker_crash_falls_back_to_serial(self):
        # The unit hard-kills any pool worker it lands in (BrokenProcessPool)
        # but succeeds in the parent: the batch must still complete.
        metrics = ExecutorMetrics()
        units = [
            WorkUnit(
                uid=f"crash:{i}",
                fn="tests.exec.workertasks:crash_unless_parent",
                payload={"parent_pid": os.getpid(), "x": i},
            )
            for i in range(3)
        ]
        results = Executor(jobs=2, metrics=metrics).run(units)
        assert results == [{"value": i} for i in range(3)]
        assert metrics.retries >= 1

    def test_worker_exception_retried_serially(self):
        metrics = ExecutorMetrics()
        units = [
            WorkUnit(
                uid=f"flaky:{i}",
                fn="tests.exec.workertasks:fail_in_worker_only",
                payload={"parent_pid": os.getpid(), "x": i},
            )
            for i in range(3)
        ]
        results = Executor(jobs=2, metrics=metrics).run(units)
        assert results == [{"value": i} for i in range(3)]
        assert metrics.retries == 3

    def test_genuine_failure_propagates(self):
        units = [WorkUnit(uid="bad", fn="tests.exec.workertasks:fail_always", payload={})]
        with pytest.raises(ValueError, match="boom"):
            Executor(jobs=1).run(units)


class TestCaching:
    def test_second_run_recomputes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = Executor(jobs=1, cache=cache).run(double_units(4, cached=True))

        metrics = ExecutorMetrics()
        second = Executor(jobs=1, cache=cache, metrics=metrics).run(double_units(4, cached=True))
        assert second == first
        assert metrics.executed == 0 and metrics.hits == 4

    def test_cache_miss_on_changed_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        Executor(jobs=1, cache=cache).run(double_units(2, cached=True))
        changed = [
            WorkUnit(
                uid="double:0",
                fn=DOUBLE,
                payload={"x": 5},
                cache_key=fingerprint("double", "changed"),
            )
        ]
        metrics = ExecutorMetrics()
        results = Executor(jobs=1, cache=cache, metrics=metrics).run(changed)
        assert results == [{"value": 10}]
        assert metrics.executed == 1

    def test_corrupted_entry_recovers_by_recomputation(self, tmp_path):
        cache = ResultCache(tmp_path)
        units = double_units(1, cached=True)
        Executor(jobs=1, cache=cache).run(units)
        cache.path_for(units[0].cache_key).write_text("garbage")
        metrics = ExecutorMetrics()
        results = Executor(jobs=1, cache=cache, metrics=metrics).run(units)
        assert results == [{"value": 0}]
        assert metrics.executed == 1 and cache.stats.corrupt == 1
        # The recomputation rewrote the entry: a third run is a pure hit.
        metrics2 = ExecutorMetrics()
        Executor(jobs=1, cache=cache, metrics=metrics2).run(units)
        assert metrics2.hits == 1 and metrics2.executed == 0
