"""Exception hierarchy for the Graphiti reproduction.

All library errors derive from :class:`GraphitiError` so callers can catch
anything raised by the library with one ``except`` clause while still being
able to discriminate the failure class.
"""

from __future__ import annotations


class GraphitiError(Exception):
    """Base class for all errors raised by this library."""


class PortError(GraphitiError):
    """A port name was malformed, duplicated, or missing."""


class GraphError(GraphitiError):
    """An ExprHigh / ExprLow graph was structurally invalid."""


class TypeCheckError(GraphitiError):
    """A graph failed the well-typedness check (section 6.3 of the paper)."""


class DotParseError(GraphitiError):
    """The dot input could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SemanticsError(GraphitiError):
    """A module combinator was applied to incompatible modules."""


class MatchError(GraphitiError):
    """A rewrite matcher could not locate its left-hand side."""


class RewriteError(GraphitiError):
    """A rewrite could not be applied to the located subgraph."""


class SaturationLimitError(RewriteError):
    """Equality saturation exhausted its node/iteration budget.

    Raised only when the saturation was configured with
    ``on_exhausted="error"``; the default policy returns the partial
    frontier explored so far instead.
    """


class ResultSchemaError(GraphitiError):
    """A wire-format result dict was malformed: missing or unknown
    ``schema_version``, an unregistered ``kind``, or a field that does not
    round-trip.  Raised by :func:`repro.results.from_wire` and the
    ``from_dict`` constructors of the result types."""


class ServiceError(GraphitiError):
    """The verification service rejected a request or job (unknown kind,
    malformed parameters, queue overflow, lookup of a nonexistent job)."""


class CertificateError(GraphitiError):
    """A serialised simulation certificate was malformed, of the wrong
    format version, or failed its content-hash integrity check."""


class RefinementError(GraphitiError):
    """A refinement obligation failed (counterexample found)."""

    def __init__(self, message: str, counterexample: object | None = None):
        self.counterexample = counterexample
        super().__init__(message)


class NetlistError(GraphitiError):
    """A netlist document or structural-Verilog module could not be parsed
    or did not describe a well-formed dataflow graph."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class OracleDisagreement(GraphitiError):
    """The SAT oracle and the weak-simulation checker returned *definitive*
    but contradictory verdicts on the same obligation.  Carries both
    witnesses: the game-side evidence (a certificate dict or a violation
    dict) and the SAT-side evidence (the satisfying assignment or the
    refutation core summary)."""

    def __init__(self, message: str, game_witness: object = None, sat_witness: object = None):
        self.game_witness = game_witness
        self.sat_witness = sat_witness
        super().__init__(message)


class SimulationError(GraphitiError):
    """The cycle-level simulator reached an invalid configuration."""


class DeadlockError(SimulationError):
    """The simulated circuit made no progress before completing."""

    def __init__(self, message: str, cycle: int | None = None):
        self.cycle = cycle
        super().__init__(message)


class SchedulingError(GraphitiError):
    """The static scheduler could not schedule the program."""


class FrontendError(GraphitiError):
    """The mini-IR program was invalid or unsupported by the HLS front end."""
