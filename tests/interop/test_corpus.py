"""Seeded fuzz corpus: determinism, prefix stability, and the bicg story.

The manifest must be a pure function of ``(seed, cases, backend)`` —
byte-identical JSON on re-run — so corpus results can live in the result
cache and CI can diff manifests across machines.
"""

import json

from repro.components import default_environment
from repro.hls.frontend import compile_program
from repro.interop.corpus import (
    case_seeds,
    corpus_manifest,
    generate_case,
    generate_program,
    run_fuzz_case,
)
from repro.interop.netlist import dumps_netlist


def _manifest_for(seed, count, backend="compiled"):
    entries = [run_fuzz_case(case_seed, backend) for case_seed in case_seeds(seed, count)]
    return corpus_manifest(entries, seed=seed, backend=backend)


def test_same_seed_byte_identical_manifest():
    a = _manifest_for(7, 4)
    b = _manifest_for(7, 4)
    assert json.dumps(a, indent=2, sort_keys=True) == json.dumps(b, indent=2, sort_keys=True)


def test_different_seed_different_manifest():
    a = _manifest_for(7, 4)
    b = _manifest_for(8, 4)
    assert a["content_hash"] != b["content_hash"]


def test_case_seeds_are_prefix_stable():
    # extending the corpus never perturbs earlier cases
    assert case_seeds(0, 3) == case_seeds(0, 10)[:3]
    assert case_seeds(1, 5) != case_seeds(2, 5)


def test_generate_program_is_deterministic():
    env = default_environment()

    def netlists(seed):
        compiled = compile_program(generate_program(seed), env)
        return [dumps_netlist(ck.graph, name=ck.kernel.name) for ck in compiled.kernels]

    assert netlists(1234) == netlists(1234)


def test_cases_pass_and_effectful_loops_are_refused():
    # Scan a fixed window of seeds: every case must pass, and at least one
    # must exercise the effectful path where GRAPHITI refuses the loop
    # (the paper's bicg refusal) while DF-OoO is allowed to diverge.
    effectful = 0
    for case_seed in case_seeds(0, 6):
        entry = run_fuzz_case(case_seed, "compiled")
        assert entry["ok"], entry["failures"]
        assert entry["round_trip"] == {"json": True, "verilog": True}
        if entry["effectful"]:
            effectful += 1
            assert entry["flows"]["GRAPHITI"]["refused_loops"] == 1, entry
        else:
            assert entry["flows"]["GRAPHITI"]["refused_loops"] == 0, entry
            assert not entry["ooo_divergence"], entry
    assert effectful >= 1


def test_manifest_shape_and_ok_rollup():
    manifest = _manifest_for(3, 3)
    assert manifest["format"] == "graphiti-corpus"
    assert manifest["version"] == 1
    assert manifest["seed"] == 3
    assert manifest["backend"] == "compiled"
    assert manifest["count"] == 3
    assert len(manifest["cases"]) == 3
    assert manifest["ok"] == all(entry["ok"] for entry in manifest["cases"])
    assert manifest["ooo_divergences"] == sum(
        1 for entry in manifest["cases"] if entry["ooo_divergence"]
    )
    assert len(manifest["content_hash"]) == 64


def test_interp_backend_agrees_on_a_pure_case():
    # find a pure case and check the slower interpreter backend also passes
    for case_seed in case_seeds(0, 8):
        case = generate_case(case_seed)
        if not case.effectful:
            entry = run_fuzz_case(case_seed, "interp")
            assert entry["ok"], entry["failures"]
            assert not entry["ooo_divergence"]
            return
    raise AssertionError("no pure case in the first 8 seeds")
