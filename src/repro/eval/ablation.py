"""Ablations over the design choices the evaluation section calls out.

* **Tag-count sweep** — how the tag budget trades throughput against
  flip-flop cost (the Table 3 matvec discussion: 50 tags ⇒ ~6× FFs).
* **Combined vs uncombined steering** — the section 6.2 observation that
  Graphiti's Mux/Branch combination synchronises the per-variable data
  paths, costing cycles relative to DF-OoO's uncombined steering, without
  hurting area or clock much.
* **Saturation vs fixpoint** — what the equality-saturation backend buys
  over the destructive pipeline on every benchmark: modeled best-point
  cost against the fixpoint circuit's cost, plus the frontier size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchmarks import matvec
from ..hls.ir import Kernel, Program
from .runner import BenchmarkResult


@dataclass
class TagSweepPoint:
    tags: int
    df_io_cycles: int
    graphiti_cycles: int
    graphiti_ffs: int

    @property
    def speedup(self) -> float:
        return self.df_io_cycles / self.graphiti_cycles


def retag(program: Program, tags: int) -> Program:
    """The same program with a different tag budget on every kernel."""
    kernels = [
        Kernel(
            name=k.name,
            loop=k.loop,
            outer=k.outer,
            init=k.init,
            epilogue=k.epilogue,
            tags=tags,
            sequential_outer=k.sequential_outer,
        )
        for k in program.kernels
    ]
    return Program(program.name, program.copy_arrays(), kernels)


def tag_sweep(tag_counts=(2, 4, 8, 16, 32), n: int = 16) -> list[TagSweepPoint]:
    """Sweep matvec's tag budget; returns one point per count."""
    from ..api import Session

    session = Session(use_cache=False)
    points = []
    for tags in tag_counts:
        result = session.bench(name="matvec", program=retag(matvec(n), tags))
        points.append(
            TagSweepPoint(
                tags=tags,
                df_io_cycles=result["DF-IO"].cycles,
                graphiti_cycles=result["GRAPHITI"].cycles,
                graphiti_ffs=result["GRAPHITI"].area.ffs,
            )
        )
    return points


@dataclass
class SteeringComparison:
    """Graphiti (combined steering) vs DF-OoO (uncombined) on one benchmark."""

    benchmark: str
    graphiti_cycles: int
    df_ooo_cycles: int
    graphiti_luts: int
    df_ooo_luts: int

    @property
    def synchronization_cost(self) -> float:
        """Cycle overhead of the combined (synchronised) data paths."""
        return self.graphiti_cycles / self.df_ooo_cycles


def steering_comparison(result: BenchmarkResult) -> SteeringComparison:
    return SteeringComparison(
        benchmark=result.name,
        graphiti_cycles=result["GRAPHITI"].cycles,
        df_ooo_cycles=result["DF-OoO"].cycles,
        graphiti_luts=result["GRAPHITI"].area.luts,
        df_ooo_luts=result["DF-OoO"].area.luts,
    )


@dataclass
class StrategyDelta:
    """Saturate-vs-fixpoint comparison for one benchmark kernel.

    Costs come from :func:`repro.hls.area.circuit_cost`; ``best_*`` is the
    lowest-modeled-time point of the extracted Pareto frontier.  The
    saturate strategy seeds exploration with the fixpoint output, so
    ``time_ratio <= 1`` always holds — strict improvement means saturation
    found a variant the destructive pipeline cannot reach.
    """

    benchmark: str
    fixpoint_area: int
    fixpoint_cycles: int
    fixpoint_time: float
    best_area: int
    best_cycles: int
    best_time: float
    frontier: int
    refused: bool

    @property
    def time_ratio(self) -> float:
        """Best saturated time over fixpoint time (<= 1 by construction)."""
        return self.best_time / self.fixpoint_time

    @property
    def area_ratio(self) -> float:
        return self.best_area / self.fixpoint_area


def strategy_deltas(
    benchmarks=None, budget=None, session=None
) -> list[StrategyDelta]:
    """Run every benchmark under ``strategy="saturate"``; one delta each."""
    from ..api import Session
    from ..benchmarks import BENCHMARKS, load_benchmark
    from ..hls.frontend import compile_program

    session = session if session is not None else Session(use_cache=False)
    deltas = []
    for name in benchmarks if benchmarks is not None else BENCHMARKS:
        program = load_benchmark(name)
        ck = compile_program(program, session.env).kernels[0]
        result = session.transform(graph=ck.graph, mark=ck.mark, strategy="saturate", budget=budget)
        deltas.append(
            StrategyDelta(
                benchmark=name,
                fixpoint_area=result.fixpoint_cost.area,
                fixpoint_cycles=result.fixpoint_cost.cycles,
                fixpoint_time=result.fixpoint_cost.time,
                best_area=result.best_cost.area,
                best_cycles=result.best_cost.cycles,
                best_time=result.best_cost.time,
                frontier=len(result.pareto),
                refused=not result.transformed,
            )
        )
    return deltas


@dataclass
class BufferAblationPoint:
    """Cycle counts with vs. without the transparent-buffer pairing."""

    flow: str
    paired_cycles: int  # two slots per channel (the Dynamatic default)
    single_cycles: int  # one slot per channel (bubble on every hop)

    @property
    def bubble_penalty(self) -> float:
        return self.single_cycles / self.paired_cycles


def buffer_ablation(n: int = 12) -> list[BufferAblationPoint]:
    """Quantify the buffer-pairing choice of `repro.hls.buffers`.

    Elastic channels with a single slot cannot hold a token and accept the
    next in the same cycle, inserting a bubble on every hop; Dynamatic's
    opaque+transparent buffer pair removes it.  This ablation simulates
    matvec with both channel sizings.
    """
    from ..components import default_environment
    from ..hls.area import latency_of
    from ..hls.buffers import place_buffers
    from ..hls.frontend import compile_program
    from ..hls.ooo import transform_out_of_order
    from ..sim.dispatch import simulate_graph

    points = []
    for flow in ("DF-IO", "DF-OoO"):
        cycles = {}
        for sizing in ("paired", "single"):
            program = matvec(n)
            env = default_environment()
            ck = compile_program(program, env).kernels[0]
            if flow == "DF-OoO":
                graph, tags = transform_out_of_order(ck.graph, ck.mark), ck.mark.tags
            else:
                graph, tags = ck.graph, None
            placement = place_buffers(graph, tags)
            capacities = dict(placement.capacities)
            if sizing == "single":
                capacities = {edge: max(1, slots - 1) for edge, slots in capacities.items()}
            stats = simulate_graph(
                graph, env, ck.kernel, program.arrays,
                capacities=capacities, latency_of=latency_of,
            )
            cycles[sizing] = stats.cycles
        points.append(
            BufferAblationPoint(
                flow=flow,
                paired_cycles=cycles["paired"],
                single_cycles=cycles["single"],
            )
        )
    return points
